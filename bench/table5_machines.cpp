// Table 5 reproduction — the paper's overview of the §5 processors.
// Pure registry data: confirms the machine descriptions encode exactly the
// facts the paper states, plus the derived quantities the model adds.

#include <iostream>

#include "arch/registry.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;

int main() {
  std::cout << "Table 5 — overview of the CPUs used for the §5 comparison\n"
               "(left block: the paper's columns; right block: derived "
               "model quantities)\n\n";
  report::Table t({"CPU", "ISA", "Part", "Base clock", "Cores", "Vector",
                   "| MCs/channels", "sustained GB/s", "NUMA"});
  for (arch::MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    t.add_row({m.part, to_string(m.isa), m.name,
               report::fmt(m.core.clock_ghz, 2) + " GHz",
               std::to_string(m.cores), to_string(m.core.vector.isa),
               "| " + std::to_string(m.memory.controllers) + "/" +
                   std::to_string(m.memory.channels),
               report::fmt(m.memory.chip_stream_bw_gbs(), 1),
               std::to_string(m.memory.numa_regions)});
  }
  report::maybe_write_csv("table5_machines", t);
  std::cout << t.render()
            << "\nPaper check: EPYC 7742 2.25 GHz/64c/AVX2, Xeon 8170 "
               "2.1 GHz/26c/AVX-512,\nThunderX2 2 GHz/32c/NEON, SG2042 "
               "2 GHz/64c/RVV 0.7.1, SG2044 2.6 GHz/64c/RVV 1.0.\n";
  return 0;
}
