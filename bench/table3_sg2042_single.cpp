// Table 3 reproduction — single-core class C: SG2044 (GCC 15.2) vs
// SG2042 (XuanTie GCC 8.4), with the times-faster column.  Both machine
// columns are evaluated together as one engine batch.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::ProblemClass;

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "Table 3 — NPB kernels (class C) on a single core: SG2044 "
               "C920v2 vs SG2042 C920v1\nEach cell: paper | model\n\n";
  const auto rows = model::paper::table3_single_core();

  // Two requests per paper row (SG2044 then SG2042), row-major.
  engine::RequestSet set;
  for (const auto& row : rows) {
    set.add_paper_setup(MachineId::Sg2044, row.kernel, ProblemClass::C, 1);
    set.add_paper_setup(MachineId::Sg2042, row.kernel, ProblemClass::C, 1);
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  report::Table t({"Benchmark", "SG2044 Mop/s", "SG2042 Mop/s",
                   "SG2044 times faster"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const model::Prediction& p44 = results[2 * i].prediction;
    const model::Prediction& p42 = results[2 * i + 1].prediction;
    t.add_row({to_string(row.kernel),
               report::fmt(row.sg2044_mops, 2) + " | " + report::fmt(p44.mops, 2),
               report::fmt(row.sg2042_mops, 2) + " | " + report::fmt(p42.mops, 2),
               report::fmt(row.sg2044_mops / row.sg2042_mops, 2) + " | " +
                   report::fmt(p44.mops / p42.mops, 2)});
  }
  report::maybe_write_csv("table3_sg2042_single", t);
  std::cout << t.render()
            << "\nShape targets: every ratio in the 1.08-1.30 band, EP (the "
               "compute-bound\nkernel, lifted by clock + RVV 1.0) the "
               "largest.\n";
  return 0;
}
