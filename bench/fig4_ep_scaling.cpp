// Figure 4 reproduction — EP benchmark OpenMP scaling (class C).

#include "fig_common.hpp"

int main() {
  rvhpc::bench::print_scaling_figure(
      "Figure 4 — EP benchmark performance (Mop/s, higher is better)",
      rvhpc::model::Kernel::EP,
      "Shape targets: the SG2044 tracks the Skylake core-for-core and then\n"
      "follows the EPYC's trajectory beyond 26 cores at slightly lower\n"
      "absolute performance; compute-bound, so everything scales ~linearly.");
}
