// Table 6 reproduction — BT/LU/SP pseudo-applications at class C: how many
// times faster each CPU is than the SG2044 at 16/26/32/64 cores (values
// below 1.0 mean slower than the SG2044).

#include <iostream>

#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::ProblemClass;

namespace {

std::string cell(std::optional<double> paper, MachineId id,
                 model::Kernel kernel, int cores) {
  const double modelled = model::times_faster(id, MachineId::Sg2044, kernel,
                                              ProblemClass::C, cores);
  if (!paper && modelled == 0.0) return "-";
  return (paper ? report::fmt(*paper, 2) : std::string("-")) + " | " +
         (modelled > 0.0 ? report::fmt(modelled, 2) : std::string("-"));
}

}  // namespace

int main() {
  std::cout << "Table 6 — pseudo-applications (class C): times faster than "
               "the SG2044 at equal core counts\nEach cell: paper | model; "
               "'-' where the CPU lacks the cores\n\n";
  report::Table t({"Benchmark", "cores", "SG2042", "EPYC 7742",
                   "Xeon 8170", "ThunderX2"});
  for (const auto& row : model::paper::table6()) {
    t.add_row({to_string(row.kernel), std::to_string(row.cores),
               cell(row.sg2042, MachineId::Sg2042, row.kernel, row.cores),
               cell(row.epyc, MachineId::Epyc7742, row.kernel, row.cores),
               cell(row.skylake, MachineId::Xeon8170, row.kernel, row.cores),
               cell(row.thunderx2, MachineId::ThunderX2, row.kernel, row.cores)});
  }
  report::maybe_write_csv("table6_pseudo_apps", t);
  std::cout << t.render()
            << "\nShape targets: SG2042 always < 1.0 and falling as cores "
               "grow (the gap\nwith the SG2044 widens); the other ISAs > 1.0 "
               "but shrinking (the SG2044\ncloses the gap at scale); LU is "
               "where the SG2042 stays closest.\n";
  return 0;
}
