// lint_audit — static-analysis audit of everything the reproduction ships.
//
// Not a paper table: this binary is the human-readable face of
// rvhpc::analysis.  It prints the rule catalogue, then lints the full
// registry (including the calibration-drift rules), every
// (kernel, class) workload signature, and — when run from a checkout —
// the src/ tree itself with the S-family source rules, modulo the
// checked-in scripts/lint_baseline.txt.  Findings render through
// rvhpc::report with the usual RVHPC_CSV_DIR side-output.  A clean run
// prints empty audits; CI treats any error-severity finding as a
// failure via scripts/check.sh's rvhpc-lint --werror gates.

#include <exception>
#include <iostream>

#include "analysis/baseline.hpp"
#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "arch/registry.hpp"
#include "report/csv.hpp"

using namespace rvhpc;

namespace {

int audit(const char* title, const char* csv_name, const analysis::Report& r) {
  std::cout << "== " << title << ": " << analysis::summarize(r) << "\n";
  if (!r.empty()) {
    const report::Table t = analysis::render_table(r);
    std::cout << t.render();
    report::maybe_write_csv(csv_name, t);
  }
  std::cout << "\n";
  return r.has_errors() ? 1 : 0;
}

/// Coverage self-check for the topology rules (A301-A304): takes a
/// registry topology machine, breaks every cross-field invariant the
/// A3xx family guards, and verifies each rule actually fires.  The
/// registry audit above proves the shipped machines are *clean*; this
/// section proves the rules would *catch* the regressions they claim to.
int audit_topology_coverage() {
  arch::MachineModel broken = arch::machine("sg2044-dual");
  broken.name += " (deliberately broken)";
  broken.topology.domains[0].cores -= 1;            // A301: core sum off by one
  broken.topology.links[0].bandwidth_gbs = 1e6;     // A302: link outruns DRAM
  broken.topology.domains[0].dram_gib += 7.0;       // A303: DRAM slices drift
  broken.memory.numa_regions = 1;                   // A304: flat blend stale
  const analysis::Report r = analysis::lint_machine(broken);

  std::cout << "== topology-rule coverage (A301-A304 on a broken machine): "
            << analysis::summarize(r) << "\n";
  const report::Table t = analysis::render_table(r);
  std::cout << t.render();
  report::maybe_write_csv("lint_topo_coverage", t);

  int rc = 0;
  for (const char* rule : {"A301", "A302", "A303", "A304"}) {
    if (r.by_rule(rule).empty()) {
      std::cout << "   COVERAGE GAP: rule " << rule
                << " did not fire on the broken machine\n";
      rc = 1;
    }
  }
  std::cout << "\n";
  return rc;
}

/// Lints the checkout's src/ tree against its baseline.  Skipped quietly
/// when the binary runs away from the source tree (installed, moved).
int audit_sources() {
  const std::string root(RVHPC_SOURCE_DIR);
  analysis::Report r;
  analysis::Baseline baseline;
  try {
    r = analysis::lint_sources(root + "/src");
    baseline = analysis::load_baseline(root + "/scripts/lint_baseline.txt");
  } catch (const std::exception& e) {
    std::cout << "== src/ source rules: skipped (" << e.what() << ")\n\n";
    return 0;
  }
  std::vector<analysis::BaselineEntry> stale;
  r = analysis::apply_baseline(std::move(r), baseline, &stale);
  for (const analysis::BaselineEntry& e : stale) {
    std::cout << "   stale baseline entry: " << e.rule << " " << e.path
              << " " << e.field << "\n";
  }
  return audit("src/ source rules (modulo baseline)", "lint_sources", r);
}

}  // namespace

int main() {
  std::cout << "rvhpc-lint rule catalogue ("
            << analysis::rule_catalogue().size() << " rules):\n"
            << analysis::render_catalogue().render() << "\n";
  int rc = 0;
  rc |= audit("registry + calibration anchors", "lint_registry",
              analysis::lint_registry());
  rc |= audit("workload-signature suite", "lint_signatures",
              analysis::lint_signature_suite());
  rc |= audit_topology_coverage();
  rc |= audit_sources();
  return rc;
}
