// lint_audit — static-analysis audit of everything the reproduction ships.
//
// Not a paper table: this binary is the human-readable face of
// rvhpc::analysis.  It prints the rule catalogue, then lints the full
// registry (including the calibration-drift rules) and every
// (kernel, class) workload signature, rendering findings through
// rvhpc::report with the usual RVHPC_CSV_DIR side-output.  A clean run
// prints two empty audits; CI treats any error-severity finding as a
// failure via scripts/check.sh's rvhpc-lint --werror gate.

#include <iostream>

#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "report/csv.hpp"

using namespace rvhpc;

namespace {

int audit(const char* title, const char* csv_name, const analysis::Report& r) {
  std::cout << "== " << title << ": " << analysis::summarize(r) << "\n";
  if (!r.empty()) {
    const report::Table t = analysis::render_table(r);
    std::cout << t.render();
    report::maybe_write_csv(csv_name, t);
  }
  std::cout << "\n";
  return r.has_errors() ? 1 : 0;
}

}  // namespace

int main() {
  std::cout << "rvhpc-lint rule catalogue ("
            << analysis::rule_catalogue().size() << " rules):\n"
            << analysis::render_catalogue().render() << "\n";
  int rc = 0;
  rc |= audit("registry + calibration anchors", "lint_registry",
              analysis::lint_registry());
  rc |= audit("workload-signature suite", "lint_signatures",
              analysis::lint_signature_suite());
  return rc;
}
