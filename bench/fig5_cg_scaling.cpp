// Figure 5 reproduction — CG benchmark OpenMP scaling (class C;
// vectorisation disabled on the SG2044 per §6).  Pass --trace=<file> to
// capture the five machines' sweeps as a Chrome trace with attribution
// records — CG is the kernel whose bottleneck story (gather latency vs
// bandwidth vs compute) the paper leans on hardest.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  return rvhpc::bench::run_scaling_figure(
      argc, argv,
      "Figure 5 — CG benchmark performance (Mop/s, higher is better)",
      rvhpc::model::Kernel::CG,
      "Shape targets: SG2044 and SG2042 similar at small core counts, the\n"
      "2.2x gap building from 32 threads; core-for-core the ThunderX2 wins,\n"
      "but 64 SG2044 cores beat the Arm CPU's full 32.");
}
