// Figure 3 reproduction — MG benchmark OpenMP scaling (class C).

#include "fig_common.hpp"

int main() {
  rvhpc::bench::print_scaling_figure(
      "Figure 3 — MG benchmark performance (Mop/s, higher is better)",
      rvhpc::model::Kernel::MG,
      "Shape targets: equal-core comparisons favour AMD/Intel/Arm, but the\n"
      "full-chip SG2044 (64 cores) is comparable to the full Skylake (26)\n"
      "and ThunderX2 (32) while the SG2042 falls far behind — the 32 vs 4\n"
      "memory controller/channel story of §5.2.");
}
