// Table 4 reproduction — all 64 cores, class C: SG2044 vs SG2042 with
// OpenMP; the paper's headline 1.52x-4.91x column.  Both machine columns
// are evaluated together as one engine batch.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::ProblemClass;

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "Table 4 — NPB kernels (class C) on all 64 cores: SG2044 vs "
               "SG2042\nEach cell: paper | model\n\n";
  const auto rows = model::paper::table4_64_cores();

  // Two requests per paper row (SG2044 then SG2042), row-major.
  engine::RequestSet set;
  for (const auto& row : rows) {
    set.add_paper_setup(MachineId::Sg2044, row.kernel, ProblemClass::C, 64);
    set.add_paper_setup(MachineId::Sg2042, row.kernel, ProblemClass::C, 64);
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  report::Table t({"Benchmark", "SG2044 Mop/s", "SG2042 Mop/s",
                   "SG2044 times faster"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const model::Prediction& p44 = results[2 * i].prediction;
    const model::Prediction& p42 = results[2 * i + 1].prediction;
    t.add_row({to_string(row.kernel),
               report::fmt(row.sg2044_mops, 1) + " | " + report::fmt(p44.mops, 1),
               report::fmt(row.sg2042_mops, 1) + " | " + report::fmt(p42.mops, 1),
               report::fmt(row.sg2044_mops / row.sg2042_mops, 2) + " | " +
                   report::fmt(p44.mops / p42.mops, 2)});
  }
  report::maybe_write_csv("table4_sg2042_multicore", t);
  std::cout << t.render()
            << "\nShape targets: the ordering inverts versus Table 3 — EP "
               "(compute bound)\nbenefits least (~1.5x), IS (memory latency "
               "bound) the most (~4.9x):\nthe SG2044's 32 memory "
               "controllers/channels stop the SG2042's wall.\n";
  return 0;
}
