// backend_calibration — analytic-vs-interval divergence across the registry.
//
// The two prediction backends (DESIGN.md §12) are deliberately different
// models of the same machines: the analytic ECM composes closed-form
// resource times, the interval simulation replays a synthetic access
// stream through memsim.  This bench sweeps BOTH backends over every
// registry machine × kernel × power-of-two core count through the shared
// BatchEvaluator (so the per-request backend dispatch path is what runs),
// then reports where they diverge:
//
//   * predicted-total ratio   interval seconds / analytic seconds
//   * bottleneck agreement    do they blame the same saturated resource?
//     (DNR/DNR counts as agreement — the backends share the feasibility
//     checks, so a disagreement there is a real bug.)
//
// The per-kernel table prints agreement and the geometric-mean ratio; the
// machine-readable summary is written as BENCH_calibration.json — the
// repo's first checked-in perf-trajectory artifact, deterministic by
// construction (fixed-precision numbers, no timestamps) so the checked-in
// copy only changes when a model changes.
//
//   --gate       exit 1 unless bottleneck agreement >= 80% overall.  Pure
//                model arithmetic — no wall-clock assertions, so the gate
//                passes on single-CPU CI runners and sanitised builds.
//   --out=FILE   where to write the JSON (default: BENCH_calibration.json
//                in the current directory; scripts/check.sh points it at
//                a scratch file and diffs nothing).
//   --jobs=N     worker threads for the batch evaluation.
//
// Every divergence outlier (ratio outside [1/3, 3]) is listed by name —
// an outlier is not a failure, but it must never be anonymous.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

constexpr double kGateAgreement = 0.80;  ///< --gate threshold
constexpr double kOutlierRatio = 3.0;    ///< outside [1/3, 3] => outlier

const Kernel kKernels[] = {
    Kernel::IS,         Kernel::MG,          Kernel::EP,  Kernel::CG,
    Kernel::FT,         Kernel::BT,          Kernel::LU,  Kernel::SP,
    Kernel::StreamCopy, Kernel::StreamTriad, Kernel::Hpl, Kernel::Hpcg,
};

/// One sweep point, paired across backends after evaluation.
struct Point {
  std::string name;  ///< "sg2044/CG.C@64"
  Kernel kernel;
  model::Prediction analytic;
  model::Prediction interval;

  [[nodiscard]] bool both_ran() const { return analytic.ran && interval.ran; }
  [[nodiscard]] bool agree() const {
    if (!analytic.ran || !interval.ran) return !analytic.ran && !interval.ran;
    return analytic.breakdown.dominant == interval.breakdown.dominant;
  }
  [[nodiscard]] double ratio() const {
    return analytic.seconds > 0.0 ? interval.seconds / analytic.seconds : 0.0;
  }
  [[nodiscard]] bool outlier() const {
    if (!both_ran()) return false;
    const double r = ratio();
    return r > kOutlierRatio || r < 1.0 / kOutlierRatio;
  }
};

struct KernelSummary {
  int points = 0;
  int agreements = 0;
  int compared = 0;  ///< both backends ran (ratio is meaningful)
  double log_ratio_sum = 0.0;
  double min_ratio = 0.0;
  double max_ratio = 0.0;

  void add(const Point& p) {
    ++points;
    if (p.agree()) ++agreements;
    if (!p.both_ran()) return;
    const double r = p.ratio();
    if (compared == 0) {
      min_ratio = max_ratio = r;
    } else {
      min_ratio = std::min(min_ratio, r);
      max_ratio = std::max(max_ratio, r);
    }
    ++compared;
    log_ratio_sum += std::log(r);
  }
  [[nodiscard]] double agreement() const {
    return points > 0 ? static_cast<double>(agreements) / points : 1.0;
  }
  [[nodiscard]] double geomean_ratio() const {
    return compared > 0 ? std::exp(log_ratio_sum / compared) : 0.0;
  }
};

/// Fixed-precision number for the JSON artifact: deterministic across
/// platforms and runs, unlike %g shortest-round-trip formatting.
std::string jnum(double v, int decimals = 4) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string bottleneck_name(const model::Prediction& p) {
  return p.ran ? model::to_string(p.breakdown.dominant) : "dnr";
}

}  // namespace

int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  bool gate = false;
  std::string out_path = "BENCH_calibration.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    }
  }

  // ---- Sweep: every machine × kernel × power-of-two core count, both
  // backends as adjacent requests in ONE set so the evaluator's dispatch
  // (not a backend-specific code path) chooses the mechanism per request.
  engine::RequestSet set;
  std::vector<std::pair<std::string, Kernel>> labels;
  const auto& hpc = arch::hpc_machines();
  for (const MachineId id : arch::all_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    // Class C for the HPC-scale chips (the paper's §5 runs); the small
    // boards get class A so their DRAM feasibility checks still pass on
    // most kernels and the comparison is not all DNR points.
    const bool is_hpc = std::find(hpc.begin(), hpc.end(), id) != hpc.end();
    const ProblemClass cls = is_hpc ? ProblemClass::C : ProblemClass::A;
    for (const Kernel k : kKernels) {
      const model::WorkloadSignature sig = model::signature(k, cls);
      for (const int cores : model::power_of_two_cores(m.cores)) {
        const model::RunConfig cfg = model::paper_run_config(m, k, cores);
        const std::string name = arch::name_of(id) + "/" + to_string(k) + "." +
                                 to_string(cls) + "@" + std::to_string(cores);
        set.add({m, sig, cfg, name, engine::Backend::Analytic});
        set.add({m, sig, cfg, name, engine::Backend::Interval});
        labels.emplace_back(name, k);
      }
    }
  }

  const auto results = engine::default_evaluator().evaluate(set);

  std::vector<Point> points;
  points.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Point p;
    p.name = labels[i].first;
    p.kernel = labels[i].second;
    p.analytic = results[2 * i].prediction;
    p.interval = results[2 * i + 1].prediction;
    points.push_back(std::move(p));
  }

  // ---- Per-kernel roll-up --------------------------------------------------
  std::map<std::string, KernelSummary> by_kernel;
  KernelSummary overall;
  for (const Point& p : points) {
    by_kernel[to_string(p.kernel)].add(p);
    overall.add(p);
  }

  report::Table t({"kernel", "points", "agree", "geomean t_int/t_ana",
                   "min", "max"});
  for (const Kernel k : kKernels) {
    const KernelSummary& s = by_kernel[to_string(k)];
    t.add_row({to_string(k), std::to_string(s.points),
               report::fmt(100.0 * s.agreement(), 1) + "%",
               report::fmt(s.geomean_ratio(), 2),
               report::fmt(s.min_ratio, 2), report::fmt(s.max_ratio, 2)});
  }
  std::cout << t.render() << "\n";

  std::vector<const Point*> outliers;
  std::vector<const Point*> disagreements;
  for (const Point& p : points) {
    if (p.outlier()) outliers.push_back(&p);
    if (!p.agree()) disagreements.push_back(&p);
  }

  std::cout << "points: " << overall.points << "  bottleneck agreement: "
            << report::fmt(100.0 * overall.agreement(), 1)
            << "%  geomean ratio: " << report::fmt(overall.geomean_ratio(), 2)
            << "  outliers: " << outliers.size() << "\n";
  if (!outliers.empty()) {
    std::cout << "\ndivergence outliers (ratio outside [1/3, 3]):\n";
    for (const Point* p : outliers) {
      std::cout << "  " << p->name << "  ratio " << report::fmt(p->ratio(), 2)
                << "  (analytic " << bottleneck_name(p->analytic)
                << ", interval " << bottleneck_name(p->interval) << ")\n";
    }
  }
  if (!disagreements.empty()) {
    std::cout << "\nbottleneck disagreements:\n";
    std::size_t shown = 0;
    for (const Point* p : disagreements) {
      if (++shown > 20) {
        std::cout << "  ... and " << disagreements.size() - 20 << " more\n";
        break;
      }
      std::cout << "  " << p->name << "  analytic="
                << bottleneck_name(p->analytic) << "  interval="
                << bottleneck_name(p->interval) << "\n";
    }
  }

  // ---- BENCH_calibration.json ---------------------------------------------
  {
    std::ostringstream js;
    js << "{\n  \"bench\": \"backend_calibration\",\n"
       << "  \"points\": " << overall.points << ",\n"
       << "  \"bottleneck_agreement\": " << jnum(overall.agreement()) << ",\n"
       << "  \"geomean_ratio\": " << jnum(overall.geomean_ratio()) << ",\n"
       << "  \"kernels\": [\n";
    bool first = true;
    for (const Kernel k : kKernels) {
      const KernelSummary& s = by_kernel[to_string(k)];
      if (!first) js << ",\n";
      first = false;
      js << "    {\"kernel\": \"" << to_string(k) << "\", \"points\": "
         << s.points << ", \"agreement\": " << jnum(s.agreement())
         << ", \"geomean_ratio\": " << jnum(s.geomean_ratio())
         << ", \"min_ratio\": " << jnum(s.min_ratio)
         << ", \"max_ratio\": " << jnum(s.max_ratio) << "}";
    }
    js << "\n  ],\n  \"outliers\": [\n";
    first = true;
    for (const Point* p : outliers) {
      if (!first) js << ",\n";
      first = false;
      js << "    {\"point\": \"" << p->name << "\", \"ratio\": "
         << jnum(p->ratio()) << ", \"analytic\": \""
         << bottleneck_name(p->analytic) << "\", \"interval\": \""
         << bottleneck_name(p->interval) << "\"}";
    }
    js << "\n  ]\n}\n";

    std::ofstream out(out_path, std::ios::binary);
    if (!out.good()) {
      std::cerr << "backend_calibration: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << js.str();
    std::cout << "\nwrote " << out_path << "\n";
  }

  if (gate) {
    if (overall.agreement() < kGateAgreement) {
      std::cerr << "GATE FAIL: bottleneck agreement "
                << report::fmt(100.0 * overall.agreement(), 1) << "% < "
                << report::fmt(100.0 * kGateAgreement, 0) << "% ("
                << disagreements.size() << " of " << overall.points
                << " points disagree)\n";
      return 1;
    }
    std::cout << "GATE OK: agreement "
              << report::fmt(100.0 * overall.agreement(), 1) << "% >= "
              << report::fmt(100.0 * kGateAgreement, 0) << "%, "
              << outliers.size() << " named outlier(s)\n";
  }
  return 0;
}
