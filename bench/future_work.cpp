// §7 future work — the paper closes by proposing three follow-ups:
// benchmarking HPCG and Linpack (HPL), and exploring LLVM, whose RVV
// support predates GCC's.  This bench runs all three ahead of the paper:
//
//   1. Modelled full-chip HPL and HPCG across the five §5 machines.
//   2. The LLVM-vs-GCC ablation on the SG2044.
//   3. A small *real* run of the repository's mini-HPL and mini-HPCG
//      implementations (src/hpc) on the host, with verification.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "hpc/hpcg.hpp"
#include "hpc/hpl.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::CompilerId;
using model::Kernel;
using model::ProblemClass;

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "§7 future work — HPL / HPCG / LLVM, modelled ahead of the "
               "paper\n\n";

  // --- 1. cross-machine predictions ----------------------------------------
  report::Table t({"machine", "cores", "HPL Mop/s", "HPCG Mop/s",
                   "HPL bottleneck", "HPCG bottleneck"});
  engine::RequestSet apps;
  for (MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    apps.add_paper_setup(id, Kernel::Hpl, ProblemClass::C, m.cores);
    apps.add_paper_setup(id, Kernel::Hpcg, ProblemClass::C, m.cores);
  }
  const auto app_results = engine::default_evaluator().evaluate(apps);
  std::size_t ai = 0;
  for (MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    const model::Prediction& hpl = app_results[ai++].prediction;
    const model::Prediction& hpcg = app_results[ai++].prediction;
    t.add_row({m.name, std::to_string(m.cores), report::fmt(hpl.mops, 0),
               report::fmt(hpcg.mops, 0), to_string(hpl.breakdown.dominant),
               to_string(hpcg.breakdown.dominant)});
  }
  std::cout << t.render()
            << "\nPrediction: HPL behaves like the compute-bound kernels "
               "(SG2044 respectable\nper chip); HPCG is bandwidth/latency "
               "bound like MG/CG — full-chip SG2044\ncompetitive with "
               "Skylake/ThunderX2, far ahead of the SG2042.\n\n";

  // --- 2. LLVM vs GCC on the SG2044 ----------------------------------------
  report::Table t2({"kernel", "GCC 15.2", "Clang/LLVM 17", "LLVM gain"});
  const auto& sg = arch::machine(MachineId::Sg2044);
  const std::vector<Kernel> llvm_kernels = {Kernel::MG, Kernel::CG, Kernel::FT,
                                            Kernel::BT, Kernel::Hpl};
  // Both compiler columns for every kernel, as one engine batch.
  engine::RequestSet ablation;
  const model::RunConfig gcc{1, {CompilerId::Gcc15_2, true},
                             model::ThreadPlacement::OsDefault};
  const model::RunConfig llvm{1, {CompilerId::Clang17, true},
                              model::ThreadPlacement::OsDefault};
  for (Kernel k : llvm_kernels) {
    ablation.add(sg, model::signature(k, ProblemClass::C), gcc);
    ablation.add(sg, model::signature(k, ProblemClass::C), llvm);
  }
  const auto compared = engine::default_evaluator().evaluate(ablation);
  for (std::size_t i = 0; i < llvm_kernels.size(); ++i) {
    const double g = compared[2 * i].prediction.mops;
    const double l = compared[2 * i + 1].prediction.mops;
    t2.add_row({to_string(llvm_kernels[i]), report::fmt(g, 1),
                report::fmt(l, 1), report::fmt_ratio(l, g)});
  }
  std::cout << t2.render()
            << "\nPrediction: LLVM's more mature RVV backend buys a few "
               "percent on the\nvector-sensitive kernels; CG's gather "
               "pathology is a hardware property and\npersists under either "
               "compiler.\n\n";

  // --- 3. real mini-HPL / mini-HPCG on this host ----------------------------
  std::cout << "Host runs of the src/hpc implementations:\n";
  hpc::hpl::HplConfig hc;
  hc.n = 384;
  hc.threads = 2;
  const auto hpl = hpc::hpl::run(hc);
  std::cout << "  mini-HPL  n=" << hc.n << ": " << report::fmt(hpl.gflops, 2)
            << " GFLOP/s, scaled residual "
            << report::fmt(hpl.scaled_residual, 3)
            << (hpl.verified ? " (PASSED)" : " (FAILED)") << "\n";
  hpc::hpcg::HpcgConfig gc;
  gc.nx = 24;
  gc.threads = 2;
  const auto hpcg = hpc::hpcg::run(gc);
  std::cout << "  mini-HPCG nx=" << gc.nx << ": "
            << report::fmt(hpcg.gflops, 2) << " GFLOP/s, "
            << hpcg.iterations << " PCG iterations (plain CG: "
            << hpcg.unpreconditioned_iterations << ")"
            << (hpcg.verified ? " (PASSED)" : " (FAILED)") << "\n";
  return hpl.verified && hpcg.verified ? 0 : 1;
}
