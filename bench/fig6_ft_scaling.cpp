// Figure 6 reproduction — FT benchmark OpenMP scaling (class C).

#include "fig_common.hpp"

int main() {
  rvhpc::bench::print_scaling_figure(
      "Figure 6 — FT benchmark performance (Mop/s, higher is better)",
      rvhpc::model::Kernel::FT,
      "Shape targets: SG2044 follows the SG2042's trajectory offset upward\n"
      "(2.71x at 64 cores) but still lags the other architectures.");
}
