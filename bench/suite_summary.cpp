// Suite summary — whole-suite geometric means, the "is RISC-V ready?"
// bottom line.  Also revisits the paper's §2.1 Geekbench aside: [13] found
// SG2044 ~ SG2042 for single-core work and ~1.3x for multi-core; our NPB
// geomeans bracket that (NPB stresses memory much harder than Geekbench,
// so the multicore geomean lands higher).

#include <cmath>
#include <iostream>

#include "model/sweep.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

/// Geometric mean of SG2044-vs-`other` runtime ratios over a kernel set at
/// `cores` cores on each machine (full chip when cores == 0).
double geomean_vs(MachineId other, const std::vector<Kernel>& kernels,
                  int cores) {
  double log_sum = 0.0;
  int n = 0;
  for (Kernel k : kernels) {
    const int c44 = cores > 0 ? cores : 64;
    const int co = cores > 0 ? cores : arch::machine(other).cores;
    const auto a = model::at_cores(MachineId::Sg2044, k, ProblemClass::C, c44);
    const auto b = model::at_cores(other, k, ProblemClass::C, co);
    if (!a.ran || !b.ran) continue;
    log_sum += std::log(b.seconds / a.seconds);
    ++n;
  }
  return n > 0 ? std::exp(log_sum / n) : 0.0;
}

}  // namespace

int main() {
  std::cout << "Suite summary — geometric-mean speedup of the SG2044 over "
               "each CPU\n(class C; >1 means the SG2044 is faster)\n\n";
  const std::vector<Kernel> kernels = model::npb_kernels();
  const std::vector<Kernel> apps = model::npb_pseudo_apps();

  report::Table t({"versus", "kernels @1 core", "kernels @16 cores",
                   "full chip (kernels)", "full chip (apps)"});
  for (MachineId other :
       {MachineId::Sg2042, MachineId::Epyc7742, MachineId::Xeon8170,
        MachineId::ThunderX2}) {
    t.add_row({arch::name_of(other),
               report::fmt(geomean_vs(other, kernels, 1), 2) + "x",
               report::fmt(geomean_vs(other, kernels, 16), 2) + "x",
               report::fmt(geomean_vs(other, kernels, 0), 2) + "x",
               report::fmt(geomean_vs(other, apps, 0), 2) + "x"});
  }
  report::maybe_write_csv("suite_summary", t);
  std::cout << t.render()
            << "\nReading (the paper's conclusions in four numbers per row):"
               "\n  - vs SG2042: modest single-core edge, large full-chip"
               " edge (memory subsystem);"
               "\n  - vs x86/Arm: behind at equal low core counts, far closer"
               " at full chip, with\n    the kernels (memory-dominated)"
               " closer than the pseudo-applications\n    (compute/vector"
               " codegen still favours mature ISAs).\n";
  return 0;
}
