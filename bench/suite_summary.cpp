// Suite summary — whole-suite geometric means, the "is RISC-V ready?"
// bottom line.  Also revisits the paper's §2.1 Geekbench aside: [13] found
// SG2044 ~ SG2042 for single-core work and ~1.3x for multi-core; our NPB
// geomeans bracket that (NPB stresses memory much harder than Geekbench,
// so the multicore geomean lands higher).
//
// The whole grid — every (machine, kernel, cores) cell any column needs —
// is built as ONE deduplicated engine::RequestSet and evaluated in a
// single batch (--jobs=N sizes the pool).  The run executes under an obs
// session, and the registry's metrics for the run are appended to the
// output so the summary doubles as a self-profile.

#include <cmath>
#include <cstddef>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "serve/persist.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

std::string cell_tag(MachineId id, Kernel k, int cores) {
  return std::string(arch::name_of(id)) + "/" + model::to_string(k) + "@" +
         std::to_string(cores);
}

/// Core count a column uses on `id`: the column's fixed count, or the full
/// chip when the column says 0.
int column_cores(MachineId id, int cores) {
  return cores > 0 ? cores : arch::machine(id).cores;
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).  --cache-file=<file> keeps
// the engine's memo cache across runs (serve::load_cache/save_cache): a
// repeated summary answers every cell from the restored cache.
// --cache-max-entries=N caps the file, trimming oldest-LRU entries first.
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::string cache_file;
  std::size_t cache_max_entries = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cache-file=", 0) == 0) {
      cache_file = arg.substr(std::string("--cache-file=").size());
    } else if (arg.rfind("--cache-max-entries=", 0) == 0) {
      const std::string value =
          arg.substr(std::string("--cache-max-entries=").size());
      if (!cli::parse_size(value, cache_max_entries)) {
        std::cerr << "suite_summary: bad --cache-max-entries value '" << value
                  << "'\n";
        return 2;
      }
    }
  }
  std::cout << "Suite summary — geometric-mean speedup of the SG2044 over "
               "each CPU\n(class C; >1 means the SG2044 is faster)\n\n";
  const std::vector<Kernel> kernels = model::npb_kernels();
  const std::vector<Kernel> apps = model::npb_pseudo_apps();
  const std::vector<MachineId> others = {MachineId::Sg2042, MachineId::Epyc7742,
                                         MachineId::Xeon8170,
                                         MachineId::ThunderX2};
  const std::vector<int> column_counts = {1, 16, 0};  // 0 = full chip

  // Build the whole grid as one deduplicated request set: the SG2044 cells
  // are shared by all four comparison rows, so each is requested once.
  engine::RequestSet set;
  std::set<std::string> requested;
  const auto need = [&](MachineId id, Kernel k, int cores) {
    const std::string tag = cell_tag(id, k, cores);
    if (!requested.insert(tag).second) return;
    set.add_paper_setup(id, k, ProblemClass::C, cores, tag);
  };
  for (MachineId other : others) {
    for (int cores : column_counts) {
      for (Kernel k : kernels) {
        need(MachineId::Sg2044, k, column_cores(MachineId::Sg2044, cores));
        need(other, k, column_cores(other, cores));
      }
    }
    for (Kernel k : apps) {
      need(MachineId::Sg2044, k, column_cores(MachineId::Sg2044, 0));
      need(other, k, column_cores(other, 0));
    }
  }

  // Without --cache-file the batch runs under an obs session so the
  // metrics block below reflects exactly this run's work (tracing
  // disables the memo cache — every cell pays full predict() price,
  // keeping attribution complete).  With --cache-file the memo cache IS
  // the point, so the run skips the session (metrics only) and restores
  // the cache from disk first: a warm rerun answers every cell for free.
  std::optional<obs::SessionScope> scope;
  std::size_t restored = 0;
  if (cache_file.empty()) {
    scope.emplace();
  } else {
    obs::set_metrics_enabled(true);
    const serve::LoadResult loaded =
        serve::load_cache(cache_file, engine::default_evaluator().cache());
    restored = loaded.restored;
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);
  if (!cache_file.empty()) {
    (void)serve::save_cache(cache_file, engine::default_evaluator().cache(),
                            cache_max_entries);
  }
  std::map<std::string, const model::Prediction*> cell;
  for (const engine::PredictionResult& r : results) {
    cell[r.tag] = &r.prediction;
  }

  const auto geomean_vs = [&](MachineId other,
                              const std::vector<Kernel>& ks, int cores) {
    double log_sum = 0.0;
    int n = 0;
    for (Kernel k : ks) {
      const model::Prediction& a =
          *cell.at(cell_tag(MachineId::Sg2044, k,
                            column_cores(MachineId::Sg2044, cores)));
      const model::Prediction& b =
          *cell.at(cell_tag(other, k, column_cores(other, cores)));
      if (!a.ran || !b.ran) continue;
      log_sum += std::log(b.seconds / a.seconds);
      ++n;
    }
    return n > 0 ? std::exp(log_sum / n) : 0.0;
  };

  report::Table t({"versus", "kernels @1 core", "kernels @16 cores",
                   "full chip (kernels)", "full chip (apps)"});
  for (MachineId other : others) {
    t.add_row({arch::name_of(other),
               report::fmt(geomean_vs(other, kernels, 1), 2) + "x",
               report::fmt(geomean_vs(other, kernels, 16), 2) + "x",
               report::fmt(geomean_vs(other, kernels, 0), 2) + "x",
               report::fmt(geomean_vs(other, apps, 0), 2) + "x"});
  }
  report::maybe_write_csv("suite_summary", t);
  std::cout << t.render()
            << "\nReading (the paper's conclusions in four numbers per row):"
               "\n  - vs SG2042: modest single-core edge, large full-chip"
               " edge (memory subsystem);"
               "\n  - vs x86/Arm: behind at equal low core counts, far closer"
               " at full chip, with\n    the kernels (memory-dominated)"
               " closer than the pseudo-applications\n    (compute/vector"
               " codegen still favours mature ISAs).\n";

  std::cout << "\nSelf-profile of this run (" << set.size()
            << " unique cells, " << engine::default_evaluator().jobs()
            << " worker thread(s), ";
  if (scope) {
    std::cout << scope->session().event_count() << " trace records";
  } else {
    std::cout << "tracing off: --cache-file";
  }
  std::cout << "):\n\npersistent-cache restored entries: " << restored
            << (cache_file.empty() ? " (no --cache-file)" : "") << "\n"
            << obs::Registry::global().render_text();
  return 0;
}
