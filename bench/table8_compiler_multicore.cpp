// Table 8 reproduction — the Table 7 ablation across all 64 SG2044 cores.

#include <iostream>

#include "model/paper_reference.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::CompilerId;
using model::ProblemClass;

namespace {

double run(model::Kernel k, CompilerId id, bool vec) {
  model::RunConfig cfg;
  cfg.cores = 64;
  cfg.compiler = {id, vec};
  return predict(arch::machine(arch::MachineId::Sg2044),
                 model::signature(k, ProblemClass::C), cfg)
      .mops;
}

}  // namespace

int main() {
  std::cout << "Table 8 — SG2044 all 64 cores, class C, compiler ablation "
               "(Mop/s)\nEach cell: paper | model\n\n";
  report::Table t({"Benchmark", "GCC 12.3.1", "GCC 15.2 +vector",
                   "GCC 15.2 no vector"});
  for (const auto& row : model::paper::table8_64_cores()) {
    t.add_row({to_string(row.kernel),
               report::fmt(row.gcc12, 1) + " | " +
                   report::fmt(run(row.kernel, CompilerId::Gcc12_3_1, true), 1),
               report::fmt(row.gcc15_vector, 1) + " | " +
                   report::fmt(run(row.kernel, CompilerId::Gcc15_2, true), 1),
               report::fmt(row.gcc15_scalar, 1) + " | " +
                   report::fmt(run(row.kernel, CompilerId::Gcc15_2, false), 1)});
  }
  report::maybe_write_csv("table8_compiler_multicore", t);
  std::cout << t.render()
            << "\nShape targets: IS shows the largest toolchain gain (~35%, "
               "an OpenMP/runtime\neffect invisible at one core); memory-"
               "bound kernels barely move; CG's\nvectorisation penalty "
               "shrinks at 64 cores but persists.\n";
  return 0;
}
