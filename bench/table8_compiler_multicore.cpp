// Table 8 reproduction — the Table 7 ablation across all 64 SG2044 cores.
// Three compiler configurations per kernel, as one engine batch.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/paper_reference.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::CompilerId;
using model::ProblemClass;

namespace {

model::RunConfig ablation_config(CompilerId id, bool vec) {
  model::RunConfig cfg;
  cfg.cores = 64;
  cfg.compiler = {id, vec};
  return cfg;
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "Table 8 — SG2044 all 64 cores, class C, compiler ablation "
               "(Mop/s)\nEach cell: paper | model\n\n";
  const auto rows = model::paper::table8_64_cores();
  const auto& m = arch::machine(arch::MachineId::Sg2044);

  // Three requests per paper row, in column order.
  engine::RequestSet set;
  for (const auto& row : rows) {
    const auto sig = model::signature(row.kernel, ProblemClass::C);
    set.add(m, sig, ablation_config(CompilerId::Gcc12_3_1, true));
    set.add(m, sig, ablation_config(CompilerId::Gcc15_2, true));
    set.add(m, sig, ablation_config(CompilerId::Gcc15_2, false));
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  report::Table t({"Benchmark", "GCC 12.3.1", "GCC 15.2 +vector",
                   "GCC 15.2 no vector"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    t.add_row({to_string(row.kernel),
               report::fmt(row.gcc12, 1) + " | " +
                   report::fmt(results[3 * i].prediction.mops, 1),
               report::fmt(row.gcc15_vector, 1) + " | " +
                   report::fmt(results[3 * i + 1].prediction.mops, 1),
               report::fmt(row.gcc15_scalar, 1) + " | " +
                   report::fmt(results[3 * i + 2].prediction.mops, 1)});
  }
  report::maybe_write_csv("table8_compiler_multicore", t);
  std::cout << t.render()
            << "\nShape targets: IS shows the largest toolchain gain (~35%, "
               "an OpenMP/runtime\neffect invisible at one core); memory-"
               "bound kernels barely move; CG's\nvectorisation penalty "
               "shrinks at 64 cores but persists.\n";
  return 0;
}
