// Table 1 reproduction — NPB memory behaviour on the Xeon Platinum 8170.
//
// The paper's Table 1 (from [3]) profiles each NPB benchmark with perf on
// a 26-core Skylake: % cycles stalled on cache, % stalled on DRAM, and
// % of time DRAM bandwidth was saturated.  We regenerate it with the
// trace-driven cache/DRAM simulator in rvhpc::memsim.

#include <iostream>

#include "memsim/profile.hpp"
#include "model/paper_reference.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;

int main() {
  std::cout << "Table 1 — NPB memory behaviour on the Xeon Platinum 8170 "
               "(26 cores)\n"
               "Columns: paper value | memsim reproduction\n\n";
  const auto& xeon = arch::machine(arch::MachineId::Xeon8170);
  report::Table t({"Benchmark", "cache stall %", "(sim)", "DDR stall %",
                   "(sim)", "BW-bound time %", "(sim)"});
  for (const auto& row : model::paper::table1()) {
    memsim::ProfileConfig cfg;  // 26 cores, steady-state defaults
    const auto r = memsim::simulate_stalls(xeon, row.kernel, cfg);
    t.add_row({to_string(row.kernel), report::fmt(row.cache_stall_pct, 0),
               report::fmt(r.cache_stall_pct, 1),
               report::fmt(row.ddr_stall_pct, 0),
               report::fmt(r.ddr_stall_pct, 1),
               report::fmt(row.ddr_bw_bound_pct, 0),
               report::fmt(r.ddr_bw_bound_pct, 1)});
  }
  report::maybe_write_csv("table1_stall_profile", t);
  std::cout << t.render()
            << "\nShape targets: IS cache-heavy with ~0% DDR stall; MG high on"
               "\nall three columns; EP clean; CG split between cache and DDR;"
               "\nthe pseudo-applications moderate with no BW-bound time.\n";
  return 0;
}
