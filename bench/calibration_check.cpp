// calibration_check — model-vs-paper deltas across every experiment.
//
// Not a paper table itself: this binary is the development tool used to
// calibrate the workload signatures and machine models.  It prints each
// published number next to the model's prediction with the relative error,
// then a summary of the worst deviations.  The per-table bench binaries
// present the same data in the paper's own layout.

#include <cmath>
#include <iostream>
#include <vector>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

struct Delta {
  std::string what;
  double paper;
  double ours;
  [[nodiscard]] double rel_err() const {
    return paper != 0.0 ? (ours - paper) / paper : 0.0;
  }
};

std::vector<Delta> g_deltas;

void check(const std::string& what, double paper_value, double our_value) {
  g_deltas.push_back({what, paper_value, our_value});
}

void print_deltas() {
  report::Table t({"experiment", "paper", "model", "rel.err"});
  for (const auto& d : g_deltas) {
    t.add_row({d.what, report::fmt(d.paper, 2), report::fmt(d.ours, 2),
               report::fmt(100.0 * d.rel_err(), 1) + "%"});
  }
  std::cout << t.render() << "\n";
  double worst = 0.0;
  std::string worst_what;
  double sum_abs = 0.0;
  for (const auto& d : g_deltas) {
    sum_abs += std::fabs(d.rel_err());
    if (std::fabs(d.rel_err()) > std::fabs(worst)) {
      worst = d.rel_err();
      worst_what = d.what;
    }
  }
  std::cout << "checks: " << g_deltas.size()
            << "  mean |rel.err|: " << report::fmt(100.0 * sum_abs / g_deltas.size(), 1)
            << "%  worst: " << worst_what << " (" << report::fmt(100.0 * worst, 1)
            << "%)\n";
}

std::string mname(MachineId id) { return arch::machine(id).name; }

/// Engine-backed equivalent of model::at_cores — same paper run config,
/// routed through the shared evaluator so repeated cells memoise and
/// `--jobs=N` batching applies.
model::Prediction eval(MachineId id, Kernel k, ProblemClass cls, int cores) {
  const arch::MachineModel& m = arch::machine(id);
  return engine::default_evaluator().evaluate_one(
      m, model::signature(k, cls), model::paper_run_config(m, k, cores));
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  // ---- Table 2: single-core class B across RISC-V machines ----------------
  for (const auto& row : model::paper::table2()) {
    if (!row.mops) continue;
    const auto p = eval(row.machine, row.kernel, ProblemClass::B, 1);
    check("T2 " + to_string(row.kernel) + " " + mname(row.machine), *row.mops,
          p.ran ? p.mops : 0.0);
  }
  // FT on the D1 must be DNR.
  {
    const auto p = eval(MachineId::AllwinnerD1, Kernel::FT, ProblemClass::B, 1);
    check("T2 FT allwinner-d1 DNR(1=yes)", 1.0, p.ran ? 0.0 : 1.0);
  }

  // ---- Tables 3/4: SG2044 vs SG2042, class C ------------------------------
  for (const auto& row : model::paper::table3_single_core()) {
    check("T3 " + to_string(row.kernel) + " sg2044 1c", row.sg2044_mops,
          eval(MachineId::Sg2044, row.kernel, ProblemClass::C, 1).mops);
    check("T3 " + to_string(row.kernel) + " sg2042 1c", row.sg2042_mops,
          eval(MachineId::Sg2042, row.kernel, ProblemClass::C, 1).mops);
  }
  for (const auto& row : model::paper::table4_64_cores()) {
    check("T4 " + to_string(row.kernel) + " sg2044 64c", row.sg2044_mops,
          eval(MachineId::Sg2044, row.kernel, ProblemClass::C, 64).mops);
    check("T4 " + to_string(row.kernel) + " sg2042 64c", row.sg2042_mops,
          eval(MachineId::Sg2042, row.kernel, ProblemClass::C, 64).mops);
  }

  // ---- Figure 1: STREAM copy ----------------------------------------------
  {
    const auto s44 =
        eval(MachineId::Sg2044, Kernel::StreamCopy, ProblemClass::C, 64);
    const auto s42 =
        eval(MachineId::Sg2042, Kernel::StreamCopy, ProblemClass::C, 64);
    check("F1 copy BW ratio 64c", 3.2, s44.achieved_bw_gbs / s42.achieved_bw_gbs);
    const auto a44 =
        eval(MachineId::Sg2044, Kernel::StreamCopy, ProblemClass::C, 8);
    const auto a42 =
        eval(MachineId::Sg2042, Kernel::StreamCopy, ProblemClass::C, 8);
    check("F1 copy BW ratio 8c", 1.0, a44.achieved_bw_gbs / a42.achieved_bw_gbs);
  }

  // ---- Figure 2 prose: single-core IS vs other ISAs ------------------------
  {
    const double sg =
        eval(MachineId::Sg2044, Kernel::IS, ProblemClass::C, 1).mops;
    check("F2 IS epyc/sg2044 1c", 2.0,
          eval(MachineId::Epyc7742, Kernel::IS, ProblemClass::C, 1).mops / sg);
    check("F2 IS skylake/sg2044 1c", 3.0,
          eval(MachineId::Xeon8170, Kernel::IS, ProblemClass::C, 1).mops / sg);
  }

  // ---- Table 6: pseudo-apps, times faster than SG2044 ----------------------
  for (const auto& row : model::paper::table6()) {
    auto add = [&](const char* who, MachineId id, std::optional<double> ref) {
      if (!ref) return;
      check("T6 " + to_string(row.kernel) + " " + who + " " +
                std::to_string(row.cores) + "c",
            *ref,
            model::times_faster(id, MachineId::Sg2044, row.kernel,
                                ProblemClass::C, row.cores));
    };
    add("sg2042", MachineId::Sg2042, row.sg2042);
    add("epyc", MachineId::Epyc7742, row.epyc);
    add("skylake", MachineId::Xeon8170, row.skylake);
    add("tx2", MachineId::ThunderX2, row.thunderx2);
  }

  // ---- Tables 7/8: compiler ablation on the SG2044 -------------------------
  const arch::MachineModel& sg2044 = arch::machine(MachineId::Sg2044);
  auto ablation = [&](Kernel k, int cores, model::CompilerId id, bool vec) {
    model::RunConfig cfg;
    cfg.cores = cores;
    cfg.compiler = {id, vec};
    return engine::default_evaluator()
        .evaluate_one(sg2044, model::signature(k, ProblemClass::C), cfg)
        .mops;
  };
  for (const auto& row : model::paper::table7_single_core()) {
    const std::string k = to_string(row.kernel);
    check("T7 " + k + " gcc12", row.gcc12,
          ablation(row.kernel, 1, model::CompilerId::Gcc12_3_1, true));
    check("T7 " + k + " gcc15+vec", row.gcc15_vector,
          ablation(row.kernel, 1, model::CompilerId::Gcc15_2, true));
    check("T7 " + k + " gcc15-novec", row.gcc15_scalar,
          ablation(row.kernel, 1, model::CompilerId::Gcc15_2, false));
  }
  for (const auto& row : model::paper::table8_64_cores()) {
    const std::string k = to_string(row.kernel);
    check("T8 " + k + " gcc12", row.gcc12,
          ablation(row.kernel, 64, model::CompilerId::Gcc12_3_1, true));
    check("T8 " + k + " gcc15+vec", row.gcc15_vector,
          ablation(row.kernel, 64, model::CompilerId::Gcc15_2, true));
    check("T8 " + k + " gcc15-novec", row.gcc15_scalar,
          ablation(row.kernel, 64, model::CompilerId::Gcc15_2, false));
  }

  print_deltas();
  return 0;
}
