// topo_scaling — multi-socket scaling shapes on the topology machines.
//
// The topology subsystem (src/topo, DESIGN.md §15) adds three machines
// to the registry that no paper-order artifact sweeps: the dual-socket
// SG2042/SG2044 variants and the Monte Cimone v3 cluster.  This bench
// sweeps BOTH prediction backends over them (adjacent requests in one
// RequestSet, so the per-request dispatch path is what runs) and checks
// the two scaling shapes the multi-socket literature reports:
//
//   * the NUMA cliff (dual-socket RISC-V evaluation, arXiv 2502.10320):
//     bandwidth-bound STREAM *loses* throughput when the working set
//     starts spanning the slow inter-socket link — full-machine triad
//     lands below the single-socket peak;
//   * cluster compute scaling (Monte Cimone v3, arXiv 2605.22831):
//     compute-bound EP keeps scaling across nodes, because a
//     cache-resident working set never touches the fabric.
//
// Both backends route cross-socket traffic through the same
// topo::cross_traffic charging helper, so what this bench really gates
// is the *mechanism* divergence: do the analytic composition and the
// interval simulation still blame the same saturated resource once the
// link model engages?
//
//   --gate       exit 1 unless (a) bottleneck agreement >= 80% across
//                all topology-machine points, (b) both dual-socket
//                machines show the NUMA cliff, and (c) Monte Cimone's EP
//                scales >= 1.5x from one node to four.  Pure model
//                arithmetic — no wall-clock assertions.
//   --out=FILE   where to write the JSON (default: BENCH_topo.json in
//                the current directory).
//   --jobs=N     worker threads for the batch evaluation.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"
#include "topo/topology.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

constexpr double kGateAgreement = 0.80;  ///< --gate threshold (ISSUE 10)
constexpr double kEpClusterSpeedup = 1.5;  ///< 1 node -> 4 nodes, at least

const Kernel kKernels[] = {
    Kernel::StreamTriad, Kernel::EP, Kernel::MG, Kernel::CG, Kernel::FT,
};

struct Point {
  std::string machine;
  Kernel kernel;
  int cores = 1;
  model::Prediction analytic;
  model::Prediction interval;

  [[nodiscard]] bool both_ran() const { return analytic.ran && interval.ran; }
  [[nodiscard]] bool agree() const {
    if (!analytic.ran || !interval.ran) return !analytic.ran && !interval.ran;
    return analytic.breakdown.dominant == interval.breakdown.dominant;
  }
  [[nodiscard]] double ratio() const {
    return analytic.seconds > 0.0 ? interval.seconds / analytic.seconds : 0.0;
  }
};

struct MachineSummary {
  int points = 0;
  int agreements = 0;
  int compared = 0;
  double log_ratio_sum = 0.0;

  void add(const Point& p) {
    ++points;
    if (p.agree()) ++agreements;
    if (!p.both_ran()) return;
    ++compared;
    log_ratio_sum += std::log(p.ratio());
  }
  [[nodiscard]] double agreement() const {
    return points > 0 ? static_cast<double>(agreements) / points : 1.0;
  }
  [[nodiscard]] double geomean_ratio() const {
    return compared > 0 ? std::exp(log_ratio_sum / compared) : 0.0;
  }
};

/// Fixed-precision number for the JSON artifact: deterministic across
/// platforms and runs (same convention as BENCH_calibration.json).
std::string jnum(double v, int decimals = 4) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string bottleneck_name(const model::Prediction& p) {
  return p.ran ? model::to_string(p.breakdown.dominant) : "dnr";
}

/// Analytic Mop/s of `kernel` at `cores` on `machine`, 0 when absent.
double mops_at(const std::vector<Point>& points, const std::string& machine,
               Kernel kernel, int cores) {
  for (const Point& p : points) {
    if (p.machine == machine && p.kernel == kernel && p.cores == cores) {
      return p.analytic.ran ? p.analytic.mops : 0.0;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  bool gate = false;
  std::string out_path = "BENCH_topo.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    }
  }

  // ---- Sweep: topology machines x kernels x power-of-two cores, both
  // backends adjacent so the evaluator's dispatch picks the mechanism.
  engine::RequestSet set;
  struct Label {
    std::string machine;
    Kernel kernel;
    int cores;
  };
  std::vector<Label> labels;
  for (const MachineId id : arch::topo_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    for (const Kernel k : kKernels) {
      const model::WorkloadSignature sig = model::signature(k, ProblemClass::C);
      for (const int cores : model::power_of_two_cores(m.cores)) {
        const model::RunConfig cfg = model::paper_run_config(m, k, cores);
        const std::string name = m.name + "/" + to_string(k) + ".C@" +
                                 std::to_string(cores);
        set.add({m, sig, cfg, name, engine::Backend::Analytic});
        set.add({m, sig, cfg, name, engine::Backend::Interval});
        labels.push_back({m.name, k, cores});
      }
    }
  }

  const auto results = engine::default_evaluator().evaluate(set);

  std::vector<Point> points;
  points.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Point p;
    p.machine = labels[i].machine;
    p.kernel = labels[i].kernel;
    p.cores = labels[i].cores;
    p.analytic = results[2 * i].prediction;
    p.interval = results[2 * i + 1].prediction;
    points.push_back(std::move(p));
  }

  // ---- Per-machine scaling tables -----------------------------------------
  std::map<std::string, MachineSummary> by_machine;
  MachineSummary overall;
  for (const Point& p : points) {
    by_machine[p.machine].add(p);
    overall.add(p);
  }

  for (const MachineId id : arch::topo_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    std::cout << m.name << "  (" << m.topology.domains.size()
              << " domains, " << m.cores << " cores)\n";
    report::Table t({"kernel", "cores", "domains", "analytic Mop/s",
                     "interval Mop/s", "bottleneck", "agree"});
    for (const Point& p : points) {
      if (p.machine != m.name) continue;
      t.add_row({to_string(p.kernel), std::to_string(p.cores),
                 std::to_string(topo::domains_spanned(m.topology, p.cores)),
                 p.analytic.ran ? report::fmt(p.analytic.mops, 0) : "DNR",
                 p.interval.ran ? report::fmt(p.interval.mops, 0) : "DNR",
                 bottleneck_name(p.analytic), p.agree() ? "yes" : "NO"});
    }
    std::cout << t.render() << "\n";
  }

  // ---- The two literature shapes ------------------------------------------
  // NUMA cliff (dual-socket evaluation): full-machine triad vs the
  // single-socket peak.  ratio < 1 reproduces the cliff.
  struct Shape {
    std::string name;
    double value = 0.0;
    bool ok = false;
  };
  std::vector<Shape> shapes;
  for (const char* dual : {"sg2042-dual", "sg2044-dual"}) {
    const arch::MachineModel& m = arch::machine(dual);
    const double half = mops_at(points, dual, Kernel::StreamTriad, m.cores / 2);
    const double full = mops_at(points, dual, Kernel::StreamTriad, m.cores);
    Shape s;
    s.name = std::string(dual) + ".numa_cliff_triad";
    s.value = half > 0.0 ? full / half : 0.0;
    s.ok = half > 0.0 && full > 0.0 && s.value < 1.0;
    shapes.push_back(s);
  }
  {
    const arch::MachineModel& mc = arch::machine("montecimone-v3");
    const int node_cores = mc.topology.domains.empty()
                               ? mc.cores
                               : mc.topology.domains[0].cores;
    const double one = mops_at(points, mc.name, Kernel::EP, node_cores);
    const double all = mops_at(points, mc.name, Kernel::EP, mc.cores);
    Shape s;
    s.name = "montecimone-v3.ep_cluster_speedup";
    s.value = one > 0.0 ? all / one : 0.0;
    s.ok = one > 0.0 && s.value >= kEpClusterSpeedup;
    shapes.push_back(s);
  }

  std::cout << "points: " << overall.points << "  bottleneck agreement: "
            << report::fmt(100.0 * overall.agreement(), 1)
            << "%  geomean t_int/t_ana: "
            << report::fmt(overall.geomean_ratio(), 2) << "\n";
  for (const Shape& s : shapes) {
    std::cout << "  shape " << s.name << " = " << report::fmt(s.value, 2)
              << (s.ok ? "  (reproduced)" : "  (NOT reproduced)") << "\n";
  }

  // ---- BENCH_topo.json -----------------------------------------------------
  {
    std::ostringstream js;
    js << "{\n  \"bench\": \"topo_scaling\",\n"
       << "  \"points\": " << overall.points << ",\n"
       << "  \"bottleneck_agreement\": " << jnum(overall.agreement()) << ",\n"
       << "  \"geomean_ratio\": " << jnum(overall.geomean_ratio()) << ",\n"
       << "  \"machines\": [\n";
    bool first = true;
    for (const MachineId id : arch::topo_machines()) {
      const std::string name = arch::name_of(id);
      const MachineSummary& s = by_machine[name];
      if (!first) js << ",\n";
      first = false;
      js << "    {\"machine\": \"" << name << "\", \"points\": " << s.points
         << ", \"agreement\": " << jnum(s.agreement())
         << ", \"geomean_ratio\": " << jnum(s.geomean_ratio()) << "}";
    }
    js << "\n  ],\n  \"shapes\": [\n";
    first = true;
    for (const Shape& s : shapes) {
      if (!first) js << ",\n";
      first = false;
      js << "    {\"shape\": \"" << s.name << "\", \"value\": "
         << jnum(s.value) << ", \"reproduced\": "
         << (s.ok ? "true" : "false") << "}";
    }
    js << "\n  ]\n}\n";

    std::ofstream out(out_path, std::ios::binary);
    if (!out.good()) {
      std::cerr << "topo_scaling: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << js.str();
    std::cout << "\nwrote " << out_path << "\n";
  }

  if (gate) {
    bool fail = false;
    if (overall.agreement() < kGateAgreement) {
      std::cerr << "GATE FAIL: bottleneck agreement "
                << report::fmt(100.0 * overall.agreement(), 1) << "% < "
                << report::fmt(100.0 * kGateAgreement, 0) << "%\n";
      fail = true;
    }
    for (const Shape& s : shapes) {
      if (!s.ok) {
        std::cerr << "GATE FAIL: shape " << s.name << " not reproduced ("
                  << report::fmt(s.value, 2) << ")\n";
        fail = true;
      }
    }
    if (fail) return 1;
    std::cout << "GATE OK: agreement "
              << report::fmt(100.0 * overall.agreement(), 1) << "% >= "
              << report::fmt(100.0 * kGateAgreement, 0)
              << "%, all " << shapes.size() << " scaling shapes reproduced\n";
  }
  return 0;
}
