// engine_throughput — the engine's correctness and speedup gate.
//
// Builds a large request set (every §5 HPC machine x every NPB kernel x
// the power-of-two core grid x {vectorised, scalar} compiler configs),
// evaluates it with a 1-thread pool and a multi-thread pool, and
//
//   1. always verifies the parallel results are bit-identical to the
//      serial ones, field by field: predict() is pure and the evaluator
//      writes each result into its own pre-allocated slot, so any
//      divergence is a determinism bug, not timing noise; and
//   2. measures the parallel speedup with memoisation disabled.  In
//      --gate mode (the ctest entry) a speedup below 3x fails the gate —
//      but only when the host has at least 4 hardware threads and the
//      build is unsanitized; smaller hosts and instrumented builds check
//      determinism only, since wall-clock there says nothing about the
//      pool.

#include <bit>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using Clock = std::chrono::steady_clock;

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Field-by-field bit identity — no epsilon anywhere: a serial and a
/// parallel evaluation of the same request must agree to the last ulp.
bool identical(const model::Prediction& a, const model::Prediction& b) {
  return a.ran == b.ran && a.dnr_reason == b.dnr_reason &&
         same_bits(a.seconds, b.seconds) && same_bits(a.mops, b.mops) &&
         same_bits(a.achieved_bw_gbs, b.achieved_bw_gbs) &&
         a.vector.vectorised == b.vector.vectorised &&
         same_bits(a.vector.unit_stride_speedup,
                   b.vector.unit_stride_speedup) &&
         same_bits(a.vector.gather_speedup, b.vector.gather_speedup) &&
         same_bits(a.vector.blended_speedup, b.vector.blended_speedup) &&
         same_bits(a.breakdown.compute_s, b.breakdown.compute_s) &&
         same_bits(a.breakdown.stream_s, b.breakdown.stream_s) &&
         same_bits(a.breakdown.latency_s, b.breakdown.latency_s) &&
         same_bits(a.breakdown.sync_s, b.breakdown.sync_s) &&
         same_bits(a.breakdown.imbalance, b.breakdown.imbalance) &&
         a.breakdown.dominant == b.breakdown.dominant;
}

engine::RequestSet build_set() {
  engine::RequestSet set;
  for (arch::MachineId id : arch::hpc_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    for (model::Kernel k : model::npb_all()) {
      model::RunConfig cfg = model::paper_run_config(m, k, /*cores=*/1);
      set.add_scaling(m, k, model::ProblemClass::C, cfg, arch::name_of(id));
      cfg.compiler.vectorise = !cfg.compiler.vectorise;
      set.add_scaling(m, k, model::ProblemClass::C, cfg,
                      std::string(arch::name_of(id)) + "-flipvec");
    }
  }
  return set;
}

engine::BatchEvaluator make_evaluator(int jobs) {
  engine::BatchEvaluator::Options opts;
  opts.jobs = jobs;
  opts.cache_capacity = 0;  // measure evaluation, never memoisation
  return engine::BatchEvaluator(opts);
}

double timed_seconds(engine::BatchEvaluator& ev, const engine::RequestSet& set,
                     int reps) {
  double sink = 0.0;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    sink += ev.evaluate(set).back().prediction.mops;
  }
  const auto t1 = Clock::now();
  if (sink < 0.0) std::cerr << "";  // keep the evaluations observable
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  const engine::RequestSet set = build_set();
  const unsigned hw = std::thread::hardware_concurrency();

  // --- determinism: pool of 4 vs serial, always checked ---------------------
  engine::BatchEvaluator serial = make_evaluator(1);
  engine::BatchEvaluator pooled = make_evaluator(4);
  const auto base = serial.evaluate(set);
  const auto par = pooled.evaluate(set);
  std::size_t divergent = set.size();  // sentinel: none
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (!identical(base[i].prediction, par[i].prediction) ||
        base[i].tag != par[i].tag || par[i].index != i) {
      divergent = i;
      break;
    }
  }
  if (divergent != set.size()) {
    std::cerr << "FAIL: serial and 4-thread results diverge at request "
              << divergent << " (" << base[divergent].tag << ")\n";
    return 1;
  }
  std::cout << set.size() << " requests: serial and 4-thread pool results "
               "are bit-identical\n";

  // --- throughput -----------------------------------------------------------
  // Calibrate repetitions so the serial run is long enough to time.
  const double once = timed_seconds(serial, set, 1);
  const int reps = std::max(3, static_cast<int>(0.3 / std::max(once, 1e-6)));
  const double t_serial = timed_seconds(serial, set, reps);

  report::Table t({"jobs", "seconds", "requests/s", "speedup"});
  const double total =
      static_cast<double>(set.size()) * static_cast<double>(reps);
  t.add_row({"1", report::fmt(t_serial, 3), report::fmt(total / t_serial, 0),
             "1.00x"});
  double best_speedup = 1.0;
  for (unsigned jobs = 2; jobs <= std::max(4u, hw); jobs *= 2) {
    engine::BatchEvaluator ev = make_evaluator(static_cast<int>(jobs));
    const double secs = timed_seconds(ev, set, reps);
    const double speedup = t_serial / secs;
    best_speedup = std::max(best_speedup, speedup);
    t.add_row({std::to_string(jobs), report::fmt(secs, 3),
               report::fmt(total / secs, 0), report::fmt(speedup, 2) + "x"});
  }
  std::cout << "\n" << t.render() << "\nhardware threads: " << hw << "\n";

  if (!gate) return 0;
  if (kSanitized) {
    std::cout << "gate: sanitized build — determinism checked, speedup "
                 "threshold skipped\n";
    return 0;
  }
  if (hw < 4) {
    std::cout << "gate: " << hw << " hardware thread(s) — determinism "
                 "checked, speedup threshold needs >= 4\n";
    return 0;
  }
  if (best_speedup < 3.0) {
    std::cerr << "FAIL: best speedup " << report::fmt(best_speedup, 2)
              << "x is below the 3x acceptance bar\n";
    return 1;
  }
  std::cout << "gate: best speedup " << report::fmt(best_speedup, 2)
            << "x >= 3x — PASSED\n";
  return 0;
}
