// Sensitivity report — makes the paper's causal claims quantitative: for
// each kernel at 64 SG2044 cores, which machine parameter does its
// performance actually depend on?  Elasticity = d log(Mop/s) / d log(p).
//
// The paper's narrative predicts the diagonal of this table: EP -> clock,
// MG -> bandwidth, IS -> latency/controllers, CG -> a mix.

#include <cmath>
#include <iostream>

#include "arch/registry.hpp"

#include "model/sensitivity.hpp"
#include "model/signatures.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::Kernel;
using model::ProblemClass;

int main() {
  std::cout << "Parameter elasticities on the SG2044, class C\n"
               "(d log Mop/s / d log parameter; blank if |e| < 0.02)\n\n";
  const auto& m = arch::machine(arch::MachineId::Sg2044);

  for (int cores : {1, 64}) {
    std::cout << "--- " << cores << " core(s) ---\n";
    std::vector<std::string> header = {"parameter"};
    for (Kernel k : model::npb_kernels()) header.push_back(to_string(k));
    report::Table t(header);
    for (const std::string& p : model::sensitivity_parameters()) {
      std::vector<std::string> row = {p};
      for (Kernel k : model::npb_kernels()) {
        model::RunConfig cfg;
        cfg.cores = cores;
        cfg.compiler = model::paper_default_compiler(m);
        if (k == Kernel::CG) cfg.compiler.vectorise = false;
        const auto sens =
            model::sensitivities(m, model::signature(k, ProblemClass::C), cfg);
        std::string cell;
        for (const auto& s : sens) {
          if (s.parameter == p && std::fabs(s.elasticity) >= 0.02) {
            cell = report::fmt(s.elasticity, 2);
          }
        }
        row.push_back(cell);
      }
      t.add_row(row);
    }
    report::maybe_write_csv("sensitivity_report", t);
  std::cout << t.render() << "\n";
  }
  std::cout << "Reading: EP rides the clock (e~1) at any scale; at 64 cores "
               "MG flips to\nstream_efficiency, IS to idle_latency (negative) "
               "and MLP — the paper's §5\nnarrative, derived rather than "
               "asserted.\n";
  return 0;
}
