// Figure 2 reproduction — IS benchmark OpenMP scaling across the five §5
// machines (class C, paper compiler setup per machine).

#include "fig_common.hpp"

int main() {
  rvhpc::bench::print_scaling_figure(
      "Figure 2 — IS benchmark performance (Mop/s, higher is better)",
      rvhpc::model::Kernel::IS,
      "Shape targets: single-core EPYC ~2x and Skylake ~3x the SG2044; the\n"
      "SG2042 plateaus at 16 cores while the SG2044 keeps scaling (4.91x at\n"
      "64 cores), following the AMD curve at lower absolute level.");
}
