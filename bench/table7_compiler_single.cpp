// Table 7 reproduction — single-core class C on the SG2044 with
// GCC 12.3.1 (openEuler default), GCC 15.2 with vectorisation, and
// GCC 15.2 without: the compiler/vectorisation ablation of §6.

#include <iostream>

#include "model/paper_reference.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::CompilerId;
using model::ProblemClass;

namespace {

double run(model::Kernel k, int cores, CompilerId id, bool vec) {
  model::RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = {id, vec};
  return predict(arch::machine(arch::MachineId::Sg2044),
                 model::signature(k, ProblemClass::C), cfg)
      .mops;
}

}  // namespace

int main() {
  std::cout << "Table 7 — SG2044 single core, class C, compiler ablation "
               "(Mop/s)\nEach cell: paper | model\n\n";
  report::Table t({"Benchmark", "GCC 12.3.1", "GCC 15.2 +vector",
                   "GCC 15.2 no vector"});
  for (const auto& row : model::paper::table7_single_core()) {
    t.add_row(
        {to_string(row.kernel),
         report::fmt(row.gcc12, 2) + " | " +
             report::fmt(run(row.kernel, 1, CompilerId::Gcc12_3_1, true), 2),
         report::fmt(row.gcc15_vector, 2) + " | " +
             report::fmt(run(row.kernel, 1, CompilerId::Gcc15_2, true), 2),
         report::fmt(row.gcc15_scalar, 2) + " | " +
             report::fmt(run(row.kernel, 1, CompilerId::Gcc15_2, false), 2)});
  }
  report::maybe_write_csv("table7_compiler_single", t);
  std::cout << t.render()
            << "\nShape targets: GCC 15.2 always >= 12.3.1 (which cannot "
               "vectorise for RVV 1.0\nat all); vectorisation helps mildly "
               "everywhere except CG, where the gathered\nSpMV makes the "
               "vectorised build ~3x slower (the §6 pathology).\n";
  return 0;
}
