// Table 7 reproduction — single-core class C on the SG2044 with
// GCC 12.3.1 (openEuler default), GCC 15.2 with vectorisation, and
// GCC 15.2 without: the compiler/vectorisation ablation of §6.
// Three compiler configurations per kernel, as one engine batch.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/paper_reference.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::CompilerId;
using model::ProblemClass;

namespace {

model::RunConfig ablation_config(int cores, CompilerId id, bool vec) {
  model::RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = {id, vec};
  return cfg;
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "Table 7 — SG2044 single core, class C, compiler ablation "
               "(Mop/s)\nEach cell: paper | model\n\n";
  const auto rows = model::paper::table7_single_core();
  const auto& m = arch::machine(arch::MachineId::Sg2044);

  // Three requests per paper row, in column order.
  engine::RequestSet set;
  for (const auto& row : rows) {
    const auto sig = model::signature(row.kernel, ProblemClass::C);
    set.add(m, sig, ablation_config(1, CompilerId::Gcc12_3_1, true));
    set.add(m, sig, ablation_config(1, CompilerId::Gcc15_2, true));
    set.add(m, sig, ablation_config(1, CompilerId::Gcc15_2, false));
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  report::Table t({"Benchmark", "GCC 12.3.1", "GCC 15.2 +vector",
                   "GCC 15.2 no vector"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    t.add_row({to_string(row.kernel),
               report::fmt(row.gcc12, 2) + " | " +
                   report::fmt(results[3 * i].prediction.mops, 2),
               report::fmt(row.gcc15_vector, 2) + " | " +
                   report::fmt(results[3 * i + 1].prediction.mops, 2),
               report::fmt(row.gcc15_scalar, 2) + " | " +
                   report::fmt(results[3 * i + 2].prediction.mops, 2)});
  }
  report::maybe_write_csv("table7_compiler_single", t);
  std::cout << t.render()
            << "\nShape targets: GCC 15.2 always >= 12.3.1 (which cannot "
               "vectorise for RVV 1.0\nat all); vectorisation helps mildly "
               "everywhere except CG, where the gathered\nSpMV makes the "
               "vectorised build ~3x slower (the §6 pathology).\n";
  return 0;
}
