// obs_overhead — bounds the cost of the observability layer on predict().
//
// The obs contract is that instrumentation is zero-cost when no session is
// active: every site loads one relaxed atomic and bails.  This bench
// measures three things on the SG2044/CG.C workload the acceptance
// criteria use:
//
//   1. predict() median latency with tracing and metrics fully off,
//   2. the null-sink fast path itself (a ScopedSpan + ScopedTimer +
//      session()/metrics_enabled() checks, i.e. the per-predict cost the
//      instrumentation adds when off), measured in isolation, and
//   3. predict() median latency with a live session + metrics, for scale.
//
// In --gate mode (the ctest entry) it fails when the measured null-path
// cost exceeds 5% of the tracing-off predict() latency — the regression
// guard for anyone adding instrumentation to the hot path.
//
// rvhpc-lint: disable=B001 — this bench times raw predict() calls by
// design; the engine's pool/cache layers are exactly what it must exclude.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "arch/registry.hpp"
#include "model/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

using namespace rvhpc;

namespace {

using Clock = std::chrono::steady_clock;

// Sanitizers tax the short atomic-load/RAII null path far more than the
// arithmetic-heavy predict() body, so the production 5% budget is not
// meaningful under ASan/TSan instrumented builds — keep the gate as a
// smoke check there with a wider budget.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr double kBudgetPct = kSanitized ? 20.0 : 5.0;

/// Keeps `v` alive past the optimiser without writing it anywhere.
template <typename T>
void keep(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

/// Median of `runs` timings of `batch` iterations of `fn`, in seconds
/// per iteration.
template <typename Fn>
double time_per_call(int runs, int batch, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < batch; ++i) fn();
    const auto t1 = Clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count() / batch);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  const int runs = gate ? 9 : 15;
  const int batch = gate ? 500 : 2000;

  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  const model::WorkloadSignature sig =
      model::signature(model::Kernel::CG, model::ProblemClass::C);
  model::RunConfig cfg;
  cfg.cores = 64;
  cfg.compiler = model::paper_default_compiler(m);
  cfg.compiler.vectorise = false;  // the paper's CG setup on the SG2044

  obs::set_session(nullptr);
  obs::set_metrics_enabled(false);

  // Warm up caches and the branch predictor before any measurement.
  for (int i = 0; i < batch; ++i) keep(model::predict(m, sig, cfg));

  const double t_off = time_per_call(runs, batch, [&] {
    keep(model::predict(m, sig, cfg));
  });

  // The exact null-sink sequence one predict() executes when obs is off:
  // the span, the timer lookup, and the two counter guards.
  const double t_null_path = time_per_call(runs, batch * 50, [&] {
    obs::ScopedTimer timer(obs::timer_target("rvhpc_predict_wall_seconds"));
    obs::ScopedSpan span("model", "predict");
    keep(obs::session());
    keep(obs::metrics_enabled());
  });

  double t_on = 0.0;
  std::size_t events = 0;
  {
    obs::SessionScope scope;
    t_on = time_per_call(runs, batch, [&] {
      keep(model::predict(m, sig, cfg));
    });
    events = scope.session().event_count();
  }

  const double overhead_pct = t_off > 0.0 ? 100.0 * t_null_path / t_off : 0.0;

  std::cout << "obs overhead on predict(sg2044, CG.C, 64 cores)\n\n";
  report::Table t({"configuration", "per call", "vs off"});
  t.add_row({"tracing+metrics off", report::fmt(t_off * 1e6, 3) + " us", "1.00x"});
  t.add_row({"null-sink fast path alone", report::fmt(t_null_path * 1e9, 1) + " ns",
             report::fmt(overhead_pct, 2) + "%"});
  t.add_row({"session + metrics active", report::fmt(t_on * 1e6, 3) + " us",
             report::fmt_ratio(t_on, t_off)});
  std::cout << t.render() << "\n"
            << "events recorded while active: " << events << "\n"
            << "gate: null-sink path must stay under "
            << report::fmt(kBudgetPct, 0) << "% of predict()"
            << (kSanitized ? " (sanitized build)" : "") << " — "
            << report::fmt(overhead_pct, 2) << "%\n";

  if (overhead_pct > kBudgetPct) {
    std::cerr << "FAIL: tracing-off instrumentation overhead "
              << report::fmt(overhead_pct, 2) << "% exceeds the "
              << report::fmt(kBudgetPct, 0) << "% budget\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}
