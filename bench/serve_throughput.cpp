// serve_throughput — acceptance gate for the sharded async front end.
//
// Drives a real net::Server on an ephemeral loopback port with raw
// blocking client sockets and checks the two properties ISSUE 8's
// refactor exists to deliver:
//
//   1. ordering gate (always enforced in --gate mode): one connection
//      streams a batch of slow uncached interval-backend requests while a
//      second connection streams cached hits.  Every cached response must
//      arrive before the slow batch's last response — with the old
//      blocking loop the cached peer sat behind the compute, so this
//      assertion is the refactor's observable contract; and
//   2. speedup gate (hosts with >= 4 hardware threads, unsanitized
//      builds only): an uncached 4-connection workload on shards=2 /
//      jobs=4 must beat shards=1 / jobs=1 by >= 1.5x, best of 3 runs.
//
// A machine-readable summary (requests/s, p50/p99 end-to-end latency
// from rvhpc_serve_request_latency_seconds) is written as
// BENCH_serve.json.
//
// Flags:
//   --gate       exit non-zero when a gate fails (the ctest entry)
//   --out=FILE   where to write the JSON (default: BENCH_serve.json)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"
#include "serve/service.hpp"

using namespace rvhpc;
using Clock = std::chrono::steady_clock;

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Service + Server on an ephemeral loopback port, event loop on a
/// background thread.  Mirrors the tests' LoopbackServer.
struct BenchServer {
  serve::Service service;
  net::Server server;
  std::ostringstream log;
  std::thread loop;

  BenchServer(serve::Service::Options sopts, net::ServerOptions nopts)
      : service(std::move(sopts)), server(service, nopts) {
    server.open(log);
    loop = std::thread([this] { server.run(log); });
  }

  ~BenchServer() {
    server.stop();
    if (loop.joinable()) loop.join();
  }
};

/// Blocking loopback client with a receive timeout so a regression fails
/// instead of hanging the bench.
struct Client {
  int fd = -1;
  std::string buffered;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval tv{30, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] bool connected() const { return fd >= 0; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One response line (without '\n'); empty on EOF/timeout.
  std::string recv_line() {
    while (true) {
      const std::size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffered.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

/// A slow request: the interval backend walks the whole simulated
/// timeline, so CG class C costs ~2 ms of compute per call — three
/// orders of magnitude above a cached hit.
std::string slow_request(const std::string& id, const std::string& kernel,
                         int cores) {
  return "{\"id\": \"" + id + "\", \"machine\": \"sg2044\", \"kernel\": \"" +
         kernel + "\", \"class\": \"C\", \"cores\": " + std::to_string(cores) +
         ", \"backend\": \"interval\"}\n";
}

/// A cheap analytic request; cycling a small core grid keeps every send
/// after the warm-up a pure cache hit.
std::string cached_request(const std::string& id, int cores) {
  return "{\"id\": \"" + id +
         "\", \"machine\": \"sg2044\", \"kernel\": \"MG\", \"cores\": " +
         std::to_string(cores) + "}\n";
}

struct OrderingResult {
  bool ok = false;
  std::size_t cached = 0;           ///< cached responses received
  std::size_t slow = 0;             ///< slow responses received
  std::size_t cached_after = 0;     ///< cached arrivals after the last slow one
  double slow_window_ms = 0.0;      ///< first send -> last slow response
  double cached_window_ms = 0.0;    ///< first send -> last cached response
};

/// Conn A streams `kSlow` uncached interval requests; conn B then streams
/// `kCached` pre-warmed hits.  Two reader threads timestamp every
/// response line; the gate is that B's last arrival precedes A's.
OrderingResult run_ordering_phase() {
  constexpr int kSlow = 24;
  constexpr int kCached = 64;
  OrderingResult r;

  serve::Service::Options sopts;
  sopts.jobs = 2;
  net::ServerOptions nopts;
  nopts.shards = 2;
  BenchServer s(sopts, nopts);

  // Warm the cache so every request conn B sends is a hit.
  {
    Client warm(s.server.port());
    if (!warm.connected()) return r;
    for (int i = 0; i < 7; ++i) {
      if (!warm.send_all(cached_request("warm-" + std::to_string(i), 1 << i)))
        return r;
    }
    for (int i = 0; i < 7; ++i) {
      if (warm.recv_line().empty()) return r;
    }
  }

  Client slow_conn(s.server.port());
  Client hit_conn(s.server.port());
  if (!slow_conn.connected() || !hit_conn.connected()) return r;

  std::string slow_batch;
  for (int i = 0; i < kSlow; ++i) {
    // Distinct cores -> distinct memo keys, so every request computes.
    slow_batch += slow_request("slow-" + std::to_string(i), "CG", 33 + i);
  }
  std::string hit_batch;
  for (int i = 0; i < kCached; ++i) {
    hit_batch += cached_request("hit-" + std::to_string(i), 1 << (i % 7));
  }

  const auto t0 = Clock::now();
  if (!slow_conn.send_all(slow_batch) || !hit_conn.send_all(hit_batch))
    return r;

  Clock::time_point last_slow = t0;
  Clock::time_point last_cached = t0;
  std::vector<Clock::time_point> cached_times;
  cached_times.reserve(kCached);
  std::thread slow_reader([&] {
    for (int i = 0; i < kSlow; ++i) {
      if (slow_conn.recv_line().empty()) return;
      last_slow = Clock::now();
      ++r.slow;
    }
  });
  for (int i = 0; i < kCached; ++i) {
    if (hit_conn.recv_line().empty()) break;
    cached_times.push_back(Clock::now());
    ++r.cached;
  }
  if (!cached_times.empty()) last_cached = cached_times.back();
  slow_reader.join();

  for (const auto& t : cached_times) {
    if (t > last_slow) ++r.cached_after;
  }
  r.slow_window_ms = std::chrono::duration<double, std::milli>(last_slow - t0).count();
  r.cached_window_ms =
      std::chrono::duration<double, std::milli>(last_cached - t0).count();
  r.ok = r.slow == kSlow && r.cached == kCached && r.cached_after == 0;
  return r;
}

/// Wall time for `kClients` connections x `kPerClient` distinct uncached
/// interval requests against a fresh server (cold cache every run).
double timed_run_seconds(std::size_t shards, int jobs) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 24;

  serve::Service::Options sopts;
  sopts.jobs = jobs;
  net::ServerOptions nopts;
  nopts.shards = shards;
  BenchServer s(sopts, nopts);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  const auto t0 = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client cl(s.server.port());
      if (!cl.connected()) {
        ++failures;
        return;
      }
      std::string batch;
      for (int i = 0; i < kPerClient; ++i) {
        const int g = c * kPerClient + i;
        batch += slow_request("r-" + std::to_string(g), g < 48 ? "CG" : "LU",
                              1 + g % 48);
      }
      if (!cl.send_all(batch)) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        if (cl.recv_line().empty()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return failures.load() == 0 ? secs : -1.0;
}

double best_of(int runs, std::size_t shards, int jobs) {
  double best = -1.0;
  for (int i = 0; i < runs; ++i) {
    const double t = timed_run_seconds(shards, jobs);
    if (t < 0.0) return -1.0;
    if (best < 0.0 || t < best) best = t;
  }
  return best;
}

std::string fmt_json(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    } else {
      std::cerr << "serve_throughput: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  obs::set_metrics_enabled(true);
  const unsigned hw = std::thread::hardware_concurrency();

  // --- ordering: cached hits must overtake slow compute ---------------------
  const OrderingResult ord = run_ordering_phase();
  std::cout << "ordering: " << ord.cached << " cached response(s) in "
            << fmt_json(ord.cached_window_ms, 1) << " ms, " << ord.slow
            << " slow interval response(s) in "
            << fmt_json(ord.slow_window_ms, 1) << " ms, " << ord.cached_after
            << " cached arrival(s) after the last slow one\n";
  if (!ord.ok) {
    std::cerr << "FAIL: cached responses did not all precede the slow "
                 "batch's completion — the front end is blocking I/O on "
                 "compute\n";
    if (gate) return 1;
  }

  // --- throughput: sharded vs single-threaded front end ---------------------
  constexpr int kRuns = 3;
  constexpr std::size_t kRequests = 4 * 24;
  const double t_base = best_of(kRuns, /*shards=*/1, /*jobs=*/1);
  const double t_shard = best_of(kRuns, /*shards=*/2, /*jobs=*/4);
  if (t_base < 0.0 || t_shard < 0.0) {
    std::cerr << "FAIL: a timed run lost a connection or a response\n";
    return 1;
  }
  const double speedup = t_base / t_shard;

  // Dedicated measurement run for the latency summary: reset the
  // end-to-end histogram so the percentiles describe exactly one
  // shards=2 / jobs=4 workload.
  obs::Histogram& lat = obs::Registry::global().histogram(
      "rvhpc_serve_request_latency_seconds");
  lat.reset();
  const double t_meas = timed_run_seconds(/*shards=*/2, /*jobs=*/4);
  if (t_meas < 0.0) {
    std::cerr << "FAIL: the measurement run lost a connection\n";
    return 1;
  }
  const double rps = static_cast<double>(kRequests) / t_meas;
  const double p50_us = lat.percentile(50.0) * 1e6;
  const double p99_us = lat.percentile(99.0) * 1e6;

  report::Table t({"config", "seconds", "requests/s", "speedup"});
  t.add_row({"shards=1 jobs=1", report::fmt(t_base, 3),
             report::fmt(static_cast<double>(kRequests) / t_base, 0), "1.00x"});
  t.add_row({"shards=2 jobs=4", report::fmt(t_shard, 3),
             report::fmt(static_cast<double>(kRequests) / t_shard, 0),
             report::fmt(speedup, 2) + "x"});
  std::cout << "\n"
            << t.render() << "\np50 " << report::fmt(p50_us, 0) << " us, p99 "
            << report::fmt(p99_us, 0) << " us end to end ("
            << static_cast<std::uint64_t>(lat.count())
            << " requests)\nhardware threads: " << hw << "\n";

  // --- BENCH_serve.json -----------------------------------------------------
  {
    std::ofstream out(out_path, std::ios::binary);
    out << "{\n"
        << "  \"bench\": \"serve_throughput\",\n"
        << "  \"shards\": 2,\n"
        << "  \"jobs\": 4,\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"sanitized\": " << (kSanitized ? "true" : "false") << ",\n"
        << "  \"ordering\": {\n"
        << "    \"cached_responses\": " << ord.cached << ",\n"
        << "    \"slow_responses\": " << ord.slow << ",\n"
        << "    \"cached_after_last_slow\": " << ord.cached_after << ",\n"
        << "    \"cached_window_ms\": " << fmt_json(ord.cached_window_ms, 3)
        << ",\n"
        << "    \"slow_window_ms\": " << fmt_json(ord.slow_window_ms, 3)
        << ",\n"
        << "    \"passed\": " << (ord.ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"throughput\": {\n"
        << "    \"requests\": " << kRequests << ",\n"
        << "    \"baseline_seconds\": " << fmt_json(t_base, 6) << ",\n"
        << "    \"sharded_seconds\": " << fmt_json(t_shard, 6) << ",\n"
        << "    \"speedup\": " << fmt_json(speedup, 3) << ",\n"
        << "    \"requests_per_s\": " << fmt_json(rps, 1) << "\n"
        << "  },\n"
        << "  \"latency\": {\n"
        << "    \"p50_us\": " << fmt_json(p50_us, 1) << ",\n"
        << "    \"p99_us\": " << fmt_json(p99_us, 1) << "\n"
        << "  }\n"
        << "}\n";
    if (!out) {
      std::cerr << "serve_throughput: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (!gate) return 0;
  if (kSanitized) {
    std::cout << "gate: sanitized build — ordering checked, speedup "
                 "threshold skipped\n";
    return 0;
  }
  if (hw < 4) {
    std::cout << "gate: " << hw << " hardware thread(s) — ordering checked, "
                 "speedup threshold needs >= 4\n";
    return 0;
  }
  if (speedup < 1.5) {
    std::cerr << "FAIL: sharded speedup " << report::fmt(speedup, 2)
              << "x is below the 1.5x acceptance bar\n";
    return 1;
  }
  std::cout << "gate: ordering held and sharded speedup "
            << report::fmt(speedup, 2) << "x >= 1.5x — PASSED\n";
  return 0;
}
