// Microbenchmarks (google-benchmark) of the library's own machinery:
// predictor evaluation cost, engine batch throughput, cache-simulator
// throughput, DRAM model, NPB class-S kernel rates and STREAM on the
// host.  These measure this repository's code, not the paper's machines.
//
// rvhpc-lint: disable=B001 — BM_PredictSingleCall measures the raw
// predict() hot path on purpose; routing it through the engine would
// fold pool and cache overhead into the number it exists to isolate.

#include <benchmark/benchmark.h>

#include "arch/registry.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "memsim/cache.hpp"
#include "memsim/profile.hpp"
#include "memsim/trace.hpp"
#include "model/sweep.hpp"
#include "npb/ep.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "stream/stream.hpp"

namespace {

using namespace rvhpc;

void BM_PredictSingleCall(benchmark::State& state) {
  const auto& m = arch::machine(arch::MachineId::Sg2044);
  const auto sig = model::signature(model::Kernel::CG, model::ProblemClass::C);
  model::RunConfig cfg;
  cfg.cores = 64;
  cfg.compiler = {model::CompilerId::Gcc15_2, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict(m, sig, cfg).mops);
  }
}
BENCHMARK(BM_PredictSingleCall);

void BM_EngineBatchEvaluate(benchmark::State& state) {
  // All five HPC machines' MG scaling curves in one RequestSet; the cache
  // is disabled so every iteration measures real evaluation work at the
  // requested pool size.
  engine::RequestSet set;
  for (arch::MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    set.add_scaling(m, model::Kernel::MG, model::ProblemClass::C,
                    model::paper_run_config(m, model::Kernel::MG, 1));
  }
  engine::BatchEvaluator::Options opts;
  opts.jobs = static_cast<int>(state.range(0));
  opts.cache_capacity = 0;
  engine::BatchEvaluator evaluator(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.evaluate(set).back().prediction.mops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.size()));
}
BENCHMARK(BM_EngineBatchEvaluate)->Arg(1)->Arg(2)->Arg(4);

void BM_FullScalingSweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto s = model::scale_cores(arch::MachineId::Sg2044,
                                      model::Kernel::MG, model::ProblemClass::C);
    benchmark::DoNotOptimize(s.points.back().prediction.mops);
  }
}
BENCHMARK(BM_FullScalingSweep);

void BM_CacheAccess(benchmark::State& state) {
  memsim::Cache cache(1 << 20, 16, 64);
  memsim::XorShift rng(42);
  std::uint64_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 22), false).hit);
    ++total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_CacheAccess);

void BM_TraceGeneration(benchmark::State& state) {
  auto gen = memsim::kernel_trace(model::Kernel::MG, 1.0, 0, 7);
  std::uint64_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen->next().addr);
    ++total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_TraceGeneration);

void BM_StallSimulation(benchmark::State& state) {
  const auto& xeon = arch::machine(arch::MachineId::Xeon8170);
  memsim::ProfileConfig cfg;
  cfg.cores = 4;
  cfg.ops_per_core = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::simulate_stalls(xeon, model::Kernel::CG, cfg).total_cycles);
  }
}
BENCHMARK(BM_StallSimulation);

void BM_NpbIsClassS(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(npb::is::run(npb::ProblemClass::S, 2).mops);
  }
}
BENCHMARK(BM_NpbIsClassS);

void BM_NpbEpClassS(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(npb::ep::run(npb::ProblemClass::S, 2).mops);
  }
}
BENCHMARK(BM_NpbEpClassS);

void BM_NpbMgClassS(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(npb::mg::run(npb::ProblemClass::S, 2).mops);
  }
}
BENCHMARK(BM_NpbMgClassS);

void BM_HostStreamTriad(benchmark::State& state) {
  stream::StreamConfig cfg;
  cfg.elements = 4'000'000;
  cfg.repetitions = 2;
  cfg.threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream::run(cfg).back().best_gbs);
  }
}
BENCHMARK(BM_HostStreamTriad);

}  // namespace

BENCHMARK_MAIN();
