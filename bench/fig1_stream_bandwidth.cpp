// Figure 1 reproduction — STREAM copy bandwidth versus core count on the
// SG2044 and SG2042.  The model regenerates the paper's curves; pass
// --host to additionally run the real STREAM code on this machine, and
// --trace=<file> to capture both sweeps as a Chrome trace with per-point
// attribution records.

#include <iostream>
#include <optional>
#include <string>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "model/sweep.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "stream/stream.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::optional<std::string> trace_path;
  bool host = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace=").size());
    } else if (arg == "--host") {
      host = true;
    }
  }
  std::optional<obs::SessionScope> scope;
  if (trace_path) scope.emplace();

  std::cout << "Figure 1 — STREAM copy memory bandwidth vs cores (GB/s)\n\n";
  const auto s44 = model::scale_cores(MachineId::Sg2044, Kernel::StreamCopy,
                                      ProblemClass::C);
  const auto s42 = model::scale_cores(MachineId::Sg2042, Kernel::StreamCopy,
                                      ProblemClass::C);

  report::Table t({"cores", "SG2044 GB/s", "SG2042 GB/s", "ratio"});
  report::AsciiChart chart("Modelled STREAM copy bandwidth", "cores", "GB/s");
  report::Series a{"sg2044", '4', {}}, b{"sg2042", '2', {}};
  for (std::size_t i = 0; i < s44.points.size(); ++i) {
    const double bw44 = s44.points[i].prediction.achieved_bw_gbs;
    const double bw42 = s42.points[i].prediction.achieved_bw_gbs;
    t.add_row({std::to_string(s44.points[i].cores), report::fmt(bw44, 1),
               report::fmt(bw42, 1), report::fmt_ratio(bw44, bw42)});
    a.points.emplace_back(s44.points[i].cores, bw44);
    b.points.emplace_back(s42.points[i].cores, bw42);
  }
  chart.add_series(a);
  chart.add_series(b);
  report::maybe_write_csv("fig1_stream_bandwidth", t);
  std::cout << t.render() << "\n" << chart.render();
  std::cout << "\nShape targets (paper prose): bandwidth comparable up to 8 "
               "cores; the SG2042\nplateaus beyond that while the SG2044 "
               "keeps scaling to >3x at 64 cores,\nmatching SOPHGO's [10] "
               "claim.\n";

  if (scope) {
    obs::write_file(*trace_path, obs::chrome_trace_json(scope->session()));
    std::cerr << "trace written to " << *trace_path << " ("
              << scope->session().event_count() << " records)\n";
    scope.reset();
  }

  if (host) {
    std::cout << "\nHost STREAM (this machine, for reference):\n";
    stream::StreamConfig cfg;
    cfg.elements = 8'000'000;
    cfg.repetitions = 5;
    cfg.threads = 2;
    for (const auto& r : stream::run(cfg)) {
      std::cout << "  " << to_string(r.kernel) << ": "
                << report::fmt(r.best_gbs, 2) << " GB/s"
                << (r.verified ? "" : " (VERIFICATION FAILED)") << "\n";
    }
  }
  return 0;
}
