// §5.2 ablation reproduction — OMP_PROC_BIND / OMP_PLACES exploration on
// the SG2044 (MG, class C): the paper found that leaving threads unbound
// (or OMP_PROC_BIND=false) was consistently fastest, against the usual
// expectation that pinning helps memory-bound codes.  Also shows the EPYC
// for contrast, where dense pinning starves NUMA controllers.

#include <iostream>

#include "arch/registry.hpp"
#include "engine/batch.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::Kernel;
using model::ProblemClass;
using model::ThreadPlacement;

namespace {

double mg(arch::MachineId id, int cores, ThreadPlacement placement) {
  model::RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = model::paper_default_compiler(arch::machine(id));
  cfg.placement = placement;
  return engine::default_evaluator()
      .evaluate_one(arch::machine(id),
                    model::signature(Kernel::MG, ProblemClass::C), cfg)
      .mops;
}

}  // namespace

int main() {
  std::cout << "§5.2 ablation — thread placement for MG (class C), Mop/s\n\n";
  report::Table t({"machine", "cores", "unbound (OS)", "spread pin",
                   "close pin", "best"});
  for (auto [id, cores] :
       {std::pair{arch::MachineId::Sg2044, 16}, {arch::MachineId::Sg2044, 64},
        {arch::MachineId::Epyc7742, 16}, {arch::MachineId::Epyc7742, 64}}) {
    const double os = mg(id, cores, ThreadPlacement::OsDefault);
    const double spread = mg(id, cores, ThreadPlacement::Spread);
    const double close = mg(id, cores, ThreadPlacement::Close);
    const char* best = os >= spread && os >= close ? "unbound"
                       : spread >= close           ? "spread"
                                                   : "close";
    t.add_row({arch::name_of(id), std::to_string(cores), report::fmt(os, 1),
               report::fmt(spread, 1), report::fmt(close, 1), best});
  }
  std::cout << t.render()
            << "\nShape targets: on the single-NUMA SG2044 the unbound/OS "
               "policy wins (the\npaper's surprising observation); on the "
               "four-region EPYC, packing 16 threads\nclose cuts bandwidth "
               "hard while spreading recovers it.\n";
  return 0;
}
