// Table 2 reproduction — single-core class B comparison across RISC-V
// machines (SG2044 vs six commodity boards), Mop/s with the percentage of
// the C920v2's performance in parentheses, exactly the paper's layout.
// The whole machines-by-kernels grid is one engine batch.

#include <iostream>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::cout << "Table 2 — single-core class B, Mop/s (percentage of the "
               "SG2044's C920v2 in parentheses)\n"
               "Each cell: paper | model\n\n";

  std::vector<MachineId> machines = {MachineId::Sg2044};
  for (MachineId id : arch::riscv_board_machines()) machines.push_back(id);
  const std::vector<Kernel> kernels = model::npb_kernels();

  // One request per grid cell, kernel-major so each table row is a
  // contiguous slice of the batch results.
  engine::RequestSet set;
  for (Kernel k : kernels) {
    for (MachineId id : machines) {
      set.add_paper_setup(id, k, ProblemClass::B, /*cores=*/1);
    }
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  std::vector<std::string> header = {"Benchmark"};
  for (MachineId id : machines) header.push_back(arch::name_of(id));
  report::Table t(header);

  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const Kernel k = kernels[ki];
    const auto cell_for = [&](std::size_t mi) -> const model::Prediction& {
      return results[ki * machines.size() + mi].prediction;
    };
    const double sg_model = cell_for(0).mops;
    const auto sg_paper = model::paper::table2_mops(k, MachineId::Sg2044);
    std::vector<std::string> row = {to_string(k)};
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      const MachineId id = machines[mi];
      const model::Prediction& p = cell_for(mi);
      const auto paper = model::paper::table2_mops(k, id);
      std::string cell;
      if (!paper.has_value() && !p.ran) {
        cell = "DNR | DNR";
      } else {
        cell = (paper ? report::fmt(*paper, 1) : "DNR") + " | " +
               (p.ran ? report::fmt(p.mops, 1) : "DNR");
        if (id != MachineId::Sg2044 && p.ran && paper && sg_paper) {
          cell += "  (" + report::fmt_pct_of(*paper, *sg_paper) + " | " +
                  report::fmt_pct_of(p.mops, sg_model) + ")";
        }
      }
      row.push_back(cell);
    }
    t.add_row(row);
  }
  report::maybe_write_csv("table2_riscv_single_core", t);
  std::cout << t.render()
            << "\nShape targets: SG2044 wins every kernel; the SpacemiT "
               "K1/M1 come closest\n(except on CG); FT is DNR on the 1 GiB "
               "Allwinner D1.\n";
  return 0;
}
