// §6 ablation reproduction — CG matrix-vector loop unrolling on the
// SG2044.  NPB ships two alternative cong_grad inner loops unrolled 2x and
// 8x; the paper measured the vectorised builds at 1.12x and 1.64x the
// default vectorised version, both still below the scalar build.
//
// In the model, unrolling amortises the strip-mining/branch overhead that
// makes RVV gathers slow: we express an n-way unroll as an improvement of
// the effective gather efficiency and regenerate the comparison.

#include <iostream>
#include <vector>

#include "model/paper_reference.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "npb/cg.hpp"
#include "npb/npb_common.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::CompilerId;
using model::Kernel;
using model::ProblemClass;

namespace {

double cg_mops(double gather_efficiency_scale, bool vectorise) {
  arch::MachineModel m = arch::machine(arch::MachineId::Sg2044);
  m.core.vector.gather_efficiency =
      std::min(1.0, m.core.vector.gather_efficiency * gather_efficiency_scale);
  model::RunConfig cfg;
  cfg.cores = 1;
  cfg.compiler = {CompilerId::Gcc15_2, vectorise};
  return predict(m, model::signature(Kernel::CG, ProblemClass::C), cfg).mops;
}

}  // namespace

int main() {
  std::cout << "§6 ablation — CG SpMV unrolling, SG2044 single core, class C\n"
               "(vectorised builds relative to the default vectorised "
               "version)\n\n";
  const auto paper = model::paper::cg_unroll();
  const double base = cg_mops(1.0, true);
  const double unroll2 = cg_mops(1.35, true);   // fewer strip-mine branches
  const double unroll8 = cg_mops(2.2, true);    // near-amortised control
  const double scalar = cg_mops(1.0, false);

  report::Table t({"variant", "model Mop/s", "vs default (model)",
                   "vs default (paper)"});
  t.add_row({"vectorised, default", report::fmt(base, 1), "1.00x", "1.00x"});
  t.add_row({"vectorised, unroll x2", report::fmt(unroll2, 1),
             report::fmt_ratio(unroll2, base),
             report::fmt(paper.unroll2_speedup, 2) + "x"});
  t.add_row({"vectorised, unroll x8", report::fmt(unroll8, 1),
             report::fmt_ratio(unroll8, base),
             report::fmt(paper.unroll8_speedup, 2) + "x"});
  t.add_row({"scalar (no vector)", report::fmt(scalar, 1),
             report::fmt_ratio(scalar, base), "~2.68x"});
  std::cout << t.render()
            << "\nShape targets: unrolling recovers part of the vectorised "
               "loss (1.12x, 1.64x)\nbut even x8 stays below the scalar "
               "build — matching the paper's conclusion\nthat the RVV gather "
               "path itself, not loop overhead, is the bottleneck.\n";
  const bool ok = unroll2 > base && unroll8 > unroll2 && scalar > unroll8;
  std::cout << (ok ? "ordering OK\n" : "ORDERING VIOLATION\n");

  // The real loop variants from src/npb running on this host (no RVV here,
  // so no pathology — this demonstrates the ablation's code paths exist
  // and agree numerically).
  std::cout << "\nHost SpMV (class W matrix, 2 threads, 200 products):\n";
  const auto a = npb::cg::make_matrix(npb::ProblemClass::W);
  std::vector<double> x(static_cast<std::size_t>(a.n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n));
  for (auto [variant, label] :
       {std::pair{npb::cg::SpmvVariant::Default, "default"},
        {npb::cg::SpmvVariant::Unroll2, "unroll x2"},
        {npb::cg::SpmvVariant::Unroll8, "unroll x8"}}) {
    npb::Timer timer;
    timer.start();
    for (int rep = 0; rep < 200; ++rep) npb::cg::spmv(a, x, y, 2, variant);
    const double gflops = 2.0 * static_cast<double>(a.nnz()) * 200 /
                          timer.seconds() / 1e9;
    std::cout << "  " << label << ": " << report::fmt(gflops, 2)
              << " GFLOP/s\n";
  }
  return ok ? 0 : 1;
}
