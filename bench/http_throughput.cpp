// http_throughput — acceptance gate for the HTTP/1.1 front end.
//
// Drives one net::Server with both listeners open and compares the two
// wire formats on identical cached-hit workloads:
//
//   1. framing-overhead gate (unsanitized hosts with >= 2 hardware
//      threads): a keep-alive connection pipelining single-request
//      POST /v1/predict exchanges must stay within 25% of the raw
//      JSON-lines wire on the same pre-warmed hits, best of 5 runs.
//      Both paths complete inline on the shard, so the ratio isolates
//      exactly what src/http adds: request parsing, routing and
//      response-head rendering; and
//   2. correctness (always enforced): every HTTP response is a 200 with
//      a JSON body, and a JSON-lines batch POST streams back as one
//      chunked response carrying every reply.
//
// The summary extends BENCH_serve.json in place: an "http" section is
// spliced into the serve_throughput artifact when it exists (the
// checked-in file carries both), or a standalone document is written.
//
// Flags:
//   --gate       exit non-zero when a gate fails (the ctest entry)
//   --out=FILE   JSON artifact to extend (default: BENCH_serve.json)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "http/parser.hpp"
#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"
#include "serve/service.hpp"

using namespace rvhpc;
using Clock = std::chrono::steady_clock;

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Service + Server (both listeners) on ephemeral loopback ports, event
/// loop on a background thread.  Mirrors serve_throughput's BenchServer.
struct BenchServer {
  serve::Service service;
  net::Server server;
  std::ostringstream log;
  std::thread loop;

  BenchServer(serve::Service::Options sopts, net::ServerOptions nopts)
      : service(std::move(sopts)), server(service, nopts) {
    server.open(log);
    loop = std::thread([this] { server.run(log); });
  }

  ~BenchServer() {
    server.stop();
    if (loop.joinable()) loop.join();
  }
};

/// Blocking loopback client with a receive timeout so a regression fails
/// instead of hanging the bench.
struct Client {
  int fd = -1;
  std::string buffered;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval tv{30, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] bool connected() const { return fd >= 0; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One response line (without '\n'); empty on EOF/timeout.
  std::string recv_line() {
    while (true) {
      const std::size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffered.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

/// A cheap analytic request; cycling a small core grid keeps every send
/// after the warm-up a pure cache hit.
std::string cached_request(const std::string& id, int cores) {
  return "{\"id\": \"" + id +
         "\", \"machine\": \"sg2044\", \"kernel\": \"MG\", \"cores\": " +
         std::to_string(cores) + "}\n";
}

std::string http_post(const std::string& body) {
  std::string req =
      "POST /v1/predict HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  return req;
}

/// Pre-warm the MG core grid over the raw wire so every measured request
/// — HTTP or raw — is a pure hit.
bool warm_cache(std::uint16_t raw_port) {
  Client warm(raw_port);
  if (!warm.connected()) return false;
  for (int i = 0; i < 7; ++i) {
    if (!warm.send_all(cached_request("warm-" + std::to_string(i), 1 << i)))
      return false;
  }
  for (int i = 0; i < 7; ++i) {
    if (warm.recv_line().empty()) return false;
  }
  return true;
}

struct WireResult {
  bool ok = false;
  double seconds = -1.0;
  std::size_t responses = 0;
  std::size_t bad_status = 0;  ///< HTTP responses whose status was not 200
};

/// `hits` pipelined single-request POSTs on one keep-alive connection;
/// responses parsed back to back with one ResponseParser, reset between.
WireResult run_http_hits(std::uint16_t http_port, int hits) {
  WireResult r;
  Client cl(http_port);
  if (!cl.connected()) return r;

  std::string batch;
  for (int i = 0; i < hits; ++i) {
    batch += http_post(cached_request("h-" + std::to_string(i), 1 << (i % 7)));
  }

  http::ResponseParser rp;
  std::string buf;
  const auto t0 = Clock::now();
  if (!cl.send_all(batch)) return r;
  while (r.responses < static_cast<std::size_t>(hits)) {
    if (!buf.empty()) {
      const std::size_t used = rp.feed(buf);
      buf.erase(0, used);
      if (rp.failed()) return r;
      if (rp.complete()) {
        if (rp.status() != 200) ++r.bad_status;
        ++r.responses;
        rp.reset();
        continue;
      }
    }
    char chunk[8192];
    const ssize_t n = ::recv(cl.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return r;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ok = r.bad_status == 0;
  return r;
}

/// The same `hits` cached requests pipelined as raw JSON lines.
WireResult run_raw_hits(std::uint16_t raw_port, int hits) {
  WireResult r;
  Client cl(raw_port);
  if (!cl.connected()) return r;

  std::string batch;
  for (int i = 0; i < hits; ++i) {
    batch += cached_request("r-" + std::to_string(i), 1 << (i % 7));
  }

  const auto t0 = Clock::now();
  if (!cl.send_all(batch)) return r;
  for (int i = 0; i < hits; ++i) {
    if (cl.recv_line().empty()) return r;
    ++r.responses;
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ok = true;
  return r;
}

struct PairedResult {
  bool ok = false;
  WireResult http;  ///< fastest HTTP rep
  WireResult raw;   ///< fastest raw rep
  double ratio = -1.0;  ///< best per-rep http/raw ratio
  std::size_t http_responses = 0;
  std::size_t raw_responses = 0;
  std::size_t bad_status = 0;
};

/// Interleaves raw and HTTP reps and keeps the best *paired* ratio: each
/// rep's two runs are adjacent in time, so machine-wide noise (one CPU,
/// sanitizers, a busy CI host) hits both wires alike instead of skewing
/// whichever phase ran during the spike.
PairedResult run_paired(const net::Server& server, int reps, int hits) {
  PairedResult pr;
  for (int i = 0; i < reps; ++i) {
    const WireResult raw = run_raw_hits(server.port(), hits);
    pr.raw_responses = raw.responses;
    if (!raw.ok) return pr;
    const WireResult http = run_http_hits(server.http_port(), hits);
    pr.http_responses = http.responses;
    pr.bad_status = http.bad_status;
    if (!http.ok) return pr;
    if (pr.raw.seconds < 0.0 || raw.seconds < pr.raw.seconds) pr.raw = raw;
    if (pr.http.seconds < 0.0 || http.seconds < pr.http.seconds)
      pr.http = http;
    const double ratio = http.seconds / raw.seconds;
    if (pr.ratio < 0.0 || ratio < pr.ratio) pr.ratio = ratio;
  }
  pr.ok = true;
  return pr;
}

struct BatchResult {
  bool ok = false;
  bool chunked = false;
  std::size_t lines = 0;
  double ms = -1.0;
};

/// One POST whose body is a JSON-lines batch; the reply must stream back
/// as a single chunked response with one line per request.
BatchResult run_batch(std::uint16_t http_port, int items) {
  BatchResult r;
  Client cl(http_port);
  if (!cl.connected()) return r;

  std::string body;
  for (int i = 0; i < items; ++i) {
    body += cached_request("b-" + std::to_string(i), 1 << (i % 7));
  }

  http::ResponseParser rp;
  std::string buf;
  const auto t0 = Clock::now();
  if (!cl.send_all(http_post(body))) return r;
  while (!rp.complete()) {
    if (!buf.empty()) {
      const std::size_t used = rp.feed(buf);
      buf.erase(0, used);
      if (rp.failed()) return r;
      if (rp.complete()) break;
    }
    char chunk[8192];
    const ssize_t n = ::recv(cl.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return r;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  r.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.chunked = rp.chunked();
  for (char ch : rp.body()) {
    if (ch == '\n') ++r.lines;
  }
  r.ok = rp.status() == 200 && r.chunked &&
         r.lines == static_cast<std::size_t>(items);
  return r;
}

std::string fmt_json(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

/// Splices `section` (the body of the "http" object, already indented)
/// into an existing serve_throughput artifact, replacing a previous
/// "http" section when present.  Empty string when `doc` is not a JSON
/// object this function knows how to extend.
std::string splice_http(std::string doc, const std::string& section) {
  const std::string key = ",\n  \"http\": {";
  const std::size_t prev = doc.find(key);
  if (prev != std::string::npos) {
    doc.erase(prev);
  } else {
    const std::size_t end = doc.rfind("\n}");
    if (end == std::string::npos) return "";
    doc.erase(end);
  }
  doc += ",\n  \"http\": {\n" + section + "  }\n}\n";
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    } else {
      std::cerr << "http_throughput: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  obs::set_metrics_enabled(true);
  const unsigned hw = std::thread::hardware_concurrency();

  constexpr int kHits = 500;
  constexpr int kBatch = 64;
  constexpr int kReps = 5;

  serve::Service::Options sopts;
  sopts.jobs = 2;
  net::ServerOptions nopts;
  nopts.shards = 2;
  nopts.http = true;
  BenchServer s(sopts, nopts);

  if (!warm_cache(s.server.port())) {
    std::cerr << "FAIL: cache warm-up lost a connection or a response\n";
    return 1;
  }

  // Server-side exchange latency for the summary: everything after the
  // warm-up contributes.
  obs::Histogram& lat = obs::Registry::global().histogram(
      "rvhpc_http_request_duration_seconds");
  lat.reset();

  const PairedResult paired = run_paired(s.server, kReps, kHits);
  if (!paired.ok) {
    std::cerr << "FAIL: a cached-hit run lost responses (raw "
              << paired.raw_responses << "/" << kHits << ", HTTP "
              << paired.http_responses << "/" << kHits << ", "
              << paired.bad_status << " non-200)\n";
    return 1;
  }
  const WireResult& http = paired.http;
  const WireResult& raw = paired.raw;
  const double ratio = paired.ratio;
  const double http_rps = static_cast<double>(kHits) / http.seconds;
  const double raw_rps = static_cast<double>(kHits) / raw.seconds;

  const BatchResult batch = run_batch(s.server.http_port(), kBatch);
  if (!batch.ok) {
    std::cerr << "FAIL: batch POST of " << kBatch
              << " request(s) came back with " << batch.lines << " line(s), "
              << (batch.chunked ? "chunked" : "not chunked") << "\n";
    return 1;
  }

  const double p50_us = lat.percentile(50.0) * 1e6;
  const double p99_us = lat.percentile(99.0) * 1e6;

  report::Table t({"wire", "seconds", "requests/s"});
  t.add_row({"raw JSON lines", report::fmt(raw.seconds, 4),
             report::fmt(raw_rps, 0)});
  t.add_row({"HTTP keep-alive", report::fmt(http.seconds, 4),
             report::fmt(http_rps, 0)});
  std::cout << t.render() << "\nbest paired overhead: "
            << report::fmt(ratio, 2)
            << "x the raw wire\nbatch POST: " << kBatch << " request(s) in "
            << report::fmt(batch.ms, 1)
            << " ms, one chunked response\nserver-side exchange p50 "
            << report::fmt(p50_us, 0) << " us, p99 " << report::fmt(p99_us, 0)
            << " us (" << static_cast<std::uint64_t>(lat.count())
            << " exchanges)\nhardware threads: " << hw << "\n";

  // --- the "http" section of BENCH_serve.json -------------------------------
  {
    std::ostringstream sec;
    sec << "    \"hits\": " << kHits << ",\n"
        << "    \"reps\": " << kReps << ",\n"
        << "    \"http_seconds\": " << fmt_json(http.seconds, 6) << ",\n"
        << "    \"raw_seconds\": " << fmt_json(raw.seconds, 6) << ",\n"
        << "    \"overhead_ratio\": " << fmt_json(ratio, 3) << ",\n"
        << "    \"http_requests_per_s\": " << fmt_json(http_rps, 1) << ",\n"
        << "    \"batch_items\": " << kBatch << ",\n"
        << "    \"batch_ms\": " << fmt_json(batch.ms, 3) << ",\n"
        << "    \"exchange_p50_us\": " << fmt_json(p50_us, 1) << ",\n"
        << "    \"exchange_p99_us\": " << fmt_json(p99_us, 1) << "\n";

    std::string doc;
    {
      std::ifstream in(out_path, std::ios::binary);
      if (in) {
        std::ostringstream all;
        all << in.rdbuf();
        doc = all.str();
      }
    }
    std::string spliced = doc.empty() ? "" : splice_http(doc, sec.str());
    if (spliced.empty()) {
      // No serve_throughput artifact to extend — standalone document.
      spliced = "{\n  \"bench\": \"http_throughput\",\n  \"hardware_threads\": " +
                std::to_string(hw) + ",\n  \"sanitized\": " +
                (kSanitized ? "true" : "false") + ",\n  \"http\": {\n" +
                sec.str() + "  }\n}\n";
    }
    std::ofstream out(out_path, std::ios::binary);
    out << spliced;
    if (!out) {
      std::cerr << "http_throughput: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (!gate) return 0;
  if (kSanitized) {
    std::cout << "gate: sanitized build — correctness checked, overhead "
                 "threshold skipped\n";
    return 0;
  }
  if (hw < 2) {
    std::cout << "gate: " << hw << " hardware thread(s) — correctness "
                 "checked, overhead threshold needs >= 2\n";
    return 0;
  }
  if (ratio > 1.25) {
    std::cerr << "FAIL: HTTP keep-alive cached hits cost "
              << report::fmt(ratio, 2)
              << "x the raw wire — above the 1.25x acceptance bar\n";
    return 1;
  }
  std::cout << "gate: correctness held and HTTP overhead "
            << report::fmt(ratio, 2) << "x <= 1.25x — PASSED\n";
  return 0;
}
