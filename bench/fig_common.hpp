#pragma once
// Shared helpers for the figure-reproduction bench binaries: each of the
// paper's Figures 2-6 is one kernel's OpenMP scaling curve across the five
// §5 machines; this renders the modelled curves as a table plus an ASCII
// chart, in the figures' layout.

#include <iostream>
#include <optional>
#include <string>

#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/sweep.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace rvhpc::bench {

/// Prints the Figure-N reproduction for `kernel` (class C, paper setup):
/// a Mop/s-by-core-count table with one column per machine, then the
/// log2-x chart the paper plots, then any prose anchors via `notes`.
inline void print_scaling_figure(const std::string& title, model::Kernel kernel,
                                 const std::string& notes) {
  using model::ProblemClass;
  std::cout << title << "\n"
            << std::string(title.size(), '=') << "\n\n";

  // All five machines' curves as ONE engine batch: every (machine, cores)
  // cell is a request, evaluated across the default evaluator's pool with
  // results in submission order — per-machine slices stay contiguous.
  const auto& machines = arch::hpc_machines();
  engine::RequestSet set;
  for (arch::MachineId id : machines) {
    const auto& m = arch::machine(id);
    set.add_scaling(m, kernel, ProblemClass::C,
                    model::paper_run_config(m, kernel, /*cores=*/1),
                    arch::name_of(id));
  }
  const auto results = engine::default_evaluator().evaluate(set);

  std::vector<model::ScalingSeries> series;
  series.reserve(machines.size());
  std::size_t cursor = 0;
  for (arch::MachineId id : machines) {
    model::ScalingSeries s{id, kernel, ProblemClass::C, {}};
    const std::size_t n = model::power_of_two_cores(arch::machine(id).cores).size();
    for (std::size_t i = 0; i < n; ++i, ++cursor) {
      s.points.push_back({set.requests()[cursor].config().cores,
                          results[cursor].prediction});
    }
    series.push_back(std::move(s));
  }

  std::vector<std::string> header = {"cores"};
  for (arch::MachineId id : machines) header.push_back(arch::name_of(id));
  report::Table table(header);
  // Row per core count present on any machine.
  for (int cores : model::power_of_two_cores(64)) {
    std::vector<std::string> row = {std::to_string(cores)};
    bool any = false;
    for (const auto& s : series) {
      std::string cell = "-";
      for (const auto& p : s.points) {
        if (p.cores == cores && p.prediction.ran) {
          cell = report::fmt(p.prediction.mops, 1);
          any = true;
        }
      }
      row.push_back(cell);
    }
    if (any) table.add_row(row);
  }
  // Skylake (26) and ThunderX2 (32) end off the power-of-two grid.
  for (int cores : {26, 32}) {
    std::vector<std::string> row = {std::to_string(cores)};
    bool any = false;
    for (const auto& s : series) {
      std::string cell = "-";
      for (const auto& p : s.points) {
        if (p.cores == cores && p.prediction.ran) {
          cell = report::fmt(p.prediction.mops, 1);
          any = true;
        }
      }
      row.push_back(cell);
    }
    if (any && cores != 32) table.add_row(row);  // 32 already in pow2 grid
  }
  report::maybe_write_csv("fig_" + to_string(kernel), table);
  std::cout << table.render() << "\n";

  report::AsciiChart chart("Modelled " + to_string(kernel) +
                               " class C scaling (Mop/s vs cores)",
                           "cores", "Mop/s");
  const char glyphs[] = {'4', '2', 'E', 'S', 'T'};
  for (std::size_t i = 0; i < series.size(); ++i) {
    report::Series s;
    s.label = arch::name_of(machines[i]);
    s.glyph = glyphs[i % sizeof(glyphs)];
    for (const auto& p : series[i].points) {
      if (p.prediction.ran) {
        s.points.emplace_back(static_cast<double>(p.cores), p.prediction.mops);
      }
    }
    chart.add_series(std::move(s));
  }
  std::cout << chart.render() << "\n" << notes << "\n";
}

/// print_scaling_figure plus standard figure-binary argv handling: a
/// --trace=<file> flag wraps the whole figure in an obs session and dumps
/// the Chrome trace (per-point attribution records included) at the end,
/// and --jobs=N sizes the engine's worker pool for the batch evaluation
/// (0 = every hardware thread; see cli::apply_jobs_flag).
inline int run_scaling_figure(int argc, char** argv, const std::string& title,
                              model::Kernel kernel, const std::string& notes) {
  cli::apply_jobs_flag(argc, argv);
  std::optional<std::string> trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace=").size());
    }
  }
  std::optional<obs::SessionScope> scope;
  if (trace_path) scope.emplace();

  print_scaling_figure(title, kernel, notes);

  if (scope) {
    try {
      obs::write_file(*trace_path, obs::chrome_trace_json(scope->session()));
      std::cerr << "trace written to " << *trace_path << " ("
                << scope->session().event_count() << " records)\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace rvhpc::bench
