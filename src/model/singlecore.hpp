#pragma once
// rvhpc::model — single-core throughput building blocks.
//
// These functions turn (machine, signature, compiler) into the per-core
// rates the multicore scaling model aggregates: effective operations per
// cycle after vectorisation, and the latency-bound random-access rate.

#include "arch/machine.hpp"
#include "model/compiler.hpp"
#include "model/workload.hpp"

namespace rvhpc::model {

/// How the vector unit changes execution speed for one workload.
struct VectorOutcome {
  bool vectorised = false;     ///< compiler emitted vector code at all
  double unit_stride_speedup = 1.0;  ///< speed-up of unit-stride vector loops
  double gather_speedup = 1.0;       ///< speed-up (often <1) of indexed loops
  double blended_speedup = 1.0;      ///< Amdahl blend over the whole kernel
};

/// Evaluates the compiler x vector-unit interaction for `sig` on `m`.
/// blended_speedup multiplies the scalar op/cycle; values below 1 model the
/// paper's CG-on-RVV pathology where vectorised code is slower (§6).
[[nodiscard]] VectorOutcome vector_outcome(const arch::MachineModel& m,
                                           const WorkloadSignature& sig,
                                           const CompilerConfig& cc);

/// Sustained operations/second of one core: clock x scalar op/cycle x
/// compiler scalar quality x vector blend.
[[nodiscard]] double core_ops_per_second(const arch::MachineModel& m,
                                         const WorkloadSignature& sig,
                                         const CompilerConfig& cc);

/// The LLC hit fraction the workload's latency-bound accesses actually
/// sustain on `m`: the signature's base fraction, capacity-capped when the
/// random footprint exceeds the machine's LLC.
[[nodiscard]] double effective_llc_hit_fraction(const arch::MachineModel& m,
                                                const WorkloadSignature& sig);

/// Effective latency (seconds) of one of the workload's latency-bound
/// accesses: a hit-fraction blend of LLC latency and (optionally loaded)
/// DRAM latency.
[[nodiscard]] double random_access_latency_s(const arch::MachineModel& m,
                                             const WorkloadSignature& sig,
                                             double dram_latency_s);

/// Latency-bound accesses/second one core sustains given the overlap the
/// access pattern and the core's miss handling allow.
[[nodiscard]] double core_random_rate(const arch::MachineModel& m,
                                      const WorkloadSignature& sig,
                                      double dram_latency_s);

}  // namespace rvhpc::model
