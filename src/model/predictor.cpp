#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/topology.hpp"

namespace rvhpc::model {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
/// Fraction of DRAM the OS leaves to the benchmark before it is DNR.
constexpr double kUsableDramFraction = 0.92;
/// DRAM traffic that survives even an LLC-resident working set
/// (compulsory misses, streaming-through behaviour).
constexpr double kLlcResidualTraffic = 0.12;
/// Partial-overlap coefficient between compute, bandwidth and latency time
/// (0 = perfect overlap / pure max, 1 = fully serial / pure sum).  Out-of-
/// order cores hide most non-critical resource time; in-order cores stall.
constexpr double kOverlapBetaOoO = 0.12;
constexpr double kOverlapBetaInOrder = 0.55;
/// Weight of inter-thread communication traffic against DRAM bandwidth
/// (part of it is absorbed by the shared LLC).
constexpr double kCommWeight = 0.5;

/// Base attribution record for (m, sig, cfg); shared by the DNR and
/// completed-run emission paths.
obs::PredictionRecord base_record(const arch::MachineModel& m,
                                  const WorkloadSignature& sig,
                                  const RunConfig& cfg) {
  obs::PredictionRecord r;
  r.backend = "analytic";
  r.machine = m.name;
  r.kernel = to_string(sig.kernel);
  r.problem_class = to_string(sig.problem_class);
  r.cores = cfg.cores;
  return r;
}

void count_predict_call(bool dnr) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::Registry::global().counter(
      "rvhpc_predict_calls_total", "predict() invocations");
  static obs::Counter& dnrs = obs::Registry::global().counter(
      "rvhpc_predict_dnr_total", "predict() calls that did not run (DNR)");
  calls.add();
  if (dnr) dnrs.add();
}

void emit_dnr(const arch::MachineModel& m, const WorkloadSignature& sig,
              const RunConfig& cfg, const Prediction& out) {
  count_predict_call(/*dnr=*/true);
  if (obs::TraceSession* s = obs::session()) {
    obs::PredictionRecord r = base_record(m, sig, cfg);
    r.ran = false;
    r.dnr_reason = out.dnr_reason;
    s->add_prediction(std::move(r));
  }
}

}  // namespace

std::string to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::Compute:         return "compute";
    case Bottleneck::StreamBandwidth: return "stream-bandwidth";
    case Bottleneck::Latency:         return "memory-latency";
    case Bottleneck::Sync:            return "synchronisation";
  }
  return "unknown";
}

Prediction predict(const arch::MachineModel& m, const WorkloadSignature& sig,
                   const RunConfig& cfg) {
  obs::ScopedTimer timer(obs::timer_target("rvhpc_predict_wall_seconds"));
  obs::ScopedSpan span("model", "predict");
  Prediction out;

  if (cfg.cores < 1 || cfg.cores > m.cores) {
    out.ran = false;
    out.dnr_reason = "requested " + std::to_string(cfg.cores) + " cores, " +
                     m.name + " has " + std::to_string(m.cores);
    emit_dnr(m, sig, cfg, out);
    return out;
  }
  const double dram_mib = m.memory.dram_gib * 1024.0 * kUsableDramFraction;
  if (sig.working_set_mib > dram_mib) {
    out.ran = false;
    out.dnr_reason = "working set " + std::to_string(sig.working_set_mib) +
                     " MiB exceeds usable DRAM of " + m.name;
    emit_dnr(m, sig, cfg, out);
    return out;  // e.g. FT class B on the 1 GiB Allwinner D1 (Table 2)
  }

  const double n = cfg.cores;
  const double ops = sig.total_mop * 1e6;

  // --- compute ------------------------------------------------------------
  out.vector = vector_outcome(m, sig, cfg.compiler);
  const double core_rate = core_ops_per_second(m, sig, cfg.compiler);
  const double s = std::clamp(sig.serial_fraction, 0.0, 1.0);
  // Amdahl split: the serial share does not divide by n.
  const double t_cpu = ops * (1.0 - s) / (n * core_rate) + ops * s / core_rate;

  // --- streamed DRAM traffic ------------------------------------------------
  const double ws_bytes = sig.working_set_mib * kMiB;
  const double llc = static_cast<double>(m.llc_bytes());
  double dram_fraction = 1.0;
  if (ws_bytes > 0.0 && llc > 0.0) {
    // Quadratic falloff: streaming sweeps get little LLC filtering unless
    // the working set genuinely fits.
    const double fit = std::min(llc / ws_bytes, 1.0);
    dram_fraction = ws_bytes <= llc
                        ? kLlcResidualTraffic
                        : 1.0 - (1.0 - kLlcResidualTraffic) * fit * fit;
  }
  const double comm_bytes =
      n > 1 ? sig.comm_bytes_per_op * ops * (1.0 - 1.0 / n) * kCommWeight : 0.0;
  const double stream_bytes =
      ops * sig.streamed_bytes_per_op * dram_fraction + comm_bytes;

  // Read-dominated traffic sustains more than STREAM copy on machines
  // whose copy bandwidth is write-allocate limited (notably the SG2042).
  const double read_bonus =
      1.0 + (m.memory.read_bw_bonus - 1.0) * std::clamp(sig.read_fraction, 0.0, 1.0);
  const double supply_bw =
      m.memory.chip_stream_bw_gbs() * read_bonus *
      placement_bw_factor(m, cfg.cores, cfg.placement) * 1e9;
  double bw_gbs = soft_min(n * m.memory.per_core_bw_gbs * read_bonus,
                           supply_bw / 1e9, /*p=*/10.0);

  // --- latency-bound accesses, with a load-dependent DRAM latency ----------
  const double n_rand = ops * sig.random_access_per_op;
  const double p_hit = effective_llc_hit_fraction(m, sig);

  // Threads spanning multiple NUMA regions see a blend of local and remote
  // DRAM latency (EPYC's four regions; first-touch keeps small runs local).
  double numa_factor = 1.0;
  if (m.memory.numa_regions > 1) {
    const double per_region =
        static_cast<double>(m.cores) / m.memory.numa_regions;
    const double regions_used = std::ceil(n / per_region);
    numa_factor = 1.0 + 0.33 * (1.0 - 1.0 / regions_used);
  }

  // Explicit topology charging (src/topo): once the active cores span
  // more than one declared domain, the remote share of DRAM traffic
  // drains through the inter-socket links — serial composition of the
  // local bandwidth with the links' aggregate — and every remote access
  // pays the link's transfer latency plus its coherence penalty on top
  // of the blend above.  A flat machine takes neither branch, so every
  // pre-topology machine predicts bit-identically.
  const topo::CrossTraffic xt =
      topo::cross_traffic(m.topology, cfg.cores, sig.working_set_mib);
  if (xt.remote_fraction > 0.0 && xt.link_bw_gbs > 0.0) {
    bw_gbs = 1.0 / ((1.0 - xt.remote_fraction) / bw_gbs +
                    xt.remote_fraction / xt.link_bw_gbs);
    numa_factor *= 1.0 + xt.remote_fraction * xt.extra_latency_ns /
                             m.memory.idle_latency_ns;
  }

  // Component-wise partial-overlap coefficients.  Prefetchable streams
  // overlap with compute even on in-order cores (small beta); a dependent
  // latency chain serialises an in-order pipeline almost completely.
  const double beta_flow = m.core.out_of_order ? kOverlapBetaOoO : 0.18;
  // Compute and a dependent latency chain serialise against each other
  // on an in-order core, whichever of the two dominates.
  const double beta_chain = m.core.out_of_order
                                ? kOverlapBetaOoO
                                : (sig.dependent_chain ? kOverlapBetaInOrder : 0.18);

  double u = 0.5;  // DRAM utilisation estimate, refined by fixed point
  double t_bw = 0.0, t_lat = 0.0, t_par = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    const double loaded_lat = loaded_dram_latency_s(m, u) * numa_factor;
    t_bw = stream_bytes > 0.0 ? stream_bytes / (bw_gbs * 1e9) : 0.0;
    if (n_rand > 0.0) {
      const double r_core = core_random_rate(m, sig, loaded_lat);
      const double dram_share = 1.0 - p_hit;
      const double cap = dram_share > 1e-6
                             ? chip_random_cap(m, loaded_lat) / dram_share
                             : std::numeric_limits<double>::infinity();
      const double rate = soft_min(n * r_core, cap);
      t_lat = n_rand / rate;
    }
    const double t_max = std::max({t_cpu, t_bw, t_lat});
    t_par = t_max;
    if (t_cpu < t_max) t_par += beta_chain * t_cpu;
    if (t_bw < t_max) t_par += beta_flow * t_bw;
    if (t_lat < t_max) t_par += beta_chain * t_lat;
    // Only streamed traffic meaningfully fills the channels; latency-bound
    // misses are too sparse to saturate them but do suffer the queueing.
    u = std::min(0.95, stream_bytes / std::max(t_par, 1e-12) / supply_bw);
  }

  // --- parallel overheads ----------------------------------------------------
  const double imb = imbalance_factor(sig, cfg.cores);
  const double t_sync = sync_cost_s(m, sig, cfg.cores);
  const double pq =
      cfg.cores > 1 ? parallel_quality(cfg.compiler.id, sig.kernel) : 1.0;
  const double total = (t_par * imb + t_sync) / pq;

  out.seconds = total;
  out.mops = sig.total_mop / total;
  out.achieved_bw_gbs = stream_bytes / std::max(total, 1e-12) / 1e9;
  out.breakdown = {t_cpu, t_bw, t_lat, t_sync, imb, Bottleneck::Compute};
  const double dmax = std::max({t_cpu, t_bw, t_lat, t_sync});
  if (dmax == t_sync)      out.breakdown.dominant = Bottleneck::Sync;
  else if (dmax == t_bw)   out.breakdown.dominant = Bottleneck::StreamBandwidth;
  else if (dmax == t_lat)  out.breakdown.dominant = Bottleneck::Latency;
  else                     out.breakdown.dominant = Bottleneck::Compute;

  count_predict_call(/*dnr=*/false);
  if (obs::TraceSession* s = obs::session()) {
    // Critical-path attribution: fold each resource's overlap contribution
    // (t_max for the binding one, beta-weighted for the rest — the exact
    // composition of the fixed-point loop above) through the imbalance and
    // parallel-quality scaling, so the phases sum to out.seconds.
    const double t_max = std::max({t_cpu, t_bw, t_lat});
    double c_cpu = t_cpu < t_max ? beta_chain * t_cpu : 0.0;
    double c_bw = t_bw < t_max ? beta_flow * t_bw : 0.0;
    double c_lat = t_lat < t_max ? beta_chain * t_lat : 0.0;
    if (t_cpu == t_max)     c_cpu += t_max;
    else if (t_bw == t_max) c_bw += t_max;
    else                    c_lat += t_max;
    const double scale = imb / pq;

    obs::PredictionRecord r = base_record(m, sig, cfg);
    r.seconds = out.seconds;
    r.mops = out.mops;
    r.achieved_bw_gbs = out.achieved_bw_gbs;
    r.phases = {{to_string(Bottleneck::Compute), c_cpu * scale},
                {to_string(Bottleneck::StreamBandwidth), c_bw * scale},
                {to_string(Bottleneck::Latency), c_lat * scale},
                {to_string(Bottleneck::Sync), t_sync / pq}};
    r.bottleneck = to_string(out.breakdown.dominant);
    std::vector<std::pair<std::string, double>> raw = {
        {to_string(Bottleneck::Compute), t_cpu},
        {to_string(Bottleneck::StreamBandwidth), t_bw},
        {to_string(Bottleneck::Latency), t_lat},
        {to_string(Bottleneck::Sync), t_sync}};
    std::stable_sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    for (const auto& [name, t] : raw) {
      if (name == r.bottleneck) continue;
      r.runner_up.emplace_back(name, dmax > 0.0 ? t / dmax : 0.0);
    }
    r.vectorised = out.vector.vectorised;
    r.vector_speedup = out.vector.blended_speedup;

    // The paper's headline mechanism as an event: streamed demand above
    // what the memory controllers supply at this placement.
    const double demand_gbs = n * m.memory.per_core_bw_gbs * read_bonus;
    const double supply_gbs = supply_bw / 1e9;
    if (stream_bytes > 0.0 && demand_gbs > supply_gbs) {
      s->add_instant("dram-channel-saturation", "model",
                     {{"machine", m.name},
                      {"cores", std::to_string(cfg.cores)},
                      {"demand_gbs", std::to_string(demand_gbs)},
                      {"supply_gbs", std::to_string(supply_gbs)}});
    }
    s->add_prediction(std::move(r));
  }
  if (span.active()) {
    span.arg("backend", "analytic");
    span.arg("machine", m.name);
    span.arg("kernel", to_string(sig.kernel));
    span.arg("cores", std::to_string(cfg.cores));
    span.arg("bottleneck", to_string(out.breakdown.dominant));
  }
  return out;
}

RunConfig paper_run_config(const arch::MachineModel& m, Kernel kernel,
                           int cores) {
  RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = paper_default_compiler(m);
  // §6: vectorised CG is ~3x slower on the C920v2, so the paper disabled
  // vectorisation for CG on the SG2044 (§5.4, Table 2 note).
  if (kernel == Kernel::CG && m.name == "sg2044") cfg.compiler.vectorise = false;
  cfg.placement = ThreadPlacement::OsDefault;
  return cfg;
}

Prediction predict_paper_setup(const arch::MachineModel& m,
                               const WorkloadSignature& sig, int cores) {
  return predict(m, sig, paper_run_config(m, sig.kernel, cores));
}

}  // namespace rvhpc::model
