#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rvhpc::model {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
/// Fraction of DRAM the OS leaves to the benchmark before it is DNR.
constexpr double kUsableDramFraction = 0.92;
/// DRAM traffic that survives even an LLC-resident working set
/// (compulsory misses, streaming-through behaviour).
constexpr double kLlcResidualTraffic = 0.12;
/// Partial-overlap coefficient between compute, bandwidth and latency time
/// (0 = perfect overlap / pure max, 1 = fully serial / pure sum).  Out-of-
/// order cores hide most non-critical resource time; in-order cores stall.
constexpr double kOverlapBetaOoO = 0.12;
constexpr double kOverlapBetaInOrder = 0.55;
/// Weight of inter-thread communication traffic against DRAM bandwidth
/// (part of it is absorbed by the shared LLC).
constexpr double kCommWeight = 0.5;

}  // namespace

std::string to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::Compute:         return "compute";
    case Bottleneck::StreamBandwidth: return "stream-bandwidth";
    case Bottleneck::Latency:         return "memory-latency";
    case Bottleneck::Sync:            return "synchronisation";
  }
  return "unknown";
}

Prediction predict(const arch::MachineModel& m, const WorkloadSignature& sig,
                   const RunConfig& cfg) {
  Prediction out;

  if (cfg.cores < 1 || cfg.cores > m.cores) {
    out.ran = false;
    out.dnr_reason = "requested " + std::to_string(cfg.cores) + " cores, " +
                     m.name + " has " + std::to_string(m.cores);
    return out;
  }
  const double dram_mib = m.memory.dram_gib * 1024.0 * kUsableDramFraction;
  if (sig.working_set_mib > dram_mib) {
    out.ran = false;
    out.dnr_reason = "working set " + std::to_string(sig.working_set_mib) +
                     " MiB exceeds usable DRAM of " + m.name;
    return out;  // e.g. FT class B on the 1 GiB Allwinner D1 (Table 2)
  }

  const double n = cfg.cores;
  const double ops = sig.total_mop * 1e6;

  // --- compute ------------------------------------------------------------
  out.vector = vector_outcome(m, sig, cfg.compiler);
  const double core_rate = core_ops_per_second(m, sig, cfg.compiler);
  const double s = std::clamp(sig.serial_fraction, 0.0, 1.0);
  // Amdahl split: the serial share does not divide by n.
  const double t_cpu = ops * (1.0 - s) / (n * core_rate) + ops * s / core_rate;

  // --- streamed DRAM traffic ------------------------------------------------
  const double ws_bytes = sig.working_set_mib * kMiB;
  const double llc = static_cast<double>(m.llc_bytes());
  double dram_fraction = 1.0;
  if (ws_bytes > 0.0 && llc > 0.0) {
    // Quadratic falloff: streaming sweeps get little LLC filtering unless
    // the working set genuinely fits.
    const double fit = std::min(llc / ws_bytes, 1.0);
    dram_fraction = ws_bytes <= llc
                        ? kLlcResidualTraffic
                        : 1.0 - (1.0 - kLlcResidualTraffic) * fit * fit;
  }
  const double comm_bytes =
      n > 1 ? sig.comm_bytes_per_op * ops * (1.0 - 1.0 / n) * kCommWeight : 0.0;
  const double stream_bytes =
      ops * sig.streamed_bytes_per_op * dram_fraction + comm_bytes;

  // Read-dominated traffic sustains more than STREAM copy on machines
  // whose copy bandwidth is write-allocate limited (notably the SG2042).
  const double read_bonus =
      1.0 + (m.memory.read_bw_bonus - 1.0) * std::clamp(sig.read_fraction, 0.0, 1.0);
  const double supply_bw =
      m.memory.chip_stream_bw_gbs() * read_bonus *
      placement_bw_factor(m, cfg.cores, cfg.placement) * 1e9;
  const double bw_gbs = soft_min(n * m.memory.per_core_bw_gbs * read_bonus,
                                 supply_bw / 1e9, /*p=*/10.0);

  // --- latency-bound accesses, with a load-dependent DRAM latency ----------
  const double n_rand = ops * sig.random_access_per_op;
  const double p_hit = effective_llc_hit_fraction(m, sig);

  // Threads spanning multiple NUMA regions see a blend of local and remote
  // DRAM latency (EPYC's four regions; first-touch keeps small runs local).
  double numa_factor = 1.0;
  if (m.memory.numa_regions > 1) {
    const double per_region =
        static_cast<double>(m.cores) / m.memory.numa_regions;
    const double regions_used = std::ceil(n / per_region);
    numa_factor = 1.0 + 0.33 * (1.0 - 1.0 / regions_used);
  }

  double u = 0.5;  // DRAM utilisation estimate, refined by fixed point
  double t_bw = 0.0, t_lat = 0.0, t_par = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    const double loaded_lat = loaded_dram_latency_s(m, u) * numa_factor;
    t_bw = stream_bytes > 0.0 ? stream_bytes / (bw_gbs * 1e9) : 0.0;
    if (n_rand > 0.0) {
      const double r_core = core_random_rate(m, sig, loaded_lat);
      const double dram_share = 1.0 - p_hit;
      const double cap = dram_share > 1e-6
                             ? chip_random_cap(m, loaded_lat) / dram_share
                             : std::numeric_limits<double>::infinity();
      const double rate = soft_min(n * r_core, cap);
      t_lat = n_rand / rate;
    }
    // Component-wise partial overlap.  Prefetchable streams overlap with
    // compute even on in-order cores (small beta); a dependent latency
    // chain serialises an in-order pipeline almost completely.
    const double beta_flow = m.core.out_of_order ? kOverlapBetaOoO : 0.18;
    // Compute and a dependent latency chain serialise against each other
    // on an in-order core, whichever of the two dominates.
    const double beta_chain = m.core.out_of_order
                                  ? kOverlapBetaOoO
                                  : (sig.dependent_chain ? kOverlapBetaInOrder : 0.18);
    const double t_max = std::max({t_cpu, t_bw, t_lat});
    t_par = t_max;
    if (t_cpu < t_max) t_par += beta_chain * t_cpu;
    if (t_bw < t_max) t_par += beta_flow * t_bw;
    if (t_lat < t_max) t_par += beta_chain * t_lat;
    // Only streamed traffic meaningfully fills the channels; latency-bound
    // misses are too sparse to saturate them but do suffer the queueing.
    u = std::min(0.95, stream_bytes / std::max(t_par, 1e-12) / supply_bw);
  }

  // --- parallel overheads ----------------------------------------------------
  const double imb = imbalance_factor(sig, cfg.cores);
  const double t_sync = sync_cost_s(m, sig, cfg.cores);
  const double pq =
      cfg.cores > 1 ? parallel_quality(cfg.compiler.id, sig.kernel) : 1.0;
  const double total = (t_par * imb + t_sync) / pq;

  out.seconds = total;
  out.mops = sig.total_mop / total;
  out.achieved_bw_gbs = stream_bytes / std::max(total, 1e-12) / 1e9;
  out.breakdown = {t_cpu, t_bw, t_lat, t_sync, imb, Bottleneck::Compute};
  const double dmax = std::max({t_cpu, t_bw, t_lat, t_sync});
  if (dmax == t_sync)      out.breakdown.dominant = Bottleneck::Sync;
  else if (dmax == t_bw)   out.breakdown.dominant = Bottleneck::StreamBandwidth;
  else if (dmax == t_lat)  out.breakdown.dominant = Bottleneck::Latency;
  else                     out.breakdown.dominant = Bottleneck::Compute;
  return out;
}

Prediction predict_paper_setup(const arch::MachineModel& m,
                               const WorkloadSignature& sig, int cores) {
  RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = paper_default_compiler(m);
  // §6: vectorised CG is ~3x slower on the C920v2, so the paper disabled
  // vectorisation for CG on the SG2044 (§5.4, Table 2 note).
  if (sig.kernel == Kernel::CG && m.name == "sg2044") cfg.compiler.vectorise = false;
  cfg.placement = ThreadPlacement::OsDefault;
  return predict(m, sig, cfg);
}

}  // namespace rvhpc::model
