#pragma once
// rvhpc::model — workload signatures.
//
// A WorkloadSignature is the model's abstraction of one benchmark at one
// problem size: how much work it does, what resources each unit of work
// demands (core cycles, streamed DRAM bytes, latency-bound accesses), how
// vectorisable it is, and how often it synchronises.  Signatures are
// calibrated once per (kernel, class) against the paper's SG2044
// measurements and are then shared unchanged across all eleven machines —
// cross-machine agreement is the model's consistency check.

#include <string>

namespace rvhpc::model {

/// The eight NAS Parallel Benchmarks plus the STREAM kernels.
enum class Kernel : std::uint8_t {
  IS,   ///< Integer Sort — memory-latency bound, random access
  MG,   ///< Multi-Grid — memory-bandwidth bound stencil
  EP,   ///< Embarrassingly Parallel — compute bound
  CG,   ///< Conjugate Gradient — irregular access + neighbour comms
  FT,   ///< 3-D FFT — all-to-all transposition
  BT,   ///< Block Tridiagonal pseudo-application
  LU,   ///< Lower-Upper Gauss-Seidel pseudo-application
  SP,   ///< Scalar Pentadiagonal pseudo-application
  StreamCopy,   ///< STREAM copy: pure data movement
  StreamTriad,  ///< STREAM triad: a[i] = b[i] + q*c[i]
  Hpl,          ///< Linpack-style dense LU (paper §7 future work)
  Hpcg,         ///< HPCG-style preconditioned CG (paper §7 future work)
};

/// NPB problem classes (S < W < A < B < C).
enum class ProblemClass : std::uint8_t { S, W, A, B, C };

[[nodiscard]] std::string to_string(Kernel k);
[[nodiscard]] std::string to_string(ProblemClass c);

/// Inverse of to_string(Kernel), case-insensitive ("cg", "CG",
/// "stream-triad"); throws std::invalid_argument listing the alternatives.
/// Shared by every tool that accepts kernel names (rvhpc-profile,
/// rvhpc-serve requests).
[[nodiscard]] Kernel parse_kernel(const std::string& name);

/// Inverse of to_string(ProblemClass), case-insensitive; throws
/// std::invalid_argument on anything but S, W, A, B or C.
[[nodiscard]] ProblemClass parse_problem_class(const std::string& name);

/// Resource demands of one benchmark at one problem size.
///
/// "op" below is the benchmark's own operation unit — the thing NPB counts
/// when it reports Mop/s — so predicted rates are directly comparable with
/// the paper's tables.
struct WorkloadSignature {
  Kernel kernel = Kernel::EP;
  ProblemClass problem_class = ProblemClass::C;

  double total_mop = 1.0;              ///< total work, millions of ops

  // --- core demand -------------------------------------------------------
  /// Core cycles per op on a reference core with sustained_scalar_opc == 1.
  double cycles_per_op = 1.0;
  /// Fraction of the cycle count that profitable auto-vectorisation covers.
  double vectorisable_fraction = 0.0;
  /// Cap on useful element-level parallelism in the vector loops (short
  /// trip counts, dependencies); the achieved vector speed-up never exceeds
  /// this regardless of vector width.
  double vector_elem_parallelism = 8.0;
  /// Fraction of the vectorised work that is indexed (gather/scatter);
  /// executes at the machine's gather_efficiency per lane.
  double gather_fraction = 0.0;
  /// Element width the vector loops operate on (64 = double, 32 = int).
  int element_bits = 64;
  /// Multiplier on auto-vectoriser quality for *young RVV backends only*:
  /// the deep loop nests of the pseudo-applications defeat GCC 15.2's VLA
  /// codegen far more than its mature x86/Arm backends (Table 6).
  double rvv_codegen_derate = 1.0;
  /// True for the deep multi-array loop nests (BT/LU/SP); engages the
  /// machine's complex_loop_efficiency.
  bool complex_control = false;
  /// Amdahl serial fraction of the compute (init, residual checks,
  /// non-parallelised glue).
  double serial_fraction = 0.0;
  /// Fraction of DRAM traffic that is reads (engages read_bw_bonus).
  double read_fraction = 0.5;

  // --- memory demand ------------------------------------------------------
  /// DRAM bytes streamed per op when the working set does not fit in LLC.
  double streamed_bytes_per_op = 0.0;
  /// Latency-bound (dependent / unpredictable) accesses per op.
  double random_access_per_op = 0.0;
  /// Fraction of the latency-bound accesses that hit in the last-level
  /// cache (the rest go to DRAM).  Captures streaming pollution: IS's
  /// histogram would fit the LLC, but the key stream keeps evicting it.
  double random_llc_hit_fraction = 0.5;
  /// Fraction of the core's miss-level parallelism the access pattern lets
  /// hardware exploit (1 = fully independent accesses, ->0 = dependent
  /// pointer-chase).
  double random_overlap = 1.0;
  /// True when the latency-bound accesses form a dependence chain with the
  /// surrounding arithmetic (CG's gather->multiply->accumulate).  In-order
  /// cores cannot speculate past such loads and lose almost all their miss
  /// parallelism; independent streams (IS histogram updates) are unaffected.
  bool dependent_chain = false;
  /// How sharply the LLC hit fraction degrades once the random footprint
  /// exceeds the available LLC: p *= (llc/footprint)^sensitivity.  Uniform
  /// gathers (CG) degrade linearly (1.0); skewed histograms (IS) retain
  /// locality (0.5).
  double capacity_sensitivity = 1.0;
  /// Footprint the random accesses land in (MiB); documentation + memsim.
  double random_footprint_mib = 0.0;
  /// Total data footprint (MiB); must fit DRAM or the run is DNR, and
  /// determines whether streamed traffic is LLC-filtered.
  double working_set_mib = 0.0;
  /// Inter-thread communication bytes per op (CG halo, FT transpose);
  /// materialises as extra memory traffic once more than one core runs.
  double comm_bytes_per_op = 0.0;

  // --- parallel structure --------------------------------------------------
  double global_syncs = 100.0;   ///< #global barriers/fork-joins in the run
  double imbalance_coeff = 0.02; ///< load imbalance growth with core count
};

}  // namespace rvhpc::model
