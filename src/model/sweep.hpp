#pragma once
// rvhpc::model — sweep drivers used by the bench harness.
//
// Thin loops over predict() that produce the row/series structures the
// paper's tables and figures need: core-count scaling curves, machine
// comparisons at fixed core counts, and compiler ablations.

#include <vector>

#include "arch/registry.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"

namespace rvhpc::model {

/// One point of a scaling curve.
struct ScalingPoint {
  int cores = 1;
  Prediction prediction;
};

/// One machine's scaling series for a kernel.
struct ScalingSeries {
  arch::MachineId machine;
  Kernel kernel;
  ProblemClass problem_class;
  std::vector<ScalingPoint> points;
};

/// Power-of-two core counts (1, 2, 4, ... max), always including max —
/// the x-axis the paper's Figures 1-6 use.
[[nodiscard]] std::vector<int> power_of_two_cores(int max_cores);

/// Scaling curve of `kernel` at `cls` on `id` with the paper's setup.
[[nodiscard]] ScalingSeries scale_cores(arch::MachineId id, Kernel kernel,
                                        ProblemClass cls);

/// As scale_cores, but with an explicit compiler/placement configuration
/// (core count in `cfg` is ignored; the sweep sets it).
[[nodiscard]] ScalingSeries scale_cores(arch::MachineId id, Kernel kernel,
                                        ProblemClass cls, RunConfig cfg);

/// The paper-setup prediction at exactly `cores` cores.
[[nodiscard]] Prediction at_cores(arch::MachineId id, Kernel kernel,
                                  ProblemClass cls, int cores);

/// Speed-up of `id` over `baseline` at `cores` (runtime ratio, >1 means
/// `id` is faster) — the framing of Tables 3, 4 and 6.
[[nodiscard]] double times_faster(arch::MachineId id, arch::MachineId baseline,
                                  Kernel kernel, ProblemClass cls, int cores);

}  // namespace rvhpc::model
