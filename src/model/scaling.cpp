#include "model/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace rvhpc::model {

std::string to_string(ThreadPlacement p) {
  switch (p) {
    case ThreadPlacement::OsDefault: return "os-default";
    case ThreadPlacement::Spread:    return "spread";
    case ThreadPlacement::Close:     return "close";
  }
  return "unknown";
}

ThreadPlacement parse_placement(const std::string& name) {
  if (name == "os-default") return ThreadPlacement::OsDefault;
  if (name == "spread") return ThreadPlacement::Spread;
  if (name == "close") return ThreadPlacement::Close;
  throw std::invalid_argument("unknown placement '" + name +
                              "' (expected os-default, spread or close)");
}

double soft_min(double a, double b, double p) {
  a = std::max(a, 1e-12);
  b = std::max(b, 1e-12);
  // Harmonic-power soft minimum: exact min as p -> infinity, ~16% below the
  // binding limit right at the knee for p = 5.  Normalised by the smaller
  // operand so extreme magnitudes cannot overflow/underflow the powers.
  const double m = std::min(a, b);
  const double ra = a / m, rb = b / m;
  return m * std::pow(std::pow(ra, -p) + std::pow(rb, -p), -1.0 / p);
}

double placement_bw_factor(const arch::MachineModel& m, int cores,
                           ThreadPlacement placement) {
  const auto& mem = m.memory;
  switch (placement) {
    case ThreadPlacement::OsDefault:
      // Unbound threads migrate and end up spreading load across all
      // controllers; on the SG2044 the paper found this the best policy.
      return 1.0;
    case ThreadPlacement::Spread:
      // Pinned-but-spread exercises every controller too, with a small
      // penalty for losing the OS's dynamic rebalancing.
      return 0.97;
    case ThreadPlacement::Close: {
      // Densely packed threads only reach the controllers of the NUMA
      // regions they occupy until the chip fills up.
      if (mem.numa_regions <= 1) return 0.95;
      const double cores_per_region =
          static_cast<double>(m.cores) / mem.numa_regions;
      const double regions_used =
          std::min<double>(mem.numa_regions,
                           std::ceil(static_cast<double>(cores) / cores_per_region));
      return regions_used / mem.numa_regions;
    }
  }
  return 1.0;
}

double chip_stream_bw_gbs(const arch::MachineModel& m, int cores,
                          ThreadPlacement placement) {
  const double demand = cores * m.memory.per_core_bw_gbs;
  const double supply =
      m.memory.chip_stream_bw_gbs() * placement_bw_factor(m, cores, placement);
  if (demand > supply) {
    if (obs::TraceSession* s = obs::session()) {
      s->add_instant("dram-channel-saturation", "scaling",
                     {{"machine", m.name},
                      {"cores", std::to_string(cores)},
                      {"placement", to_string(placement)},
                      {"demand_gbs", std::to_string(demand)},
                      {"supply_gbs", std::to_string(supply)}});
    }
  }
  return soft_min(demand, supply);
}

double chip_random_cap(const arch::MachineModel& m, double loaded_latency_s) {
  const double outstanding = static_cast<double>(m.memory.controllers) *
                             m.memory.controller_queue_depth;
  return outstanding / std::max(loaded_latency_s, 1e-12);
}

double loaded_dram_latency_s(const arch::MachineModel& m, double u) {
  u = std::clamp(u, 0.0, 0.95);
  // Quadratic queueing inflation; roughly x2 near 90% utilisation, matching
  // the plateau severity observed on the SG2042.
  return m.memory.idle_latency_ns * 1e-9 * (1.0 + 1.4 * u * u);
}

double sync_cost_s(const arch::MachineModel& m, const WorkloadSignature& sig,
                   int cores) {
  if (cores <= 1) return 0.0;
  // Centralised-then-tree barrier model: base fork cost plus a log term;
  // slower uncore clocks pay proportionally more.
  const double clock_scale = 2.5 / std::max(m.core.clock_ghz, 0.1);
  const double per_sync_us = (1.2 + 0.5 * std::log2(static_cast<double>(cores))) *
                             clock_scale;
  return sig.global_syncs * per_sync_us * 1e-6;
}

double imbalance_factor(const WorkloadSignature& sig, int cores) {
  if (cores <= 1) return 1.0;
  return 1.0 + sig.imbalance_coeff * std::log2(static_cast<double>(cores));
}

}  // namespace rvhpc::model
