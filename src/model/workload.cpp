#include "model/workload.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace rvhpc::model {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

std::string to_string(Kernel k) {
  switch (k) {
    case Kernel::IS: return "IS";
    case Kernel::MG: return "MG";
    case Kernel::EP: return "EP";
    case Kernel::CG: return "CG";
    case Kernel::FT: return "FT";
    case Kernel::BT: return "BT";
    case Kernel::LU: return "LU";
    case Kernel::SP: return "SP";
    case Kernel::StreamCopy:  return "STREAM-copy";
    case Kernel::StreamTriad: return "STREAM-triad";
    case Kernel::Hpl:         return "HPL";
    case Kernel::Hpcg:        return "HPCG";
  }
  return "unknown";
}

std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return "S";
    case ProblemClass::W: return "W";
    case ProblemClass::A: return "A";
    case ProblemClass::B: return "B";
    case ProblemClass::C: return "C";
  }
  return "?";
}

Kernel parse_kernel(const std::string& name) {
  static constexpr Kernel all[] = {
      Kernel::IS, Kernel::MG, Kernel::EP, Kernel::CG,
      Kernel::FT, Kernel::BT, Kernel::LU, Kernel::SP,
      Kernel::StreamCopy, Kernel::StreamTriad, Kernel::Hpl, Kernel::Hpcg};
  for (Kernel k : all) {
    if (lower(to_string(k)) == lower(name)) return k;
  }
  throw std::invalid_argument(
      "unknown kernel '" + name +
      "' (expected IS MG EP CG FT BT LU SP STREAM-copy STREAM-triad HPL "
      "HPCG, case-insensitive)");
}

ProblemClass parse_problem_class(const std::string& name) {
  const std::string u = lower(name);
  if (u == "s") return ProblemClass::S;
  if (u == "w") return ProblemClass::W;
  if (u == "a") return ProblemClass::A;
  if (u == "b") return ProblemClass::B;
  if (u == "c") return ProblemClass::C;
  throw std::invalid_argument("unknown problem class '" + name +
                              "' (expected S, W, A, B or C)");
}

}  // namespace rvhpc::model
