#include "model/workload.hpp"

namespace rvhpc::model {

std::string to_string(Kernel k) {
  switch (k) {
    case Kernel::IS: return "IS";
    case Kernel::MG: return "MG";
    case Kernel::EP: return "EP";
    case Kernel::CG: return "CG";
    case Kernel::FT: return "FT";
    case Kernel::BT: return "BT";
    case Kernel::LU: return "LU";
    case Kernel::SP: return "SP";
    case Kernel::StreamCopy:  return "STREAM-copy";
    case Kernel::StreamTriad: return "STREAM-triad";
    case Kernel::Hpl:         return "HPL";
    case Kernel::Hpcg:        return "HPCG";
  }
  return "unknown";
}

std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return "S";
    case ProblemClass::W: return "W";
    case ProblemClass::A: return "A";
    case ProblemClass::B: return "B";
    case ProblemClass::C: return "C";
  }
  return "?";
}

}  // namespace rvhpc::model
