#pragma once
// rvhpc::model — the paper's published numbers, in one place.
//
// Every quantitative value from the paper's tables (and the figure
// statements made in its prose) lives here so that benches can print
// paper-vs-reproduced side by side and tests can assert shape agreement.
// Values are transcribed from the SC'25 text; "DNR" (did not run) entries
// are represented by a missing optional.

#include <optional>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "model/workload.hpp"

namespace rvhpc::model::paper {

/// Table 1 — NPB memory behaviour on the Xeon Platinum 8170 (from [3]).
struct StallProfile {
  Kernel kernel;
  double cache_stall_pct;      ///< % clock ticks stalled on cache
  double ddr_stall_pct;        ///< % clock ticks stalled on DRAM
  double ddr_bw_bound_pct;     ///< % time DDR bandwidth utilisation high
};
[[nodiscard]] const std::vector<StallProfile>& table1();

/// Table 2 — single-core class B Mop/s across RISC-V machines.
struct SingleCoreRow {
  Kernel kernel;
  arch::MachineId machine;
  std::optional<double> mops;  ///< nullopt = DNR (FT on the Allwinner D1)
};
[[nodiscard]] const std::vector<SingleCoreRow>& table2();
/// Table 2 lookup; nullopt when the paper has no value or reports DNR.
[[nodiscard]] std::optional<double> table2_mops(Kernel k, arch::MachineId m);

/// Tables 3/4 — SG2044 vs SG2042, class C Mop/s at 1 and 64 cores.
struct Sg2042Comparison {
  Kernel kernel;
  double sg2044_mops;
  double sg2042_mops;
};
[[nodiscard]] const std::vector<Sg2042Comparison>& table3_single_core();
[[nodiscard]] const std::vector<Sg2042Comparison>& table4_64_cores();

/// Table 6 — pseudo-applications: times-faster-than-SG2044 per CPU and
/// core count (class C).  nullopt where the CPU has fewer cores.
struct PseudoAppRow {
  Kernel kernel;
  int cores;
  std::optional<double> sg2042;
  std::optional<double> epyc;
  std::optional<double> skylake;
  std::optional<double> thunderx2;
};
[[nodiscard]] const std::vector<PseudoAppRow>& table6();

/// Tables 7/8 — SG2044 compiler/vectorisation ablation, class C Mop/s.
struct CompilerAblationRow {
  Kernel kernel;
  double gcc12;         ///< GCC 12.3.1 (openEuler default)
  double gcc15_vector;  ///< GCC 15.2, vectorisation enabled
  double gcc15_scalar;  ///< GCC 15.2, vectorisation disabled
};
[[nodiscard]] const std::vector<CompilerAblationRow>& table7_single_core();
[[nodiscard]] const std::vector<CompilerAblationRow>& table8_64_cores();

/// Figure 1 prose anchors — STREAM copy bandwidth behaviour.
struct StreamAnchors {
  double similar_up_to_cores = 8;     ///< both CPUs comparable to here
  double sg2044_over_sg2042_at_64 = 3.0;  ///< ">3x" at 64 cores
};
[[nodiscard]] StreamAnchors figure1();

/// §5 prose anchors for the scaling figures (single-core ratios vs SG2044).
struct ScalingAnchors {
  double is_epyc_over_sg2044_1core = 2.0;     ///< "around twice"
  double is_skylake_over_sg2044_1core = 3.0;  ///< "around three times"
};
[[nodiscard]] ScalingAnchors figure_anchors();

/// §6 prose — CG matrix-vector unroll ablation (vectorised, single core,
/// relative to the default vectorised version).
struct CgUnrollAblation {
  double unroll2_speedup = 1.12;
  double unroll8_speedup = 1.64;
};
[[nodiscard]] CgUnrollAblation cg_unroll();

}  // namespace rvhpc::model::paper
