#include "model/compiler.hpp"

#include <cctype>
#include <stdexcept>

namespace rvhpc::model {

using arch::VectorIsa;

std::string to_string(CompilerId id) {
  switch (id) {
    case CompilerId::XuanTieGcc8_4: return "XuanTie GCC 8.4";
    case CompilerId::Gcc8_4:        return "GCC 8.4";
    case CompilerId::Gcc9_2:        return "GCC 9.2";
    case CompilerId::Gcc11_2:       return "GCC 11.2";
    case CompilerId::Gcc12_3_1:     return "GCC 12.3.1";
    case CompilerId::Gcc15_2:       return "GCC 15.2";
    case CompilerId::Clang17:       return "Clang/LLVM 17";
  }
  return "unknown";
}

CompilerId parse_compiler_id(const std::string& name) {
  static constexpr CompilerId all[] = {
      CompilerId::XuanTieGcc8_4, CompilerId::Gcc8_4,    CompilerId::Gcc9_2,
      CompilerId::Gcc11_2,       CompilerId::Gcc12_3_1, CompilerId::Gcc15_2,
      CompilerId::Clang17};
  const auto fold = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  };
  std::string alternatives;
  for (CompilerId id : all) {
    if (fold(to_string(id)) == fold(name)) return id;
    if (!alternatives.empty()) alternatives += ", ";
    alternatives += "'" + to_string(id) + "'";
  }
  throw std::invalid_argument("unknown compiler '" + name + "' (expected " +
                              alternatives + ")");
}

bool can_target(CompilerId id, VectorIsa isa) {
  switch (isa) {
    case VectorIsa::None:
      return false;
    case VectorIsa::RvvV0_7:
      // Only T-Head's fork ever supported the unratified draft (§2.1).
      return id == CompilerId::XuanTieGcc8_4;
    case VectorIsa::RvvV1_0:
      // Foundational RVV support landed in GCC 13.1, full support in 14;
      // of the GCC toolchains in the study only 15.2 qualifies (§6).
      // LLVM has supported RVV for longer (§7).
      return id == CompilerId::Gcc15_2 || id == CompilerId::Clang17;
    case VectorIsa::Avx2:
    case VectorIsa::Avx512:
    case VectorIsa::Neon:
      // Mature x86/Arm backends: every mainline GCC in the study.
      return id != CompilerId::XuanTieGcc8_4;
  }
  return false;
}

double autovec_quality(CompilerId id, VectorIsa isa) {
  if (!can_target(id, isa)) return 0.0;
  if (id == CompilerId::Clang17 && isa == VectorIsa::RvvV1_0) {
    return 0.86;  // LLVM's longer-lived RVV backend generates tighter VLA code
  }
  switch (isa) {
    case VectorIsa::RvvV1_0: return 0.80;  // young backend, VLA codegen
    case VectorIsa::RvvV0_7: return 0.70;  // fork lags mainline optimisers
    case VectorIsa::Avx2:    return 0.85;
    case VectorIsa::Avx512:  return 0.80;  // downclock/port-sharing losses
    case VectorIsa::Neon:    return 0.80;
    case VectorIsa::None:    return 0.0;
  }
  return 0.0;
}

bool gather_autovec(CompilerId id) {
  return id == CompilerId::Gcc15_2 || id == CompilerId::Clang17;
}

double scalar_quality(CompilerId id, Kernel kernel) {
  // Calibrated against Table 7 (single-core SG2044): GCC 12.3.1 versus
  // GCC 15.2 with vectorisation disabled.  Ratios differ in both
  // directions — e.g. 12.3.1 emits *better* scalar MG (1373 vs 1300 Mop/s)
  // but worse FT (887 vs 983) — reflecting loop-optimiser churn between
  // the releases.
  if (id == CompilerId::Gcc12_3_1) {
    switch (kernel) {
      case Kernel::IS: return 1.00;
      case Kernel::MG: return 1.055;  // 1373.31 / 1300.27
      case Kernel::EP: return 0.995;
      case Kernel::CG: return 0.966;  // 210.06 / 217.53
      case Kernel::FT: return 0.903;  // 887.43 / 982.93
      default:         return 0.97;
    }
  }
  // T-Head's fork beat mainline GCC 15.2 on the SG2042 overall (§4); its
  // hand-tuned C9xx scheduling shows most on EP's transcendental chains.
  if (id == CompilerId::XuanTieGcc8_4) {
    switch (kernel) {
      case Kernel::EP: return 1.10;
      case Kernel::MG: return 0.97;
      case Kernel::FT: return 0.97;
      default:         return 1.00;
    }
  }
  // Older mainline toolchains: mildly weaker scalar optimisation, uniform
  // across kernels (no paper data to differentiate further).
  switch (id) {
    case CompilerId::XuanTieGcc8_4: return 0.97;
    case CompilerId::Gcc8_4:        return 0.96;
    case CompilerId::Gcc9_2:        return 0.97;
    case CompilerId::Gcc11_2:       return 0.99;
    default:                        return 1.0;
  }
}

double parallel_quality(CompilerId id, Kernel kernel) {
  // Table 8: GCC 12.3.1 loses 26% on IS and ~3-8% elsewhere at 64 cores
  // relative to GCC 15.2 even though single-core rates are equal —
  // attributed to libgomp and reduction/exchange codegen improvements.
  if (id == CompilerId::Gcc12_3_1) {
    switch (kernel) {
      case Kernel::IS: return 0.745;  // 2255.72 / 3024.63 (both scalar paths)
      case Kernel::FT: return 0.98;
      default:         return 0.995;
    }
  }
  if (id == CompilerId::XuanTieGcc8_4) return 0.97;
  if (id == CompilerId::Gcc8_4 || id == CompilerId::Gcc9_2) return 0.98;
  return 1.0;
}

CompilerConfig paper_default_compiler(const arch::MachineModel& m) {
  if (m.name == "sg2042") return {CompilerId::XuanTieGcc8_4, true};
  if (m.name == "epyc7742") return {CompilerId::Gcc11_2, true};
  if (m.name == "xeon8170") return {CompilerId::Gcc8_4, true};
  if (m.name == "thunderx2") return {CompilerId::Gcc9_2, true};
  // SG2044 and all the RISC-V boards were measured with GCC 15.2 (§3, §6).
  return {CompilerId::Gcc15_2, true};
}

}  // namespace rvhpc::model
