#pragma once
// rvhpc::model — compiler & vectorisation model.
//
// The paper's §6 shows that which compiler (and whether its auto-vectoriser
// can target the machine's vector ISA) changes results materially: mainline
// GCC < 13 cannot vectorise for RVV 1.0 at all, the SG2042's RVV 0.7.1 is
// only reachable through T-Head's XuanTie GCC 8.4 fork, and vectorised CG
// is ~3x *slower* on the C920v2.  This module encodes exactly that support
// matrix plus a per-kernel scalar code-quality table calibrated from the
// paper's Table 7/8.

#include <string>

#include "arch/machine.hpp"
#include "model/workload.hpp"

namespace rvhpc::model {

/// Toolchains used across the paper's experiments.
enum class CompilerId : std::uint8_t {
  XuanTieGcc8_4,  ///< T-Head fork; the only compiler targeting RVV 0.7.1
  Gcc8_4,         ///< mainline (Skylake system compiler)
  Gcc9_2,         ///< mainline (ThunderX2 / Fulhame)
  Gcc11_2,        ///< mainline (EPYC / ARCHER2)
  Gcc12_3_1,      ///< openEuler default on the SG2044 — no RVV 1.0 autovec
  Gcc15_2,        ///< latest release; full RVV 1.0 auto-vectorisation
  Clang17,        ///< LLVM (§7 future work): RVV support predates GCC's
};

[[nodiscard]] std::string to_string(CompilerId id);

/// Inverse of to_string(CompilerId) ("GCC 15.2", "XuanTie GCC 8.4", ...),
/// case-insensitive; throws std::invalid_argument listing the toolchains.
[[nodiscard]] CompilerId parse_compiler_id(const std::string& name);

/// A concrete build configuration: toolchain plus whether vectorisation is
/// requested (-O3 always assumed; `vectorise=false` models
/// -fno-tree-vectorize as used in Tables 7/8).
struct CompilerConfig {
  CompilerId id = CompilerId::Gcc15_2;
  bool vectorise = true;
};

/// True when `id`'s auto-vectoriser can emit code for `isa` at all.
[[nodiscard]] bool can_target(CompilerId id, arch::VectorIsa isa);

/// Quality of the auto-vectorised code for `isa` in (0, 1]: the fraction of
/// peak per-lane throughput the generated loops reach.  Zero when the ISA
/// cannot be targeted.
[[nodiscard]] double autovec_quality(CompilerId id, arch::VectorIsa isa);

/// True when `id` vectorises indexed (gather/scatter) loops at all.  Only
/// recent toolchains do; older ones leave CG's SpMV inner loop scalar,
/// which is why the SG2042's XuanTie GCC never exhibits the CG pathology.
[[nodiscard]] bool gather_autovec(CompilerId id);

/// Relative scalar code quality for `kernel` versus the GCC 15.2 baseline
/// (== 1.0).  Calibrated from Table 7's GCC 12.3.1 vs 15.2-novec columns;
/// defaults to slightly below 1 for older toolchains.
[[nodiscard]] double scalar_quality(CompilerId id, Kernel kernel);

/// Relative efficiency of the *parallel* execution path (OpenMP runtime,
/// reduction/exchange codegen) versus GCC 15.2.  Table 8 shows IS gains 35%
/// at 64 cores from the newer toolchain while its single-core rate is
/// unchanged — an effect scalar code quality cannot produce, so it is
/// carried as a separate calibrated factor.  1.0 = baseline; applied only
/// when more than one core runs.
[[nodiscard]] double parallel_quality(CompilerId id, Kernel kernel);

/// The compiler the paper used on each machine for the headline results
/// (§3-§5): GCC 15.2 on SG2044 and the boards, XuanTie GCC 8.4 on SG2042,
/// GCC 11.2 on EPYC, 8.4 on Skylake, 9.2 on ThunderX2.
[[nodiscard]] CompilerConfig paper_default_compiler(const arch::MachineModel& m);

}  // namespace rvhpc::model
