#pragma once
// rvhpc::model — top-level performance predictor.
//
// predict() is the library's primary entry point: given a machine, a
// workload signature and a build configuration it returns the modelled
// runtime, the Mop/s rate the paper's tables report, and a breakdown of
// where the time went.  Every reproduced table and figure in bench/ is a
// sweep over this function.

#include <string>

#include "arch/machine.hpp"
#include "model/compiler.hpp"
#include "model/scaling.hpp"
#include "model/singlecore.hpp"
#include "model/workload.hpp"

namespace rvhpc::model {

/// Which modelled resource dominated the runtime.
enum class Bottleneck : std::uint8_t { Compute, StreamBandwidth, Latency, Sync };

[[nodiscard]] std::string to_string(Bottleneck b);

/// Execution configuration for one prediction.
struct RunConfig {
  int cores = 1;
  CompilerConfig compiler{};
  ThreadPlacement placement = ThreadPlacement::OsDefault;
};

/// Time decomposition of a prediction (seconds of the critical path).
struct TimeBreakdown {
  double compute_s = 0.0;   ///< retired-instruction time
  double stream_s = 0.0;    ///< streamed DRAM traffic time
  double latency_s = 0.0;   ///< latency-bound access time
  double sync_s = 0.0;      ///< barriers / fork-join
  double imbalance = 1.0;   ///< multiplier applied to the parallel part
  Bottleneck dominant = Bottleneck::Compute;
};

/// Result of one modelled run.
struct Prediction {
  bool ran = true;            ///< false => DNR (paper Table 2 on the D1)
  std::string dnr_reason;
  double seconds = 0.0;
  double mops = 0.0;          ///< the paper's reporting unit
  double achieved_bw_gbs = 0.0;  ///< streamed DRAM bandwidth actually drawn
  VectorOutcome vector;
  TimeBreakdown breakdown;
};

/// Models one run of `sig` on `m` under `cfg`.
[[nodiscard]] Prediction predict(const arch::MachineModel& m,
                                 const WorkloadSignature& sig,
                                 const RunConfig& cfg);

/// The configuration the paper ran `kernel` with on `m` at `cores`: the
/// machine's published compiler, OS-default placement, and the §5.4
/// vectorisation exceptions (CG on the SG2044).  This is the RunConfig the
/// engine's add_paper_setup requests and predict_paper_setup share.
[[nodiscard]] RunConfig paper_run_config(const arch::MachineModel& m,
                                         Kernel kernel, int cores);

/// Convenience: prediction with the compiler the paper used on `m` and the
/// paper's OpenMP setup.
[[nodiscard]] Prediction predict_paper_setup(const arch::MachineModel& m,
                                             const WorkloadSignature& sig,
                                             int cores);

}  // namespace rvhpc::model
