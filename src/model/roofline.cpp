#include "model/roofline.hpp"

#include <algorithm>

#include "model/scaling.hpp"
#include "model/singlecore.hpp"

namespace rvhpc::model {

Roofline roofline(const arch::MachineModel& m, int cores,
                  const CompilerConfig& cc) {
  Roofline r;
  // A fully-vectorisable streaming workload defines the compute roof.
  WorkloadSignature ideal;
  ideal.kernel = Kernel::StreamTriad;
  ideal.cycles_per_op = 1.0;
  ideal.vectorisable_fraction = 1.0;
  ideal.vector_elem_parallelism = 1e9;
  r.peak_gops = core_ops_per_second(m, ideal, cc) * cores / 1e9;
  r.bandwidth_gbs = chip_stream_bw_gbs(m, cores, ThreadPlacement::OsDefault);
  r.balance_ops_per_byte =
      r.bandwidth_gbs > 0.0 ? r.peak_gops / r.bandwidth_gbs : 0.0;
  return r;
}

double attainable_gops(const Roofline& r, double ops_per_byte) {
  return std::min(r.peak_gops, std::max(ops_per_byte, 0.0) * r.bandwidth_gbs);
}

double arithmetic_intensity(const WorkloadSignature& sig) {
  if (sig.streamed_bytes_per_op <= 0.0) return 1e9;  // compute bound
  return 1.0 / sig.streamed_bytes_per_op;
}

}  // namespace rvhpc::model
