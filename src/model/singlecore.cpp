#include "model/singlecore.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"

namespace rvhpc::model {

VectorOutcome vector_outcome(const arch::MachineModel& m,
                             const WorkloadSignature& sig,
                             const CompilerConfig& cc) {
  VectorOutcome out;
  const arch::VectorUnit& v = m.core.vector;
  if (!cc.vectorise || !v.usable() || !can_target(cc.id, v.isa) ||
      sig.vectorisable_fraction <= 0.0) {
    return out;  // scalar execution
  }
  out.vectorised = true;

  double vf = std::clamp(sig.vectorisable_fraction, 0.0, 1.0);
  double g = std::clamp(sig.gather_fraction, 0.0, 1.0);
  if (!gather_autovec(cc.id)) {
    // Older vectorisers leave indexed loops scalar: the gather share of
    // the work simply stays on the scalar path.
    vf *= (1.0 - g);
    g = 0.0;
  }

  const double quality = autovec_quality(cc.id, v.isa);
  const bool rvv = v.isa == arch::VectorIsa::RvvV1_0 ||
                   v.isa == arch::VectorIsa::RvvV0_7;
  // The RVV derate models *coverage*: the share of profitable loops the
  // young VLA backend manages to vectorise at all.  The loops it does
  // vectorise run at full quality; the rest stay scalar.
  if (rvv) vf *= std::clamp(sig.rvv_codegen_derate, 0.05, 1.0);
  const double lanes =
      static_cast<double>(v.width_bits) / static_cast<double>(sig.element_bits);

  // Unit-stride loops use every pipe; capped by the element-level
  // parallelism the kernel's loop structure exposes.
  out.unit_stride_speedup =
      std::min(lanes * v.pipes * quality, sig.vector_elem_parallelism);
  out.unit_stride_speedup = std::max(out.unit_stride_speedup, 0.05);

  // Indexed (gather/scatter) loops: one element per lane at the machine's
  // gather efficiency, extra pipes do not help.  On the C920v2 this lands
  // below 1.0 — vectorising makes the loop *slower*, the paper's §6 CG
  // pathology.
  out.gather_speedup = std::max(lanes * v.gather_efficiency * quality, 0.05);

  const double vec_combined =
      1.0 / ((1.0 - g) / out.unit_stride_speedup + g / out.gather_speedup);

  out.blended_speedup = 1.0 / ((1.0 - vf) + vf / vec_combined);
  return out;
}

double core_ops_per_second(const arch::MachineModel& m,
                           const WorkloadSignature& sig,
                           const CompilerConfig& cc) {
  const VectorOutcome vec = vector_outcome(m, sig, cc);
  const double blend = vec.blended_speedup;
  double opc = m.core.sustained_scalar_opc *
               scalar_quality(cc.id, sig.kernel) * blend;
  if (sig.complex_control) opc *= m.core.complex_loop_efficiency;
  const double rate =
      m.core.clock_ghz * 1e9 * opc / std::max(sig.cycles_per_op, 1e-9);
  if (obs::TraceSession* s = obs::session()) {
    obs::Args args = {{"machine", m.name},
                      {"kernel", to_string(sig.kernel)},
                      {"ops_per_second", std::to_string(rate)},
                      {"vectorised", vec.vectorised ? "yes" : "no"}};
    if (vec.vectorised) {
      args.emplace_back("blended_speedup", std::to_string(blend));
      // The §6 pathology: vector code slower than scalar.
      if (blend < 1.0) args.emplace_back("vector_pathology", "true");
    }
    s->add_instant("core-rate", "singlecore", std::move(args));
  }
  return rate;
}

double random_access_latency_s(const arch::MachineModel& m,
                               const WorkloadSignature& sig,
                               double dram_latency_s) {
  const double clock_hz = m.core.clock_ghz * 1e9;
  const double llc_latency_s =
      m.caches.empty() ? 1.0 / clock_hz : m.caches.back().latency_cycles / clock_hz;
  const double p = effective_llc_hit_fraction(m, sig);
  return p * llc_latency_s + (1.0 - p) * dram_latency_s;
}

double effective_llc_hit_fraction(const arch::MachineModel& m,
                                  const WorkloadSignature& sig) {
  double p = std::clamp(sig.random_llc_hit_fraction, 0.0, 1.0);
  // Capacity cap: when the randomly-touched footprint exceeds the LLC the
  // hit fraction cannot be sustained (CG's x vector vs the D1's 256 KiB).
  // Streaming traffic bigger than the LLC halves the capacity effectively
  // available to the random set — the matrix stream and the gathered x
  // fight for the same ways.
  const double footprint = sig.random_footprint_mib * 1024.0 * 1024.0;
  double llc = static_cast<double>(m.llc_bytes());
  if (sig.working_set_mib * 1024.0 * 1024.0 > llc) llc *= 0.5;
  if (footprint > 0.0 && llc > 0.0 && footprint > llc) {
    p *= std::pow(llc / footprint,
                  std::clamp(sig.capacity_sensitivity, 0.0, 2.0));
  }
  return p;
}

double core_random_rate(const arch::MachineModel& m,
                        const WorkloadSignature& sig,
                        double dram_latency_s) {
  // In-order cores cannot speculate past a stalled dependent load, so they
  // realise almost none of their nominal miss parallelism on chained
  // accesses — a large part of why CG collapses on the small boards.
  // Independent access streams (IS) still overlap via non-blocking caches.
  const double order_factor =
      (!m.core.out_of_order && sig.dependent_chain) ? 0.25 : 1.0;
  const double mlp =
      std::max(1.0, m.core.miss_level_parallelism * order_factor *
                        std::clamp(sig.random_overlap, 0.0, 1.0));
  double lat = random_access_latency_s(m, sig, dram_latency_s);
  // An in-order pipeline also pays the full load-use + FP dependence chain
  // (~10 cycles) on every element of a chained access stream.
  if (!m.core.out_of_order && sig.dependent_chain) {
    lat += 10.0 / (m.core.clock_ghz * 1e9);
  }
  return mlp / std::max(lat, 1e-12);
}

}  // namespace rvhpc::model
