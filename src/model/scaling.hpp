#pragma once
// rvhpc::model — multicore aggregation.
//
// The paper's central result is a scaling story: the SG2042's four memory
// controllers saturate between 8 and 16 cores while the SG2044's 32 keep
// scaling (Fig. 1), which is what turns a 1.08-1.30x single-core edge into
// a 1.52-4.91x 64-core edge (Tables 3/4).  This module holds the chip-level
// resource curves that produce that behaviour.

#include "arch/machine.hpp"
#include "model/workload.hpp"

namespace rvhpc::model {

/// Thread placement policies explored in §5.2 (OMP_PROC_BIND/OMP_PLACES).
enum class ThreadPlacement : std::uint8_t {
  OsDefault,   ///< unbound; OS migrates threads (best on the SG2044)
  Spread,      ///< pinned round-robin across the chip
  Close,       ///< pinned densely, filling clusters/NUMA regions in order
};

[[nodiscard]] std::string to_string(ThreadPlacement p);

/// Inverse of to_string(ThreadPlacement) ("os-default", "spread",
/// "close"); throws std::invalid_argument on anything else.
[[nodiscard]] ThreadPlacement parse_placement(const std::string& name);

/// Smooth minimum with a hard-knee limit: approaches min(a, b) with a knee
/// sharpness p (higher = sharper).  Used for resource saturation so scaling
/// curves bend rather than kink.
[[nodiscard]] double soft_min(double a, double b, double p = 5.0);

/// Chip streaming bandwidth available to `cores` active cores (GB/s):
/// soft-min of demand-side (cores x per-core link) and supply-side
/// (channels x channel bandwidth x efficiency), scaled by the placement's
/// controller-utilisation factor.
[[nodiscard]] double chip_stream_bw_gbs(const arch::MachineModel& m, int cores,
                                        ThreadPlacement placement);

/// Fraction of the machine's controllers a placement can exercise with
/// `cores` active threads (the NUMA/controller-spread effect of §5.2).
[[nodiscard]] double placement_bw_factor(const arch::MachineModel& m, int cores,
                                         ThreadPlacement placement);

/// Chip-wide cap on latency-bound accesses/second that must leave the LLC:
/// controllers x queue depth / loaded DRAM latency.  This is the wall the
/// SG2042 hits on IS.
[[nodiscard]] double chip_random_cap(const arch::MachineModel& m,
                                     double loaded_dram_latency_s);

/// DRAM latency under load: idle latency inflated by queueing as estimated
/// utilisation `u` in [0,1) approaches saturation.
[[nodiscard]] double loaded_dram_latency_s(const arch::MachineModel& m, double u);

/// Cost in seconds of the run's global synchronisations (fork/join and
/// barriers) with `cores` threads.
[[nodiscard]] double sync_cost_s(const arch::MachineModel& m,
                                 const WorkloadSignature& sig, int cores);

/// Load-imbalance multiplier (>= 1) on the parallel portion.
[[nodiscard]] double imbalance_factor(const WorkloadSignature& sig, int cores);

}  // namespace rvhpc::model
