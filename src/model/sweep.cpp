#include "model/sweep.hpp"

#include "engine/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvhpc::model {

std::vector<int> power_of_two_cores(int max_cores) {
  std::vector<int> v;
  for (int n = 1; n < max_cores; n *= 2) v.push_back(n);
  v.push_back(max_cores);
  return v;
}

ScalingSeries scale_cores(arch::MachineId id, Kernel kernel, ProblemClass cls) {
  const arch::MachineModel& m = arch::machine(id);
  RunConfig cfg;
  cfg.compiler = paper_run_config(m, kernel, /*cores=*/1).compiler;
  return scale_cores(id, kernel, cls, cfg);
}

ScalingSeries scale_cores(arch::MachineId id, Kernel kernel, ProblemClass cls,
                          RunConfig cfg) {
  const arch::MachineModel& m = arch::machine(id);
  const WorkloadSignature sig = signature(kernel, cls);
  obs::ScopedTimer timer(obs::timer_target("rvhpc_sweep_wall_seconds"));
  obs::ScopedSpan span("sweep", "scale_cores");

  engine::RequestSet set;
  for (int n : power_of_two_cores(m.cores)) {
    cfg.cores = n;
    set.add(m, sig, cfg);
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  ScalingSeries series{id, kernel, cls, {}};
  series.points.reserve(results.size());
  for (const engine::PredictionResult& r : results)
    series.points.push_back(
        {set.requests()[r.index].config().cores, r.prediction});

  if (obs::metrics_enabled()) {
    static obs::Counter& points = obs::Registry::global().counter(
        "rvhpc_sweep_points_total", "core-count points evaluated by sweeps");
    points.add(series.points.size());
  }
  if (span.active()) {
    span.arg("machine", arch::name_of(id));
    span.arg("kernel", to_string(kernel));
    span.arg("class", to_string(cls));
    span.arg("points", std::to_string(series.points.size()));
  }
  return series;
}

Prediction at_cores(arch::MachineId id, Kernel kernel, ProblemClass cls,
                    int cores) {
  const arch::MachineModel& m = arch::machine(id);
  return engine::default_evaluator().evaluate_one(
      m, signature(kernel, cls), paper_run_config(m, kernel, cores));
}

double times_faster(arch::MachineId id, arch::MachineId baseline, Kernel kernel,
                    ProblemClass cls, int cores) {
  const Prediction a = at_cores(id, kernel, cls, cores);
  const Prediction b = at_cores(baseline, kernel, cls, cores);
  if (!a.ran || !b.ran || a.seconds <= 0.0) return 0.0;
  return b.seconds / a.seconds;
}

}  // namespace rvhpc::model
