#pragma once
// rvhpc::model — roofline utilities.
//
// Classic roofline analysis on top of the machine models: peak compute,
// sustained bandwidth, the machine balance point, and attainable
// performance for a given arithmetic intensity.  Used by the examples and
// by tests as an independent cross-check of the full predictor.

#include "arch/machine.hpp"
#include "model/compiler.hpp"
#include "model/workload.hpp"

namespace rvhpc::model {

/// A machine's roofline at a given active core count.
struct Roofline {
  double peak_gops = 0.0;       ///< compute roof (giga-ops/s, vector incl.)
  double bandwidth_gbs = 0.0;   ///< streaming roof
  double balance_ops_per_byte = 0.0;  ///< intensity where the roofs cross
};

/// Builds the roofline for `cores` active cores of `m` under compiler `cc`.
[[nodiscard]] Roofline roofline(const arch::MachineModel& m, int cores,
                                const CompilerConfig& cc);

/// Attainable ops/s at arithmetic intensity `ops_per_byte`:
/// min(peak, intensity x bandwidth).
[[nodiscard]] double attainable_gops(const Roofline& r, double ops_per_byte);

/// Arithmetic intensity of a workload signature (ops per streamed byte).
[[nodiscard]] double arithmetic_intensity(const WorkloadSignature& sig);

}  // namespace rvhpc::model
