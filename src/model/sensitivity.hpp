#pragma once
// rvhpc::model — parameter sensitivity analysis.
//
// The paper's explanations are causal claims ("the 32 memory controllers
// are why IS scales", "RVV 1.0 is why EP gained").  This module makes the
// model's version of those claims quantitative: the elasticity of a
// prediction with respect to each continuous machine parameter,
//     e = d log(Mop/s) / d log(parameter),
// estimated by central finite differences.  e ~ 1 means "performance is
// proportional to this parameter"; e ~ 0 means "does not matter here".

#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "model/predictor.hpp"

namespace rvhpc::model {

/// One parameter's elasticity for a given (machine, workload, cores).
struct Sensitivity {
  std::string parameter;   ///< e.g. "core.clock_ghz"
  double elasticity = 0.0; ///< d log mops / d log parameter
};

/// The continuous machine parameters the analysis perturbs.
[[nodiscard]] const std::vector<std::string>& sensitivity_parameters();

/// Elasticities of predict(m, sig, cfg).mops w.r.t. every parameter in
/// sensitivity_parameters(), sorted by |elasticity| descending.
/// `relative_step` is the multiplicative perturbation (default 5%).
[[nodiscard]] std::vector<Sensitivity> sensitivities(
    const arch::MachineModel& m, const WorkloadSignature& sig,
    const RunConfig& cfg, double relative_step = 0.05);

/// Returns a copy of `m` with `parameter` multiplied by `factor`; throws
/// std::invalid_argument for unknown parameter names.
[[nodiscard]] arch::MachineModel perturbed(const arch::MachineModel& m,
                                           const std::string& parameter,
                                           double factor);

}  // namespace rvhpc::model
