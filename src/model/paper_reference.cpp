#include "model/paper_reference.hpp"

namespace rvhpc::model::paper {

using arch::MachineId;

const std::vector<StallProfile>& table1() {
  static const std::vector<StallProfile> t = {
      {Kernel::IS, 35, 0, 16}, {Kernel::MG, 34, 20, 88}, {Kernel::EP, 11, 0, 0},
      {Kernel::CG, 19, 18, 0}, {Kernel::FT, 13, 9, 18},  {Kernel::BT, 8, 9, 0},
      {Kernel::LU, 12, 11, 0}, {Kernel::SP, 20, 21, 0},
  };
  return t;
}

const std::vector<SingleCoreRow>& table2() {
  static const std::vector<SingleCoreRow> t = {
      {Kernel::IS, MachineId::Sg2044, 64.68},
      {Kernel::IS, MachineId::VisionFiveV2, 17.84},
      {Kernel::IS, MachineId::VisionFiveV1, 6.36},
      {Kernel::IS, MachineId::SifiveU740, 9.09},
      {Kernel::IS, MachineId::AllwinnerD1, 5.41},
      {Kernel::IS, MachineId::BananaPiF3, 22.66},
      {Kernel::IS, MachineId::MilkVJupiter, 24.75},

      {Kernel::MG, MachineId::Sg2044, 1472.32},
      {Kernel::MG, MachineId::VisionFiveV2, 288.65},
      {Kernel::MG, MachineId::VisionFiveV1, 72.31},
      {Kernel::MG, MachineId::SifiveU740, 90.28},
      {Kernel::MG, MachineId::AllwinnerD1, 163.19},
      {Kernel::MG, MachineId::BananaPiF3, 306.78},
      {Kernel::MG, MachineId::MilkVJupiter, 335.38},

      {Kernel::EP, MachineId::Sg2044, 40.75},
      {Kernel::EP, MachineId::VisionFiveV2, 12.01},
      {Kernel::EP, MachineId::VisionFiveV1, 7.55},
      {Kernel::EP, MachineId::SifiveU740, 9.08},
      {Kernel::EP, MachineId::AllwinnerD1, 9.23},
      {Kernel::EP, MachineId::BananaPiF3, 18.17},
      {Kernel::EP, MachineId::MilkVJupiter, 20.4},

      {Kernel::CG, MachineId::Sg2044, 269.37},
      {Kernel::CG, MachineId::VisionFiveV2, 43.61},
      {Kernel::CG, MachineId::VisionFiveV1, 21.96},
      {Kernel::CG, MachineId::SifiveU740, 29.09},
      {Kernel::CG, MachineId::AllwinnerD1, 12.99},
      {Kernel::CG, MachineId::BananaPiF3, 23.71},
      {Kernel::CG, MachineId::MilkVJupiter, 24.42},

      {Kernel::FT, MachineId::Sg2044, 1296.22},
      {Kernel::FT, MachineId::VisionFiveV2, 245.99},
      {Kernel::FT, MachineId::VisionFiveV1, 88.35},
      {Kernel::FT, MachineId::SifiveU740, 116.59},
      {Kernel::FT, MachineId::AllwinnerD1, std::nullopt},  // DNR: 1 GiB DRAM
      {Kernel::FT, MachineId::BananaPiF3, 362.8},
      {Kernel::FT, MachineId::MilkVJupiter, 388.24},
  };
  return t;
}

std::optional<double> table2_mops(Kernel k, MachineId m) {
  for (const auto& row : table2()) {
    if (row.kernel == k && row.machine == m) return row.mops;
  }
  return std::nullopt;
}

const std::vector<Sg2042Comparison>& table3_single_core() {
  static const std::vector<Sg2042Comparison> t = {
      {Kernel::IS, 63.63, 58.87},   {Kernel::MG, 1382.91, 1175.69},
      {Kernel::EP, 40.76, 31.36},   {Kernel::CG, 213.82, 173.39},
      {Kernel::FT, 1023.83, 797.09},
  };
  return t;
}

const std::vector<Sg2042Comparison>& table4_64_cores() {
  static const std::vector<Sg2042Comparison> t = {
      {Kernel::IS, 3038.14, 618.50},   {Kernel::MG, 32457.83, 14397.69},
      {Kernel::EP, 2538.38, 1675.25},  {Kernel::CG, 7728.80, 3508.95},
      {Kernel::FT, 22582.2, 8317.91},
  };
  return t;
}

const std::vector<PseudoAppRow>& table6() {
  static const std::vector<PseudoAppRow> t = {
      {Kernel::BT, 16, 0.79, 2.56, 2.60, 1.92},
      {Kernel::BT, 26, 0.66, 2.35, 1.95, 1.77},
      {Kernel::BT, 32, 0.66, 2.41, std::nullopt, 1.73},
      {Kernel::BT, 64, 0.45, 1.90, std::nullopt, std::nullopt},
      {Kernel::LU, 16, 0.85, 3.09, 3.52, 2.43},
      {Kernel::LU, 26, 0.88, 2.80, 2.77, 2.29},
      {Kernel::LU, 32, 0.81, 2.76, std::nullopt, 2.39},
      {Kernel::LU, 64, 0.69, 2.05, std::nullopt, std::nullopt},
      {Kernel::SP, 16, 0.79, 3.99, 3.07, 2.87},
      {Kernel::SP, 26, 0.57, 3.56, 1.99, 2.05},
      {Kernel::SP, 32, 0.63, 3.30, std::nullopt, 2.02},
      {Kernel::SP, 64, 0.48, 2.05, std::nullopt, std::nullopt},
  };
  return t;
}

const std::vector<CompilerAblationRow>& table7_single_core() {
  static const std::vector<CompilerAblationRow> t = {
      {Kernel::IS, 62.94, 63.63, 62.75},
      {Kernel::MG, 1373.31, 1382.92, 1300.27},
      {Kernel::EP, 40.56, 40.76, 40.75},
      {Kernel::CG, 210.06, 81.19, 217.53},
      {Kernel::FT, 887.43, 1023.83, 982.93},
  };
  return t;
}

const std::vector<CompilerAblationRow>& table8_64_cores() {
  static const std::vector<CompilerAblationRow> t = {
      {Kernel::IS, 2255.72, 3038.14, 3024.63},
      {Kernel::MG, 32186.04, 32457.83, 31892.70},
      {Kernel::EP, 2529.91, 2542.53, 2538.38},
      {Kernel::CG, 7709.53, 4463.18, 7728.80},
      {Kernel::FT, 20796.20, 22582.20, 21282.00},
  };
  return t;
}

StreamAnchors figure1() { return {}; }
ScalingAnchors figure_anchors() { return {}; }
CgUnrollAblation cg_unroll() { return {}; }

}  // namespace rvhpc::model::paper
