#include "model/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "engine/batch.hpp"

namespace rvhpc::model {

const std::vector<std::string>& sensitivity_parameters() {
  static const std::vector<std::string> v = {
      "core.clock_ghz",
      "core.sustained_scalar_opc",
      "core.miss_level_parallelism",
      "core.vector.gather_efficiency",
      "memory.stream_efficiency",
      "memory.per_core_bw_gbs",
      "memory.idle_latency_ns",
      "memory.controller_queue_depth",
  };
  return v;
}

arch::MachineModel perturbed(const arch::MachineModel& m,
                             const std::string& parameter, double factor) {
  arch::MachineModel out = m;
  if (parameter == "core.clock_ghz") {
    out.core.clock_ghz *= factor;
  } else if (parameter == "core.sustained_scalar_opc") {
    out.core.sustained_scalar_opc *= factor;
  } else if (parameter == "core.miss_level_parallelism") {
    out.core.miss_level_parallelism = std::max(
        1, static_cast<int>(std::lround(m.core.miss_level_parallelism * factor)));
  } else if (parameter == "core.vector.gather_efficiency") {
    out.core.vector.gather_efficiency =
        std::min(1.0, m.core.vector.gather_efficiency * factor);
  } else if (parameter == "memory.stream_efficiency") {
    out.memory.stream_efficiency =
        std::min(1.0, m.memory.stream_efficiency * factor);
  } else if (parameter == "memory.per_core_bw_gbs") {
    out.memory.per_core_bw_gbs = m.memory.per_core_bw_gbs * factor;
  } else if (parameter == "memory.idle_latency_ns") {
    out.memory.idle_latency_ns = m.memory.idle_latency_ns * factor;
  } else if (parameter == "memory.controller_queue_depth") {
    out.memory.controller_queue_depth = std::max(
        1,
        static_cast<int>(std::lround(m.memory.controller_queue_depth * factor)));
  } else {
    throw std::invalid_argument("sensitivity: unknown parameter '" + parameter +
                                "'");
  }
  return out;
}

std::vector<Sensitivity> sensitivities(const arch::MachineModel& m,
                                       const WorkloadSignature& sig,
                                       const RunConfig& cfg,
                                       double relative_step) {
  // All up/down perturbations as one engine batch: 16 independent predicts
  // evaluated across the pool instead of serially.  Perturbed machines get
  // distinct fingerprints (full-precision field hashing), so memoisation
  // never conflates them with the centre machine.
  const std::vector<std::string>& params = sensitivity_parameters();
  std::vector<double> steps;
  steps.reserve(params.size());
  engine::RequestSet set;
  for (const std::string& p : params) {
    // Integer-valued parameters need a step big enough to actually move
    // them (MLP of 5 does not change under a 5% perturbation).
    const bool integral = p.find("parallelism") != std::string::npos ||
                          p.find("queue_depth") != std::string::npos;
    const double h = std::max(integral ? 0.2 : relative_step, 1e-3);
    steps.push_back(h);
    set.add(perturbed(m, p, 1.0 + h), sig, cfg, p + "+");
    set.add(perturbed(m, p, 1.0 - h), sig, cfg, p + "-");
  }
  const std::vector<engine::PredictionResult> results =
      engine::default_evaluator().evaluate(set);

  std::vector<Sensitivity> out;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double h = steps[i];
    const Prediction& up = results[2 * i].prediction;
    const Prediction& down = results[2 * i + 1].prediction;
    if (!up.ran || !down.ran || up.mops <= 0.0 || down.mops <= 0.0) continue;
    // Central difference in log-log space.
    const double e = (std::log(up.mops) - std::log(down.mops)) /
                     (std::log(1.0 + h) - std::log(1.0 - h));
    out.push_back({params[i], e});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.elasticity) > std::fabs(b.elasticity);
  });
  return out;
}

}  // namespace rvhpc::model
