#pragma once
// rvhpc::model — calibrated workload signatures for the paper's benchmarks.
//
// One signature per (kernel, problem class).  Structural quantities (key
// counts, grid sizes, iteration counts, footprints) follow the NPB 3.x
// class definitions; per-op resource demands (cycles, bytes, access
// pattern) are calibrated once against the paper's SG2044 measurements and
// then reused verbatim for every other machine — the cross-machine tables
// are predictions, not fits.

#include <vector>

#include "model/workload.hpp"

namespace rvhpc::model {

/// The signature of `kernel` at `cls`.  Throws std::invalid_argument for
/// combinations the suite does not define.
[[nodiscard]] WorkloadSignature signature(Kernel kernel, ProblemClass cls);

/// The five NPB kernels the paper's Tables 2-4, 7-8 and Figures 2-6 use.
[[nodiscard]] const std::vector<Kernel>& npb_kernels();

/// The three pseudo-applications of Table 6.
[[nodiscard]] const std::vector<Kernel>& npb_pseudo_apps();

/// All eight NPB benchmarks in suite order.
[[nodiscard]] const std::vector<Kernel>& npb_all();

}  // namespace rvhpc::model
