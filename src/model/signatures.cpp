#include "model/signatures.hpp"

#include <cmath>
#include <stdexcept>

namespace rvhpc::model {
namespace {

int class_index(ProblemClass c) { return static_cast<int>(c); }

/// log2 of the key count / max key for IS, per class S, W, A, B, C.
constexpr int kIsLogKeys[5] = {16, 20, 23, 25, 27};
constexpr int kIsLogMaxKey[5] = {11, 16, 19, 21, 23};
/// MG grid edge and V-cycle count per class.
constexpr int kMgGrid[5] = {32, 128, 256, 256, 512};
constexpr int kMgIters[5] = {4, 4, 4, 20, 20};
/// EP log2 of pair count per class.
constexpr int kEpLogPairs[5] = {24, 25, 28, 30, 32};
/// CG matrix order, nonzeros per row seed, outer iterations per class.
constexpr int kCgN[5] = {1400, 7000, 14000, 75000, 150000};
constexpr int kCgNonzer[5] = {7, 8, 11, 13, 15};
constexpr int kCgIters[5] = {15, 15, 15, 75, 75};
/// FT grid (x,y,z) and iterations per class.
constexpr int kFtNx[5] = {64, 128, 256, 512, 512};
constexpr int kFtNy[5] = {64, 128, 256, 256, 512};
constexpr int kFtNz[5] = {64, 32, 128, 256, 512};
constexpr int kFtIters[5] = {6, 6, 6, 20, 20};
/// Pseudo-application grid edge and time steps per class.
constexpr int kAppGrid[5] = {12, 24, 64, 102, 162};
constexpr int kAppSteps[5] = {60, 200, 200, 200, 200};

WorkloadSignature base(Kernel k, ProblemClass c) {
  WorkloadSignature s;
  s.kernel = k;
  s.problem_class = c;
  return s;
}

WorkloadSignature make_is(ProblemClass c) {
  const int i = class_index(c);
  const double keys = std::pow(2.0, kIsLogKeys[i]);
  const double hist_mib = std::pow(2.0, kIsLogMaxKey[i]) * 4.0 / (1024 * 1024);
  WorkloadSignature s = base(Kernel::IS, c);
  s.total_mop = keys * 10.0 / 1e6;  // 10 ranking iterations
  s.cycles_per_op = 12.0;
  // Integer ranking barely vectorises; Table 7 shows ~1% from RVV.
  s.vectorisable_fraction = 0.12;
  s.vector_elem_parallelism = 4.0;
  s.element_bits = 32;
  s.streamed_bytes_per_op = 8.0;   // key read + rank write, amortised
  s.random_access_per_op = 1.0;    // histogram update per key
  s.random_llc_hit_fraction = 0.70;  // key stream keeps evicting the histogram
  s.random_overlap = 0.60;
  s.capacity_sensitivity = 0.5;  // bucketed keys retain page locality
  s.random_footprint_mib = hist_mib;
  s.working_set_mib = 2.0 * keys * 4.0 / (1024 * 1024) + hist_mib;
  s.global_syncs = 60.0;
  s.imbalance_coeff = 0.022;
  s.read_fraction = 0.45;
  s.serial_fraction = 0.004;
  return s;
}

WorkloadSignature make_mg(ProblemClass c) {
  const int i = class_index(c);
  const double pts = std::pow(static_cast<double>(kMgGrid[i]), 3.0);
  WorkloadSignature s = base(Kernel::MG, c);
  // ~40 flops per fine-grid point per V-cycle across smooth/resid/interp.
  s.total_mop = pts * kMgIters[i] * 40.0 / 1e6;
  s.cycles_per_op = 2.6;
  s.vectorisable_fraction = 0.60;
  s.vector_elem_parallelism = 2.2;  // stencil reuse limits useful widening
  s.streamed_bytes_per_op = c == ProblemClass::C ? 3.2 : 3.0;
  s.random_access_per_op = 0.0;
  s.working_set_mib = pts * 8.0 * 1.9 / (1024 * 1024);  // u,v,r + coarse grids
  s.global_syncs = kMgIters[i] * 45.0;  // barriers per V-cycle level sweep
  s.imbalance_coeff = 0.02;
  s.read_fraction = 0.75;  // stencil reads dominate the write-back of u
  s.serial_fraction = 0.004;
  return s;
}

WorkloadSignature make_ep(ProblemClass c) {
  const int i = class_index(c);
  WorkloadSignature s = base(Kernel::EP, c);
  s.total_mop = std::pow(2.0, kEpLogPairs[i] + 1) / 1e6;
  s.cycles_per_op = 88.0;  // ln/sqrt pair generation dominates
  // The paper was surprised how little RVV helps EP (Table 7): the
  // transcendental kernel resists GCC's auto-vectoriser.
  s.vectorisable_fraction = 0.02;
  s.vector_elem_parallelism = 2.0;
  s.streamed_bytes_per_op = 0.0;
  s.random_access_per_op = 0.0;
  s.working_set_mib = 16.0;
  s.global_syncs = 4.0;
  s.imbalance_coeff = 0.005;
  s.serial_fraction = 0.0005;
  return s;
}

WorkloadSignature make_cg(ProblemClass c) {
  const int i = class_index(c);
  const double n = kCgN[i];
  // makea's assembled matrix: roughly nonzer*(nonzer+1) entries per row.
  const double nnz = n * kCgNonzer[i] * (kCgNonzer[i] + 1.0);
  WorkloadSignature s = base(Kernel::CG, c);
  // 25 CG steps per outer iteration, ~4 flops per nonzero + vector ops.
  s.total_mop = kCgIters[i] * 25.0 * (4.0 * nnz + 10.0 * n) / 1e6;
  s.cycles_per_op = 9.5 * (c == ProblemClass::C ? 1.25 : 1.0);
  s.vectorisable_fraction = 0.85;
  s.vector_elem_parallelism = 6.0;
  // The SpMV inner loop is an indexed gather over x: this is the loop that
  // becomes ~3x slower when vectorised for RVV on the C920v2 (§6).
  s.gather_fraction = 0.92;
  s.streamed_bytes_per_op = 3.0;   // matrix values + column indices
  // Longer rows gather proportionally more of x per counted op.
  s.random_access_per_op = 0.03 * kCgNonzer[i];
  s.random_llc_hit_fraction = 0.90;
  s.random_overlap = 0.60;
  s.dependent_chain = true;  // gather feeds the accumulate directly
  s.random_footprint_mib = n * 8.0 / (1024 * 1024);  // the gathered x vector
  s.working_set_mib = nnz * 12.0 / (1024 * 1024) + 5.0 * n * 8.0 / (1024 * 1024);
  s.comm_bytes_per_op = 0.35;  // nearest-neighbour reductions
  s.global_syncs = kCgIters[i] * 25.0 * 3.0;
  s.imbalance_coeff = 0.05;
  s.read_fraction = 0.8;
  s.serial_fraction = 0.008;
  return s;
}

WorkloadSignature make_ft(ProblemClass c) {
  const int i = class_index(c);
  const double pts = static_cast<double>(kFtNx[i]) * kFtNy[i] * kFtNz[i];
  const double lg = std::log2(pts);
  WorkloadSignature s = base(Kernel::FT, c);
  s.total_mop = pts * kFtIters[i] * lg * 0.85 / 1e6;
  // Class C's 512^3 grid streams notably worse than B's 512x256x256
  // (longer transpose strides): both the per-op cycle cost and the DRAM
  // traffic per op rise.
  s.cycles_per_op = c >= ProblemClass::C ? 3.5 : 2.77;
  // Table 7: vectorisation buys FT only ~4% — the twiddle-heavy butterflies
  // mostly stay scalar.
  s.vectorisable_fraction = 0.12;
  s.vector_elem_parallelism = 2.0;
  s.streamed_bytes_per_op = c >= ProblemClass::C ? 4.0 : 2.46;
  s.random_access_per_op = 0.0;
  s.working_set_mib = pts * 16.0 * 3.2 / (1024 * 1024);
  s.comm_bytes_per_op = 0.4;  // all-to-all transposition traffic
  s.global_syncs = kFtIters[i] * 12.0;
  s.imbalance_coeff = 0.02;
  s.read_fraction = 0.25;  // transposes write as much as they read
  s.serial_fraction = 0.006;
  return s;
}

WorkloadSignature make_app(Kernel k, ProblemClass c) {
  const int i = class_index(c);
  const double pts = std::pow(static_cast<double>(kAppGrid[i]), 3.0);
  const double steps = kAppSteps[i];
  WorkloadSignature s = base(k, c);
  switch (k) {
    case Kernel::BT:
      // Dense 5x5 block solves: compute-rich, vector-friendly, cache-kind.
      s.total_mop = pts * steps * 800.0 / 1e6;
      s.cycles_per_op = 1.55;
      s.vectorisable_fraction = 0.68;
      s.vector_elem_parallelism = 5.0;
      s.streamed_bytes_per_op = 1.3;
      s.working_set_mib = pts * 8.0 * 45.0 / (1024 * 1024);
      s.global_syncs = steps * 9.0;
      s.imbalance_coeff = 0.035;
      break;
    case Kernel::LU:
      // SSOR wavefront: sync-dense with limited parallel slack.
      s.total_mop = pts * steps * 480.0 / 1e6;
      s.cycles_per_op = 1.75;
      s.vectorisable_fraction = 0.55;
      s.vector_elem_parallelism = 4.0;
      s.streamed_bytes_per_op = 0.75;
      s.working_set_mib = pts * 8.0 * 35.0 / (1024 * 1024);
      // Wavefront dependences leave latency exposed on every plane.
      s.random_access_per_op = 0.25;
      s.random_llc_hit_fraction = 0.92;
      s.random_overlap = 0.35;
      s.dependent_chain = true;
      s.random_footprint_mib =
          static_cast<double>(kAppGrid[i]) * kAppGrid[i] * 40.0 / (1024 * 1024);
      s.global_syncs = steps * 2.0 * kAppGrid[i];  // pipelined sweeps
      s.imbalance_coeff = 0.06;
      break;
    case Kernel::SP:
      // Scalar pentadiagonal sweeps: the most bandwidth-hungry app
      // (Table 1: 20%/21% stall split).
      s.total_mop = pts * steps * 650.0 / 1e6;
      s.cycles_per_op = 1.5;
      s.vectorisable_fraction = 0.66;
      s.vector_elem_parallelism = 5.0;
      s.streamed_bytes_per_op = 3.2;
      s.working_set_mib = pts * 8.0 * 42.0 / (1024 * 1024);
      // Thomas-algorithm recurrences along every solve line expose raw
      // load-use latency; prefetchers cannot run ahead of the dependence.
      s.random_access_per_op = 0.075;
      s.random_llc_hit_fraction = 0.80;
      s.random_overlap = 0.22;
      s.dependent_chain = true;
      s.random_footprint_mib =
          static_cast<double>(kAppGrid[i]) * kAppGrid[i] * 40.0 / (1024 * 1024);
      s.global_syncs = steps * 12.0;
      s.imbalance_coeff = 0.04;
      break;
    default:
      throw std::invalid_argument("make_app: not a pseudo-application");
  }
  s.complex_control = true;
  // VLA codegen struggles on deep loop nests, worst on SP's fused sweeps.
  s.rvv_codegen_derate =
      k == Kernel::SP ? 0.32 : (k == Kernel::LU ? 0.45 : 0.5);
  s.read_fraction = 0.6;
  s.serial_fraction = k == Kernel::LU ? 0.02 : 0.008;
  return s;
}

WorkloadSignature make_stream(Kernel k) {
  WorkloadSignature s = base(k, ProblemClass::C);
  // 20M doubles per array, 10 timed repetitions; one op = one element.
  s.total_mop = 20.0 * 10.0;
  s.cycles_per_op = k == Kernel::StreamCopy ? 1.0 : 1.4;
  s.vectorisable_fraction = 0.95;
  s.vector_elem_parallelism = 8.0;
  // copy: 8B read + 8B write + 8B write-allocate; triad adds a stream.
  s.streamed_bytes_per_op = k == Kernel::StreamCopy ? 24.0 : 32.0;
  s.working_set_mib = 3.0 * 20e6 * 8.0 / (1024 * 1024);
  s.global_syncs = 10.0;
  s.imbalance_coeff = 0.01;
  s.read_fraction = 0.0;  // copy/triad pay the full write-allocate cost
  return s;
}

}  // namespace

WorkloadSignature make_hpl(ProblemClass c) {
  // Problem sizes chosen so the factorisation takes minutes-not-hours on
  // each class; HPL's own flop convention (2/3 n^3).
  constexpr double kN[5] = {2000, 8000, 20000, 40000, 60000};
  const double n = kN[class_index(c)];
  WorkloadSignature s = base(Kernel::Hpl, c);
  s.total_mop = (2.0 / 3.0) * n * n * n / 1e6;
  s.cycles_per_op = 1.0;
  // The GEMM-shaped update auto-vectorises well on every backend,
  // including VLA RVV: long unit-stride FMA loops.
  s.vectorisable_fraction = 0.92;
  s.vector_elem_parallelism = 16.0;
  s.rvv_codegen_derate = 0.9;
  s.streamed_bytes_per_op = 0.12;  // blocked: high reuse
  s.working_set_mib = n * n * 8.0 / (1024 * 1024);
  s.global_syncs = n / 32.0;  // one per panel
  s.imbalance_coeff = 0.03;
  s.serial_fraction = 0.004;  // panel factorisation on the critical path
  s.read_fraction = 0.6;
  return s;
}

WorkloadSignature make_hpcg(ProblemClass c) {
  constexpr int kNx[5] = {32, 64, 104, 144, 192};
  const double pts = std::pow(static_cast<double>(kNx[class_index(c)]), 3.0);
  constexpr double kIters = 50.0;
  WorkloadSignature s = base(Kernel::Hpcg, c);
  // Per iteration: one 27-point SpMV (54 flops/row) + a symmetric
  // Gauss-Seidel sweep (2 x 54) + vector ops.
  s.total_mop = pts * kIters * (3.0 * 54.0 + 8.0) / 1e6;
  s.cycles_per_op = 2.2;
  s.vectorisable_fraction = 0.45;   // SymGS recurrences resist vectorising
  s.vector_elem_parallelism = 2.0;
  s.streamed_bytes_per_op = 4.5;    // matrix + vectors stream every sweep
  s.random_access_per_op = 0.08;    // SymGS dependence chain
  s.random_llc_hit_fraction = 0.85;
  s.random_overlap = 0.35;
  s.dependent_chain = true;
  s.random_footprint_mib = pts * 8.0 / (1024 * 1024);
  s.working_set_mib = pts * 8.0 * 30.0 / (1024 * 1024);  // 27 nnz + vectors
  s.global_syncs = kIters * 6.0;
  s.imbalance_coeff = 0.04;
  s.serial_fraction = 0.01;
  s.read_fraction = 0.8;
  return s;
}

WorkloadSignature signature(Kernel kernel, ProblemClass cls) {
  switch (kernel) {
    case Kernel::IS: return make_is(cls);
    case Kernel::MG: return make_mg(cls);
    case Kernel::EP: return make_ep(cls);
    case Kernel::CG: return make_cg(cls);
    case Kernel::FT: return make_ft(cls);
    case Kernel::BT:
    case Kernel::LU:
    case Kernel::SP: return make_app(kernel, cls);
    case Kernel::StreamCopy:
    case Kernel::StreamTriad: return make_stream(kernel);
    case Kernel::Hpl: return make_hpl(cls);
    case Kernel::Hpcg: return make_hpcg(cls);
  }
  throw std::invalid_argument("signature: unknown kernel");
}

const std::vector<Kernel>& npb_kernels() {
  static const std::vector<Kernel> v = {Kernel::IS, Kernel::MG, Kernel::EP,
                                        Kernel::CG, Kernel::FT};
  return v;
}

const std::vector<Kernel>& npb_pseudo_apps() {
  static const std::vector<Kernel> v = {Kernel::BT, Kernel::LU, Kernel::SP};
  return v;
}

const std::vector<Kernel>& npb_all() {
  static const std::vector<Kernel> v = {Kernel::IS, Kernel::MG, Kernel::EP,
                                        Kernel::CG, Kernel::FT, Kernel::BT,
                                        Kernel::LU, Kernel::SP};
  return v;
}

}  // namespace rvhpc::model
