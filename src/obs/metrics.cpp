#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace rvhpc::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted, non-empty");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow -> last
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  sum_ += v;
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    const double before = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) {
      const double frac =
          std::clamp((target - before) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
  }
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::vector<double> default_time_bounds() {
  // 1 us .. 100 s, quarter-decade steps: resolves both a single predict()
  // call and a full-suite sweep on one scale.
  std::vector<double> b;
  for (double v = 1e-6; v < 200.0; v *= 1.7782794100389228) b.push_back(v);
  return b;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.counter) {
    e.kind = Kind::Counter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    e.kind = Kind::Gauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    e.kind = Kind::Histogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(
        bounds.empty() ? default_time_bounds() : std::move(bounds));
  }
  return *e.histogram;
}

std::string Registry::render_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) os << "# HELP " << name << " " << e.help << "\n";
    switch (e.kind) {
      case Kind::Counter:
        os << name << " " << e.counter->value() << "\n";
        break;
      case Kind::Gauge:
        os << name << " " << fmt_double(e.gauge->value()) << "\n";
        break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        os << name << "_count " << h.count() << "\n"
           << name << "_sum " << fmt_double(h.sum()) << "\n";
        if (h.count() > 0) {
          os << name << "_min " << fmt_double(h.min()) << "\n"
             << name << "_max " << fmt_double(h.max()) << "\n"
             << name << "_p50 " << fmt_double(h.percentile(50)) << "\n"
             << name << "_p90 " << fmt_double(h.percentile(90)) << "\n"
             << name << "_p99 " << fmt_double(h.percentile(99)) << "\n";
        }
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << json::escape(name) << "\": {";
    os << "\"help\": \"" << json::escape(e.help) << "\", ";
    switch (e.kind) {
      case Kind::Counter:
        os << "\"type\": \"counter\", \"value\": " << e.counter->value();
        break;
      case Kind::Gauge:
        os << "\"type\": \"gauge\", \"value\": " << json::number(e.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        os << "\"type\": \"histogram\", \"count\": " << h.count()
           << ", \"sum\": " << json::number(h.sum());
        if (h.count() > 0) {
          os << ", \"min\": " << json::number(h.min())
             << ", \"max\": " << json::number(h.max())
             << ", \"p50\": " << json::number(h.percentile(50))
             << ", \"p90\": " << json::number(h.percentile(90))
             << ", \"p99\": " << json::number(h.percentile(99));
        }
        break;
      }
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, e] : entries_) {
    (void)name;
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram* h) : h_(h) {
  if (h_) start_ns_ = steady_ns();
}

ScopedTimer::~ScopedTimer() {
  if (h_) h_->observe((steady_ns() - start_ns_) * 1e-9);
}

Histogram* timer_target(const char* name) {
  if (!metrics_enabled()) return nullptr;
  return &Registry::global().histogram(name);
}

}  // namespace rvhpc::obs
