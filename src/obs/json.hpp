#pragma once
// rvhpc::obs::json — a minimal JSON emitter + recursive-descent parser.
//
// The obs exporters emit Chrome trace_event and metrics JSON; the parser
// exists so tests (and the trace-diff tooling the ROADMAP plans) can
// round-trip those documents without an external dependency.  It supports
// the full JSON grammar the exporters produce: objects (insertion order
// preserved), arrays, strings with escapes, numbers, booleans and null.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rvhpc::obs::json {

/// Escapes `s` for inclusion inside a JSON string literal (quotes, control
/// characters and backslashes).
[[nodiscard]] std::string escape(const std::string& s);

/// Renders a double as a JSON-legal number token (inf/nan clamp to 0,
/// which JSON cannot represent).
[[nodiscard]] std::string number(double v);

/// A parsed JSON document node.
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  /// First member named `key`, or nullptr (valid on any type).
  [[nodiscard]] const Value* find(const std::string& key) const;
  [[nodiscard]] bool is(Type t) const { return type == t; }
};

/// Parses one JSON document; throws std::runtime_error (with character
/// offset) on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace rvhpc::obs::json
