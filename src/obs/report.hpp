#pragma once
// rvhpc::obs — session exporters.
//
// Two views of one TraceSession: the Chrome trace_event JSON document
// (load in chrome://tracing or Perfetto) and the human-readable
// attribution report — the paper-style explanation of *why* each
// prediction came out the way it did (per-phase ECM decomposition,
// saturated resource, runner-up margins, saturation events).

#include <string>

#include "obs/trace.hpp"

namespace rvhpc::obs {

/// The session as a Chrome trace_event JSON document: spans as "X"
/// complete events, instants as "i", prediction records as "i" events
/// carrying the attribution as args.
[[nodiscard]] std::string chrome_trace_json(const TraceSession& s);

/// Plain-text bottleneck attribution of every prediction in the session.
[[nodiscard]] std::string attribution_report(const TraceSession& s);

/// Writes `content` to `path`; throws std::runtime_error when unwritable.
void write_file(const std::string& path, const std::string& content);

}  // namespace rvhpc::obs
