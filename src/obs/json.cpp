#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rvhpc::obs::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value{Value::Type::Bool, true, 0.0, {}, {}, {}};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value{Value::Type::Bool, false, 0.0, {}, {}, {}};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Exporters only emit \u for control characters; decode the
          // BMP code point as UTF-8 and leave surrogates unpaired.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    try {
      v.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rvhpc::obs::json
