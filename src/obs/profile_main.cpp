// rvhpc-profile — run any prediction or sweep with full observability.
//
// Wraps model::predict() / the core-count sweep in a TraceSession plus the
// metrics registry and writes out everything the model knows about *why*
// the number came out: the Chrome trace (spans, saturation events, typed
// prediction records), the human-readable bottleneck attribution report,
// and a metrics dump of the library's own hot paths.
//
//   rvhpc-profile --machine sg2044 --kernel cg --class C --cores 64 \
//                 --trace out.json
//   rvhpc-profile --machine sg2042 --kernel is --sweep --metrics m.json
//
// Exit status: 0 on success, 2 on usage/parse failure.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"
#include "cli/cli.hpp"
#include "model/sweep.hpp"
#include "obs/diff.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-profile",
    "trace and explain one modelled prediction or core-count sweep",
    "usage: rvhpc-profile --machine <name|file.machine> --kernel <name>\n"
    "                     [--class S|W|A|B|C] [--cores N] [--sweep]\n"
    "                     [--placement os-default|spread|close]\n"
    "                     [--trace out.json] [--report out.txt]\n"
    "                     [--metrics out.json]\n"
    "       rvhpc-profile --diff <a.json> <b.json>\n"
    "\n"
    "Runs the prediction (default: the machine's full core count) or the\n"
    "paper's power-of-two core sweep (--sweep) with tracing and metrics\n"
    "on, prints the bottleneck attribution report, and writes the Chrome\n"
    "trace_event JSON / metrics JSON where asked.  Kernels: IS MG EP CG\n"
    "FT BT LU SP StreamCopy StreamTriad Hpl Hpcg (case-insensitive).\n"
    "\n"
    "--diff compares two traces written by --trace: per-prediction runtime\n"
    "and per-phase deltas, bottleneck flips, and saturation events that\n"
    "appeared, vanished or changed count between the runs."};

struct Options {
  std::string machine;
  std::string kernel;
  std::string problem_class = "C";
  int cores = 0;  ///< 0 = machine's full core count
  bool sweep = false;
  model::ThreadPlacement placement = model::ThreadPlacement::OsDefault;
  std::optional<std::string> trace_path;
  std::optional<std::string> report_path;
  std::optional<std::string> metrics_path;
  std::string diff_a;  ///< --diff mode when both paths are set
  std::string diff_b;
};

/// Whole file as a string; throws on unreadable paths.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Registry name, or a path to a .machine file (detected by the file
/// existing); file-backed machines are structurally validated.
arch::MachineModel resolve_machine(const std::string& name) {
  std::ifstream in(name);
  if (!in.good()) return arch::machine(name);
  const arch::ParsedMachine pm = arch::parse_machine(in);
  const auto issues = arch::validate(pm.model);
  if (!issues.empty()) {
    std::cerr << arch::format_issues(issues);
    throw std::runtime_error("machine file '" + name + "' fails validation");
  }
  return pm.model;
}

bool parse_args(int argc, char** argv, Options& opts) {
  const auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") opts.machine = value_of(i, arg);
    else if (arg == "--kernel") opts.kernel = value_of(i, arg);
    else if (arg == "--class") opts.problem_class = value_of(i, arg);
    else if (arg == "--cores") opts.cores = std::stoi(value_of(i, arg));
    else if (arg == "--sweep") opts.sweep = true;
    else if (arg == "--placement")
      opts.placement = model::parse_placement(value_of(i, arg));
    else if (arg == "--trace") opts.trace_path = value_of(i, arg);
    else if (arg == "--report") opts.report_path = value_of(i, arg);
    else if (arg == "--metrics") opts.metrics_path = value_of(i, arg);
    else if (arg == "--diff") {
      opts.diff_a = value_of(i, arg);
      opts.diff_b = value_of(i, "--diff (second trace)");
    } else {
      std::cerr << "rvhpc-profile: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  if (!opts.diff_a.empty()) return true;
  if (opts.machine.empty() || opts.kernel.empty()) {
    std::cerr << "rvhpc-profile: --machine and --kernel are required\n";
    return false;
  }
  return true;
}

/// The paper's run configuration for `m` (mirrors predict_paper_setup,
/// which cannot take a placement).
model::RunConfig paper_config(const arch::MachineModel& m,
                              const model::WorkloadSignature& sig,
                              int cores, model::ThreadPlacement placement) {
  model::RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = model::paper_default_compiler(m);
  if (sig.kernel == model::Kernel::CG && m.name == "sg2044") {
    cfg.compiler.vectorise = false;  // §6 CG-on-RVV pathology
  }
  cfg.placement = placement;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) {
      cli::print_help(std::cerr, kTool);
      return 2;
    }

    if (!opts.diff_a.empty()) {
      std::cout << obs::trace_diff_report(read_file(opts.diff_a),
                                          read_file(opts.diff_b), opts.diff_a,
                                          opts.diff_b);
      return 0;
    }

    const arch::MachineModel m = resolve_machine(opts.machine);
    const model::Kernel kernel = model::parse_kernel(opts.kernel);
    const model::ProblemClass cls = model::parse_problem_class(opts.problem_class);
    const model::WorkloadSignature sig = model::signature(kernel, cls);
    const int cores = opts.cores > 0 ? opts.cores : m.cores;

    obs::Registry::global().reset();
    obs::SessionScope scope;  // tracing + metrics on for the run

    if (opts.sweep) {
      obs::ScopedSpan span("cli", "rvhpc-profile sweep");
      for (int n : model::power_of_two_cores(m.cores)) {
        (void)model::predict(m, sig, paper_config(m, sig, n, opts.placement));
      }
    } else {
      obs::ScopedSpan span("cli", "rvhpc-profile predict");
      (void)model::predict(m, sig, paper_config(m, sig, cores, opts.placement));
    }

    const std::string report = obs::attribution_report(scope.session());
    std::cout << report;
    if (opts.report_path) obs::write_file(*opts.report_path, report);

    if (opts.trace_path) {
      obs::write_file(*opts.trace_path, obs::chrome_trace_json(scope.session()));
      std::cout << "\ntrace written to " << *opts.trace_path << "\n";
    }

    const obs::Registry& reg = obs::Registry::global();
    if (opts.metrics_path) {
      obs::write_file(*opts.metrics_path, reg.render_json());
      std::cout << "metrics written to " << *opts.metrics_path << "\n";
    } else {
      std::cout << "\nmetrics:\n" << reg.render_text();
    }
  } catch (const std::exception& e) {
    std::cerr << "rvhpc-profile: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
