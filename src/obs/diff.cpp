#include "obs/diff.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace rvhpc::obs {
namespace {

/// One prediction record recovered from a trace's "args" payload.
struct Pred {
  bool ran = true;
  double seconds = 0.0;
  double mops = 0.0;
  double bw_gbs = 0.0;
  std::string bottleneck;
  bool vectorised = false;
  std::vector<std::pair<std::string, double>> phases;  ///< insertion order
};

/// Everything the diff cares about from one trace document.
struct TraceData {
  std::vector<std::pair<std::string, Pred>> preds;  ///< key -> record
  std::map<std::string, double> span_dur_us;        ///< "cat/name" -> total
  std::map<std::string, int> instants;              ///< "cat/name" -> count
};

double num_or(const obs::json::Value& v, const char* key, double fallback) {
  const obs::json::Value* m = v.find(key);
  return (m && m->is(obs::json::Value::Type::Number)) ? m->num : fallback;
}

std::string str_or(const obs::json::Value& v, const char* key) {
  const obs::json::Value* m = v.find(key);
  return (m && m->is(obs::json::Value::Type::String)) ? m->str : std::string();
}

TraceData load(const std::string& text, const std::string& label) {
  obs::json::Value doc;
  try {
    doc = obs::json::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(label + ": " + e.what());
  }
  const obs::json::Value* events = doc.find("traceEvents");
  if (!events || !events->is(obs::json::Value::Type::Array)) {
    throw std::runtime_error(label +
                             ": not a Chrome trace (no traceEvents array)");
  }

  TraceData data;
  for (const obs::json::Value& e : events->array) {
    if (!e.is(obs::json::Value::Type::Object)) continue;
    const std::string ph = str_or(e, "ph");
    const std::string key = str_or(e, "cat") + "/" + str_or(e, "name");
    if (ph == "X") {
      data.span_dur_us[key] += num_or(e, "dur", 0.0);
      continue;
    }
    if (ph != "i") continue;

    // A prediction instant carries the full attribution as args (with a
    // nested "phases" object); every other instant is an event (the
    // saturation markers) and is just counted.
    const obs::json::Value* args = e.find("args");
    const obs::json::Value* phases =
        args ? args->find("phases") : nullptr;
    if (!args || !phases || !phases->is(obs::json::Value::Type::Object)) {
      ++data.instants[key];
      continue;
    }

    Pred p;
    if (const obs::json::Value* ran = args->find("ran")) {
      p.ran = ran->boolean;
    }
    p.seconds = num_or(*args, "seconds", 0.0);
    p.mops = num_or(*args, "mops", 0.0);
    p.bw_gbs = num_or(*args, "achieved_bw_gbs", 0.0);
    p.bottleneck = str_or(*args, "bottleneck");
    if (const obs::json::Value* v = args->find("vectorised")) {
      p.vectorised = v->boolean;
    }
    for (const auto& [name, seconds] : phases->object) {
      if (seconds.is(obs::json::Value::Type::Number)) {
        p.phases.emplace_back(name, seconds.num);
      }
    }
    std::ostringstream id;
    id << str_or(*args, "machine") << "/" << str_or(*args, "kernel") << "."
       << str_or(*args, "class") << "@"
       << static_cast<long long>(num_or(*args, "cores", 0.0));
    data.preds.emplace_back(id.str(), std::move(p));
  }
  return data;
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

/// "+4.2%" / "-8.8%"; "n/a" when the baseline is zero.
std::string pct(double from, double to) {
  if (from == 0.0) return "n/a";
  const double d = 100.0 * (to - from) / from;
  return (d >= 0 ? "+" : "") + fmt(d, 1) + "%";
}

const Pred* find_pred(const TraceData& t, const std::string& key) {
  for (const auto& [k, p] : t.preds) {
    if (k == key) return &p;
  }
  return nullptr;
}

}  // namespace

std::string trace_diff_report(const std::string& trace_a,
                              const std::string& trace_b,
                              const std::string& label_a,
                              const std::string& label_b) {
  const TraceData a = load(trace_a, label_a);
  const TraceData b = load(trace_b, label_b);

  std::ostringstream os;
  os << "trace diff — A: " << label_a << " (" << a.preds.size()
     << " predictions) vs B: " << label_b << " (" << b.preds.size()
     << " predictions)\n";

  // --- matched predictions -----------------------------------------------
  std::size_t matched = 0, flips = 0;
  for (const auto& [key, pa] : a.preds) {
    const Pred* pb = find_pred(b, key);
    if (!pb) continue;
    ++matched;
    os << "\n" << key << "\n";
    if (pa.ran != pb->ran) {
      os << "  ran: " << (pa.ran ? "true" : "false") << " -> "
         << (pb->ran ? "true" : "false") << "  [FLIP]\n";
      continue;
    }
    if (!pa.ran) {
      os << "  did not run on either side\n";
      continue;
    }
    os << "  seconds:    " << fmt(pa.seconds, 6) << " -> "
       << fmt(pb->seconds, 6) << "  (" << pct(pa.seconds, pb->seconds)
       << ")\n";
    os << "  mops:       " << fmt(pa.mops, 1) << " -> " << fmt(pb->mops, 1)
       << "  (" << pct(pa.mops, pb->mops) << ")\n";
    os << "  bw_gbs:     " << fmt(pa.bw_gbs, 1) << " -> " << fmt(pb->bw_gbs, 1)
       << "  (" << pct(pa.bw_gbs, pb->bw_gbs) << ")\n";
    if (pa.bottleneck != pb->bottleneck) {
      ++flips;
      os << "  bottleneck: " << pa.bottleneck << " -> " << pb->bottleneck
         << "  [FLIP]\n";
    } else {
      os << "  bottleneck: " << pa.bottleneck << " (unchanged)\n";
    }
    if (pa.vectorised != pb->vectorised) {
      os << "  vectorised: " << (pa.vectorised ? "true" : "false") << " -> "
         << (pb->vectorised ? "true" : "false") << "  [FLIP]\n";
    }
    for (const auto& [phase, sa] : pa.phases) {
      double sb = 0.0;
      bool found = false;
      for (const auto& [pn, pv] : pb->phases) {
        if (pn == phase) {
          sb = pv;
          found = true;
          break;
        }
      }
      if (!found) continue;
      os << "    phase " << phase << ": " << fmt(sa, 6) << " -> " << fmt(sb, 6)
         << "  (" << pct(sa, sb) << ")\n";
    }
  }
  if (matched == 0) os << "\n(no predictions matched between the traces)\n";

  // --- unmatched predictions ---------------------------------------------
  for (const auto& [key, p] : a.preds) {
    (void)p;
    if (!find_pred(b, key)) os << "\nonly in A: " << key << "\n";
  }
  for (const auto& [key, p] : b.preds) {
    (void)p;
    if (!find_pred(a, key)) os << "\nonly in B: " << key << "\n";
  }

  // --- instant events (saturation markers) -------------------------------
  bool header = false;
  const auto event_header = [&] {
    if (!header) os << "\nevents:\n";
    header = true;
  };
  for (const auto& [key, ca] : a.instants) {
    const auto it = b.instants.find(key);
    const int cb = it == b.instants.end() ? 0 : it->second;
    if (cb == 0) {
      event_header();
      os << "  vanished: " << key << " (" << ca << " -> 0)\n";
    } else if (cb != ca) {
      event_header();
      os << "  " << key << ": " << ca << " -> " << cb << "\n";
    }
  }
  for (const auto& [key, cb] : b.instants) {
    if (a.instants.find(key) == a.instants.end()) {
      event_header();
      os << "  new in B: " << key << " (0 -> " << cb << ")\n";
    }
  }

  // --- span aggregates ----------------------------------------------------
  bool span_header = false;
  const auto spans_header = [&] {
    if (!span_header) os << "\nspans (total us):\n";
    span_header = true;
  };
  for (const auto& [key, da] : a.span_dur_us) {
    const auto it = b.span_dur_us.find(key);
    if (it == b.span_dur_us.end()) {
      spans_header();
      os << "  only in A: " << key << " (" << fmt(da, 1) << ")\n";
    } else {
      spans_header();
      os << "  " << key << ": " << fmt(da, 1) << " -> " << fmt(it->second, 1)
         << "  (" << pct(da, it->second) << ")\n";
    }
  }
  for (const auto& [key, db] : b.span_dur_us) {
    if (a.span_dur_us.find(key) == a.span_dur_us.end()) {
      spans_header();
      os << "  only in B: " << key << " (" << fmt(db, 1) << ")\n";
    }
  }

  os << "\nsummary: " << matched << " matched, "
     << (a.preds.size() - matched) << " only-A, "
     << (b.preds.size() - matched) << " only-B, " << flips
     << " bottleneck flip" << (flips == 1 ? "" : "s") << "\n";
  return os.str();
}

}  // namespace rvhpc::obs
