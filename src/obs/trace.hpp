#pragma once
// rvhpc::obs — structured prediction tracing.
//
// A TraceSession collects typed records from the model and memsim layers
// while a prediction or sweep runs: timed spans (wall clock), instant
// events (DRAM-channel saturation, vector-outcome decisions, memsim cache
// snapshots) and PredictionRecords — the modelled per-phase ECM
// decomposition of each predict() call, whose phase seconds sum to the
// Prediction total.  Sessions export as Chrome trace_event JSON
// (chrome://tracing, Perfetto) and as a human-readable attribution report
// (see obs/report.hpp).
//
// Activation is process-global: instrumentation sites load one relaxed
// atomic pointer and do nothing when no session is installed — the
// null-sink fast path whose cost bench/obs_overhead bounds.  The installed
// session must outlive every span opened while it was active.

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rvhpc::obs {

/// Ordered key/value annotations attached to spans and events.
using Args = std::vector<std::pair<std::string, std::string>>;

/// A timed interval (Chrome "X" complete event).
struct Span {
  std::string name;
  std::string category;  ///< "model", "sweep", "memsim", "cli"
  double start_us = 0.0; ///< wall clock relative to session start
  double dur_us = 0.0;
  int tid = 0;           ///< dense per-process thread id
  Args args;
};

/// A point-in-time event (Chrome "i" instant event).
struct Instant {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  int tid = 0;
  Args args;
};

/// One modelled phase of a prediction's critical path.
struct Phase {
  std::string name;      ///< "compute", "stream-bandwidth", ...
  double seconds = 0.0;
};

/// The attribution payload one predict() call emits: where the modelled
/// time went and which resource the model says saturated.
struct PredictionRecord {
  /// Mechanism that produced this record: "analytic" (model::predict) or
  /// "interval" (sim); empty only for records from pre-backend emitters.
  std::string backend;
  std::string machine;
  std::string kernel;
  std::string problem_class;
  int cores = 1;
  bool ran = true;
  std::string dnr_reason;
  double seconds = 0.0;
  double mops = 0.0;
  double achieved_bw_gbs = 0.0;
  /// ECM decomposition; sums to `seconds` (within float rounding).
  std::vector<Phase> phases;
  std::string bottleneck;
  /// Non-dominant resources by raw time, as a fraction of the dominant
  /// resource's raw time, largest first — the "how close was it" margin.
  std::vector<std::pair<std::string, double>> runner_up;
  bool vectorised = false;
  double vector_speedup = 1.0;
  double ts_us = 0.0;  ///< stamped by TraceSession::add_prediction
  int tid = 0;         ///< stamped by TraceSession::add_prediction
};

/// Thread-safe event collector.  Emitters append under a mutex; accessors
/// return snapshots.  Timestamps are microseconds since construction.
class TraceSession {
 public:
  TraceSession();

  /// Microseconds of wall clock since the session started.
  [[nodiscard]] double now_us() const;

  void add_span(Span s);
  void add_instant(std::string name, std::string category, Args args = {});
  void add_prediction(PredictionRecord r);

  /// Caps resident records across all three kinds at `n` (0 = unbounded,
  /// the default).  Once full the session behaves as a ring buffer: each
  /// new record evicts the oldest record of its own kind (falling back to
  /// the largest collection when its own kind is empty), so a bounded
  /// session always holds the most recent history of every record type.
  /// Lowering the cap below the current population evicts immediately.
  void set_max_records(std::size_t n);
  [[nodiscard]] std::size_t max_records() const;
  /// Records evicted by the cap so far (exporters surface this so a
  /// truncated trace is never mistaken for a complete one).
  [[nodiscard]] std::size_t dropped_records() const;

  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::vector<Instant> instants() const;
  [[nodiscard]] std::vector<PredictionRecord> predictions() const;
  /// Total resident records of all three kinds (excludes dropped ones).
  [[nodiscard]] std::size_t event_count() const;

 private:
  enum class Kind { Span, Instant, Prediction };
  /// Called with mutex_ held, before inserting a record of `incoming`.
  void make_room(Kind incoming);

  double t0_ns_;
  mutable std::mutex mutex_;
  std::deque<Span> spans_;
  std::deque<Instant> instants_;
  std::deque<PredictionRecord> predictions_;
  std::size_t max_records_ = 0;  ///< 0 = unbounded
  std::size_t dropped_ = 0;
};

/// Installs `s` as the process-wide active session (nullptr deactivates).
/// Not owning; pair with SessionScope for RAII.
void set_session(TraceSession* s);

/// The active session, or nullptr when tracing is off.  One relaxed
/// atomic load — safe to call on hot paths.
[[nodiscard]] TraceSession* session();

/// Dense id of the calling thread, stable for the process lifetime.
[[nodiscard]] int thread_id();

/// RAII activation: owns a session, installs it for the scope's lifetime
/// and restores the previous session (and metrics enablement) on exit.
class SessionScope {
 public:
  explicit SessionScope(bool enable_metrics = true);
  ~SessionScope();
  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

  [[nodiscard]] TraceSession& session() { return session_; }

 private:
  TraceSession session_;
  TraceSession* previous_;
  bool previous_metrics_;
};

/// RAII span: captures the active session at construction and emits a
/// complete span on destruction.  When tracing is off it holds only a
/// null pointer and both construction and destruction are no-ops.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when a session was active at construction; guard arg() calls
  /// whose value formatting is itself costly.
  [[nodiscard]] bool active() const { return session_ != nullptr; }
  void arg(std::string key, std::string value);

 private:
  TraceSession* session_;
  double start_us_ = 0.0;
  Span span_;
};

}  // namespace rvhpc::obs
