#pragma once
// rvhpc::obs — self-profiling metrics for the library's own hot paths.
//
// A process-global Registry of named counters, gauges and histograms
// instruments predict() calls, sweep points and memsim accesses.  Like
// tracing, collection is off by default: sites check one relaxed atomic
// bool (metrics_enabled()) and skip everything when it is false, so an
// uninstrumented-feeling fast path survives in production sweeps.
//
// Instrument references are stable for the process lifetime — reset()
// zeroes values but never invalidates a Counter&/Histogram& obtained from
// the registry, so call sites may cache them in function-local statics.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rvhpc::obs {

/// Dense id of the calling thread (defined in trace.cpp; declared here so
/// Counter can shard without pulling in the tracing header).
[[nodiscard]] int thread_id();

/// Monotonically increasing event count.
///
/// Sharded per thread: add() touches one of 16 cache-line-padded atomics
/// selected by the dense thread id, so an engine pool hammering the same
/// counter (predict calls, cache hits) never bounces a shared line between
/// cores.  value() sums the shards — reads are exact because every add is
/// a relaxed atomic, merely spread out.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[static_cast<unsigned>(thread_id()) & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-written value (e.g. the active session's event count).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with percentile estimation.  Observations land
/// in the first bucket whose upper bound is >= the value; percentiles
/// interpolate linearly inside the containing bucket, clamped to the
/// observed min/max so exact-percentile tests are meaningful.
class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper edges; an implicit
  /// overflow bucket catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Value at percentile `p` in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 buckets
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-spaced timer bounds, 1 us .. ~100 s — the default for wall-clock
/// histograms so one layout serves predict() and whole-sweep timings.
[[nodiscard]] std::vector<double> default_time_bounds();

/// Named-instrument registry.  Lookup creates on first use; instruments
/// live for the process lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` is used only on first creation (default_time_bounds() when
  /// empty); later lookups return the existing histogram.
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds = {});

  /// Prometheus-flavoured plain text dump, sorted by name.
  [[nodiscard]] std::string render_text() const;
  /// JSON object keyed by instrument name.
  [[nodiscard]] std::string render_json() const;

  /// Zeroes every instrument (references stay valid).
  void reset();

  /// The process-wide registry all instrumentation sites use.
  static Registry& global();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Master switch for metrics collection (relaxed atomic read).
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool on);

/// RAII wall-clock timer: observes elapsed seconds into `h` on
/// destruction; a null target makes both ends no-ops (the disabled path).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  double start_ns_ = 0.0;
};

/// The global histogram `name` when metrics are on, nullptr otherwise —
/// the one-liner instrumentation sites feed ScopedTimer with.
[[nodiscard]] Histogram* timer_target(const char* name);

}  // namespace rvhpc::obs
