#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace rvhpc::obs {
namespace {

void append_args(std::ostringstream& os, const Args& args) {
  os << "\"args\": {";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json::escape(args[i].first) << "\": \""
       << json::escape(args[i].second) << "\"";
  }
  os << "}";
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

}  // namespace

std::string chrome_trace_json(const TraceSession& s) {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
  };

  for (const Span& sp : s.spans()) {
    sep();
    os << "{\"name\": \"" << json::escape(sp.name) << "\", \"cat\": \""
       << json::escape(sp.category) << "\", \"ph\": \"X\", \"ts\": "
       << json::number(sp.start_us) << ", \"dur\": " << json::number(sp.dur_us)
       << ", \"pid\": 1, \"tid\": " << sp.tid << ", ";
    append_args(os, sp.args);
    os << "}";
  }

  for (const Instant& in : s.instants()) {
    sep();
    os << "{\"name\": \"" << json::escape(in.name) << "\", \"cat\": \""
       << json::escape(in.category) << "\", \"ph\": \"i\", \"s\": \"t\", "
       << "\"ts\": " << json::number(in.ts_us) << ", \"pid\": 1, \"tid\": "
       << in.tid << ", ";
    append_args(os, in.args);
    os << "}";
  }

  // Prediction records ride as instant events whose args carry the full
  // attribution; "phases" is a nested object in modelled seconds at full
  // precision so tools can verify the sum against "seconds".
  for (const PredictionRecord& p : s.predictions()) {
    sep();
    os << "{\"name\": \"prediction " << json::escape(p.machine) << "/"
       << json::escape(p.kernel) << "." << json::escape(p.problem_class)
       << "@" << p.cores << "\", \"cat\": \"model\", \"ph\": \"i\", "
       << "\"s\": \"p\", \"ts\": " << json::number(p.ts_us)
       << ", \"pid\": 1, \"tid\": " << p.tid << ", \"args\": {";
    if (!p.backend.empty()) {
      os << "\"backend\": \"" << json::escape(p.backend) << "\", ";
    }
    os << "\"machine\": \"" << json::escape(p.machine) << "\", "
       << "\"kernel\": \"" << json::escape(p.kernel) << "\", "
       << "\"class\": \"" << json::escape(p.problem_class) << "\", "
       << "\"cores\": " << p.cores << ", "
       << "\"ran\": " << (p.ran ? "true" : "false") << ", ";
    if (!p.ran) {
      os << "\"dnr_reason\": \"" << json::escape(p.dnr_reason) << "\", ";
    }
    os << "\"seconds\": " << json::number(p.seconds) << ", "
       << "\"mops\": " << json::number(p.mops) << ", "
       << "\"achieved_bw_gbs\": " << json::number(p.achieved_bw_gbs) << ", "
       << "\"bottleneck\": \"" << json::escape(p.bottleneck) << "\", "
       << "\"vectorised\": " << (p.vectorised ? "true" : "false") << ", "
       << "\"vector_speedup\": " << json::number(p.vector_speedup) << ", "
       << "\"phases\": {";
    for (std::size_t i = 0; i < p.phases.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << json::escape(p.phases[i].name)
         << "\": " << json::number(p.phases[i].seconds);
    }
    os << "}, \"runner_up\": {";
    for (std::size_t i = 0; i < p.runner_up.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << json::escape(p.runner_up[i].first)
         << "\": " << json::number(p.runner_up[i].second);
    }
    os << "}}}";
  }

  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

std::string attribution_report(const TraceSession& s) {
  std::ostringstream os;
  const auto predictions = s.predictions();
  const auto instants = s.instants();

  os << "Bottleneck attribution — " << predictions.size() << " prediction"
     << (predictions.size() == 1 ? "" : "s") << ", " << s.spans().size()
     << " spans, " << instants.size() << " events\n";
  if (const std::size_t dropped = s.dropped_records(); dropped > 0) {
    os << "WARNING: " << dropped << " record" << (dropped == 1 ? "" : "s")
       << " dropped by the session cap (max_records=" << s.max_records()
       << ") — oldest history evicted, totals above are partial\n";
  }

  for (const PredictionRecord& p : predictions) {
    os << "\n" << p.machine << " / " << p.kernel << " class "
       << p.problem_class << " @ " << p.cores << " core"
       << (p.cores == 1 ? "" : "s");
    if (!p.backend.empty()) os << "  [" << p.backend << " backend]";
    os << "\n";
    if (!p.ran) {
      os << "  did not run: " << p.dnr_reason << "\n";
      continue;
    }
    os << "  modelled: " << fmt(p.seconds, 6) << " s  (" << fmt(p.mops, 1)
       << " Mop/s, " << fmt(p.achieved_bw_gbs, 1) << " GB/s streamed)\n"
       << "  critical-path decomposition:\n";
    for (const Phase& ph : p.phases) {
      const double pct = p.seconds > 0.0 ? 100.0 * ph.seconds / p.seconds : 0.0;
      os << "    " << ph.name << std::string(ph.name.size() < 18 ? 18 - ph.name.size() : 1, ' ')
         << fmt(ph.seconds, 6) << " s  " << fmt(pct, 1) << "%\n";
    }
    os << "  saturated resource: " << p.bottleneck << "\n";
    if (!p.runner_up.empty()) {
      os << "  runner-up: " << p.runner_up.front().first << " at "
         << fmt(100.0 * p.runner_up.front().second, 0)
         << "% of the dominant resource's time\n";
    }
    os << "  vector: "
       << (p.vectorised
               ? "vectorised, blended speedup " + fmt(p.vector_speedup, 2) + "x"
               : "scalar")
       << "\n";
  }

  if (!instants.empty()) {
    std::map<std::string, std::size_t> counts;
    for (const Instant& in : instants) ++counts[in.category + "/" + in.name];
    os << "\nevents:\n";
    for (const auto& [key, n] : counts) {
      os << "  " << key << " x" << n << "\n";
    }
    // Saturation events are the report's whole point: show their detail.
    std::size_t shown = 0;
    for (const Instant& in : instants) {
      if (in.name != "dram-channel-saturation" || shown >= 8) continue;
      ++shown;
      os << "  dram-channel-saturation:";
      for (const auto& [k, v] : in.args) os << " " << k << "=" << v;
      os << "\n";
    }
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out.good()) throw std::runtime_error("write to '" + path + "' failed");
}

}  // namespace rvhpc::obs
