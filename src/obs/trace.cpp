#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace rvhpc::obs {
namespace {

std::atomic<TraceSession*> g_session{nullptr};
std::atomic<int> g_next_thread_id{0};

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSession::TraceSession() : t0_ns_(steady_ns()) {}

double TraceSession::now_us() const { return (steady_ns() - t0_ns_) * 1e-3; }

void TraceSession::add_span(Span s) {
  std::lock_guard<std::mutex> lock(mutex_);
  make_room(Kind::Span);
  spans_.push_back(std::move(s));
}

void TraceSession::add_instant(std::string name, std::string category,
                               Args args) {
  Instant i{std::move(name), std::move(category), now_us(), thread_id(),
            std::move(args)};
  std::lock_guard<std::mutex> lock(mutex_);
  make_room(Kind::Instant);
  instants_.push_back(std::move(i));
}

void TraceSession::add_prediction(PredictionRecord r) {
  r.ts_us = now_us();
  r.tid = thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  make_room(Kind::Prediction);
  predictions_.push_back(std::move(r));
}

void TraceSession::make_room(Kind incoming) {
  if (max_records_ == 0) return;
  while (spans_.size() + instants_.size() + predictions_.size() >=
         max_records_) {
    // Ring semantics per kind: the incoming record evicts its own oldest
    // sibling, so one chatty record type cannot erase another's history.
    Kind victim = incoming;
    if ((victim == Kind::Span && spans_.empty()) ||
        (victim == Kind::Instant && instants_.empty()) ||
        (victim == Kind::Prediction && predictions_.empty())) {
      const std::size_t s = spans_.size(), i = instants_.size();
      if (s >= i && s >= predictions_.size())      victim = Kind::Span;
      else if (i >= predictions_.size())           victim = Kind::Instant;
      else                                         victim = Kind::Prediction;
    }
    switch (victim) {
      case Kind::Span:       spans_.pop_front(); break;
      case Kind::Instant:    instants_.pop_front(); break;
      case Kind::Prediction: predictions_.pop_front(); break;
    }
    ++dropped_;
  }
}

void TraceSession::set_max_records(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_records_ = n;
  if (n == 0) return;
  // Shrink an over-full session immediately, largest collection first.
  while (spans_.size() + instants_.size() + predictions_.size() > n) {
    const std::size_t s = spans_.size(), i = instants_.size();
    if (s >= i && s >= predictions_.size())  spans_.pop_front();
    else if (i >= predictions_.size())       instants_.pop_front();
    else                                     predictions_.pop_front();
    ++dropped_;
  }
}

std::size_t TraceSession::max_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_records_;
}

std::size_t TraceSession::dropped_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<Span> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::vector<Instant> TraceSession::instants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {instants_.begin(), instants_.end()};
}

std::vector<PredictionRecord> TraceSession::predictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {predictions_.begin(), predictions_.end()};
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size() + instants_.size() + predictions_.size();
}

void set_session(TraceSession* s) {
  g_session.store(s, std::memory_order_release);
}

TraceSession* session() { return g_session.load(std::memory_order_relaxed); }

int thread_id() {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SessionScope::SessionScope(bool enable_metrics)
    : previous_(rvhpc::obs::session()), previous_metrics_(metrics_enabled()) {
  set_session(&session_);
  if (enable_metrics) set_metrics_enabled(true);
}

SessionScope::~SessionScope() {
  set_session(previous_);
  set_metrics_enabled(previous_metrics_);
}

ScopedSpan::ScopedSpan(const char* category, const char* name)
    : session_(session()) {
  if (!session_) return;
  start_us_ = session_->now_us();
  span_.name = name;
  span_.category = category;
  span_.tid = thread_id();
}

ScopedSpan::~ScopedSpan() {
  if (!session_) return;
  span_.start_us = start_us_;
  span_.dur_us = session_->now_us() - start_us_;
  session_->add_span(std::move(span_));
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (!session_) return;
  span_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace rvhpc::obs
