#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace rvhpc::obs {
namespace {

std::atomic<TraceSession*> g_session{nullptr};
std::atomic<int> g_next_thread_id{0};

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSession::TraceSession() : t0_ns_(steady_ns()) {}

double TraceSession::now_us() const { return (steady_ns() - t0_ns_) * 1e-3; }

void TraceSession::add_span(Span s) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(s));
}

void TraceSession::add_instant(std::string name, std::string category,
                               Args args) {
  Instant i{std::move(name), std::move(category), now_us(), thread_id(),
            std::move(args)};
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(std::move(i));
}

void TraceSession::add_prediction(PredictionRecord r) {
  r.ts_us = now_us();
  r.tid = thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  predictions_.push_back(std::move(r));
}

std::vector<Span> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<Instant> TraceSession::instants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instants_;
}

std::vector<PredictionRecord> TraceSession::predictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return predictions_;
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size() + instants_.size() + predictions_.size();
}

void set_session(TraceSession* s) {
  g_session.store(s, std::memory_order_release);
}

TraceSession* session() { return g_session.load(std::memory_order_relaxed); }

int thread_id() {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SessionScope::SessionScope(bool enable_metrics)
    : previous_(rvhpc::obs::session()), previous_metrics_(metrics_enabled()) {
  set_session(&session_);
  if (enable_metrics) set_metrics_enabled(true);
}

SessionScope::~SessionScope() {
  set_session(previous_);
  set_metrics_enabled(previous_metrics_);
}

ScopedSpan::ScopedSpan(const char* category, const char* name)
    : session_(session()) {
  if (!session_) return;
  start_us_ = session_->now_us();
  span_.name = name;
  span_.category = category;
  span_.tid = thread_id();
}

ScopedSpan::~ScopedSpan() {
  if (!session_) return;
  span_.start_us = start_us_;
  span_.dur_us = session_->now_us() - start_us_;
  session_->add_span(std::move(span_));
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (!session_) return;
  span_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace rvhpc::obs
