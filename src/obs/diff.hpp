#pragma once
// rvhpc::obs — trace differencing.
//
// Two rvhpc-profile runs of the same sweep produce two Chrome trace
// documents; the interesting question is rarely either one alone but what
// *moved* between them — after a machine-file edit, a compiler change, a
// calibration tweak.  trace_diff_report() parses both documents with
// obs::json (no external dependency) and reports, per matched prediction,
// the runtime/rate deltas, per-phase time deltas and bottleneck flips,
// plus saturation events and span aggregates that appeared, vanished or
// changed count.  Predictions match on their identity key
// "machine/kernel.class@cores"; everything else is unmatched and listed.

#include <string>

namespace rvhpc::obs {

/// Human-readable comparison of two Chrome trace_event documents (the
/// format chrome_trace_json() writes).  `label_a`/`label_b` name the two
/// sides in the report (typically the file paths).  Throws
/// std::runtime_error when either document is not a parseable trace.
[[nodiscard]] std::string trace_diff_report(const std::string& trace_a,
                                            const std::string& trace_b,
                                            const std::string& label_a = "A",
                                            const std::string& label_b = "B");

}  // namespace rvhpc::obs
