#include "hpc/hpcg.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

namespace rvhpc::hpc::hpcg {
namespace {

/// 27-point stencil operator on an nx^3 grid with zero Dirichlet halo:
/// diagonal 26, off-diagonals -1 (the HPCG matrix).
class Stencil {
 public:
  explicit Stencil(int nx) : nx_(nx) {}

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx_) * nx_ * static_cast<std::size_t>(nx_);
  }

  void apply(const std::vector<double>& x, std::vector<double>& y,
             int threads) const {
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
    for (int k = 0; k < nx_; ++k) {
      for (int j = 0; j < nx_; ++j) {
        for (int i = 0; i < nx_; ++i) {
          y[idx(i, j, k)] = row_apply(x, i, j, k);
        }
      }
    }
  }

  /// One symmetric Gauss-Seidel sweep (forward then backward), the HPCG
  /// preconditioner.  Sequential by construction — HPCG's own reference
  /// implementation serialises here too.
  void sym_gs(const std::vector<double>& r, std::vector<double>& z) const {
    auto relax = [&](int i, int j, int k) {
      double sum = r[idx(i, j, k)];
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const int ii = i + dx, jj = j + dy, kk = k + dz;
            if (inside(ii, jj, kk)) sum += z[idx(ii, jj, kk)];
          }
        }
      }
      z[idx(i, j, k)] = sum / 26.0;
    };
    for (int k = 0; k < nx_; ++k) {
      for (int j = 0; j < nx_; ++j) {
        for (int i = 0; i < nx_; ++i) relax(i, j, k);
      }
    }
    for (int k = nx_ - 1; k >= 0; --k) {
      for (int j = nx_ - 1; j >= 0; --j) {
        for (int i = nx_ - 1; i >= 0; --i) relax(i, j, k);
      }
    }
  }

 private:
  int nx_;

  [[nodiscard]] bool inside(int i, int j, int k) const {
    return i >= 0 && j >= 0 && k >= 0 && i < nx_ && j < nx_ && k < nx_;
  }
  [[nodiscard]] std::size_t idx(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * nx_ + static_cast<std::size_t>(j)) *
               nx_ +
           static_cast<std::size_t>(i);
  }
  [[nodiscard]] double row_apply(const std::vector<double>& x, int i, int j,
                                 int k) const {
    double sum = 26.0 * x[idx(i, j, k)];
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const int ii = i + dx, jj = j + dy, kk = k + dz;
          if (inside(ii, jj, kk)) sum -= x[idx(ii, jj, kk)];
        }
      }
    }
    return sum;
  }
};

double dot(const std::vector<double>& a, const std::vector<double>& b,
           int threads) {
  double s = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : s) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(a.size()); ++i) {
    s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  return s;
}

/// Preconditioned CG; with `precondition == false` runs plain CG.
int pcg(const Stencil& op, const std::vector<double>& b, double tol,
        int max_iters, bool precondition, int threads, double* final_rel,
        double* flops) {
  const std::size_t n = b.size();
  std::vector<double> x(n, 0.0), r = b, z(n, 0.0), p(n), q(n);
  const double r0 = std::sqrt(dot(r, r, threads));
  double fl = 0.0;

  if (precondition) {
    std::fill(z.begin(), z.end(), 0.0);
    op.sym_gs(r, z);
    fl += 2.0 * 54.0 * static_cast<double>(n);
  } else {
    z = r;
  }
  p = z;
  double rz = dot(r, z, threads);
  int it = 0;
  double rel = 1.0;
  for (; it < max_iters; ++it) {
    op.apply(p, q, threads);
    fl += 54.0 * static_cast<double>(n);
    const double alpha = rz / dot(p, q, threads);
#pragma omp parallel for schedule(static) num_threads(threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      const auto ii = static_cast<std::size_t>(i);
      x[ii] += alpha * p[ii];
      r[ii] -= alpha * q[ii];
    }
    fl += 4.0 * static_cast<double>(n);
    rel = std::sqrt(dot(r, r, threads)) / r0;
    if (rel < tol) {
      ++it;
      break;
    }
    if (precondition) {
      std::fill(z.begin(), z.end(), 0.0);
      op.sym_gs(r, z);
      fl += 2.0 * 54.0 * static_cast<double>(n);
    } else {
      z = r;
    }
    const double rz_new = dot(r, z, threads);
    const double beta = rz_new / rz;
    rz = rz_new;
#pragma omp parallel for schedule(static) num_threads(threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      const auto ii = static_cast<std::size_t>(i);
      p[ii] = z[ii] + beta * p[ii];
    }
    fl += 2.0 * static_cast<double>(n);
  }
  if (final_rel != nullptr) *final_rel = rel;
  if (flops != nullptr) *flops += fl;
  return it;
}

}  // namespace

HpcgResult run(const HpcgConfig& cfg) {
  const Stencil op(cfg.nx);
  std::vector<double> b(op.size());
  npb::NpbRandom rng;
  for (double& v : b) v = rng.next();

  HpcgResult result;
  double flops = 0.0;
  npb::Timer timer;
  timer.start();
  result.iterations =
      pcg(op, b, cfg.tolerance, cfg.max_iters, /*precondition=*/true,
          cfg.threads, &result.final_relative_residual, &flops);
  result.seconds = timer.seconds();
  result.gflops = flops / result.seconds / 1e9;

  // Reference: plain CG needs notably more iterations for the same drop.
  result.unpreconditioned_iterations =
      pcg(op, b, cfg.tolerance, 5 * cfg.max_iters, /*precondition=*/false,
          cfg.threads, nullptr, nullptr);

  result.verified =
      result.final_relative_residual < cfg.tolerance &&
      result.iterations < result.unpreconditioned_iterations;
  return result;
}

}  // namespace rvhpc::hpc::hpcg
