#pragma once
// rvhpc::hpc — mini-HPL: the Linpack benchmark the paper's §7 proposes as
// future work.
//
// Solves a dense random system A x = b by blocked LU factorisation with
// partial pivoting followed by triangular solves, and verifies with the
// scaled residual HPL itself uses.  OpenMP parallelism over the trailing
// submatrix update (the DGEMM-like part that dominates, as in real HPL).

#include <cstddef>

#include "npb/npb_common.hpp"

namespace rvhpc::hpc::hpl {

/// Configuration of one run.
struct HplConfig {
  int n = 512;        ///< matrix order
  int block = 32;     ///< panel width
  int threads = 1;
};

/// Result of one run.
struct HplResult {
  double seconds = 0.0;
  double gflops = 0.0;         ///< 2/3 n^3 flop convention
  double scaled_residual = 0.0;  ///< ||Ax-b||_inf / (eps ||A||_1 ||x||_1 n)
  bool verified = false;       ///< scaled residual < 16 (the HPL threshold)
};

/// Runs mini-HPL; deterministic (NPB LCG-filled matrix).
HplResult run(const HplConfig& cfg);

}  // namespace rvhpc::hpc::hpl
