#include "hpc/hpl.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace rvhpc::hpc::hpl {
namespace {

/// Column-major dense matrix helper.
class Dense {
 public:
  explicit Dense(int n) : n_(n), a_(static_cast<std::size_t>(n) * n) {}
  [[nodiscard]] double& at(int r, int c) {
    return a_[static_cast<std::size_t>(c) * n_ + static_cast<std::size_t>(r)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return a_[static_cast<std::size_t>(c) * n_ + static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int n() const { return n_; }

 private:
  int n_;
  std::vector<double> a_;
};

void fill_random(Dense& a, std::vector<double>& b) {
  npb::NpbRandom rng;
  const int n = a.n();
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) a.at(r, c) = rng.next() - 0.5;
  }
  for (int r = 0; r < n; ++r) b[static_cast<std::size_t>(r)] = rng.next() - 0.5;
}

/// Blocked right-looking LU with partial pivoting; piv[i] = row swapped
/// into position i.  Returns false if a pivot vanishes.
bool lu_factor(Dense& a, std::vector<int>& piv, int block, int threads) {
  const int n = a.n();
  for (int k0 = 0; k0 < n; k0 += block) {
    const int kb = std::min(block, n - k0);
    // Panel factorisation (unblocked, with pivoting across the full
    // remaining column height).
    for (int k = k0; k < k0 + kb; ++k) {
      int p = k;
      double best = std::fabs(a.at(k, k));
      for (int r = k + 1; r < n; ++r) {
        const double v = std::fabs(a.at(r, k));
        if (v > best) {
          best = v;
          p = r;
        }
      }
      if (best == 0.0) return false;
      piv[static_cast<std::size_t>(k)] = p;
      if (p != k) {
        for (int c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(p, c));
      }
      const double pivot = a.at(k, k);
      for (int r = k + 1; r < n; ++r) {
        a.at(r, k) /= pivot;
        const double l = a.at(r, k);
        for (int c = k + 1; c < k0 + kb; ++c) a.at(r, c) -= l * a.at(k, c);
      }
    }
    // Row-panel update: U12 = L11^{-1} A12 (unit-lower triangular solve).
    const int trailing = k0 + kb;
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int c = trailing; c < n; ++c) {
      for (int k = k0; k < trailing; ++k) {
        const double u = a.at(k, c);
        for (int r = k + 1; r < trailing; ++r) {
          a.at(r, c) -= a.at(r, k) * u;
        }
      }
    }
    // Trailing submatrix update: A22 -= L21 * U12  (the GEMM).
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int c = trailing; c < n; ++c) {
      for (int k = k0; k < trailing; ++k) {
        const double u = a.at(k, c);
        for (int r = trailing; r < n; ++r) {
          a.at(r, c) -= a.at(r, k) * u;
        }
      }
    }
  }
  return true;
}

void lu_solve(const Dense& a, const std::vector<int>& piv,
              std::vector<double>& x) {
  const int n = a.n();
  for (int k = 0; k < n; ++k) {
    std::swap(x[static_cast<std::size_t>(k)],
              x[static_cast<std::size_t>(piv[static_cast<std::size_t>(k)])]);
  }
  for (int k = 0; k < n; ++k) {  // L y = b (unit lower)
    const double xk = x[static_cast<std::size_t>(k)];
    for (int r = k + 1; r < n; ++r) {
      x[static_cast<std::size_t>(r)] -= a.at(r, k) * xk;
    }
  }
  for (int k = n - 1; k >= 0; --k) {  // U x = y
    x[static_cast<std::size_t>(k)] /= a.at(k, k);
    const double xk = x[static_cast<std::size_t>(k)];
    for (int r = 0; r < k; ++r) {
      x[static_cast<std::size_t>(r)] -= a.at(r, k) * xk;
    }
  }
}

}  // namespace

HplResult run(const HplConfig& cfg) {
  Dense a(cfg.n);
  std::vector<double> b(static_cast<std::size_t>(cfg.n));
  fill_random(a, b);
  const Dense a0 = a;  // keep for the residual
  std::vector<double> x = b;
  std::vector<int> piv(static_cast<std::size_t>(cfg.n));

  npb::Timer timer;
  timer.start();
  HplResult result;
  if (!lu_factor(a, piv, cfg.block, cfg.threads)) return result;
  lu_solve(a, piv, x);
  result.seconds = timer.seconds();

  const double n = cfg.n;
  result.gflops = (2.0 / 3.0 * n * n * n + 2.0 * n * n) / result.seconds / 1e9;

  // HPL's scaled residual: ||Ax-b||_inf / (eps * ||A||_1 * ||x||_1 * n).
  double r_inf = 0.0, a_norm = 0.0, x_norm = 0.0;
  for (int c = 0; c < cfg.n; ++c) {
    double col = 0.0;
    for (int r = 0; r < cfg.n; ++r) col += std::fabs(a0.at(r, c));
    a_norm = std::max(a_norm, col);
    x_norm += std::fabs(x[static_cast<std::size_t>(c)]);
  }
#pragma omp parallel for schedule(static) reduction(max : r_inf) \
    num_threads(cfg.threads)
  for (int r = 0; r < cfg.n; ++r) {
    double ax = 0.0;
    for (int c = 0; c < cfg.n; ++c) {
      ax += a0.at(r, c) * x[static_cast<std::size_t>(c)];
    }
    r_inf = std::max(r_inf, std::fabs(ax - b[static_cast<std::size_t>(r)]));
  }
  result.scaled_residual =
      r_inf / (std::numeric_limits<double>::epsilon() * a_norm * x_norm * n);
  result.verified = result.scaled_residual < 16.0;  // the HPL criterion
  return result;
}

}  // namespace rvhpc::hpc::hpl
