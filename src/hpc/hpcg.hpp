#pragma once
// rvhpc::hpc — mini-HPCG: the other §7 future-work benchmark.
//
// Preconditioned conjugate gradient on the 27-point stencil Poisson system
// HPCG uses, with a symmetric Gauss-Seidel preconditioner — the
// bandwidth/latency-bound counterpoint to HPL's compute-bound LU.
// Verification mirrors HPCG's own: the preconditioned solver must converge
// in far fewer iterations than unpreconditioned CG, and the final residual
// must meet tolerance.

#include "npb/npb_common.hpp"

namespace rvhpc::hpc::hpcg {

/// Configuration of one run.
struct HpcgConfig {
  int nx = 32;        ///< local grid edge (cube)
  int max_iters = 60;
  double tolerance = 1e-8;  ///< on ||r|| / ||r0||
  int threads = 1;
};

/// Result of one run.
struct HpcgResult {
  double seconds = 0.0;
  double gflops = 0.0;
  int iterations = 0;            ///< preconditioned CG iterations used
  int unpreconditioned_iterations = 0;  ///< reference CG for the same drop
  double final_relative_residual = 0.0;
  bool verified = false;
};

/// Runs mini-HPCG; deterministic.
HpcgResult run(const HpcgConfig& cfg);

}  // namespace rvhpc::hpc::hpcg
