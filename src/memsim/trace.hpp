#pragma once
// rvhpc::memsim — synthetic access-trace generators.
//
// Each NPB kernel's memory behaviour is approximated by a composite of
// archetypal access patterns (streams, stencils, gathers, histogram
// updates, transposes) with interleaved compute.  The generators are
// deterministic (xorshift seeded per instance) so simulations are
// reproducible.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/workload.hpp"

namespace rvhpc::memsim {

/// One traced operation: a memory access preceded by `work_cycles` of
/// non-memory execution.
struct TraceOp {
  std::uint64_t addr = 0;
  bool is_write = false;
  double work_cycles = 0.0;
  /// Sequential/strided accesses a hardware prefetcher would run ahead of:
  /// they consume DRAM bandwidth but do not expose DRAM latency.
  bool prefetchable = false;
};

/// Deterministic pseudo-random source for trace generation.
class XorShift {
 public:
  explicit XorShift(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

 private:
  std::uint64_t state_;
};

/// Interface for infinite access streams.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  virtual TraceOp next() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Sequential sweep over a buffer (unit stride or strided).
class StreamGenerator final : public TraceGenerator {
 public:
  StreamGenerator(std::uint64_t base, std::uint64_t footprint_bytes,
                  int stride_bytes, double work_cycles, double write_ratio,
                  std::uint64_t seed = 1);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "stream"; }

 private:
  std::uint64_t base_, footprint_;
  int stride_;
  double work_, write_ratio_;
  std::uint64_t offset_ = 0;
  XorShift rng_;
};

/// Uniform random accesses over a footprint.
class RandomGenerator final : public TraceGenerator {
 public:
  RandomGenerator(std::uint64_t base, std::uint64_t footprint_bytes,
                  double work_cycles, double write_ratio, std::uint64_t seed = 2);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::uint64_t base_, footprint_;
  double work_, write_ratio_;
  XorShift rng_;
};

/// 7-point 3-D stencil sweep: neighbour loads then a centre store.
class StencilGenerator final : public TraceGenerator {
 public:
  StencilGenerator(std::uint64_t base, int nx, int ny, int nz,
                   double work_cycles);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "stencil"; }

 private:
  std::uint64_t base_;
  int nx_, ny_, nz_;
  double work_;
  std::uint64_t point_ = 0;
  int phase_ = 0;  // 0..6 loads, 7 centre store
  XorShift rng_;
};

/// SpMV-style gather: streams (values+indices) plus random reads of x.
class GatherGenerator final : public TraceGenerator {
 public:
  GatherGenerator(std::uint64_t matrix_base, std::uint64_t matrix_bytes,
                  std::uint64_t x_base, std::uint64_t x_bytes,
                  double work_cycles, std::uint64_t seed = 3);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "gather"; }

 private:
  std::uint64_t matrix_base_, matrix_bytes_, x_base_, x_bytes_;
  double work_;
  std::uint64_t offset_ = 0;
  int phase_ = 0;  // 0: matrix stream, 1: x gather
  XorShift rng_;
};

/// IS-style ranking: stream of key reads, each followed by a random
/// histogram increment (read-modify-write).
class HistogramGenerator final : public TraceGenerator {
 public:
  HistogramGenerator(std::uint64_t keys_base, std::uint64_t keys_bytes,
                     std::uint64_t hist_base, std::uint64_t hist_bytes,
                     double work_cycles, std::uint64_t seed = 4);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "histogram"; }

 private:
  std::uint64_t keys_base_, keys_bytes_, hist_base_, hist_bytes_;
  double work_;
  std::uint64_t offset_ = 0;
  int phase_ = 0;  // 0: key read, 1: histogram update
  XorShift rng_;
};

/// FT-style transpose: sequential reads, large-stride writes.
class TransposeGenerator final : public TraceGenerator {
 public:
  TransposeGenerator(std::uint64_t src_base, std::uint64_t dst_base, int rows,
                     int cols, int elem_bytes, double work_cycles);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "transpose"; }

 private:
  std::uint64_t src_base_, dst_base_;
  int rows_, cols_, elem_;
  double work_;
  std::uint64_t idx_ = 0;
  bool writing_ = false;
};

/// Weighted round-robin over sub-generators.
class MixGenerator final : public TraceGenerator {
 public:
  struct Part {
    std::unique_ptr<TraceGenerator> generator;
    int weight = 1;  ///< ops taken from this part per round
  };
  explicit MixGenerator(std::vector<Part> parts);
  TraceOp next() override;
  [[nodiscard]] std::string name() const override { return "mix"; }

 private:
  std::vector<Part> parts_;
  std::size_t current_ = 0;
  int taken_ = 0;
};

/// Builds the archetypal trace for one NPB kernel, footprint-scaled by
/// `scale` in (0, 1] so simulations stay tractable, with per-core address
/// disjointness via `core` (cores share read-only structures where the
/// real benchmark shares them).
[[nodiscard]] std::unique_ptr<TraceGenerator> kernel_trace(model::Kernel k,
                                                           double scale,
                                                           int core,
                                                           std::uint64_t seed);

}  // namespace rvhpc::memsim
