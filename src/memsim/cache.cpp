#include "memsim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace rvhpc::memsim {

Cache::Cache(std::size_t size_bytes, int associativity, int line_bytes)
    : size_(size_bytes), assoc_(associativity), line_(line_bytes) {
  if (size_bytes == 0 || associativity < 1 || line_bytes < 1 ||
      !std::has_single_bit(static_cast<unsigned>(line_bytes))) {
    throw std::invalid_argument("Cache: invalid geometry");
  }
  const std::size_t way_bytes =
      static_cast<std::size_t>(line_bytes) * static_cast<std::size_t>(associativity);
  if (size_bytes % way_bytes != 0) {
    throw std::invalid_argument("Cache: size not divisible by line*assoc");
  }
  sets_ = size_bytes / way_bytes;
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes));
  lines_.resize(sets_ * static_cast<std::size_t>(assoc_));
}

AccessResult Cache::access(std::uint64_t addr, bool is_write) {
  AccessResult result;
  ++stats_.accesses;
  const std::uint64_t line_addr = addr >> line_shift_;
  Line* set = &lines_[set_index(line_addr) * static_cast<std::size_t>(assoc_)];

  Line* victim = &set[0];
  for (int w = 0; w < assoc_; ++w) {
    Line& l = set[w];
    if (l.valid && l.tag == line_addr) {
      l.lru = ++stamp_;
      l.dirty = l.dirty || is_write;
      ++stats_.hits;
      result.hit = true;
      return result;
    }
    if (!l.valid) {
      victim = &l;  // prefer an invalid way
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }

  ++stats_.misses;
  if (victim->valid) {
    ++stats_.evictions;
    result.evicted = true;
    result.victim_line = victim->tag << line_shift_;
    if (victim->dirty) {
      ++stats_.writebacks;
      result.writeback = true;
    }
  }
  victim->tag = line_addr;
  victim->valid = true;
  victim->dirty = is_write;
  victim->lru = ++stamp_;
  return result;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr >> line_shift_;
  const Line* set = &lines_[set_index(line_addr) * static_cast<std::size_t>(assoc_)];
  for (int w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) return true;
  }
  return false;
}

bool Cache::invalidate(std::uint64_t addr) {
  const std::uint64_t line_addr = addr >> line_shift_;
  Line* set = &lines_[set_index(line_addr) * static_cast<std::size_t>(assoc_)];
  for (int w = 0; w < assoc_; ++w) {
    Line& l = set[w];
    if (l.valid && l.tag == line_addr) {
      if (l.dirty) ++stats_.writebacks;
      l = Line{};
      ++coherence_invalidations_;
      return true;
    }
  }
  return false;
}

void Cache::flush() {
  for (Line& l : lines_) {
    if (l.valid && l.dirty) ++stats_.writebacks;
    l = Line{};
  }
}

}  // namespace rvhpc::memsim
