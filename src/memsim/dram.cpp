#include "memsim/dram.hpp"

#include <algorithm>

namespace rvhpc::memsim {

DramModel::DramModel(const DramConfig& cfg) : cfg_(cfg) {
  const double bytes_per_second =
      cfg_.channels * cfg_.channel_bw_gbs * cfg_.efficiency * 1e9;
  const double window_seconds =
      static_cast<double>(cfg_.window_cycles) / (cfg_.clock_ghz * 1e9);
  window_capacity_bytes_ = bytes_per_second * window_seconds;
}

void DramModel::roll_to(std::uint64_t cycle) {
  while (cycle >= window_start_ + cfg_.window_cycles) {
    const double u = window_bytes_ / window_capacity_bytes_;
    ++windows_;
    if (u >= cfg_.bw_bound_threshold) ++bw_bound_windows_;
    window_bytes_ = 0.0;
    window_start_ += cfg_.window_cycles;
  }
}

double DramModel::request(std::uint64_t cycle) {
  roll_to(cycle);
  ++total_requests_;
  window_bytes_ += cfg_.line_bytes;
  return latency_cycles(current_utilisation());
}

void DramModel::finish(std::uint64_t final_cycle) {
  roll_to(final_cycle + cfg_.window_cycles);
}

double DramModel::current_utilisation() const {
  return std::min(window_bytes_ / window_capacity_bytes_, 1.0);
}

double DramModel::latency_cycles(double u) const {
  u = std::clamp(u, 0.0, 0.95);
  const double ns = cfg_.idle_latency_ns * (1.0 + 1.4 * u * u);
  return ns * cfg_.clock_ghz;  // ns * cycles/ns
}

}  // namespace rvhpc::memsim
