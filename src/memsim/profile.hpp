#pragma once
// rvhpc::memsim — stall-profile simulation (Table 1 reproduction).
//
// Runs one synthetic trace per core through the machine's cache hierarchy
// and DRAM model, charging stall cycles by the level that satisfied each
// access, and reports the same three columns the paper's Table 1 shows:
// % cycles stalled on cache, % cycles stalled on DRAM, and % of time the
// DRAM was bandwidth-bound.

#include "arch/machine.hpp"
#include "memsim/dram.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace.hpp"
#include "model/workload.hpp"

namespace rvhpc::memsim {

/// Configuration of one stall-profile run.
struct ProfileConfig {
  int cores = 26;
  std::uint64_t ops_per_core = 250000;  ///< trace length per core
  double footprint_scale = 1.0;         ///< shrink factor vs the real run
  /// Average outstanding misses that overlap a stall (divides exposed
  /// latency); OoO cores hide a lot of L2/L3 time.
  double stall_overlap = 4.0;
  /// Fraction of the trace run cold to warm the hierarchy before counting.
  double warmup_fraction = 0.15;
  std::uint64_t seed = 42;
};

/// Result of a stall-profile simulation.
struct StallReport {
  double cache_stall_pct = 0.0;  ///< % cycles stalled on L2/L3
  double ddr_stall_pct = 0.0;    ///< % cycles stalled on DRAM latency
  double ddr_bw_bound_pct = 0.0; ///< % of windows with DRAM near saturation
  double total_cycles = 0.0;
  double l1_hit_rate = 0.0;
  double dram_requests_per_kop = 0.0;
};

/// Simulates `kernel` on `cores` cores of `m`.
[[nodiscard]] StallReport simulate_stalls(const arch::MachineModel& m,
                                          model::Kernel kernel,
                                          const ProfileConfig& cfg);

}  // namespace rvhpc::memsim
