#pragma once
// rvhpc::memsim — set-associative cache with LRU replacement.
//
// The trace-driven simulator that reproduces the paper's Table 1 stall
// profile (and cross-checks the analytic model's cache assumptions).
// Caches are write-back / write-allocate, which matches the machines in
// the study.

#include <cstdint>
#include <vector>

namespace rvhpc::memsim {

/// Aggregate counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const {
    return accesses ? static_cast<double>(hits) / accesses : 0.0;
  }
  [[nodiscard]] double miss_rate() const {
    return accesses ? static_cast<double>(misses) / accesses : 0.0;
  }
};

/// Outcome of a single access.
struct AccessResult {
  bool hit = false;
  bool writeback = false;        ///< a dirty line was evicted
  std::uint64_t victim_line = 0; ///< line address of the eviction (if any)
  bool evicted = false;
};

/// A single set-associative, write-back, write-allocate cache level.
class Cache {
 public:
  /// size/line in bytes; associativity >= 1.  size must be divisible by
  /// line*associativity.  Throws std::invalid_argument otherwise.
  Cache(std::size_t size_bytes, int associativity, int line_bytes);

  /// Performs one access; installs the line on miss (evicting LRU).
  AccessResult access(std::uint64_t addr, bool is_write);

  /// True if the line containing addr is currently resident (no LRU
  /// update; for tests).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Drops all lines (counts dirty ones as writebacks).
  void flush();

  /// Invalidates the line containing addr if resident (coherence action);
  /// a dirty victim is counted as a writeback.  Returns true if a line was
  /// dropped.
  bool invalidate(std::uint64_t addr);

  /// Coherence invalidations received from other cores' writes.
  [[nodiscard]] std::uint64_t coherence_invalidations() const {
    return coherence_invalidations_;
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size_bytes() const { return size_; }
  [[nodiscard]] int associativity() const { return assoc_; }
  [[nodiscard]] int line_bytes() const { return line_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;   ///< last-touch stamp; smallest = LRU victim
    bool valid = false;
    bool dirty = false;
  };

  std::size_t size_;
  int assoc_;
  int line_;
  std::size_t sets_;
  int line_shift_;
  std::uint64_t stamp_ = 0;
  std::uint64_t coherence_invalidations_ = 0;
  std::vector<Line> lines_;  ///< sets_ x assoc_, row-major
  CacheStats stats_;

  [[nodiscard]] std::size_t set_index(std::uint64_t line_addr) const {
    return static_cast<std::size_t>(line_addr % sets_);
  }
};

}  // namespace rvhpc::memsim
