#include "memsim/profile.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rvhpc::memsim {

StallReport simulate_stalls(const arch::MachineModel& m, model::Kernel kernel,
                            const ProfileConfig& cfg) {
  obs::ScopedSpan span("memsim", "simulate_stalls");
  if (span.active()) {
    span.arg("machine", m.name);
    span.arg("kernel", model::to_string(kernel));
    span.arg("cores", std::to_string(cfg.cores));
    span.arg("ops_per_core", std::to_string(cfg.ops_per_core));
  }
  Hierarchy hierarchy(m, cfg.cores);
  DramConfig dram_cfg;
  dram_cfg.channels = m.memory.channels;
  dram_cfg.channel_bw_gbs = m.memory.channel_bw_gbs;
  dram_cfg.efficiency = m.memory.stream_efficiency;
  dram_cfg.idle_latency_ns = m.memory.idle_latency_ns;
  dram_cfg.clock_ghz = m.core.clock_ghz;
  DramModel dram(dram_cfg);

  std::vector<std::unique_ptr<TraceGenerator>> gens;
  gens.reserve(static_cast<std::size_t>(cfg.cores));
  for (int c = 0; c < cfg.cores; ++c) {
    gens.push_back(kernel_trace(kernel, cfg.footprint_scale, c,
                                cfg.seed + static_cast<std::uint64_t>(c)));
  }

  std::vector<double> cycles(static_cast<std::size_t>(cfg.cores), 0.0);
  double work_total = 0.0, cache_stall = 0.0, ddr_stall = 0.0;
  std::uint64_t dram_clock = 0;
  const double overlap = std::max(cfg.stall_overlap, 1.0);
  const std::size_t last_level = hierarchy.levels() - 1;

  // Warm the hierarchy so the profile reflects steady state, not cold
  // compulsory misses.
  const auto warmup_ops = static_cast<std::uint64_t>(
      cfg.ops_per_core * std::clamp(cfg.warmup_fraction, 0.0, 0.9));
  for (std::uint64_t i = 0; i < warmup_ops; ++i) {
    for (int c = 0; c < cfg.cores; ++c) {
      const TraceOp op = gens[static_cast<std::size_t>(c)]->next();
      hierarchy.access(c, op.addr, op.is_write);
    }
  }
  // Lock-step interleave: one op per core per round approximates the
  // concurrent execution of identical OpenMP worker loops.
  for (std::uint64_t i = warmup_ops; i < cfg.ops_per_core; ++i) {
    for (int c = 0; c < cfg.cores; ++c) {
      const TraceOp op = gens[static_cast<std::size_t>(c)]->next();
      const std::size_t ci = static_cast<std::size_t>(c);
      cycles[ci] += op.work_cycles;
      work_total += op.work_cycles;

      const HitLevel level = hierarchy.access(c, op.addr, op.is_write);
      double stall = 0.0;
      if (level == HitLevel::Dram) {
        dram_clock = std::max(dram_clock,
                              static_cast<std::uint64_t>(cycles[ci]));
        const double loaded = dram.request(dram_clock);
        if (op.prefetchable) {
          // The prefetcher ran ahead: bandwidth is consumed (counted by
          // the DRAM window above) and the demand load pays an LLC-fill
          // hit, not full DRAM latency — this is why IS shows 35% cache
          // stall with 0% DDR stall in Table 1.
          stall = hierarchy.level_latency(last_level) / overlap;
          cache_stall += stall;
        } else {
          stall = loaded / overlap;
          ddr_stall += stall;
        }
      } else if (level != HitLevel::L1) {
        stall = hierarchy.level_latency(static_cast<std::size_t>(level)) / overlap;
        cache_stall += stall;
      }
      cycles[ci] += stall;
    }
  }
  dram.finish(dram_clock);

  StallReport report;
  report.total_cycles = work_total + cache_stall + ddr_stall;
  if (report.total_cycles > 0.0) {
    report.cache_stall_pct = 100.0 * cache_stall / report.total_cycles;
    report.ddr_stall_pct = 100.0 * ddr_stall / report.total_cycles;
  }
  report.ddr_bw_bound_pct = 100.0 * dram.bw_bound_fraction();
  report.l1_hit_rate = hierarchy.level_stats(0).hit_rate();
  const double kops =
      static_cast<double>(cfg.ops_per_core - warmup_ops) * cfg.cores / 1000.0;
  report.dram_requests_per_kop =
      kops > 0.0 ? static_cast<double>(dram.total_requests()) / kops : 0.0;
  return report;
}

}  // namespace rvhpc::memsim
