#pragma once
// rvhpc::memsim — multi-core cache hierarchy.
//
// Builds per-core private levels plus shared levels (cluster L2, chip L3)
// from an arch::MachineModel and routes accesses through them, reporting
// at which level each access hit.

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/machine.hpp"
#include "memsim/cache.hpp"

namespace rvhpc::memsim {

/// Where an access was satisfied.
enum class HitLevel : std::uint8_t { L1, L2, L3, Dram };

/// A hierarchy instance for `cores` active cores of machine `m`.
///
/// Shared levels are modelled as single caches accessed by all sharers
/// (sequentially consistent interleaving; no coherence traffic beyond the
/// shared-capacity effect, which is the first-order phenomenon for the
/// stall profiles being reproduced).
class Hierarchy {
 public:
  /// `coherent` enables MESI-lite write-invalidation: a write by one core
  /// drops the line from every other instance of each private/cluster
  /// level, so sharers take coherence misses on their next access.
  /// Profile calibration was done without it (the paper's Table 1 folds
  /// coherence time into the cache-stall bucket), so it defaults off
  /// there and on here for detailed studies.
  explicit Hierarchy(const arch::MachineModel& m, int cores,
                     bool coherent = false);

  /// Routes one access from `core`; returns the deepest level consulted.
  HitLevel access(int core, std::uint64_t addr, bool is_write);

  /// Coherence invalidations delivered at level `i` (0 when not coherent).
  [[nodiscard]] std::uint64_t coherence_invalidations(std::size_t i) const;

  [[nodiscard]] int cores() const { return cores_; }
  [[nodiscard]] std::size_t levels() const { return level_caches_.size(); }

  /// Aggregated stats of level `i` (0 = L1) across all cache instances.
  [[nodiscard]] CacheStats level_stats(std::size_t i) const;

  /// Latency in cycles of level `i` as configured by the machine model.
  [[nodiscard]] double level_latency(std::size_t i) const;

 private:
  int cores_;
  bool coherent_;
  /// Accesses routed so far; every kObsEventStride-th emits an aggregate
  /// cache-stats instant into the active obs::TraceSession.
  std::uint64_t accesses_ = 0;
  std::vector<double> latencies_;
  /// level_caches_[level][instance]; instance = core / sharers.
  std::vector<std::vector<std::unique_ptr<Cache>>> level_caches_;
  std::vector<int> sharers_;

  Cache& cache_at(std::size_t level, int core) {
    return *level_caches_[level][static_cast<std::size_t>(core / sharers_[level])];
  }
};

}  // namespace rvhpc::memsim
