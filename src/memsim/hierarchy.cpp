#include "memsim/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvhpc::memsim {
namespace {

/// How often access() emits an aggregate cache-stats instant when a trace
/// session is active.  Coarse enough that multi-million-access traces stay
/// tractable, fine enough to see hit-rate drift over a run.
constexpr std::uint64_t kObsEventStride = 4096;

const char* level_name(std::size_t level, std::size_t levels) {
  if (level + 1 == levels && levels >= 3) return "l3";
  switch (level) {
    case 0: return "l1";
    case 1: return "l2";
    default: return "l3";
  }
}

void count_access(HitLevel result) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& total = obs::Registry::global().counter(
      "rvhpc_memsim_accesses_total", "accesses routed through Hierarchy");
  static obs::Counter& dram = obs::Registry::global().counter(
      "rvhpc_memsim_dram_accesses_total", "accesses that fell through to DRAM");
  total.add();
  if (result == HitLevel::Dram) dram.add();
}

}  // namespace

Hierarchy::Hierarchy(const arch::MachineModel& m, int cores, bool coherent)
    : cores_(cores), coherent_(coherent) {
  if (cores < 1 || cores > m.cores) {
    throw std::invalid_argument("Hierarchy: core count out of range");
  }
  for (const arch::CacheLevel& lvl : m.caches) {
    const int sharers = std::max(1, lvl.shared_by_cores);
    const int instances = (cores + sharers - 1) / sharers;
    std::vector<std::unique_ptr<Cache>> row;
    row.reserve(static_cast<std::size_t>(instances));
    for (int i = 0; i < instances; ++i) {
      row.push_back(std::make_unique<Cache>(lvl.size_bytes, lvl.associativity,
                                            lvl.line_bytes));
    }
    level_caches_.push_back(std::move(row));
    sharers_.push_back(sharers);
    latencies_.push_back(lvl.latency_cycles);
  }
}

HitLevel Hierarchy::access(int core, std::uint64_t addr, bool is_write) {
  HitLevel result = HitLevel::Dram;
  for (std::size_t level = 0; level < level_caches_.size(); ++level) {
    if (cache_at(level, core).access(addr, is_write).hit) {
      // Fill upwards so inner levels hold the line next time.
      result = static_cast<HitLevel>(level);
      break;
    }
  }
  if (coherent_ && is_write) {
    // MESI-lite: the writer gains exclusive ownership; every other
    // instance of each non-chip-wide level drops its copy.
    for (std::size_t level = 0; level < level_caches_.size(); ++level) {
      auto& row = level_caches_[level];
      if (row.size() <= 1) continue;  // chip-shared level: nothing to do
      const std::size_t own =
          static_cast<std::size_t>(core / sharers_[level]);
      for (std::size_t inst = 0; inst < row.size(); ++inst) {
        if (inst != own) row[inst]->invalidate(addr);
      }
    }
  }
  count_access(result);
  if (++accesses_ % kObsEventStride == 0) {
    if (obs::TraceSession* s = obs::session()) {
      obs::Args args = {{"accesses", std::to_string(accesses_)}};
      for (std::size_t i = 0; i < level_caches_.size(); ++i) {
        const CacheStats st = level_stats(i);
        const char* name = level_name(i, level_caches_.size());
        args.emplace_back(std::string(name) + "_hits", std::to_string(st.hits));
        args.emplace_back(std::string(name) + "_misses",
                          std::to_string(st.misses));
      }
      s->add_instant("cache-stats", "memsim", std::move(args));
    }
  }
  return result;
}

std::uint64_t Hierarchy::coherence_invalidations(std::size_t i) const {
  std::uint64_t total = 0;
  for (const auto& c : level_caches_.at(i)) total += c->coherence_invalidations();
  return total;
}

CacheStats Hierarchy::level_stats(std::size_t i) const {
  CacheStats total;
  for (const auto& c : level_caches_.at(i)) {
    const CacheStats& s = c->stats();
    total.accesses += s.accesses;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.writebacks += s.writebacks;
  }
  return total;
}

double Hierarchy::level_latency(std::size_t i) const { return latencies_.at(i); }

}  // namespace rvhpc::memsim
