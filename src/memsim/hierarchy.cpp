#include "memsim/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>

namespace rvhpc::memsim {

Hierarchy::Hierarchy(const arch::MachineModel& m, int cores, bool coherent)
    : cores_(cores), coherent_(coherent) {
  if (cores < 1 || cores > m.cores) {
    throw std::invalid_argument("Hierarchy: core count out of range");
  }
  for (const arch::CacheLevel& lvl : m.caches) {
    const int sharers = std::max(1, lvl.shared_by_cores);
    const int instances = (cores + sharers - 1) / sharers;
    std::vector<std::unique_ptr<Cache>> row;
    row.reserve(static_cast<std::size_t>(instances));
    for (int i = 0; i < instances; ++i) {
      row.push_back(std::make_unique<Cache>(lvl.size_bytes, lvl.associativity,
                                            lvl.line_bytes));
    }
    level_caches_.push_back(std::move(row));
    sharers_.push_back(sharers);
    latencies_.push_back(lvl.latency_cycles);
  }
}

HitLevel Hierarchy::access(int core, std::uint64_t addr, bool is_write) {
  HitLevel result = HitLevel::Dram;
  for (std::size_t level = 0; level < level_caches_.size(); ++level) {
    if (cache_at(level, core).access(addr, is_write).hit) {
      // Fill upwards so inner levels hold the line next time.
      result = static_cast<HitLevel>(level);
      break;
    }
  }
  if (coherent_ && is_write) {
    // MESI-lite: the writer gains exclusive ownership; every other
    // instance of each non-chip-wide level drops its copy.
    for (std::size_t level = 0; level < level_caches_.size(); ++level) {
      auto& row = level_caches_[level];
      if (row.size() <= 1) continue;  // chip-shared level: nothing to do
      const std::size_t own =
          static_cast<std::size_t>(core / sharers_[level]);
      for (std::size_t inst = 0; inst < row.size(); ++inst) {
        if (inst != own) row[inst]->invalidate(addr);
      }
    }
  }
  return result;
}

std::uint64_t Hierarchy::coherence_invalidations(std::size_t i) const {
  std::uint64_t total = 0;
  for (const auto& c : level_caches_.at(i)) total += c->coherence_invalidations();
  return total;
}

CacheStats Hierarchy::level_stats(std::size_t i) const {
  CacheStats total;
  for (const auto& c : level_caches_.at(i)) {
    const CacheStats& s = c->stats();
    total.accesses += s.accesses;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.writebacks += s.writebacks;
  }
  return total;
}

double Hierarchy::level_latency(std::size_t i) const { return latencies_.at(i); }

}  // namespace rvhpc::memsim
