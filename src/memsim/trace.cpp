#include "memsim/trace.hpp"

#include <algorithm>
#include <cmath>

namespace rvhpc::memsim {
namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
}

// ---------------------------------------------------------------------------
StreamGenerator::StreamGenerator(std::uint64_t base, std::uint64_t footprint,
                                 int stride, double work, double write_ratio,
                                 std::uint64_t seed)
    : base_(base),
      footprint_(std::max<std::uint64_t>(footprint, 64)),
      stride_(std::max(stride, 1)),
      work_(work),
      write_ratio_(write_ratio),
      rng_(seed) {}

TraceOp StreamGenerator::next() {
  TraceOp op;
  op.addr = base_ + offset_;
  op.work_cycles = work_;
  op.prefetchable = true;
  op.is_write = (rng_.next() % 1000) < static_cast<std::uint64_t>(write_ratio_ * 1000);
  offset_ += static_cast<std::uint64_t>(stride_);
  if (offset_ >= footprint_) offset_ = 0;
  return op;
}

// ---------------------------------------------------------------------------
RandomGenerator::RandomGenerator(std::uint64_t base, std::uint64_t footprint,
                                 double work, double write_ratio,
                                 std::uint64_t seed)
    : base_(base),
      footprint_(std::max<std::uint64_t>(footprint, 64)),
      work_(work),
      write_ratio_(write_ratio),
      rng_(seed) {}

TraceOp RandomGenerator::next() {
  TraceOp op;
  op.addr = base_ + (rng_.below(footprint_ / 8) * 8);
  op.work_cycles = work_;
  op.is_write = (rng_.next() % 1000) < static_cast<std::uint64_t>(write_ratio_ * 1000);
  return op;
}

// ---------------------------------------------------------------------------
StencilGenerator::StencilGenerator(std::uint64_t base, int nx, int ny, int nz,
                                   double work)
    : base_(base), nx_(nx), ny_(ny), nz_(nz), work_(work), rng_(base + 97) {}

TraceOp StencilGenerator::next() {
  const std::uint64_t points =
      static_cast<std::uint64_t>(nx_) * ny_ * static_cast<std::uint64_t>(nz_);
  const std::uint64_t p = point_ % points;
  const std::uint64_t plane = static_cast<std::uint64_t>(nx_) * ny_;
  TraceOp op;
  op.work_cycles = work_ / 8.0;  // spread the point's flops over its accesses
  // Constant-stride neighbour streams are prefetcher-friendly; a small
  // fraction of the leading-plane accesses (page/TLB boundaries) are not.
  op.prefetchable = true;
  switch (phase_) {
    case 0: op.addr = p; break;                                   // centre
    case 1: op.addr = p + 1; break;                               // x+1
    case 2: op.addr = (p >= 1 ? p - 1 : 0); break;                // x-1
    case 3:                                                        // y+1
      op.addr = p + static_cast<std::uint64_t>(nx_);
      op.prefetchable = (rng_.next() % 100) >= 12;
      break;
    case 4: op.addr = (p >= static_cast<std::uint64_t>(nx_)       // y-1
                           ? p - static_cast<std::uint64_t>(nx_) : p); break;
    case 5:                                                        // z+1
      op.addr = p + plane;
      op.prefetchable = (rng_.next() % 100) >= 12;
      break;
    case 6: op.addr = (p >= plane ? p - plane : p); break;         // z-1
    default:
      op.addr = p;
      op.is_write = true;      // centre store
      break;
  }
  op.addr = base_ + (op.addr % points) * 8;
  if (++phase_ > 7) {
    phase_ = 0;
    ++point_;
  }
  return op;
}

// ---------------------------------------------------------------------------
GatherGenerator::GatherGenerator(std::uint64_t matrix_base,
                                 std::uint64_t matrix_bytes,
                                 std::uint64_t x_base, std::uint64_t x_bytes,
                                 double work, std::uint64_t seed)
    : matrix_base_(matrix_base),
      matrix_bytes_(std::max<std::uint64_t>(matrix_bytes, 64)),
      x_base_(x_base),
      x_bytes_(std::max<std::uint64_t>(x_bytes, 64)),
      work_(work),
      rng_(seed) {}

TraceOp GatherGenerator::next() {
  TraceOp op;
  op.work_cycles = work_ / 2.0;
  if (phase_ == 0) {
    op.addr = matrix_base_ + offset_;
    // ~30% of the matrix stream defeats the prefetcher (row boundaries,
    // TLB-page crossings) and exposes DRAM latency, per the CG row in
    // Table 1 (18% DDR stall despite a streaming matrix).
    op.prefetchable = (rng_.next() % 10) >= 7;
    offset_ = (offset_ + 12) % matrix_bytes_;  // 8B value + 4B index
    phase_ = 1;
  } else {
    op.addr = x_base_ + rng_.below(x_bytes_ / 8) * 8;
    phase_ = 0;
  }
  return op;
}

// ---------------------------------------------------------------------------
HistogramGenerator::HistogramGenerator(std::uint64_t keys_base,
                                       std::uint64_t keys_bytes,
                                       std::uint64_t hist_base,
                                       std::uint64_t hist_bytes, double work,
                                       std::uint64_t seed)
    : keys_base_(keys_base),
      keys_bytes_(std::max<std::uint64_t>(keys_bytes, 64)),
      hist_base_(hist_base),
      hist_bytes_(std::max<std::uint64_t>(hist_bytes, 64)),
      work_(work),
      rng_(seed) {}

TraceOp HistogramGenerator::next() {
  TraceOp op;
  op.work_cycles = work_ / 2.0;
  if (phase_ == 0) {
    op.addr = keys_base_ + offset_;
    op.prefetchable = true;
    offset_ = (offset_ + 4) % keys_bytes_;
    phase_ = 1;
  } else {
    op.addr = hist_base_ + rng_.below(hist_bytes_ / 4) * 4;
    op.is_write = true;  // read-modify-write increment
    phase_ = 0;
  }
  return op;
}

// ---------------------------------------------------------------------------
TransposeGenerator::TransposeGenerator(std::uint64_t src_base,
                                       std::uint64_t dst_base, int rows,
                                       int cols, int elem, double work)
    : src_base_(src_base),
      dst_base_(dst_base),
      rows_(rows),
      cols_(cols),
      elem_(elem),
      work_(work) {}

TraceOp TransposeGenerator::next() {
  const std::uint64_t n = static_cast<std::uint64_t>(rows_) * cols_;
  const std::uint64_t i = idx_ % n;
  TraceOp op;
  op.work_cycles = work_ / 2.0;
  if (!writing_) {
    op.addr = src_base_ + i * elem_;  // sequential read
    op.prefetchable = true;
    writing_ = true;
  } else {
    const std::uint64_t r = i / cols_, c = i % cols_;
    op.addr = dst_base_ + (c * rows_ + r) * elem_;  // strided write
    op.is_write = true;
    // Constant-stride writes are prefetcher/write-combining friendly: they
    // mostly cost bandwidth; ~1 in 8 crosses a TLB page and stalls.
    op.prefetchable = (idx_ % 8) != 7;
    writing_ = false;
    ++idx_;
  }
  return op;
}

// ---------------------------------------------------------------------------
MixGenerator::MixGenerator(std::vector<Part> parts) : parts_(std::move(parts)) {}

TraceOp MixGenerator::next() {
  if (parts_.empty()) return {};
  Part& p = parts_[current_];
  TraceOp op = p.generator->next();
  if (++taken_ >= p.weight) {
    taken_ = 0;
    current_ = (current_ + 1) % parts_.size();
  }
  return op;
}

// ---------------------------------------------------------------------------
std::unique_ptr<TraceGenerator> kernel_trace(model::Kernel k, double scale,
                                             int core, std::uint64_t seed) {
  using model::Kernel;
  scale = std::clamp(scale, 1e-3, 1.0);
  // Private regions are separated by core; shared structures overlap.
  const std::uint64_t priv = 0x100000000ull +
                             static_cast<std::uint64_t>(core) * 0x40000000ull;
  const std::uint64_t shared = 0x4000000000ull;
  auto mib = [&](double m) {
    return static_cast<std::uint64_t>(std::max(m * scale, 0.004) * kMiB);
  };
  std::vector<MixGenerator::Part> parts;
  switch (k) {
    case Kernel::IS:
      // Histogram sized between L2 and the L3 share (cache-stall heavy,
      // DDR-latency clean) plus the bursty key-permutation phase that
      // saturates bandwidth for ~16% of the time (Table 1: 35% / 0% / 16%).
      parts.push_back({std::make_unique<HistogramGenerator>(priv, mib(40.0),
                                                            shared, mib(4.0),
                                                            20.0, seed),
                       50000});
      parts.push_back({std::make_unique<StreamGenerator>(priv + mib(64.0),
                                                         mib(40.0), 4, 0.5,
                                                         0.5, seed + 11),
                       150000});
      return std::make_unique<MixGenerator>(std::move(parts));
    case Kernel::MG: {
      const int edge = std::max<int>(16, static_cast<int>(512 * std::cbrt(scale)));
      return std::make_unique<StencilGenerator>(priv, edge, edge, edge, 5.0);
    }
    case Kernel::EP:
      // Tiny tables, long arithmetic chains: almost no memory pressure.
      return std::make_unique<RandomGenerator>(priv, mib(0.3), 30.0, 0.05, seed);
    case Kernel::CG:
      return std::make_unique<GatherGenerator>(priv, mib(17.0), shared,
                                               mib(1.2), 20.0, seed);
    case Kernel::FT: {
      const int rows = std::max<int>(64, static_cast<int>(512 * std::sqrt(scale)));
      parts.push_back({std::make_unique<TransposeGenerator>(priv, priv + mib(64.0),
                                                            rows, rows, 16, 16.0),
                       15000});
      parts.push_back({std::make_unique<StreamGenerator>(priv + mib(128.0),
                                                         mib(24.0), 16, 22.0,
                                                         0.45, seed),
                       45000});
      return std::make_unique<MixGenerator>(std::move(parts));
    }
    case Kernel::BT:
      // Blocked solves: modest streams, lots of register-resident flops.
      parts.push_back({std::make_unique<StreamGenerator>(priv, mib(20.0), 8,
                                                         20.0, 0.3, seed),
                       10});
      parts.push_back({std::make_unique<RandomGenerator>(shared + mib(64.0),
                                                         mib(60.0), 20.0, 0.3,
                                                         seed + 7),
                       1});
      return std::make_unique<MixGenerator>(std::move(parts));
    case Kernel::LU:
      parts.push_back({std::make_unique<StreamGenerator>(priv, mib(16.0), 8,
                                                         14.0, 0.3, seed),
                       12});
      parts.push_back({std::make_unique<RandomGenerator>(shared + mib(64.0),
                                                         mib(80.0), 14.0, 0.3,
                                                         seed + 7),
                       1});
      return std::make_unique<MixGenerator>(std::move(parts));
    case Kernel::SP:
      parts.push_back({std::make_unique<StreamGenerator>(priv, mib(28.0), 8,
                                                         6.0, 0.35, seed),
                       14});
      parts.push_back({std::make_unique<RandomGenerator>(shared + mib(64.0),
                                                         mib(100.0), 7.0, 0.35,
                                                         seed + 7),
                       1});
      return std::make_unique<MixGenerator>(std::move(parts));
    case Kernel::StreamCopy:
    case Kernel::StreamTriad:
      return std::make_unique<StreamGenerator>(priv, mib(60.0), 8, 0.5,
                                               k == Kernel::StreamCopy ? 0.5 : 0.33,
                                               seed);
    case Kernel::Hpl:
      // Blocked GEMM updates: panel streams with heavy register reuse.
      return std::make_unique<StreamGenerator>(priv, mib(24.0), 8, 30.0, 0.35,
                                               seed);
    case Kernel::Hpcg: {
      // SpMV sweeps plus the SymGS dependent gathers over the halo.
      const int edge = std::max<int>(16, static_cast<int>(256 * std::cbrt(scale)));
      parts.push_back({std::make_unique<StencilGenerator>(priv, edge, edge,
                                                          edge, 5.0),
                       4});
      parts.push_back({std::make_unique<RandomGenerator>(shared + mib(64.0),
                                                         mib(8.0), 5.0, 0.3,
                                                         seed + 7),
                       1});
      return std::make_unique<MixGenerator>(std::move(parts));
    }
  }
  return std::make_unique<StreamGenerator>(priv, mib(8.0), 8, 1.0, 0.0, seed);
}

}  // namespace rvhpc::memsim
