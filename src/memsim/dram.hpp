#pragma once
// rvhpc::memsim — DRAM controller/channel model.
//
// Window-based queueing model: requests arriving within a fixed cycle
// window share the channels' bandwidth; latency inflates quadratically
// with utilisation, the same law the analytic model uses
// (model::loaded_dram_latency_s).  Tracks the fraction of windows in which
// the DRAM was bandwidth-saturated — the paper's "time DDR bandwidth
// bound" column in Table 1.

#include <cstdint>

namespace rvhpc::memsim {

/// Static configuration of the memory subsystem under simulation.
struct DramConfig {
  int channels = 6;
  double channel_bw_gbs = 21.3;
  double efficiency = 0.67;        ///< sustained fraction of peak
  double idle_latency_ns = 75.0;
  double clock_ghz = 2.1;          ///< core clock, to convert ns -> cycles
  int line_bytes = 64;
  std::uint64_t window_cycles = 20000;  ///< utilisation accounting window
  double bw_bound_threshold = 0.85;     ///< window counts as "BW bound" above
};

/// Rolling utilisation + latency model.
class DramModel {
 public:
  explicit DramModel(const DramConfig& cfg);

  /// Registers a line fill (or writeback) at `cycle`; returns the loaded
  /// latency in cycles for this request.
  double request(std::uint64_t cycle);

  /// Must be called with non-decreasing cycles; finalises open windows.
  void finish(std::uint64_t final_cycle);

  /// Utilisation of the current window so far, in [0, ~1].
  [[nodiscard]] double current_utilisation() const;

  [[nodiscard]] std::uint64_t total_requests() const { return total_requests_; }
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t bw_bound_windows() const { return bw_bound_windows_; }

  /// Fraction of elapsed windows that were bandwidth-saturated.
  [[nodiscard]] double bw_bound_fraction() const {
    return windows_ ? static_cast<double>(bw_bound_windows_) / windows_ : 0.0;
  }

  /// Loaded latency in cycles at utilisation `u` (pure function, for tests).
  [[nodiscard]] double latency_cycles(double u) const;

 private:
  DramConfig cfg_;
  double window_capacity_bytes_;
  std::uint64_t window_start_ = 0;
  double window_bytes_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t bw_bound_windows_ = 0;
  std::uint64_t total_requests_ = 0;

  void roll_to(std::uint64_t cycle);
};

}  // namespace rvhpc::memsim
