#pragma once
// rvhpc::arch — structural validation of machine descriptions.
//
// Machine models are plain aggregates so they can be brace-initialised in
// tests and examples; validate() is the single place the invariants are
// enforced.  Every registry machine must validate cleanly (tested), and
// user-supplied custom machines can be checked before being handed to the
// performance model.

#include <string>
#include <vector>

#include "arch/machine.hpp"

namespace rvhpc::arch {

/// One violated invariant, human-readable.
struct ValidationIssue {
  std::string field;
  std::string message;
};

/// Checks structural invariants of `m` (positive clock/core counts, cache
/// levels ordered smallest-to-largest with non-decreasing sharing, memory
/// parameters physically sensible, ...).  Returns all violations; an empty
/// vector means the model is usable.
[[nodiscard]] std::vector<ValidationIssue> validate(const MachineModel& m);

/// Convenience: true when validate(m) is empty.
[[nodiscard]] bool is_valid(const MachineModel& m);

/// Formats issues one-per-line for error messages.
[[nodiscard]] std::string format_issues(const std::vector<ValidationIssue>& issues);

}  // namespace rvhpc::arch
