#include "arch/machine.hpp"

#include <algorithm>
#include <sstream>

namespace rvhpc::arch {

std::string to_string(VectorIsa v) {
  switch (v) {
    case VectorIsa::None:    return "none";
    case VectorIsa::RvvV0_7: return "RVV v0.7.1";
    case VectorIsa::RvvV1_0: return "RVV v1.0";
    case VectorIsa::Avx2:    return "AVX2";
    case VectorIsa::Avx512:  return "AVX-512";
    case VectorIsa::Neon:    return "NEON";
  }
  return "unknown";
}

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::Rv64gcv: return "RV64GCV";
    case Isa::Rv64gc:  return "RV64GC";
    case Isa::X86_64:  return "x86-64";
    case Isa::Armv8:   return "ARMv8";
  }
  return "unknown";
}

double MachineModel::peak_vector_gflops() const {
  const auto& v = core.vector;
  if (!v.usable()) return peak_scalar_gflops_core() * cores;
  // lanes × pipes × clock per core; FMA counting is deliberately omitted so
  // numbers stay comparable with the paper's op-rate (Mop/s) framing.
  return static_cast<double>(v.lanes_f64()) * v.pipes * core.clock_ghz * cores;
}

double MachineModel::peak_scalar_gflops_core() const {
  return core.clock_ghz * core.fp_units;
}

std::size_t MachineModel::llc_bytes() const {
  if (caches.empty()) return 0;
  return caches.back().size_bytes;
}

std::size_t MachineModel::cache_bytes_per_core(std::size_t level,
                                               int active_cores) const {
  if (level >= caches.size()) return 0;
  const CacheLevel& c = caches[level];
  const int sharers = std::clamp(active_cores, 1, c.shared_by_cores);
  return c.size_bytes / static_cast<std::size_t>(sharers);
}

std::optional<CacheLevel> MachineModel::find_cache(const std::string& level_name) const {
  const auto it = std::find_if(caches.begin(), caches.end(),
                               [&](const CacheLevel& c) { return c.name == level_name; });
  if (it == caches.end()) return std::nullopt;
  return *it;
}

std::string MachineModel::summary() const {
  std::ostringstream os;
  os << part << " (" << to_string(isa) << "), " << cores << " cores @ "
     << core.clock_ghz << " GHz, vector " << to_string(core.vector.isa);
  if (core.vector.usable()) os << " " << core.vector.width_bits << "-bit";
  os << "; caches:";
  for (const auto& c : caches) {
    os << " " << c.name << "=" << (c.size_bytes / 1024) << "KiB";
    if (c.shared_by_cores > 1) os << "/" << c.shared_by_cores << "cores";
  }
  os << "; memory " << memory.ddr_kind << " x" << memory.channels
     << " channels (" << memory.controllers << " controllers), sustained "
     << memory.chip_stream_bw_gbs() << " GB/s, " << memory.numa_regions
     << " NUMA region(s)";
  return os.str();
}

}  // namespace rvhpc::arch
