#pragma once
// rvhpc::arch — parameterised machine descriptions.
//
// Every CPU evaluated in the paper is described by a MachineModel: core
// microarchitecture, vector unit, cache hierarchy and memory subsystem.
// The analytic performance model (rvhpc::model) and the trace-driven
// memory simulator (rvhpc::memsim) both consume these descriptions, so a
// single set of microarchitectural facts drives every reproduced table
// and figure.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace rvhpc::arch {

/// Instruction set architecture families that appear in the paper.
enum class Isa : std::uint8_t {
  Rv64gcv,   ///< RISC-V 64-bit with vector extension (SG2042/SG2044, boards)
  Rv64gc,    ///< RISC-V 64-bit without usable vector unit (U74 boards)
  X86_64,    ///< AMD EPYC 7742, Intel Xeon Platinum 8170
  Armv8,     ///< Marvell ThunderX2 CN9980
};

/// Vector/SIMD instruction sets relevant to the study.  The compiler model
/// decides which of these a given toolchain can actually target.
enum class VectorIsa : std::uint8_t {
  None,      ///< no SIMD unit (or none usable)
  RvvV0_7,   ///< RISC-V V-extension draft 0.7.1 (SG2042 C920v1, C906)
  RvvV1_0,   ///< ratified RVV 1.0 (SG2044 C920v2, SpacemiT X60)
  Avx2,      ///< 256-bit AVX2 (EPYC 7742)
  Avx512,    ///< 512-bit AVX-512 (Xeon 8170)
  Neon,      ///< 128-bit NEON (ThunderX2)
};

/// Returns a short human-readable name ("RVV v1.0", "AVX2", ...).
[[nodiscard]] std::string to_string(VectorIsa v);
[[nodiscard]] std::string to_string(Isa isa);

/// SIMD/vector execution resources of one core.
struct VectorUnit {
  VectorIsa isa = VectorIsa::None;
  int width_bits = 0;     ///< architectural vector register width
  int pipes = 1;          ///< vector ops issued per cycle when saturated
  /// Relative throughput of indexed (gather/scatter) vector memory ops
  /// versus unit-stride, in (0,1].  RVV gathers on the C920v2 are slow and
  /// branchy, which drives the paper's CG vectorisation pathology (§6).
  double gather_efficiency = 1.0;

  /// Number of double-precision lanes (64-bit elements per operation).
  [[nodiscard]] int lanes_f64() const { return width_bits > 0 ? width_bits / 64 : 0; }
  [[nodiscard]] bool usable() const { return isa != VectorIsa::None && width_bits > 0; }
};

/// Scalar pipeline description of one core.
struct CoreModel {
  double clock_ghz = 1.0;
  bool out_of_order = true;
  int decode_width = 1;
  int issue_width = 1;
  int fp_units = 1;           ///< scalar floating-point pipes
  int load_store_units = 1;
  int pipeline_stages = 8;

  /// Sustained scalar operations per cycle on an NPB-style mix.  This is a
  /// calibrated summary of frontend width, ROB depth, branch prediction and
  /// scheduler quality — the one per-core fit parameter the model allows.
  double sustained_scalar_opc = 1.0;

  /// Maximum outstanding L1 misses a single core keeps in flight (MSHRs);
  /// bounds latency-bound (IS-style) throughput.
  int miss_level_parallelism = 4;

  /// Efficiency retained on deep multi-array loop nests (the BT/LU/SP
  /// pseudo-applications) relative to simple kernels, in (0, 1].  Mature
  /// x86 cores hold ~1.0; the C920's shorter OoO window and weaker
  /// prefetching lose ground here (Table 6).
  double complex_loop_efficiency = 1.0;

  VectorUnit vector;
};

/// One level of the cache hierarchy.
struct CacheLevel {
  std::string name;          ///< "L1D", "L2", "L3"
  std::size_t size_bytes = 0;
  int associativity = 8;
  int line_bytes = 64;
  int shared_by_cores = 1;   ///< 1 = private, 4 = per 4-core cluster, ...
  double latency_cycles = 4; ///< load-to-use latency
};

/// Off-chip memory subsystem.  The paper's core claim — that the SG2044's
/// 32 controllers / 32 channels of DDR5 remove the SG2042's scaling wall —
/// lives in these fields.
struct MemorySubsystem {
  int controllers = 1;
  int channels = 1;
  std::string ddr_kind = "DDR4-3200";
  double channel_bw_gbs = 25.6;   ///< peak per channel
  /// Fraction of peak a STREAM-like workload sustains chip-wide.
  double stream_efficiency = 0.8;
  /// Sustained bandwidth one core can draw by itself (GB/s).
  double per_core_bw_gbs = 8.0;
  /// Idle (unloaded) DRAM access latency seen by a core, nanoseconds.
  double idle_latency_ns = 100.0;
  /// Outstanding requests each controller tracks; bounds chip-wide
  /// memory-level parallelism for random access patterns.
  int controller_queue_depth = 16;
  /// Extra sustained bandwidth available to read-dominated traffic
  /// relative to STREAM copy (which pays write-allocate costs), as a
  /// multiplier >= 1.  The SG2042's copy bandwidth plateaus well below
  /// what its read streams sustain, which is why its 64-core MG rate
  /// exceeds the Fig. 1 copy ceiling.
  double read_bw_bonus = 1.0;
  int numa_regions = 1;
  double dram_gib = 16.0;

  /// Chip-wide sustained streaming bandwidth in GB/s.
  [[nodiscard]] double chip_stream_bw_gbs() const {
    return static_cast<double>(channels) * channel_bw_gbs * stream_efficiency;
  }
};

/// A complete machine description.
struct MachineModel {
  std::string name;        ///< registry key, e.g. "sg2044"
  std::string part;        ///< marketing part, e.g. "Sophon SG2044"
  Isa isa = Isa::Rv64gcv;
  int cores = 1;
  int cluster_size = 1;    ///< cores sharing the mid-level cache
  CoreModel core;
  std::vector<CacheLevel> caches;   ///< ordered L1D, L2, [L3]
  MemorySubsystem memory;
  /// Optional NUMA/multi-socket overlay (src/topo).  Flat (empty) for
  /// every single-socket machine — consumers must treat a flat topology
  /// bit-identically to a machine that predates the field.
  topo::Topology topology;

  /// Peak double-precision GFLOP/s of the whole chip with vector units.
  [[nodiscard]] double peak_vector_gflops() const;
  /// Peak double-precision GFLOP/s of one core using scalar FP pipes only.
  [[nodiscard]] double peak_scalar_gflops_core() const;
  /// Total last-level cache bytes.
  [[nodiscard]] std::size_t llc_bytes() const;
  /// Cache capacity available to a single active core at `level`
  /// (a lone core owns the whole shared structure).
  [[nodiscard]] std::size_t cache_bytes_per_core(std::size_t level,
                                                 int active_cores) const;
  /// Find a level by name ("L2"); nullopt if the machine lacks it.
  [[nodiscard]] std::optional<CacheLevel> find_cache(const std::string& level_name) const;
  /// One-paragraph description used by example programs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace rvhpc::arch
