#include "arch/registry.hpp"

#include <map>
#include <stdexcept>

namespace rvhpc::arch {
namespace {

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;

CacheLevel l1d(std::size_t kib, double lat = 4) {
  return {"L1D", kib * kKiB, 8, 64, 1, lat};
}
CacheLevel l2(std::size_t kib, int shared, double lat) {
  return {"L2", kib * kKiB, 16, 64, shared, lat};
}
CacheLevel l3(std::size_t mib, int shared, double lat) {
  return {"L3", mib * kMiB, 16, 64, shared, lat};
}

// ---------------------------------------------------------------------------
// SOPHGO Sophon SG2044 — the paper's subject.  64x T-Head XuanTie C920v2
// (12-stage OoO, 3-decode / 8-issue / 2-LSU), RVV 1.0 @ 128-bit, clusters of
// four cores sharing 2 MiB L2, 64 MiB L3, 32 memory controllers and 32
// DDR5-4266 channels in a single NUMA region (paper §2.1, §5.2).
MachineModel make_sg2044() {
  MachineModel m;
  m.name = "sg2044";
  m.part = "Sophon SG2044";
  m.isa = Isa::Rv64gcv;
  m.cores = 64;
  m.cluster_size = 4;
  m.core.clock_ghz = 2.6;                  // test system; [11] claims 2.8
  m.core.out_of_order = true;
  m.core.decode_width = 3;
  m.core.issue_width = 8;
  m.core.fp_units = 2;
  m.core.load_store_units = 2;
  m.core.pipeline_stages = 12;
  m.core.sustained_scalar_opc = 1.30;
  m.core.miss_level_parallelism = 5;
  m.core.complex_loop_efficiency = 0.66;
  m.core.vector = {VectorIsa::RvvV1_0, 128, 2, /*gather_efficiency=*/0.18};
  m.caches = {l1d(64), l2(2048, 4, 14), l3(64, 64, 40)};
  m.memory.controllers = 32;
  m.memory.channels = 32;
  m.memory.ddr_kind = "DDR5-4266";
  m.memory.channel_bw_gbs = 8.5;          // x16 DDR5 sub-channels
  m.memory.stream_efficiency = 0.44;      // sustained ~120 GB/s (Fig. 1)
  m.memory.per_core_bw_gbs = 4.8;         // single-core ~ SG2042 (Fig. 1)
  m.memory.idle_latency_ns = 110.0;
  m.memory.controller_queue_depth = 32;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 128.0;
  return m;
}

// SOPHGO Sophon SG2042 — predecessor.  Same 64-core 4-per-cluster layout with
// C920v1 @ 2.0 GHz, RVV 0.7.1 (mainline compilers cannot vectorise), half the
// L2 (1 MiB/cluster) and only 4 memory controllers / 4 DDR4-3200 channels,
// the scaling wall the paper demonstrates (§2.1, §5.2, Fig. 1).
MachineModel make_sg2042() {
  MachineModel m;
  m.name = "sg2042";
  m.part = "Sophon SG2042";
  m.isa = Isa::Rv64gcv;
  m.cores = 64;
  m.cluster_size = 4;
  m.core.clock_ghz = 2.0;
  m.core.out_of_order = true;
  m.core.decode_width = 3;
  m.core.issue_width = 8;
  m.core.fp_units = 2;
  m.core.load_store_units = 2;
  m.core.pipeline_stages = 12;
  m.core.sustained_scalar_opc = 1.26;
  m.core.miss_level_parallelism = 5;
  m.core.complex_loop_efficiency = 0.66;
  m.core.vector = {VectorIsa::RvvV0_7, 128, 2, /*gather_efficiency=*/0.18};
  m.caches = {l1d(64), l2(1024, 4, 14), l3(64, 64, 40)};
  m.memory.controllers = 4;
  m.memory.channels = 4;
  m.memory.ddr_kind = "DDR4-3200";
  m.memory.channel_bw_gbs = 25.6;
  m.memory.stream_efficiency = 0.355;     // sustained ~36 GB/s plateau (Fig. 1)
  m.memory.per_core_bw_gbs = 4.8;
  m.memory.idle_latency_ns = 120.0;
  m.memory.controller_queue_depth = 7;
  m.memory.read_bw_bonus = 1.45;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 128.0;
  return m;
}

// AMD EPYC 7742 (Rome, Zen 2) on ARCHER2: 64 cores in four NUMA regions,
// AVX2 (two 256-bit ops/cycle), 512 KiB private L2, 16 MiB L3 per 4-core CCX,
// 8 controllers / 8 channels of DDR4-3200 (§5, §5.2).
MachineModel make_epyc7742() {
  MachineModel m;
  m.name = "epyc7742";
  m.part = "AMD EPYC 7742";
  m.isa = Isa::X86_64;
  m.cores = 64;
  m.cluster_size = 4;                      // CCX
  m.core.clock_ghz = 2.25;
  m.core.out_of_order = true;
  m.core.decode_width = 4;
  m.core.issue_width = 10;
  m.core.fp_units = 2;
  m.core.load_store_units = 3;
  m.core.pipeline_stages = 19;
  m.core.sustained_scalar_opc = 1.72;
  m.core.miss_level_parallelism = 16;
  m.core.vector = {VectorIsa::Avx2, 256, 2, /*gather_efficiency=*/0.55};
  m.caches = {l1d(32), l2(512, 1, 12), l3(16, 4, 38)};
  m.memory.controllers = 8;
  m.memory.channels = 8;
  m.memory.ddr_kind = "DDR4-3200";
  m.memory.channel_bw_gbs = 25.6;
  m.memory.stream_efficiency = 0.70;      // ~143 GB/s sustained per socket
  m.memory.per_core_bw_gbs = 16.0;
  m.memory.idle_latency_ns = 95.0;
  m.memory.controller_queue_depth = 24;
  m.memory.numa_regions = 4;
  m.memory.dram_gib = 256.0;
  return m;
}

// Intel Xeon Platinum 8170 (Skylake-SP): 26 cores, AVX-512, 1 MiB private L2,
// 35.75 MiB shared L3, 2 controllers / 6 channels DDR4-2666 (§5, Table 1 host).
MachineModel make_xeon8170() {
  MachineModel m;
  m.name = "xeon8170";
  m.part = "Intel Xeon Platinum 8170";
  m.isa = Isa::X86_64;
  m.cores = 26;
  m.cluster_size = 26;                     // monolithic shared L3 die
  m.core.clock_ghz = 2.1;
  m.core.out_of_order = true;
  m.core.decode_width = 4;
  m.core.issue_width = 8;
  m.core.fp_units = 2;
  m.core.load_store_units = 3;
  m.core.pipeline_stages = 14;
  m.core.sustained_scalar_opc = 1.62;
  m.core.miss_level_parallelism = 17;      // aggressive HW prefetch
  m.core.vector = {VectorIsa::Avx512, 512, 2, /*gather_efficiency=*/0.50};
  m.caches = {l1d(32), l2(1024, 1, 14), l3(36, 26, 50)};
  m.memory.controllers = 2;
  m.memory.channels = 6;
  m.memory.ddr_kind = "DDR4-2666";
  m.memory.channel_bw_gbs = 21.3;
  m.memory.stream_efficiency = 0.67;      // ~85 GB/s sustained
  m.memory.per_core_bw_gbs = 12.0;
  m.memory.idle_latency_ns = 75.0;
  m.memory.controller_queue_depth = 48;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 192.0;
  return m;
}

// Marvell ThunderX2 CN9980 (Vulcan, ARMv8.1) on Fulhame: 32 cores, NEON
// 128-bit, 256 KiB private L2, 32 MiB shared L3, 2 controllers / 8 channels
// DDR4-2666, SMT disabled (§5).
MachineModel make_thunderx2() {
  MachineModel m;
  m.name = "thunderx2";
  m.part = "Marvell ThunderX2 CN9980";
  m.isa = Isa::Armv8;
  m.cores = 32;
  m.cluster_size = 32;
  m.core.clock_ghz = 2.0;
  m.core.out_of_order = true;
  m.core.decode_width = 4;
  m.core.issue_width = 6;
  m.core.fp_units = 2;
  m.core.load_store_units = 2;
  m.core.pipeline_stages = 14;
  m.core.sustained_scalar_opc = 1.55;
  m.core.miss_level_parallelism = 12;
  m.core.complex_loop_efficiency = 0.95;
  m.core.vector = {VectorIsa::Neon, 128, 2, /*gather_efficiency=*/0.40};
  m.caches = {l1d(32), l2(256, 1, 9), l3(32, 32, 35)};
  m.memory.controllers = 2;
  m.memory.channels = 8;
  m.memory.ddr_kind = "DDR4-2666";
  m.memory.channel_bw_gbs = 21.3;
  m.memory.stream_efficiency = 0.65;      // ~110 GB/s sustained
  m.memory.per_core_bw_gbs = 9.0;
  m.memory.idle_latency_ns = 100.0;
  m.memory.controller_queue_depth = 40;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 128.0;
  return m;
}

// StarFive VisionFive V2 (JH7110, SiFive U74): in-order dual-issue, no usable
// vector unit, 2 MiB shared L2 as LLC, single LPDDR4 channel, 8 GiB (§3).
MachineModel make_visionfive_v2() {
  MachineModel m;
  m.name = "visionfive-v2";
  m.part = "StarFive VisionFive V2 (JH7110 / U74)";
  m.isa = Isa::Rv64gc;
  m.cores = 4;
  m.cluster_size = 4;
  m.core.clock_ghz = 1.5;
  m.core.out_of_order = false;
  m.core.decode_width = 2;
  m.core.issue_width = 2;
  m.core.fp_units = 1;
  m.core.load_store_units = 1;
  m.core.pipeline_stages = 8;
  m.core.sustained_scalar_opc = 0.67;
  m.core.miss_level_parallelism = 4;
  m.core.complex_loop_efficiency = 0.70;
  m.core.vector = {};                      // U74 has no V extension
  m.caches = {l1d(32), l2(2048, 4, 21)};
  m.memory.controllers = 1;
  m.memory.channels = 1;
  m.memory.ddr_kind = "LPDDR4-2800";
  m.memory.channel_bw_gbs = 11.2;
  m.memory.stream_efficiency = 0.16;      // weak MC: ~1.8 GB/s chip
  m.memory.per_core_bw_gbs = 0.95;
  m.memory.idle_latency_ns = 155.0;
  m.memory.controller_queue_depth = 8;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 8.0;
  return m;
}

// StarFive VisionFive V1 (JH7100): the original U74 board with a famously
// slow memory path (non-coherent interconnect workarounds), 8 GiB (§3).
MachineModel make_visionfive_v1() {
  MachineModel m = make_visionfive_v2();
  m.name = "visionfive-v1";
  m.part = "StarFive VisionFive V1 (JH7100 / U74)";
  m.cores = 2;
  m.cluster_size = 2;
  m.core.clock_ghz = 1.0;
  m.core.sustained_scalar_opc = 0.64;
  m.core.miss_level_parallelism = 3;
  m.caches = {l1d(32), l2(2048, 2, 24)};
  m.memory.channel_bw_gbs = 8.5;
  m.memory.stream_efficiency = 0.055;     // ~0.45 GB/s chip
  m.memory.per_core_bw_gbs = 0.24;
  m.memory.idle_latency_ns = 330.0;
  m.memory.controller_queue_depth = 4;
  m.memory.dram_gib = 8.0;
  return m;
}

// SiFive Freedom U740 (HiFive Unmatched): 4x U74 @ 1.2 GHz, 16 GiB DDR4 (§3).
MachineModel make_u740() {
  MachineModel m = make_visionfive_v2();
  m.name = "sifive-u740";
  m.part = "SiFive HiFive Unmatched (U740 / U74)";
  m.cores = 4;
  m.cluster_size = 4;
  m.core.clock_ghz = 1.2;
  m.core.sustained_scalar_opc = 0.63;
  m.core.miss_level_parallelism = 3;
  m.memory.ddr_kind = "DDR4-2400";
  m.memory.channel_bw_gbs = 19.2;
  m.memory.stream_efficiency = 0.038;     // ~0.73 GB/s chip
  m.memory.per_core_bw_gbs = 0.30;
  m.memory.idle_latency_ns = 235.0;
  m.memory.controller_queue_depth = 6;
  m.memory.dram_gib = 16.0;
  return m;
}

// Allwinner D1 (T-Head C906): single in-order core with a draft-RVV 0.7.1
// unit mainline compilers cannot target; only 1 GiB DRAM, which is why the
// paper could not run FT class B on it (§3, Table 2 "DNR").
MachineModel make_d1() {
  MachineModel m;
  m.name = "allwinner-d1";
  m.part = "Allwinner D1 (XuanTie C906)";
  m.isa = Isa::Rv64gcv;
  m.cores = 1;
  m.cluster_size = 1;
  m.core.clock_ghz = 1.0;
  m.core.out_of_order = false;
  m.core.decode_width = 1;
  m.core.issue_width = 1;
  m.core.fp_units = 1;
  m.core.load_store_units = 1;
  m.core.pipeline_stages = 5;
  m.core.sustained_scalar_opc = 0.77;
  m.core.miss_level_parallelism = 2;
  m.core.complex_loop_efficiency = 0.70;
  m.core.vector = {VectorIsa::RvvV0_7, 128, 1, /*gather_efficiency=*/0.2};
  m.caches = {l1d(32), l2(256, 1, 18)};
  m.memory.controllers = 1;
  m.memory.channels = 1;
  m.memory.ddr_kind = "DDR3-792";
  m.memory.channel_bw_gbs = 6.3;
  m.memory.stream_efficiency = 0.17;      // ~1.1 GB/s chip
  m.memory.per_core_bw_gbs = 0.52;
  m.memory.idle_latency_ns = 275.0;
  m.memory.controller_queue_depth = 4;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 1.0;                // FT class B does not fit
  return m;
}

// Banana Pi BPI-F3 (SpacemiT K1, X60 cores): the only other RVV 1.0 part in
// the study, 256-bit vectors, RVA22, in-order, 1.6 GHz (§3).
MachineModel make_bpi_f3() {
  MachineModel m;
  m.name = "bananapi-f3";
  m.part = "Banana Pi BPI-F3 (SpacemiT K1 / X60)";
  m.isa = Isa::Rv64gcv;
  m.cores = 8;
  m.cluster_size = 4;
  m.core.clock_ghz = 1.6;
  m.core.out_of_order = false;
  m.core.decode_width = 2;
  m.core.issue_width = 2;
  m.core.fp_units = 1;
  m.core.load_store_units = 1;
  m.core.pipeline_stages = 9;
  m.core.sustained_scalar_opc = 0.94;
  m.core.miss_level_parallelism = 5;
  m.core.complex_loop_efficiency = 0.70;
  m.core.vector = {VectorIsa::RvvV1_0, 256, 1, /*gather_efficiency=*/0.75};
  m.caches = {l1d(32), l2(512, 4, 16)};
  m.memory.controllers = 1;
  m.memory.channels = 1;
  m.memory.ddr_kind = "LPDDR4X-2666";
  m.memory.channel_bw_gbs = 10.6;
  m.memory.stream_efficiency = 0.27;      // ~2.9 GB/s chip
  m.memory.per_core_bw_gbs = 1.00;
  m.memory.idle_latency_ns = 157.0;
  m.memory.controller_queue_depth = 8;
  m.memory.numa_regions = 1;
  m.memory.dram_gib = 4.0;
  return m;
}

// Milk-V Jupiter (SpacemiT M1): higher-clocked, better-cooled K1 (§3).
MachineModel make_jupiter() {
  MachineModel m = make_bpi_f3();
  m.name = "milkv-jupiter";
  m.part = "Milk-V Jupiter (SpacemiT M1 / X60)";
  m.core.clock_ghz = 1.8;
  m.memory.stream_efficiency = 0.285;     // ~3.0 GB/s chip
  m.memory.per_core_bw_gbs = 1.06;
  m.memory.idle_latency_ns = 145.0;
  m.memory.dram_gib = 8.0;
  return m;
}

// ---------------------------------------------------------------------------
// Dual-socket SG2042 — the configuration Brown & Day investigate (arxiv
// 2502.10320): two 64-core sockets, each keeping its own DDR4 controllers
// and 64 MiB L3, joined by a coherent inter-socket link far narrower than
// local DRAM.  The memory subsystem describes the whole node (both
// sockets' channels); the topology overlay says how it is split and what
// crossing the midline costs.
MachineModel make_sg2042_dual() {
  MachineModel m = make_sg2042();
  m.name = "sg2042-dual";
  m.part = "2x Sophon SG2042 (dual socket)";
  m.cores = 128;
  // Per-core L2 clusters are unchanged; the LLC line models both sockets'
  // 64 MiB L3s as one machine-wide 128 MiB capacity (llc_bytes() reports
  // the total; the per-socket slice lives in the topology domains).
  m.caches = {l1d(64), l2(1024, 4, 14), l3(128, 128, 40)};
  m.memory.controllers = 8;
  m.memory.channels = 8;
  m.memory.numa_regions = 2;
  m.memory.dram_gib = 256.0;
  const double local_bw = 4 * 25.6 * 0.355;  // one socket's sustained GB/s
  m.topology.domains = {{"socket0", 64, 128.0, local_bw, 64.0},
                        {"socket1", 64, 128.0, local_bw, 64.0}};
  m.topology.links = {{"socket0", "socket1", /*bandwidth_gbs=*/12.8,
                       /*latency_ns=*/180.0, /*coherence_ns=*/60.0}};
  return m;
}

// Dual-socket SG2044 — the hypothetical the paper's conclusion points at:
// the same two-socket layout with the SG2044's 32-channel DDR5 per
// socket and a faster coherent link, so the cross-socket wall moves but
// does not vanish.
MachineModel make_sg2044_dual() {
  MachineModel m = make_sg2044();
  m.name = "sg2044-dual";
  m.part = "2x Sophon SG2044 (dual socket)";
  m.cores = 128;
  m.caches = {l1d(64), l2(2048, 4, 14), l3(128, 128, 40)};
  m.memory.controllers = 64;
  m.memory.channels = 64;
  m.memory.numa_regions = 2;
  m.memory.dram_gib = 256.0;
  const double local_bw = 32 * 8.5 * 0.44;  // one socket's sustained GB/s
  m.topology.domains = {{"socket0", 64, 128.0, local_bw, 64.0},
                        {"socket1", 64, 128.0, local_bw, 64.0}};
  m.topology.links = {{"socket0", "socket1", /*bandwidth_gbs=*/32.0,
                       /*latency_ns=*/150.0, /*coherence_ns=*/40.0}};
  return m;
}

// Monte Cimone v3-style cluster (arxiv 2605.22831): four SG2042-class
// nodes on a fabric.  Treated as one 256-core machine whose domains are
// nodes; the fabric links are narrow and high-latency, with no coherence
// penalty (nothing is kept coherent across nodes — the software pays in
// explicit transfers, which the link latency stands in for).
MachineModel make_montecimone_v3() {
  MachineModel m = make_sg2042();
  m.name = "montecimone-v3";
  m.part = "Monte Cimone v3 (4x SG2042 nodes)";
  m.cores = 256;
  m.caches = {l1d(64), l2(1024, 4, 14), l3(256, 256, 40)};
  m.memory.controllers = 16;
  m.memory.channels = 16;
  m.memory.numa_regions = 4;
  m.memory.dram_gib = 512.0;
  const double local_bw = 4 * 25.6 * 0.355;  // one node's sustained GB/s
  m.topology.domains = {{"node0", 64, 128.0, local_bw, 64.0},
                        {"node1", 64, 128.0, local_bw, 64.0},
                        {"node2", 64, 128.0, local_bw, 64.0},
                        {"node3", 64, 128.0, local_bw, 64.0}};
  // Linear fabric: enough connectivity to reach every node, narrow
  // enough that the cluster's scaling shape is fabric-bound.
  m.topology.links = {
      {"node0", "node1", /*bandwidth_gbs=*/3.0, /*latency_ns=*/1500.0, 0.0},
      {"node1", "node2", /*bandwidth_gbs=*/3.0, /*latency_ns=*/1500.0, 0.0},
      {"node2", "node3", /*bandwidth_gbs=*/3.0, /*latency_ns=*/1500.0, 0.0}};
  return m;
}

const std::map<MachineId, MachineModel>& table() {
  static const std::map<MachineId, MachineModel> t = {
      {MachineId::Sg2044, make_sg2044()},
      {MachineId::Sg2042, make_sg2042()},
      {MachineId::Epyc7742, make_epyc7742()},
      {MachineId::Xeon8170, make_xeon8170()},
      {MachineId::ThunderX2, make_thunderx2()},
      {MachineId::VisionFiveV2, make_visionfive_v2()},
      {MachineId::VisionFiveV1, make_visionfive_v1()},
      {MachineId::SifiveU740, make_u740()},
      {MachineId::AllwinnerD1, make_d1()},
      {MachineId::BananaPiF3, make_bpi_f3()},
      {MachineId::MilkVJupiter, make_jupiter()},
      {MachineId::Sg2042Dual, make_sg2042_dual()},
      {MachineId::Sg2044Dual, make_sg2044_dual()},
      {MachineId::MonteCimoneV3, make_montecimone_v3()},
  };
  return t;
}

}  // namespace

const std::vector<MachineId>& all_machines() {
  static const std::vector<MachineId> v = {
      MachineId::Sg2044,       MachineId::Sg2042,      MachineId::Epyc7742,
      MachineId::Xeon8170,     MachineId::ThunderX2,   MachineId::VisionFiveV2,
      MachineId::VisionFiveV1, MachineId::SifiveU740,  MachineId::AllwinnerD1,
      MachineId::BananaPiF3,   MachineId::MilkVJupiter};
  return v;
}

const std::vector<MachineId>& riscv_board_machines() {
  static const std::vector<MachineId> v = {
      MachineId::VisionFiveV2, MachineId::VisionFiveV1, MachineId::SifiveU740,
      MachineId::AllwinnerD1,  MachineId::BananaPiF3,   MachineId::MilkVJupiter};
  return v;
}

const std::vector<MachineId>& hpc_machines() {
  static const std::vector<MachineId> v = {
      MachineId::Sg2044, MachineId::Sg2042, MachineId::Epyc7742,
      MachineId::Xeon8170, MachineId::ThunderX2};
  return v;
}

const std::vector<MachineId>& topo_machines() {
  static const std::vector<MachineId> v = {
      MachineId::Sg2042Dual, MachineId::Sg2044Dual, MachineId::MonteCimoneV3};
  return v;
}

const MachineModel& machine(MachineId id) { return table().at(id); }

const MachineModel& machine(const std::string& name) {
  for (const auto& [id, m] : table()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("rvhpc::arch: unknown machine '" + name + "'");
}

std::string name_of(MachineId id) { return machine(id).name; }

}  // namespace rvhpc::arch
