#include "arch/validate.hpp"

#include <sstream>

namespace rvhpc::arch {
namespace {

void require(std::vector<ValidationIssue>& out, bool ok, std::string field,
             std::string message) {
  if (!ok) out.push_back({std::move(field), std::move(message)});
}

}  // namespace

std::vector<ValidationIssue> validate(const MachineModel& m) {
  std::vector<ValidationIssue> issues;

  require(issues, !m.name.empty(), "name", "machine name must be non-empty");
  require(issues, m.cores >= 1, "cores", "must have at least one core");
  require(issues, m.cluster_size >= 1 && m.cluster_size <= m.cores,
          "cluster_size", "cluster size must be in [1, cores]");

  const CoreModel& c = m.core;
  require(issues, c.clock_ghz > 0.0, "core.clock_ghz", "clock must be positive");
  require(issues, c.decode_width >= 1, "core.decode_width", "must be >= 1");
  require(issues, c.issue_width >= c.decode_width, "core.issue_width",
          "issue width must be >= decode width");
  require(issues, c.fp_units >= 1, "core.fp_units", "must be >= 1");
  require(issues, c.load_store_units >= 1, "core.load_store_units", "must be >= 1");
  require(issues, c.sustained_scalar_opc > 0.0 &&
                      c.sustained_scalar_opc <= static_cast<double>(c.issue_width),
          "core.sustained_scalar_opc",
          "sustained scalar op/cycle must be in (0, issue_width]");
  require(issues, c.miss_level_parallelism >= 1, "core.miss_level_parallelism",
          "must be >= 1");

  const VectorUnit& v = c.vector;
  if (v.isa != VectorIsa::None) {
    require(issues, v.width_bits >= 64 && v.width_bits % 64 == 0,
            "core.vector.width_bits", "vector width must be a positive multiple of 64");
    require(issues, v.pipes >= 1, "core.vector.pipes", "must be >= 1");
    require(issues, v.gather_efficiency > 0.0 && v.gather_efficiency <= 1.0,
            "core.vector.gather_efficiency", "must be in (0, 1]");
  }

  require(issues, !m.caches.empty(), "caches", "at least an L1 level is required");
  for (std::size_t i = 0; i < m.caches.size(); ++i) {
    const CacheLevel& lvl = m.caches[i];
    const std::string where = "caches[" + std::to_string(i) + "]";
    require(issues, lvl.size_bytes > 0, where, "cache size must be positive");
    require(issues, lvl.associativity >= 1, where, "associativity must be >= 1");
    require(issues, lvl.line_bytes > 0 && (lvl.line_bytes & (lvl.line_bytes - 1)) == 0,
            where, "line size must be a positive power of two");
    require(issues, lvl.shared_by_cores >= 1 && lvl.shared_by_cores <= m.cores,
            where, "shared_by_cores must be in [1, cores]");
    require(issues, lvl.latency_cycles > 0, where, "latency must be positive");
    if (i > 0) {
      require(issues, lvl.size_bytes >= m.caches[i - 1].size_bytes, where,
              "levels must be ordered smallest to largest");
      require(issues, lvl.shared_by_cores >= m.caches[i - 1].shared_by_cores, where,
              "sharing must not decrease with level");
      require(issues, lvl.latency_cycles >= m.caches[i - 1].latency_cycles, where,
              "latency must not decrease with level");
    }
  }

  const MemorySubsystem& mem = m.memory;
  require(issues, mem.controllers >= 1, "memory.controllers", "must be >= 1");
  require(issues, mem.channels >= mem.controllers, "memory.channels",
          "channels must be >= controllers");
  require(issues, mem.channel_bw_gbs > 0.0, "memory.channel_bw_gbs", "must be positive");
  require(issues, mem.stream_efficiency > 0.0 && mem.stream_efficiency <= 1.0,
          "memory.stream_efficiency", "must be in (0, 1]");
  require(issues, mem.per_core_bw_gbs > 0.0, "memory.per_core_bw_gbs", "must be positive");
  require(issues, mem.per_core_bw_gbs <= mem.chip_stream_bw_gbs() + 1e-9,
          "memory.per_core_bw_gbs", "one core cannot out-draw the whole chip");
  require(issues, mem.idle_latency_ns > 0.0, "memory.idle_latency_ns", "must be positive");
  require(issues, mem.controller_queue_depth >= 1, "memory.controller_queue_depth",
          "must be >= 1");
  require(issues, mem.numa_regions >= 1 && mem.numa_regions <= m.cores,
          "memory.numa_regions", "must be in [1, cores]");
  require(issues, mem.dram_gib > 0.0, "memory.dram_gib", "must be positive");

  // Structural soundness of the optional topology overlay (unique ids,
  // positive resources, links joining declared distinct domains).  The
  // cross-machine plausibility questions — core sums, link-vs-DRAM
  // bandwidth — are the A3xx lint rules, mirroring how numa_regions
  // arithmetic lives in A009 rather than here.
  for (const std::string& issue : topo::structural_issues(m.topology)) {
    const auto colon = issue.find(": ");
    if (colon == std::string::npos) {
      require(issues, false, "topology", issue);
    } else {
      require(issues, false, issue.substr(0, colon), issue.substr(colon + 2));
    }
  }

  return issues;
}

bool is_valid(const MachineModel& m) { return validate(m).empty(); }

std::string format_issues(const std::vector<ValidationIssue>& issues) {
  std::ostringstream os;
  for (const auto& i : issues) os << i.field << ": " << i.message << "\n";
  return os.str();
}

}  // namespace rvhpc::arch
