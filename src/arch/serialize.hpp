#pragma once
// rvhpc::arch — machine description (de)serialisation.
//
// A simple `key = value` text format so users can define their own CPUs
// (a prospective "SG2046", a different board) in a file and feed them to
// the model without recompiling — `examples/machine_explorer` accepts
// such files.  The format round-trips every MachineModel field; unknown
// keys are errors (typo protection), missing keys keep their defaults.
//
// Example:
//   name = my-cpu
//   part = My CPU 123
//   isa = RV64GCV
//   cores = 32
//   core.clock_ghz = 2.4
//   core.vector.isa = RVV v1.0
//   cache = L1D 65536 8 64 1 4
//   cache = L2 2097152 16 64 4 14
//   memory.channels = 8

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "arch/machine.hpp"

namespace rvhpc::arch {

/// Serialises `m` in the key=value format (stable key order).
[[nodiscard]] std::string to_text(const MachineModel& m);

/// A parsed machine description plus its source geometry: which line each
/// key was set on, so downstream diagnostics (rvhpc::analysis) can point at
/// the offending line of the `.machine` file instead of just naming a field.
struct ParsedMachine {
  MachineModel model;
  /// Source line of every key that appeared, by serialisation key.  The
  /// i-th `cache = ...` line is recorded under "cache[i]".
  std::map<std::string, int> key_lines;
  /// Rule ids collected from `# rvhpc-lint: disable=A001,A002` comment
  /// lines — per-file lint suppressions, honoured by analysis::lint.
  std::vector<std::string> suppressed_rules;

  /// Line `key` was set on, or 0 when the file left it defaulted.
  [[nodiscard]] int line_of(const std::string& key) const;
};

/// Parses a machine description with source locations; starts from a
/// default-constructed model, so files only need the fields they care
/// about.  Throws std::invalid_argument with a line-numbered message on
/// unknown keys, malformed values, or a scalar key set twice.  The result
/// is NOT validated — call arch::validate() before using it.
[[nodiscard]] ParsedMachine parse_machine(const std::string& text);

/// Convenience: parse_machine, keeping only the model.
[[nodiscard]] MachineModel from_text(const std::string& text);

/// Convenience: from_text over a whole stream.
[[nodiscard]] MachineModel read_machine(std::istream& in);

/// Convenience: parse_machine over a whole stream.
[[nodiscard]] ParsedMachine parse_machine(std::istream& in);

/// Parses the VectorIsa names produced by to_string() ("RVV v1.0", ...).
[[nodiscard]] VectorIsa parse_vector_isa(const std::string& s);

/// Parses the Isa names produced by to_string() ("RV64GCV", ...).
[[nodiscard]] Isa parse_isa(const std::string& s);

}  // namespace rvhpc::arch
