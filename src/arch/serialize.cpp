#include "arch/serialize.hpp"

#include <functional>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rvhpc::arch {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("machine file line " + std::to_string(line) +
                              ": " + message);
}

double parse_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) fail(line, "trailing characters in number '" + v + "'");
    return d;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + v + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + v + "'");
  }
}

int parse_int(const std::string& v, int line) {
  const double d = parse_double(v, line);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) fail(line, "expected an integer, got '" + v + "'");
  return i;
}

bool parse_bool(const std::string& v, int line) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  fail(line, "expected true/false, got '" + v + "'");
}

}  // namespace

VectorIsa parse_vector_isa(const std::string& s) {
  for (VectorIsa v : {VectorIsa::None, VectorIsa::RvvV0_7, VectorIsa::RvvV1_0,
                      VectorIsa::Avx2, VectorIsa::Avx512, VectorIsa::Neon}) {
    if (to_string(v) == s) return v;
  }
  throw std::invalid_argument("unknown vector ISA '" + s + "'");
}

Isa parse_isa(const std::string& s) {
  for (Isa i : {Isa::Rv64gcv, Isa::Rv64gc, Isa::X86_64, Isa::Armv8}) {
    if (to_string(i) == s) return i;
  }
  throw std::invalid_argument("unknown ISA '" + s + "'");
}

std::string to_text(const MachineModel& m) {
  std::ostringstream os;
  os << "name = " << m.name << "\n";
  os << "part = " << m.part << "\n";
  os << "isa = " << to_string(m.isa) << "\n";
  os << "cores = " << m.cores << "\n";
  os << "cluster_size = " << m.cluster_size << "\n";
  const CoreModel& c = m.core;
  os << "core.clock_ghz = " << c.clock_ghz << "\n";
  os << "core.out_of_order = " << (c.out_of_order ? "true" : "false") << "\n";
  os << "core.decode_width = " << c.decode_width << "\n";
  os << "core.issue_width = " << c.issue_width << "\n";
  os << "core.fp_units = " << c.fp_units << "\n";
  os << "core.load_store_units = " << c.load_store_units << "\n";
  os << "core.pipeline_stages = " << c.pipeline_stages << "\n";
  os << "core.sustained_scalar_opc = " << c.sustained_scalar_opc << "\n";
  os << "core.miss_level_parallelism = " << c.miss_level_parallelism << "\n";
  os << "core.complex_loop_efficiency = " << c.complex_loop_efficiency << "\n";
  os << "core.vector.isa = " << to_string(c.vector.isa) << "\n";
  os << "core.vector.width_bits = " << c.vector.width_bits << "\n";
  os << "core.vector.pipes = " << c.vector.pipes << "\n";
  os << "core.vector.gather_efficiency = " << c.vector.gather_efficiency << "\n";
  for (const CacheLevel& lvl : m.caches) {
    os << "cache = " << lvl.name << " " << lvl.size_bytes << " "
       << lvl.associativity << " " << lvl.line_bytes << " "
       << lvl.shared_by_cores << " " << lvl.latency_cycles << "\n";
  }
  const MemorySubsystem& mem = m.memory;
  os << "memory.controllers = " << mem.controllers << "\n";
  os << "memory.channels = " << mem.channels << "\n";
  os << "memory.ddr_kind = " << mem.ddr_kind << "\n";
  os << "memory.channel_bw_gbs = " << mem.channel_bw_gbs << "\n";
  os << "memory.stream_efficiency = " << mem.stream_efficiency << "\n";
  os << "memory.per_core_bw_gbs = " << mem.per_core_bw_gbs << "\n";
  os << "memory.idle_latency_ns = " << mem.idle_latency_ns << "\n";
  os << "memory.controller_queue_depth = " << mem.controller_queue_depth << "\n";
  os << "memory.read_bw_bonus = " << mem.read_bw_bonus << "\n";
  os << "memory.numa_regions = " << mem.numa_regions << "\n";
  os << "memory.dram_gib = " << mem.dram_gib << "\n";
  // The topology section is strictly opt-in: a flat machine emits nothing
  // here, so pre-topology files round-trip byte-identically.
  for (const topo::Domain& d : m.topology.domains) {
    os << "topology.domain = " << d.id << " " << d.cores << " " << d.dram_gib
       << " " << d.dram_bw_gbs << " " << d.llc_mib << "\n";
  }
  for (const topo::Link& l : m.topology.links) {
    os << "topology.link = " << l.from << " " << l.to << " "
       << l.bandwidth_gbs << " " << l.latency_ns << " " << l.coherence_ns
       << "\n";
  }
  return os.str();
}

int ParsedMachine::line_of(const std::string& key) const {
  const auto it = key_lines.find(key);
  return it != key_lines.end() ? it->second : 0;
}

namespace {

/// Parses "# rvhpc-lint: disable=A001,A002" out of a comment line; returns
/// the rule ids, or empty when the comment is not a lint directive.
std::vector<std::string> parse_lint_directive(const std::string& comment) {
  static const std::string kPrefix = "rvhpc-lint:";
  std::string body = trim(comment.substr(1));  // drop the '#'
  if (body.compare(0, kPrefix.size(), kPrefix) != 0) return {};
  body = trim(body.substr(kPrefix.size()));
  static const std::string kDisable = "disable=";
  if (body.compare(0, kDisable.size(), kDisable) != 0) return {};
  std::vector<std::string> ids;
  std::istringstream list(body.substr(kDisable.size()));
  std::string id;
  while (std::getline(list, id, ',')) {
    id = trim(id);
    if (!id.empty()) ids.push_back(id);
  }
  return ids;
}

}  // namespace

ParsedMachine parse_machine(const std::string& text) {
  ParsedMachine pm;
  MachineModel& m = pm.model;
  m.caches.clear();
  bool caches_seen = false;

  using Setter = std::function<void(MachineModel&, const std::string&, int)>;
  static const std::map<std::string, Setter> setters = {
      {"name", [](MachineModel& x, const std::string& v, int) { x.name = v; }},
      {"part", [](MachineModel& x, const std::string& v, int) { x.part = v; }},
      {"isa", [](MachineModel& x, const std::string& v, int line) {
         try { x.isa = parse_isa(v); }
         catch (const std::invalid_argument& e) { fail(line, e.what()); }
       }},
      {"cores", [](MachineModel& x, const std::string& v, int l) {
         x.cores = parse_int(v, l);
       }},
      {"cluster_size", [](MachineModel& x, const std::string& v, int l) {
         x.cluster_size = parse_int(v, l);
       }},
      {"core.clock_ghz", [](MachineModel& x, const std::string& v, int l) {
         x.core.clock_ghz = parse_double(v, l);
       }},
      {"core.out_of_order", [](MachineModel& x, const std::string& v, int l) {
         x.core.out_of_order = parse_bool(v, l);
       }},
      {"core.decode_width", [](MachineModel& x, const std::string& v, int l) {
         x.core.decode_width = parse_int(v, l);
       }},
      {"core.issue_width", [](MachineModel& x, const std::string& v, int l) {
         x.core.issue_width = parse_int(v, l);
       }},
      {"core.fp_units", [](MachineModel& x, const std::string& v, int l) {
         x.core.fp_units = parse_int(v, l);
       }},
      {"core.load_store_units", [](MachineModel& x, const std::string& v, int l) {
         x.core.load_store_units = parse_int(v, l);
       }},
      {"core.pipeline_stages", [](MachineModel& x, const std::string& v, int l) {
         x.core.pipeline_stages = parse_int(v, l);
       }},
      {"core.sustained_scalar_opc",
       [](MachineModel& x, const std::string& v, int l) {
         x.core.sustained_scalar_opc = parse_double(v, l);
       }},
      {"core.miss_level_parallelism",
       [](MachineModel& x, const std::string& v, int l) {
         x.core.miss_level_parallelism = parse_int(v, l);
       }},
      {"core.complex_loop_efficiency",
       [](MachineModel& x, const std::string& v, int l) {
         x.core.complex_loop_efficiency = parse_double(v, l);
       }},
      {"core.vector.isa", [](MachineModel& x, const std::string& v, int line) {
         try { x.core.vector.isa = parse_vector_isa(v); }
         catch (const std::invalid_argument& e) { fail(line, e.what()); }
       }},
      {"core.vector.width_bits",
       [](MachineModel& x, const std::string& v, int l) {
         x.core.vector.width_bits = parse_int(v, l);
       }},
      {"core.vector.pipes", [](MachineModel& x, const std::string& v, int l) {
         x.core.vector.pipes = parse_int(v, l);
       }},
      {"core.vector.gather_efficiency",
       [](MachineModel& x, const std::string& v, int l) {
         x.core.vector.gather_efficiency = parse_double(v, l);
       }},
      {"memory.controllers", [](MachineModel& x, const std::string& v, int l) {
         x.memory.controllers = parse_int(v, l);
       }},
      {"memory.channels", [](MachineModel& x, const std::string& v, int l) {
         x.memory.channels = parse_int(v, l);
       }},
      {"memory.ddr_kind", [](MachineModel& x, const std::string& v, int) {
         x.memory.ddr_kind = v;
       }},
      {"memory.channel_bw_gbs",
       [](MachineModel& x, const std::string& v, int l) {
         x.memory.channel_bw_gbs = parse_double(v, l);
       }},
      {"memory.stream_efficiency",
       [](MachineModel& x, const std::string& v, int l) {
         x.memory.stream_efficiency = parse_double(v, l);
       }},
      {"memory.per_core_bw_gbs",
       [](MachineModel& x, const std::string& v, int l) {
         x.memory.per_core_bw_gbs = parse_double(v, l);
       }},
      {"memory.idle_latency_ns",
       [](MachineModel& x, const std::string& v, int l) {
         x.memory.idle_latency_ns = parse_double(v, l);
       }},
      {"memory.controller_queue_depth",
       [](MachineModel& x, const std::string& v, int l) {
         x.memory.controller_queue_depth = parse_int(v, l);
       }},
      {"memory.read_bw_bonus", [](MachineModel& x, const std::string& v, int l) {
         x.memory.read_bw_bonus = parse_double(v, l);
       }},
      {"memory.numa_regions", [](MachineModel& x, const std::string& v, int l) {
         x.memory.numa_regions = parse_int(v, l);
       }},
      {"memory.dram_gib", [](MachineModel& x, const std::string& v, int l) {
         x.memory.dram_gib = parse_double(v, l);
       }},
  };

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    if (stripped[0] == '#') {
      for (std::string& id : parse_lint_directive(stripped)) {
        pm.suppressed_rules.push_back(std::move(id));
      }
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) fail(lineno, "expected 'key = value'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key == "cache") {
      // cache = NAME size assoc line shared latency
      std::istringstream cs(value);
      CacheLevel lvl;
      if (!(cs >> lvl.name >> lvl.size_bytes >> lvl.associativity >>
            lvl.line_bytes >> lvl.shared_by_cores >> lvl.latency_cycles)) {
        fail(lineno, "cache line needs: NAME size assoc line shared latency");
      }
      pm.key_lines["cache[" + std::to_string(m.caches.size()) + "]"] = lineno;
      m.caches.push_back(lvl);
      caches_seen = true;
      continue;
    }
    if (key == "topology.domain") {
      // topology.domain = ID cores dram_gib dram_bw_gbs llc_mib
      std::istringstream ds(value);
      topo::Domain d;
      if (!(ds >> d.id >> d.cores >> d.dram_gib >> d.dram_bw_gbs >>
            d.llc_mib)) {
        fail(lineno,
             "topology.domain needs: ID cores dram_gib dram_bw_gbs llc_mib");
      }
      for (std::size_t i = 0; i < m.topology.domains.size(); ++i) {
        if (m.topology.domains[i].id == d.id) {
          fail(lineno,
               "duplicate topology domain id '" + d.id +
                   "' (first declared on line " +
                   std::to_string(pm.line_of("topology.domain[" +
                                             std::to_string(i) + "]")) +
                   ")");
        }
      }
      pm.key_lines["topology.domain[" +
                   std::to_string(m.topology.domains.size()) + "]"] = lineno;
      m.topology.domains.push_back(std::move(d));
      continue;
    }
    if (key == "topology.link") {
      // topology.link = FROM TO bandwidth_gbs latency_ns coherence_ns
      std::istringstream ls(value);
      topo::Link l;
      if (!(ls >> l.from >> l.to >> l.bandwidth_gbs >> l.latency_ns >>
            l.coherence_ns)) {
        fail(lineno,
             "topology.link needs: FROM TO bandwidth_gbs latency_ns "
             "coherence_ns");
      }
      pm.key_lines["topology.link[" + std::to_string(m.topology.links.size()) +
                   "]"] = lineno;
      m.topology.links.push_back(std::move(l));
      continue;
    }
    const auto it = setters.find(key);
    if (it == setters.end()) fail(lineno, "unknown key '" + key + "'");
    if (const auto prev = pm.key_lines.find(key); prev != pm.key_lines.end()) {
      fail(lineno, "duplicate key '" + key + "' (first set on line " +
                       std::to_string(prev->second) + ")");
    }
    it->second(m, value, lineno);
    pm.key_lines[key] = lineno;
  }
  if (!caches_seen) {
    // Leave a minimal default L1 so a partial file stays usable.
    m.caches.push_back({"L1D", 32 * 1024, 8, 64, 1, 4});
  }
  // Dangling link endpoints are a framing error of the file, not a
  // plausibility question: reject at parse, on the offending line.
  for (std::size_t i = 0; i < m.topology.links.size(); ++i) {
    const topo::Link& l = m.topology.links[i];
    for (const std::string* endpoint : {&l.from, &l.to}) {
      if (!m.topology.find(*endpoint)) {
        fail(pm.line_of("topology.link[" + std::to_string(i) + "]"),
             "topology link endpoint '" + *endpoint +
                 "' is not a declared domain");
      }
    }
  }
  return pm;
}

MachineModel from_text(const std::string& text) {
  return parse_machine(text).model;
}

MachineModel read_machine(std::istream& in) {
  return parse_machine(in).model;
}

ParsedMachine parse_machine(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_machine(buf.str());
}

}  // namespace rvhpc::arch
