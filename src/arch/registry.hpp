#pragma once
// rvhpc::arch — registry of the eleven CPUs evaluated in the paper.
//
// Microarchitectural facts (clock, widths, cache sizes/sharing, memory
// controllers/channels, DDR generation, NUMA layout) are taken directly
// from the paper's §2/§5 and the vendor documents it cites.  Sustained
// throughput summaries (scalar op/cycle, per-core bandwidth, latencies,
// MLP) are calibrated once per machine against the paper's single-core and
// STREAM measurements, and then shared by every reproduced experiment.

#include <string>
#include <vector>

#include "arch/machine.hpp"

namespace rvhpc::arch {

/// Stable identifiers for the machines of the study.
enum class MachineId : std::uint8_t {
  Sg2044,          ///< SOPHGO Sophon SG2044, 64x C920v2 @ 2.6 GHz, RVV 1.0
  Sg2042,          ///< SOPHGO Sophon SG2042, 64x C920v1 @ 2.0 GHz, RVV 0.7.1
  Epyc7742,        ///< AMD EPYC 7742 (Rome/Zen2), 64 cores, AVX2  [ARCHER2]
  Xeon8170,        ///< Intel Xeon Platinum 8170 (Skylake-SP), 26 cores, AVX-512
  ThunderX2,       ///< Marvell ThunderX2 CN9980 (Vulcan), 32 cores, NEON [Fulhame]
  VisionFiveV2,    ///< StarFive JH7110 (SiFive U74), benchmarked single core
  VisionFiveV1,    ///< StarFive JH7100 (SiFive U74)
  SifiveU740,      ///< SiFive Freedom U740 (HiFive Unmatched)
  AllwinnerD1,     ///< Allwinner D1 (T-Head C906), 1 GiB DRAM
  BananaPiF3,      ///< Banana Pi BPI-F3 (SpacemiT K1 / X60) @ 1.6 GHz, RVV 1.0
  MilkVJupiter,    ///< Milk-V Jupiter (SpacemiT M1 / X60) @ 1.8 GHz, RVV 1.0
  // Multi-socket / cluster scenarios past the paper (src/topo overlay;
  // arxiv 2502.10320 and arxiv 2605.22831).  Not members of
  // all_machines(): the paper-order artifacts stay bit-identical.
  Sg2042Dual,      ///< two SG2042 sockets behind a coherent link
  Sg2044Dual,      ///< two SG2044 sockets behind a coherent link
  MonteCimoneV3,   ///< Monte Cimone v3-style 4-node RISC-V cluster
};

/// All machine ids, in paper order.
[[nodiscard]] const std::vector<MachineId>& all_machines();

/// The sub-set compared in Table 2 (single-core RISC-V comparison).
[[nodiscard]] const std::vector<MachineId>& riscv_board_machines();

/// The sub-set compared in §5 (multicore scaling, Figures 2-6 and Table 6).
[[nodiscard]] const std::vector<MachineId>& hpc_machines();

/// Machines whose descriptions carry an explicit NUMA topology — the
/// dual-socket/cluster scenario frontier (bench/topo_scaling sweeps
/// these).  Deliberately disjoint from all_machines() so every
/// pre-existing table, bench artifact and calibration gate is untouched.
[[nodiscard]] const std::vector<MachineId>& topo_machines();

/// Full machine description for `id`.  Models are immutable singletons.
[[nodiscard]] const MachineModel& machine(MachineId id);

/// Lookup by registry name ("sg2044", "epyc7742", ...); throws
/// std::out_of_range for unknown names.
[[nodiscard]] const MachineModel& machine(const std::string& name);

/// Registry name of `id` ("sg2044", ...).
[[nodiscard]] std::string name_of(MachineId id);

}  // namespace rvhpc::arch
