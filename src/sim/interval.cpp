#include "sim/interval.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "memsim/dram.hpp"
#include "memsim/hierarchy.hpp"
#include "model/compiler.hpp"
#include "model/scaling.hpp"
#include "model/singlecore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/topology.hpp"

namespace rvhpc::sim {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
/// Same admission rule as the analytic backend (model/predictor.cpp): a
/// working set beyond what the OS leaves of DRAM did-not-run on both
/// backends, so DNR points always agree in the calibration bench.
constexpr double kUsableDramFraction = 0.92;
/// Weight of inter-thread communication traffic against DRAM bandwidth
/// (mirrors the analytic kCommWeight; the LLC absorbs the rest).
constexpr double kCommWeight = 0.5;
/// Streamed footprint sweeps start here; random footprints live in a
/// disjoint high region (same address-map idiom as memsim::kernel_trace).
constexpr std::uint64_t kStreamBase = 0x100000000ull;
constexpr std::uint64_t kRandomBase = 0x4000000000ull;

void count_interval_call() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::Registry::global().counter(
      "rvhpc_sim_interval_calls_total", "interval-backend simulate() calls");
  calls.add();
}

/// The NUMA latency blend the analytic model applies (predictor.cpp);
/// shared deliberately so backend divergence localises to the mechanism.
double numa_latency_factor(const arch::MachineModel& m, double active_cores) {
  if (m.memory.numa_regions <= 1) return 1.0;
  const double per_region =
      static_cast<double>(m.cores) / m.memory.numa_regions;
  const double regions_used = std::ceil(active_cores / per_region);
  return 1.0 + 0.33 * (1.0 - 1.0 / regions_used);
}

}  // namespace

SignatureStream::SignatureStream(const model::WorkloadSignature& sig,
                                 std::uint64_t stream_bytes,
                                 std::uint64_t random_bytes, int line_bytes,
                                 std::uint64_t seed)
    : stream_lines_per_op_(line_bytes > 0
                               ? sig.streamed_bytes_per_op / line_bytes
                               : 0.0),
      random_per_op_(sig.random_access_per_op),
      write_ratio_(std::clamp(1.0 - sig.read_fraction, 0.0, 1.0)),
      stream_footprint_(stream_bytes),
      random_footprint_(random_bytes),
      line_bytes_(line_bytes),
      rng_(seed) {}

void SignatureStream::next_op(std::vector<SimAccess>& out) {
  if (stream_footprint_ >= static_cast<std::uint64_t>(line_bytes_)) {
    stream_credit_ += stream_lines_per_op_;
    while (stream_credit_ >= 1.0) {
      stream_credit_ -= 1.0;
      SimAccess a;
      a.addr = kStreamBase + stream_offset_;
      a.is_write = rng_.below(1000) < write_ratio_ * 1000.0;
      a.streamed = true;
      out.push_back(a);
      stream_offset_ += static_cast<std::uint64_t>(line_bytes_);
      if (stream_offset_ >= stream_footprint_) stream_offset_ = 0;
    }
  }
  if (random_footprint_ >= static_cast<std::uint64_t>(line_bytes_)) {
    random_credit_ += random_per_op_;
    const std::uint64_t lines =
        random_footprint_ / static_cast<std::uint64_t>(line_bytes_);
    while (random_credit_ >= 1.0) {
      random_credit_ -= 1.0;
      SimAccess a;
      a.addr = kRandomBase +
               rng_.below(lines) * static_cast<std::uint64_t>(line_bytes_);
      a.is_write = false;  // dependent loads: gathers, rank lookups
      a.streamed = false;
      out.push_back(a);
    }
  }
}

arch::MachineModel per_core_slice(const arch::MachineModel& m,
                                  int active_cores, double footprint_scale) {
  arch::MachineModel slice = m;
  slice.cores = 1;
  slice.cluster_size = 1;
  for (std::size_t i = 0; i < slice.caches.size(); ++i) {
    arch::CacheLevel& level = slice.caches[i];
    const double sliced =
        static_cast<double>(m.cache_bytes_per_core(i, active_cores)) *
        footprint_scale;
    // A level must keep at least one full set, and its size must stay a
    // whole number of sets (line_bytes * associativity) — Hierarchy's
    // Cache constructor rejects anything else.
    const auto set_bytes =
        static_cast<std::size_t>(level.line_bytes) * level.associativity;
    const auto sets = static_cast<std::size_t>(
        std::max(1.0, sliced / static_cast<double>(set_bytes)));
    level.size_bytes = sets * set_bytes;
    level.shared_by_cores = 1;
  }
  return slice;
}

double footprint_scale(const model::WorkloadSignature& sig, int active_cores,
                       const IntervalConfig& icfg) {
  const double n = std::max(1, active_cores);
  // Each core sweeps its slice of the streamed working set; latency-bound
  // structures (CG's x vector, IS's histogram) are shared, so every core
  // sees the full random footprint.
  const double stream_slice_mib = sig.working_set_mib / n;
  const double largest_mib =
      std::max({stream_slice_mib, sig.random_footprint_mib, 1.0});
  return std::min(1.0, icfg.target_footprint_mib / largest_mib);
}

IntervalReport simulate(const arch::MachineModel& m,
                        const model::WorkloadSignature& sig,
                        const model::RunConfig& cfg,
                        const IntervalConfig& icfg) {
  obs::ScopedSpan span("sim", "interval");
  count_interval_call();
  IntervalReport rep;
  model::Prediction& out = rep.prediction;

  const auto emit_record = [&](const obs::PredictionRecord& r) {
    if (obs::TraceSession* s = obs::session()) {
      s->add_prediction(r);
    }
  };
  const auto base_record = [&]() {
    obs::PredictionRecord r;
    r.backend = "interval";
    r.machine = m.name;
    r.kernel = to_string(sig.kernel);
    r.problem_class = to_string(sig.problem_class);
    r.cores = cfg.cores;
    return r;
  };

  // --- admission: identical DNR rules to the analytic backend -------------
  if (cfg.cores < 1 || cfg.cores > m.cores) {
    out.ran = false;
    out.dnr_reason = "requested " + std::to_string(cfg.cores) + " cores, " +
                     m.name + " has " + std::to_string(m.cores);
    obs::PredictionRecord r = base_record();
    r.ran = false;
    r.dnr_reason = out.dnr_reason;
    emit_record(r);
    return rep;
  }
  const double dram_mib = m.memory.dram_gib * 1024.0 * kUsableDramFraction;
  if (sig.working_set_mib > dram_mib) {
    out.ran = false;
    out.dnr_reason = "working set " + std::to_string(sig.working_set_mib) +
                     " MiB exceeds usable DRAM of " + m.name;
    obs::PredictionRecord r = base_record();
    r.ran = false;
    r.dnr_reason = out.dnr_reason;
    emit_record(r);
    return rep;
  }

  const double n = cfg.cores;
  const double clock_hz = m.core.clock_ghz * 1e9;
  const int line_bytes = m.caches.empty() ? 64 : m.caches[0].line_bytes;

  // --- the representative core's memory system ----------------------------
  const double scale = footprint_scale(sig, cfg.cores, icfg);
  rep.counters.footprint_scale = scale;
  const auto scaled_bytes = [&](double mib) {
    return static_cast<std::uint64_t>(std::max(0.0, mib * kMiB * scale));
  };
  const std::uint64_t stream_bytes = scaled_bytes(sig.working_set_mib / n);
  const std::uint64_t random_bytes = scaled_bytes(sig.random_footprint_mib);

  const arch::MachineModel slice = per_core_slice(m, cfg.cores, scale);
  memsim::Hierarchy hier(slice, /*cores=*/1);
  SignatureStream stream(sig, stream_bytes, random_bytes, line_bytes,
                         icfg.seed);

  // This core's fair share of sustained chip bandwidth: chip supply at
  // this placement divided across active cores, capped by the per-core
  // link.  The DRAM queue model runs on that share, so saturation emerges
  // from one core's traffic exactly when the chip would saturate at n.
  const double read_bonus =
      1.0 + (m.memory.read_bw_bonus - 1.0) *
                std::clamp(sig.read_fraction, 0.0, 1.0);
  double numa_factor = numa_latency_factor(m, n);
  const double supply_gbs =
      m.memory.chip_stream_bw_gbs() * read_bonus *
      model::placement_bw_factor(m, cfg.cores, cfg.placement);
  double share_gbs =
      std::max(1e-3, std::min(supply_gbs / n,
                              m.memory.per_core_bw_gbs * read_bonus));

  // Topology charging (src/topo): the representative core lives in the
  // first (filled-first) domain, and its remote-share accesses route
  // through the inter-socket links.  The per-core link share is the
  // links' aggregate divided across all active cores (each produces the
  // same remote fraction), composed serially with the local share; the
  // remote accesses also pay the link + coherence latency, scaled into
  // the same idle-latency factor the analytic backend uses.  Flat
  // machines skip the branch entirely — bit-identical to before.
  const topo::CrossTraffic xt =
      topo::cross_traffic(m.topology, cfg.cores, sig.working_set_mib);
  if (xt.remote_fraction > 0.0 && xt.link_bw_gbs > 0.0) {
    const double link_share = std::max(1e-3, xt.link_bw_gbs / n);
    share_gbs = 1.0 / ((1.0 - xt.remote_fraction) / share_gbs +
                       xt.remote_fraction / link_share);
    numa_factor *= 1.0 + xt.remote_fraction * xt.extra_latency_ns /
                             m.memory.idle_latency_ns;
  }

  memsim::DramConfig dc;
  dc.channels = 1;
  dc.channel_bw_gbs = share_gbs;
  dc.efficiency = 1.0;  // share_gbs is already sustained, not peak
  dc.idle_latency_ns = m.memory.idle_latency_ns * numa_factor;
  dc.clock_ghz = m.core.clock_ghz;
  dc.line_bytes = line_bytes;
  memsim::DramModel dram(dc);

  const double bytes_per_cycle = share_gbs / m.core.clock_ghz;
  const double service_cycles = line_bytes / bytes_per_cycle;

  // --- dispatch and stall parameters ---------------------------------------
  const double core_rate = model::core_ops_per_second(m, sig, cfg.compiler);
  const double cpi = clock_hz / std::max(core_rate, 1.0);
  const int lsu = std::max(1, m.core.load_store_units);
  const double mlp = std::max(1, m.core.miss_level_parallelism);
  // Outstanding misses the access pattern sustains: MSHRs derated by the
  // signature's overlap; a dependent chain on an in-order core serialises.
  double miss_overlap =
      std::max(1.0, mlp * std::clamp(sig.random_overlap, 0.0, 1.0));
  if (sig.dependent_chain) {
    miss_overlap = m.core.out_of_order ? std::max(1.0, 0.5 * miss_overlap)
                                       : 1.0;
  }
  // How much of an on-chip (L2/L3) hit latency the pipeline hides.
  const double hit_hide =
      m.core.out_of_order ? 3.0 : (sig.dependent_chain ? 1.0 : 1.5);
  // Prefetch run-ahead, in lines: how far ahead of the core the streamed
  // fills may queue before dispatch throttles to the drain rate.
  const double prefetch_depth = std::max(4.0, 2.0 * mlp);

  // Inter-thread halo/exchange traffic, as extra DRAM lines that bypass
  // this core's private hierarchy (they are produced by other cores).
  const double comm_lines_per_op =
      n > 1 ? sig.comm_bytes_per_op * (1.0 - 1.0 / n) * kCommWeight /
                  line_bytes
            : 0.0;

  const std::uint64_t sim_ops = std::max<std::uint64_t>(icfg.sim_ops, 16);
  const std::uint64_t warmup_ops = std::min(
      sim_ops - 1, static_cast<std::uint64_t>(
                       static_cast<double>(sim_ops) *
                       std::clamp(icfg.warmup_fraction, 0.0, 0.9)));

  double cycle = 0.0;       // the representative core's clock
  double dram_ready = 0.0;  // when this core's DRAM share is next free
  double dispatch_cycles = 0.0;
  double stream_stall_cycles = 0.0;
  double latency_stall_cycles = 0.0;
  double bw_residency_cycles = 0.0;  // resource-only: total line drain time
  double comm_credit = 0.0;
  std::uint64_t dram_lines = 0;
  std::uint64_t accesses_total = 0;

  std::vector<SimAccess> accesses;
  accesses.reserve(64);

  for (std::uint64_t op = 0; op < sim_ops; ++op) {
    if (op == warmup_ops) {
      // Caches and DRAM windows stay warm; the timing buckets restart.
      dispatch_cycles = 0.0;
      stream_stall_cycles = 0.0;
      latency_stall_cycles = 0.0;
      bw_residency_cycles = 0.0;
      dram_lines = 0;
    }
    accesses.clear();
    stream.next_op(accesses);
    accesses_total += accesses.size();
    comm_credit += comm_lines_per_op;

    // rvhpc: hot-path begin — interval inner loop: one hierarchy access
    // per synthesised line, no allocation (rvhpc-lint S1xx polices this).
    for (const SimAccess& a : accesses) {
      const memsim::HitLevel level = hier.access(0, a.addr, a.is_write);
      if (level == memsim::HitLevel::Dram) {
        ++dram_lines;
        const double loaded_lat =
            dram.request(static_cast<std::uint64_t>(cycle));
        const double start = std::max(cycle, dram_ready);
        dram_ready = start + service_cycles;
        bw_residency_cycles += service_cycles;
        if (a.streamed) {
          // Prefetchable: latency is hidden, but once the run-ahead queue
          // is full the core throttles to the share's drain rate.
          const double lead = dram_ready - cycle;
          const double max_lead = prefetch_depth * service_cycles;
          if (lead > max_lead) {
            const double stall = lead - max_lead;
            stream_stall_cycles += stall;
            cycle += stall;
          }
        } else {
          // Demand miss: the loaded latency is exposed, divided by the
          // miss-level parallelism the pattern sustains.
          const double stall = loaded_lat / miss_overlap;
          latency_stall_cycles += stall;
          cycle += stall;
        }
      } else if (!a.streamed && level != memsim::HitLevel::L1) {
        const std::size_t idx = level == memsim::HitLevel::L2 ? 1 : 2;
        if (idx < hier.levels()) {
          const double stall = hier.level_latency(idx) / hit_hide;
          latency_stall_cycles += stall;
          cycle += stall;
        }
      }
    }
    // Halo-exchange lines contend for the same bandwidth share without
    // touching the private hierarchy.
    while (comm_credit >= 1.0) {
      comm_credit -= 1.0;
      (void)dram.request(static_cast<std::uint64_t>(cycle));
      const double start = std::max(cycle, dram_ready);
      dram_ready = start + service_cycles;
      bw_residency_cycles += service_cycles;
      const double lead = dram_ready - cycle;
      const double max_lead = prefetch_depth * service_cycles;
      if (lead > max_lead) {
        const double stall = lead - max_lead;
        stream_stall_cycles += stall;
        cycle += stall;
      }
    }
    // Issue-width-limited dispatch: the calibrated steady-state CPI, or
    // the LSU occupancy of this op's accesses, whichever binds.
    const double dispatch =
        std::max(cpi, static_cast<double>(accesses.size()) / lsu);
    dispatch_cycles += dispatch;
    cycle += dispatch;
    // rvhpc: hot-path end
  }
  dram.finish(static_cast<std::uint64_t>(cycle));

  const std::uint64_t measured_ops = sim_ops - warmup_ops;
  rep.counters.measured_ops = measured_ops;
  rep.counters.accesses = accesses_total;
  rep.counters.dram_lines = dram_lines;
  for (std::size_t i = 0; i < hier.levels(); ++i) {
    rep.counters.level_hits.push_back(hier.level_stats(i).hits);
  }
  rep.counters.dispatch_cycles = dispatch_cycles;
  rep.counters.stream_stall_cycles = stream_stall_cycles;
  rep.counters.latency_stall_cycles = latency_stall_cycles;
  rep.counters.bw_bound_fraction = dram.bw_bound_fraction();

  // --- extrapolate the measured interval to the full run ------------------
  out.vector = model::vector_outcome(m, sig, cfg.compiler);
  const double ops = sig.total_mop * 1e6;
  const double s = std::clamp(sig.serial_fraction, 0.0, 1.0);
  const double ops_per_core = ops * (1.0 - s) / n;
  const double per_op = 1.0 / static_cast<double>(measured_ops);
  const double to_seconds = ops_per_core * per_op / clock_hz;

  const double t_serial = ops * s / std::max(core_rate, 1.0);
  const double t_compute = dispatch_cycles * to_seconds + t_serial;
  const double t_stream = stream_stall_cycles * to_seconds;
  const double t_lat = latency_stall_cycles * to_seconds;

  const double imb = model::imbalance_factor(sig, cfg.cores);
  const double t_sync = model::sync_cost_s(m, sig, cfg.cores);
  const double pq = cfg.cores > 1
                        ? model::parallel_quality(cfg.compiler.id, sig.kernel)
                        : 1.0;
  const double total =
      ((t_compute + t_stream + t_lat) * imb + t_sync) / pq;

  out.seconds = total;
  out.mops = sig.total_mop / std::max(total, 1e-12);
  const double dram_bytes_chip =
      (static_cast<double>(dram_lines) + comm_lines_per_op * measured_ops) *
      line_bytes * ops_per_core * per_op * n;
  out.achieved_bw_gbs = dram_bytes_chip / std::max(total, 1e-12) / 1e9;

  // Resource-only times for classification — the same quantities the
  // analytic breakdown carries (t_cpu = compute alone, t_bw = drain time
  // of all DRAM traffic, t_lat = exposed miss latency).
  const double bw_only = bw_residency_cycles * to_seconds;
  out.breakdown = {t_compute, bw_only, t_lat, t_sync, imb,
                   model::Bottleneck::Compute};
  const double dmax = std::max({t_compute, bw_only, t_lat, t_sync});
  if (dmax == t_sync) {
    out.breakdown.dominant = model::Bottleneck::Sync;
  } else if (dmax == bw_only) {
    out.breakdown.dominant = model::Bottleneck::StreamBandwidth;
  } else if (dmax == t_lat) {
    out.breakdown.dominant = model::Bottleneck::Latency;
  } else {
    out.breakdown.dominant = model::Bottleneck::Compute;
  }

  if (obs::TraceSession* sess = obs::session()) {
    obs::PredictionRecord r = base_record();
    r.seconds = out.seconds;
    r.mops = out.mops;
    r.achieved_bw_gbs = out.achieved_bw_gbs;
    const double bucket_scale = imb / pq;
    r.phases = {{to_string(model::Bottleneck::Compute),
                 t_compute * bucket_scale},
                {to_string(model::Bottleneck::StreamBandwidth),
                 t_stream * bucket_scale},
                {to_string(model::Bottleneck::Latency), t_lat * bucket_scale},
                {to_string(model::Bottleneck::Sync), t_sync / pq}};
    r.bottleneck = to_string(out.breakdown.dominant);
    std::vector<std::pair<std::string, double>> raw = {
        {to_string(model::Bottleneck::Compute), t_compute},
        {to_string(model::Bottleneck::StreamBandwidth), bw_only},
        {to_string(model::Bottleneck::Latency), t_lat},
        {to_string(model::Bottleneck::Sync), t_sync}};
    std::stable_sort(raw.begin(), raw.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    for (const auto& [name, t] : raw) {
      if (name == r.bottleneck) continue;
      r.runner_up.emplace_back(name, dmax > 0.0 ? t / dmax : 0.0);
    }
    r.vectorised = out.vector.vectorised;
    r.vector_speedup = out.vector.blended_speedup;
    if (rep.counters.bw_bound_fraction > 0.25) {
      sess->add_instant(
          "interval-bw-saturation", "sim",
          {{"machine", m.name},
           {"cores", std::to_string(cfg.cores)},
           {"bw_bound_fraction",
            std::to_string(rep.counters.bw_bound_fraction)}});
    }
    sess->add_prediction(std::move(r));
  }
  if (span.active()) {
    span.arg("backend", "interval");
    span.arg("machine", m.name);
    span.arg("kernel", to_string(sig.kernel));
    span.arg("cores", std::to_string(cfg.cores));
    span.arg("bottleneck", to_string(out.breakdown.dominant));
  }
  return rep;
}

model::Prediction predict_interval(const arch::MachineModel& m,
                                   const model::WorkloadSignature& sig,
                                   const model::RunConfig& cfg) {
  return simulate(m, sig, cfg).prediction;
}

}  // namespace rvhpc::sim
