#pragma once
// rvhpc::sim — interval-simulation prediction backend.
//
// A second, mechanistically independent way to predict every machine x
// kernel x core-count point: instead of the analytic ECM fixed point
// (model/predictor.cpp), a coarse in-order *interval* core model in the
// Karkhanis/Smith style is stepped op by op.  One representative core
// dispatches signature operations at its calibrated steady-state rate,
// punctuated by stall intervals whenever the memory system cannot keep
// up:
//
//   * every memory access is routed through a real memsim::Hierarchy
//     built from the machine's cache levels (scaled to one core's slice),
//     so hit/miss behaviour *emerges* from footprints and capacities
//     rather than being assumed from the signature's hit fractions;
//   * streamed (prefetchable) DRAM lines occupy a memsim::DramModel
//     queue sized to this core's fair share of chip bandwidth — when the
//     prefetcher's bounded run-ahead queue fills, the core throttles to
//     the drain rate and the stall is charged to stream-bandwidth time;
//   * non-prefetchable (random) misses expose the DRAM's load-inflated
//     latency, divided by the miss-level parallelism the access pattern
//     and the core's MSHRs allow — charged to latency time.
//
// The interval loop's buckets extrapolate to the full run (Amdahl serial
// share at the single-core rate, sync/imbalance from the shared
// model::scaling helpers — deliberately the *same* calibration, so any
// divergence from the analytic backend localises to the memory/overlap
// mechanism).  bench/backend_calibration sweeps both backends and gates
// their bottleneck agreement; DESIGN.md §12 documents where the two are
// expected to differ.
//
// Everything here is deterministic (fixed xorshift seeds, no wall clock)
// and pure (all state is local to the call), so the engine's bit-identity
// guarantees hold for backend=interval exactly as for the analytic path.

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "memsim/trace.hpp"
#include "model/predictor.hpp"
#include "model/workload.hpp"

namespace rvhpc::sim {

/// Knobs of the interval simulation.  Defaults are what the engine's
/// interval backend uses; tests shrink them for speed and the calibration
/// bench keeps them at defaults so the checked-in artifact matches what a
/// `backend=interval` request over TCP computes.
struct IntervalConfig {
  /// Representative-core signature operations stepped per call.
  std::uint64_t sim_ops = 10000;
  /// Leading fraction of sim_ops that warms caches/DRAM state but is
  /// excluded from the timing buckets.
  double warmup_fraction = 0.2;
  /// The largest simulated footprint is rescaled to about this many MiB
  /// (cache capacities shrink by the same factor, preserving fit ratios).
  double target_footprint_mib = 8.0;
  /// Seed for the deterministic address synthesiser.
  std::uint64_t seed = 0x5eedULL;
};

/// What the interval core actually did — exposed so tests can check the
/// memory side against a raw memsim::Hierarchy and the calibration bench
/// can report mechanism-level detail.
struct IntervalCounters {
  std::uint64_t measured_ops = 0;      ///< post-warmup ops in the buckets
  std::uint64_t accesses = 0;          ///< hierarchy accesses, whole run
  std::uint64_t dram_lines = 0;        ///< of those, satisfied by DRAM
  /// Per-level (0 = L1) hierarchy hits over the whole run, warmup
  /// included — comparable against an identically driven Hierarchy.
  std::vector<std::uint64_t> level_hits;
  double footprint_scale = 1.0;        ///< applied footprint/cache scale
  double dispatch_cycles = 0.0;        ///< issue-limited dispatch (measured)
  double stream_stall_cycles = 0.0;    ///< prefetch-queue backpressure
  double latency_stall_cycles = 0.0;   ///< exposed miss/hit latency
  double bw_bound_fraction = 0.0;      ///< DramModel saturated-window share
};

struct IntervalReport {
  model::Prediction prediction;
  IntervalCounters counters;
};

/// One synthesised memory access of the interval core.
struct SimAccess {
  std::uint64_t addr = 0;
  bool is_write = false;
  bool streamed = false;  ///< prefetchable sweep vs. random/dependent
};

/// Deterministic per-op address synthesiser: converts the signature's
/// streamed_bytes_per_op / random_access_per_op rates into discrete line
/// accesses via fractional credit accumulators.  Public so tests can
/// drive an identical stream through a raw memsim::Hierarchy and require
/// hit/miss agreement with the interval core (the engine and memsim must
/// never drift apart silently).
class SignatureStream {
 public:
  /// `stream_bytes` / `random_bytes` are the *scaled* footprints this
  /// core sweeps; rates come from `sig` unchanged.
  SignatureStream(const model::WorkloadSignature& sig,
                  std::uint64_t stream_bytes, std::uint64_t random_bytes,
                  int line_bytes, std::uint64_t seed);

  /// Appends the accesses the next op issues to `out` (not cleared).
  void next_op(std::vector<SimAccess>& out);

 private:
  double stream_lines_per_op_;
  double random_per_op_;
  double write_ratio_;
  double stream_credit_ = 0.0;
  double random_credit_ = 0.0;
  std::uint64_t stream_footprint_;
  std::uint64_t random_footprint_;
  std::uint64_t stream_offset_ = 0;
  int line_bytes_;
  memsim::XorShift rng_;
};

/// The cache hierarchy one active core out of `active_cores` sees: every
/// level shrunk to this core's capacity slice times `footprint_scale`,
/// shared_by_cores forced to 1.  Exposed for the sim-vs-memsim agreement
/// test, which must rebuild the identical Hierarchy.
[[nodiscard]] arch::MachineModel per_core_slice(const arch::MachineModel& m,
                                                int active_cores,
                                                double footprint_scale);

/// The footprint/cache rescale factor simulate() applies for `sig` at
/// `active_cores` under `icfg` (<= 1; 1 when everything already fits the
/// configured target).
[[nodiscard]] double footprint_scale(const model::WorkloadSignature& sig,
                                     int active_cores,
                                     const IntervalConfig& icfg);

/// Runs the interval model and returns the prediction plus mechanism
/// counters.  Emits an obs::PredictionRecord tagged backend="interval"
/// when a trace session is active.
[[nodiscard]] IntervalReport simulate(const arch::MachineModel& m,
                                      const model::WorkloadSignature& sig,
                                      const model::RunConfig& cfg,
                                      const IntervalConfig& icfg = {});

/// The engine-facing entry point: simulate() with default knobs,
/// prediction only.
[[nodiscard]] model::Prediction predict_interval(
    const arch::MachineModel& m, const model::WorkloadSignature& sig,
    const model::RunConfig& cfg);

}  // namespace rvhpc::sim
