#include "report/table.hpp"

#include <algorithm>
#include <sstream>

namespace rvhpc::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < header_.size()) os << "  ";
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto cell = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ",";
      os << cell(c < r.size() ? r[c] : std::string{});
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string fmt_pct_of(double v, double reference) {
  if (reference == 0.0) return "-";
  return fmt(100.0 * v / reference, 0) + "%";
}

std::string fmt_ratio(double num, double den, int decimals) {
  if (den == 0.0) return "-";
  return fmt(num / den, decimals) + "x";
}

}  // namespace rvhpc::report
