#include "report/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace rvhpc::report {

std::string csv_dir() {
  const char* dir = std::getenv("RVHPC_CSV_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

std::string maybe_write_csv(const std::string& name, const Table& t) {
  const std::string dir = csv_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write CSV to " + path +
                             " (RVHPC_CSV_DIR set but unwritable)");
  }
  out << t.to_csv();
  return path;
}

}  // namespace rvhpc::report
