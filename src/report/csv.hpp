#pragma once
// rvhpc::report — optional CSV side-output for the bench binaries.
//
// Every reproduction bench prints human-readable tables; setting the
// RVHPC_CSV_DIR environment variable additionally drops each table as
// <dir>/<name>.csv so results can be plotted or diffed by scripts.

#include <string>

#include "report/table.hpp"

namespace rvhpc::report {

/// Directory from RVHPC_CSV_DIR, or empty when CSV output is disabled.
[[nodiscard]] std::string csv_dir();

/// Writes `t` to `<csv_dir>/<name>.csv` when RVHPC_CSV_DIR is set.
/// Returns the path written, or empty if disabled.  Throws
/// std::runtime_error if the directory is set but unwritable.
std::string maybe_write_csv(const std::string& name, const Table& t);

}  // namespace rvhpc::report
