#include "report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rvhpc::report {

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label, int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(std::max(width, 16)),
      height_(std::max(height, 6)) {}

void AsciiChart::add_series(Series s) { series_.push_back(std::move(s)); }

std::string AsciiChart::render() const {
  std::ostringstream os;
  os << title_ << "\n";
  double xmin = 1e300, xmax = -1e300, ymax = 0.0;
  bool any = false;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (x <= 0.0) continue;
      any = true;
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymax = std::max(ymax, y);
    }
  }
  if (!any || ymax <= 0.0) return os.str();
  const double lx0 = std::log2(xmin), lx1 = std::log2(std::max(xmax, xmin * 2));

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (x <= 0.0) continue;
      const int col = static_cast<int>(std::lround(
          (std::log2(x) - lx0) / (lx1 - lx0) * (width_ - 1)));
      const int row = static_cast<int>(std::lround(y / ymax * (height_ - 1)));
      const int r = std::clamp(height_ - 1 - row, 0, height_ - 1);
      const int c = std::clamp(col, 0, width_ - 1);
      grid[r][c] = s.glyph;
    }
  }
  os << y_label_ << " (max " << ymax << ")\n";
  for (const auto& line : grid) os << "| " << line << "\n";
  os << "+" << std::string(width_ + 1, '-') << "> " << x_label_ << " (log2, "
     << xmin << ".." << xmax << ")\n";
  os << "legend:";
  for (const auto& s : series_) os << "  " << s.glyph << "=" << s.label;
  os << "\n";
  return os.str();
}

}  // namespace rvhpc::report
