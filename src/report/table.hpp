#pragma once
// rvhpc::report — plain-text table rendering.
//
// Every bench binary prints its reproduction as an aligned text table with
// paper-reference columns next to modelled values.  Cells are strings;
// numeric helpers format with sensible precision.

#include <string>
#include <vector>

namespace rvhpc::report {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; missing cells render empty, extras are dropped.
  void add_row(std::vector<std::string> row);

  /// Renders with a header rule and 2-space column gaps.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting: fmt(3.14159, 2) == "3.14".
[[nodiscard]] std::string fmt(double v, int decimals = 2);

/// Formats `v` as a percentage of `reference` ("87%"); "-" when the
/// reference is missing/zero.
[[nodiscard]] std::string fmt_pct_of(double v, double reference);

/// Ratio string ("1.23x"); "-" when the denominator is zero.
[[nodiscard]] std::string fmt_ratio(double num, double den, int decimals = 2);

}  // namespace rvhpc::report
