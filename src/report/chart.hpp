#pragma once
// rvhpc::report — ASCII line charts for the figure reproductions.
//
// The paper's Figures 1-6 are log-x scaling curves with one series per
// machine; AsciiChart renders the same series as a terminal plot so each
// fig*_ bench binary can show the reproduced shape directly.

#include <string>
#include <vector>

namespace rvhpc::report {

/// One plotted series: (x, y) points with a label and a glyph.
struct Series {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

/// Renders series on a log2-x / linear-y grid of the given size.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label,
             int width = 72, int height = 20);

  void add_series(Series s);

  /// Renders the plot plus a legend; empty charts render just the title.
  [[nodiscard]] std::string render() const;

 private:
  std::string title_, x_label_, y_label_;
  int width_, height_;
  std::vector<Series> series_;
};

}  // namespace rvhpc::report
