#include "http/message.hpp"

namespace rvhpc::http {
namespace {

/// Trims ?query from a request-target so routing sees the path only.
std::string_view path_of(std::string_view target) {
  const std::size_t q = target.find('?');
  return q == std::string_view::npos ? target : target.substr(0, q);
}

/// Finds `"key": "<value>"` in a serve-wire JSON line and returns the
/// value, or empty.  The serve layer emits these strings itself with a
/// fixed ": " separator, so a substring scan is exact here — this is
/// not a general JSON parser.
std::string_view json_string_member(std::string_view json,
                                    std::string_view needle) {
  const std::size_t at = json.find(needle);
  if (at == std::string_view::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = json.find('"', start);
  if (end == std::string_view::npos) return {};
  return json.substr(start, end - start);
}

}  // namespace

const char* reason_phrase(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

RouteMatch route_target(std::string_view method, std::string_view target) {
  const std::string_view path = path_of(target);
  if (path == "/v1/predict") {
    if (method == "POST") return {Route::Predict, ""};
    return {Route::MethodNotAllowed, "POST"};
  }
  if (path == "/metrics") {
    if (method == "GET" || method == "HEAD") return {Route::Metrics, ""};
    return {Route::MethodNotAllowed, "GET, HEAD"};
  }
  if (path == "/healthz") {
    if (method == "GET" || method == "HEAD") return {Route::Healthz, ""};
    return {Route::MethodNotAllowed, "GET, HEAD"};
  }
  return {Route::NotFound, ""};
}

const char* route_label(Route r) {
  switch (r) {
    case Route::Predict: return "/v1/predict";
    case Route::Metrics: return "/metrics";
    case Route::Healthz: return "/healthz";
    case Route::NotFound:
    case Route::MethodNotAllowed: return "other";
  }
  return "other";
}

int status_for_response(std::string_view response_json) {
  if (json_string_member(response_json, "\"status\": \"") != "error") {
    return 200;
  }
  const std::string_view kind =
      json_string_member(response_json, "\"error\": \"");
  if (kind == "parse" || kind == "lint") return 400;
  if (kind == "overloaded") return 503;
  if (kind == "timeout") return 504;
  return 500;
}

int status_for_error(Error e) {
  switch (e) {
    case Error::BodyTooLarge:
      return 413;
    case Error::RequestLineTooLong:
    case Error::HeadersTooLarge:
      return 431;
    default:
      return 400;
  }
}

namespace {

void append_status_line(std::string& out, int status) {
  out.append("HTTP/1.1 ");
  // Statuses here are always three digits; render without ostringstream.
  out.push_back(static_cast<char>('0' + status / 100));
  out.push_back(static_cast<char>('0' + (status / 10) % 10));
  out.push_back(static_cast<char>('0' + status % 10));
  out.push_back(' ');
  out.append(reason_phrase(status));
  out.append("\r\n");
}

void append_common(std::string& out, bool keep_alive,
                   std::string_view content_type,
                   std::string_view extra_headers) {
  if (!content_type.empty()) {
    out.append("Content-Type: ");
    out.append(content_type);
    out.append("\r\n");
  }
  out.append(keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n");
  out.append(extra_headers);
}

void append_size_decimal(std::string& out, std::size_t n) {
  char digits[24];
  std::size_t i = sizeof(digits);
  do {
    digits[--i] = static_cast<char>('0' + n % 10);
    n /= 10;
  } while (n != 0);
  out.append(digits + i, sizeof(digits) - i);
}

}  // namespace

void append_head(std::string& out, int status, bool keep_alive,
                 std::string_view content_type, std::size_t content_length,
                 std::string_view extra_headers) {
  append_status_line(out, status);
  append_common(out, keep_alive, content_type, extra_headers);
  out.append("Content-Length: ");
  append_size_decimal(out, content_length);
  out.append("\r\n\r\n");
}

void append_chunked_head(std::string& out, int status, bool keep_alive,
                         std::string_view content_type,
                         std::string_view extra_headers) {
  append_status_line(out, status);
  append_common(out, keep_alive, content_type, extra_headers);
  out.append("Transfer-Encoding: chunked\r\n\r\n");
}

void append_chunk(std::string& out, std::string_view payload) {
  if (payload.empty()) return;
  char hex[2 * sizeof(std::size_t)];
  std::size_t n = payload.size();
  std::size_t i = sizeof(hex);
  do {
    hex[--i] = "0123456789abcdef"[n & 0xF];
    n >>= 4;
  } while (n != 0);
  out.append(hex + i, sizeof(hex) - i);
  out.append("\r\n");
  out.append(payload);
  out.append("\r\n");
}

}  // namespace rvhpc::http
