#include "http/parser.hpp"

#include <algorithm>
#include <limits>

namespace rvhpc::http {
namespace {

char lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

void lower_inplace(std::string& s) {
  for (char& c : s) c = lower(c);
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

/// Case-insensitive "does the comma-separated header value contain this
/// token" — Connection and Expect are token lists.
bool has_token(std::string_view value, std::string_view token) {
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string_view::npos) comma = value.size();
    if (iequals(trim_ows(value.substr(pos, comma - pos)), token)) return true;
    pos = comma + 1;
  }
  return false;
}

/// Strict decimal parse for Content-Length; false on empty/garbage/
/// overflow.
bool parse_decimal(std::string_view s, std::size_t& out) {
  if (s.empty()) return false;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (std::numeric_limits<std::size_t>::max() - 9) / 10) return false;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  out = v;
  return true;
}

/// Hex parse for chunk-size lines; stops at ';' (chunk extensions).
bool parse_chunk_size(std::string_view s, std::size_t& out) {
  s = trim_ows(s);
  const std::size_t semi = s.find(';');
  if (semi != std::string_view::npos) s = trim_ows(s.substr(0, semi));
  if (s.empty()) return false;
  std::size_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    if (v > (std::numeric_limits<std::size_t>::max() >> 4)) return false;
    v = (v << 4) | static_cast<std::size_t>(digit);
  }
  out = v;
  return true;
}

const std::string* find_header(const std::vector<Header>& headers,
                               std::string_view name) {
  for (const Header& h : headers) {
    if (h.name == name) return &h.value;
  }
  return nullptr;
}

/// Shared header-line handling: lowercase the name, trim the value,
/// fold obs-fold continuations into the previous header.  Returns false
/// on a line with no colon.
///
/// `live` counts the headers of the *current* message; entries beyond it
/// are kept-alive storage from a previous request on the same parser, so
/// a steady-state keep-alive connection assigns into existing strings
/// instead of allocating a fresh Header per line.  The caller trims the
/// vector to `live` before exposing it (end of the header block).
bool ingest_header_line(const std::string& line, std::vector<Header>& headers,
                        std::size_t& live) {
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: a continuation of the previous value.
    if (live == 0) return false;
    Header& prev = headers[live - 1];
    prev.value += ' ';
    prev.value.append(trim_ows(line));
    return true;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  if (live == headers.size()) headers.emplace_back();
  Header& h = headers[live++];
  h.name.assign(trim_ows(std::string_view(line).substr(0, colon)));
  lower_inplace(h.name);
  h.value.assign(trim_ows(std::string_view(line).substr(colon + 1)));
  return true;
}

}  // namespace

const char* to_string(Error e) {
  switch (e) {
    case Error::None:               return "none";
    case Error::BadRequestLine:     return "malformed request line";
    case Error::BadVersion:         return "unsupported HTTP version";
    case Error::BadHeader:          return "malformed header line";
    case Error::BadContentLength:   return "bad Content-Length";
    case Error::UnsupportedBody:    return "only Content-Length bodies are supported";
    case Error::RequestLineTooLong: return "request line too long";
    case Error::HeadersTooLarge:    return "header block too large";
    case Error::BodyTooLarge:       return "body exceeds the configured limit";
  }
  return "unknown";
}

// --- RequestParser ---------------------------------------------------------

RequestParser::RequestParser(Limits limits) : limits_(limits) {
  line_.reserve(128);
  headers_.reserve(8);
}

void RequestParser::fail(Error e) {
  state_ = State::Failed;
  error_ = e;
}

std::size_t RequestParser::feed(std::string_view data) {
  std::size_t used = 0;
  // rvhpc: hot-path begin — the per-read framing loop: every byte of
  // every HTTP request crosses it on a shard event loop, so it must stay
  // free of per-iteration allocations (bulk appends into pre-sized
  // buffers only).
  while (used < data.size() && state_ != State::Complete &&
         state_ != State::Failed) {
    if (state_ == State::Body) {
      const std::size_t want = content_length_ - body_.size();
      const std::size_t take = std::min(want, data.size() - used);
      body_.append(data.data() + used, take);
      used += take;
      if (body_.size() == content_length_) state_ = State::Complete;
      continue;
    }
    // Line-oriented states: accumulate up to the next LF, resumably.
    const std::size_t nl = data.find('\n', used);
    const std::size_t end = (nl == std::string_view::npos) ? data.size() : nl;
    line_.append(data.data() + used, end - used);
    used = end;
    if (state_ == State::RequestLine) {
      if (line_.size() > limits_.max_request_line) {
        fail(Error::RequestLineTooLong);
        break;
      }
    } else if (header_bytes_ + line_.size() > limits_.max_header_bytes) {
      fail(Error::HeadersTooLarge);
      break;
    }
    if (nl == std::string_view::npos) break;  // mid-line: resume next read
    ++used;                                   // consume the LF
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    const bool ok = (state_ == State::RequestLine) ? parse_request_line()
                                                   : parse_header_line();
    line_.clear();
    if (!ok) break;
  }
  // rvhpc: hot-path end
  return used;
}

bool RequestParser::parse_request_line() {
  if (line_.empty()) return true;  // tolerated: blank line(s) before a request
  const std::string_view line(line_);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      (sp1 == std::string_view::npos) ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(Error::BadRequestLine);
    return false;
  }
  method_.assign(line.substr(0, sp1));
  target_.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    version_minor_ = 1;
  } else if (version == "HTTP/1.0") {
    version_minor_ = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    fail(Error::BadVersion);
    return false;
  } else {
    fail(Error::BadRequestLine);
    return false;
  }
  state_ = State::Headers;
  return true;
}

bool RequestParser::parse_header_line() {
  if (line_.empty()) {
    headers_.resize(live_headers_);  // drop reused slots past this message
    finish_headers();
    return state_ != State::Failed;
  }
  header_bytes_ += line_.size();
  if (!ingest_header_line(line_, headers_, live_headers_)) {
    fail(Error::BadHeader);
    return false;
  }
  return true;
}

void RequestParser::finish_headers() {
  if (find_header(headers_, "transfer-encoding") != nullptr) {
    // Requests are Content-Length-framed only (DESIGN.md §14); a chunked
    // request body would need trailer plumbing nothing here wants.
    fail(Error::UnsupportedBody);
    return;
  }
  if (const std::string* cl = find_header(headers_, "content-length")) {
    if (!parse_decimal(*cl, content_length_)) {
      fail(Error::BadContentLength);
      return;
    }
    have_content_length_ = true;
    if (content_length_ > limits_.max_body) {
      fail(Error::BodyTooLarge);
      return;
    }
  }
  const std::string* conn = find_header(headers_, "connection");
  if (version_minor_ >= 1) {
    keep_alive_ = !(conn && has_token(*conn, "close"));
  } else {
    keep_alive_ = conn && has_token(*conn, "keep-alive");
  }
  if (const std::string* expect = find_header(headers_, "expect")) {
    expect_continue_ = has_token(*expect, "100-continue");
  }
  if (have_content_length_ && content_length_ > 0) {
    body_.reserve(content_length_);
    state_ = State::Body;
  } else {
    state_ = State::Complete;
  }
}

const std::string* RequestParser::header(std::string_view name) const {
  return find_header(headers_, name);
}

void RequestParser::reset() {
  state_ = State::RequestLine;
  error_ = Error::None;
  line_.clear();
  method_.clear();
  target_.clear();
  version_minor_ = 1;
  // headers_ entries are kept as reusable storage (live_headers_ marks
  // the live prefix while the next message parses).
  live_headers_ = 0;
  header_bytes_ = 0;
  body_.clear();
  content_length_ = 0;
  have_content_length_ = false;
  keep_alive_ = true;
  expect_continue_ = false;
}

// --- ResponseParser --------------------------------------------------------

ResponseParser::ResponseParser(Limits limits) : limits_(limits) {
  line_.reserve(128);
  headers_.reserve(8);
}

void ResponseParser::fail(Error e) {
  state_ = State::Failed;
  error_ = e;
}

std::size_t ResponseParser::feed(std::string_view data) {
  std::size_t used = 0;
  while (used < data.size() && state_ != State::Complete &&
         state_ != State::Failed) {
    if (state_ == State::BodyLength) {
      const std::size_t want = content_length_ - body_.size();
      const std::size_t take = std::min(want, data.size() - used);
      body_.append(data.data() + used, take);
      used += take;
      if (body_.size() == content_length_) state_ = State::Complete;
      continue;
    }
    if (state_ == State::BodyEof) {
      if (body_.size() + (data.size() - used) > limits_.max_body) {
        fail(Error::BodyTooLarge);
        break;
      }
      body_.append(data.data() + used, data.size() - used);
      used = data.size();
      continue;
    }
    if (state_ == State::ChunkData) {
      const std::size_t take =
          std::min(chunk_remaining_, data.size() - used);
      if (body_.size() + take > limits_.max_body) {
        fail(Error::BodyTooLarge);
        break;
      }
      body_.append(data.data() + used, take);
      used += take;
      chunk_remaining_ -= take;
      if (chunk_remaining_ == 0) state_ = State::ChunkDataEnd;
      continue;
    }
    // Line-oriented states.
    const std::size_t nl = data.find('\n', used);
    const std::size_t end = (nl == std::string_view::npos) ? data.size() : nl;
    line_.append(data.data() + used, end - used);
    used = end;
    if (header_bytes_ + line_.size() > limits_.max_header_bytes) {
      fail(Error::HeadersTooLarge);
      break;
    }
    if (nl == std::string_view::npos) break;
    ++used;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    bool ok = true;
    switch (state_) {
      case State::StatusLine:
        ok = parse_status_line();
        break;
      case State::Headers:
        ok = parse_header_line();
        break;
      case State::ChunkSize: {
        std::size_t size = 0;
        if (!parse_chunk_size(line_, size)) {
          fail(Error::BadHeader);
          ok = false;
          break;
        }
        if (size == 0) {
          state_ = State::Trailers;
        } else if (body_.size() + size > limits_.max_body) {
          fail(Error::BodyTooLarge);
          ok = false;
        } else {
          chunk_remaining_ = size;
          state_ = State::ChunkData;
        }
        break;
      }
      case State::ChunkDataEnd:
        if (!line_.empty()) {
          fail(Error::BadHeader);
          ok = false;
        } else {
          state_ = State::ChunkSize;
        }
        break;
      case State::Trailers:
        if (line_.empty()) state_ = State::Complete;
        break;
      default:
        break;
    }
    line_.clear();
    if (!ok) break;
  }
  return used;
}

bool ResponseParser::parse_status_line() {
  if (line_.empty()) return true;  // stray blank between pipelined responses
  const std::string_view line(line_);
  if (line.rfind("HTTP/1.", 0) != 0 || line.size() < 12 ||
      line[8] != ' ') {
    fail(Error::BadRequestLine);
    return false;
  }
  version_minor_ = line[7] == '0' ? 0 : 1;
  int status = 0;
  for (int i = 9; i < 12; ++i) {
    if (line[static_cast<std::size_t>(i)] < '0' ||
        line[static_cast<std::size_t>(i)] > '9') {
      fail(Error::BadRequestLine);
      return false;
    }
    status = status * 10 + (line[static_cast<std::size_t>(i)] - '0');
  }
  status_ = status;
  reason_.assign(line.size() > 13 ? line.substr(13) : std::string_view());
  state_ = State::Headers;
  return true;
}

bool ResponseParser::parse_header_line() {
  if (line_.empty()) {
    headers_.resize(live_headers_);  // drop reused slots past this message
    finish_headers();
    return state_ != State::Failed;
  }
  header_bytes_ += line_.size();
  if (!ingest_header_line(line_, headers_, live_headers_)) {
    fail(Error::BadHeader);
    return false;
  }
  return true;
}

void ResponseParser::finish_headers() {
  if (status_ >= 100 && status_ < 200) {
    // Interim response (e.g. "100 Continue"): skip it and wait for the
    // real one.
    live_headers_ = 0;
    header_bytes_ = 0;
    status_ = 0;
    reason_.clear();
    state_ = State::StatusLine;
    return;
  }
  const std::string* conn = find_header(headers_, "connection");
  if (version_minor_ >= 1) {
    keep_alive_ = !(conn && has_token(*conn, "close"));
  } else {
    keep_alive_ = conn && has_token(*conn, "keep-alive");
  }
  const std::string* te = find_header(headers_, "transfer-encoding");
  if (te && has_token(*te, "chunked")) {
    chunked_ = true;
    state_ = State::ChunkSize;
    return;
  }
  if (const std::string* cl = find_header(headers_, "content-length")) {
    if (!parse_decimal(*cl, content_length_)) {
      fail(Error::BadContentLength);
      return;
    }
    if (content_length_ > limits_.max_body) {
      fail(Error::BodyTooLarge);
      return;
    }
    have_content_length_ = true;
    state_ = content_length_ > 0 ? State::BodyLength : State::Complete;
    return;
  }
  if (status_ == 204 || status_ == 304) {
    state_ = State::Complete;
    return;
  }
  state_ = State::BodyEof;
}

void ResponseParser::finish_eof() {
  if (state_ == State::BodyEof) {
    state_ = State::Complete;
  } else if (state_ != State::Complete && state_ != State::Failed) {
    fail(Error::BadHeader);
  }
}

const std::string* ResponseParser::header(std::string_view name) const {
  return find_header(headers_, name);
}

void ResponseParser::reset() {
  state_ = State::StatusLine;
  error_ = Error::None;
  line_.clear();
  status_ = 0;
  reason_.clear();
  // headers_ entries are kept as reusable storage (live_headers_ marks
  // the live prefix while the next message parses).
  live_headers_ = 0;
  header_bytes_ = 0;
  body_.clear();
  content_length_ = 0;
  have_content_length_ = false;
  chunked_ = false;
  chunk_remaining_ = 0;
  keep_alive_ = true;
  version_minor_ = 1;
}

}  // namespace rvhpc::http
