#pragma once
// rvhpc::http — response rendering and routing helpers shared by the
// server-side shard integration (net.cpp) and the HTTP clients
// (rvhpc-client --http, bench/http_throughput).
//
// Everything here is pure string building: the shard event loop calls
// these to render heads/chunks directly into its per-connection write
// buffer, so nothing blocks and nothing does I/O.

#include <cstddef>
#include <string>
#include <string_view>

#include "http/parser.hpp"

namespace rvhpc::http {

/// Canonical reason phrase for the status codes this server emits.
[[nodiscard]] const char* reason_phrase(int status);

/// The routes the front end serves.  NotFound/MethodNotAllowed are
/// terminal error routes so per-route metrics can still label them.
enum class Route {
  Predict,            ///< POST /v1/predict
  Metrics,            ///< GET /metrics
  Healthz,            ///< GET /healthz
  NotFound,           ///< unknown target -> 404
  MethodNotAllowed,   ///< known target, wrong method -> 405 + Allow
};

struct RouteMatch {
  Route route;
  const char* allow;  ///< Allow header value when MethodNotAllowed, else ""
};

/// Resolves method + request-target to a route.  Any query string is
/// ignored for matching ("/metrics?x=1" hits Metrics).
[[nodiscard]] RouteMatch route_target(std::string_view method,
                                      std::string_view target);

/// Stable label for metrics: "/v1/predict", "/metrics", "/healthz" or
/// "other" for the error routes.
[[nodiscard]] const char* route_label(Route r);

/// Maps one serve-wire response line onto an HTTP status: 200 for ok,
/// 400 parse/lint, 503 overloaded, 504 timeout, 500 anything else
/// flagged "status": "error".
[[nodiscard]] int status_for_response(std::string_view response_json);

/// Maps a request-parser failure onto a status: 413 for BodyTooLarge,
/// 431 for oversized request line / header block, 400 otherwise.
[[nodiscard]] int status_for_error(Error e);

/// Appends a fixed-length response head:
///   HTTP/1.1 <status> <reason>\r\n
///   Content-Type / Content-Length / Connection (+ extra_headers)\r\n\r\n
/// extra_headers, when non-empty, must be full "Name: value\r\n" lines.
void append_head(std::string& out, int status, bool keep_alive,
                 std::string_view content_type, std::size_t content_length,
                 std::string_view extra_headers = {});

/// Appends a chunked-transfer response head (no Content-Length;
/// Transfer-Encoding: chunked).
void append_chunked_head(std::string& out, int status, bool keep_alive,
                         std::string_view content_type,
                         std::string_view extra_headers = {});

/// Appends one chunk (hex size line + payload + CRLF).  Empty payloads
/// are skipped: a zero-size chunk would terminate the body.
void append_chunk(std::string& out, std::string_view payload);

/// Terminates a chunked body.
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

/// Interim reply owed when a request carries "Expect: 100-continue".
inline constexpr std::string_view kContinue = "HTTP/1.1 100 Continue\r\n\r\n";

}  // namespace rvhpc::http
