#pragma once
// rvhpc::http — incremental HTTP/1.1 framing for the serving front end.
//
// The net front end speaks a bespoke JSON-lines protocol that no stock
// tool can talk to.  This module supplies the missing standards layer:
// a pure, resumable HTTP/1.1 *request* parser (request line + headers +
// Content-Length body) for the server side, and a *response* parser
// (status line + headers + Content-Length or chunked body) for
// rvhpc-client's --http mode and the load generator.  Both are
// allocation-conscious incremental state machines:
//
//   - no threads, no blocking, no I/O — feed() consumes bytes from
//     whatever buffer the caller's poll() loop filled and returns how
//     many it took, so a message split across any number of reads
//     (mid-request-line, mid-header, mid-body) resumes exactly where it
//     stopped;
//   - feed() stops consuming at the end of one complete message, so
//     pipelined keep-alive requests stay in the caller's buffer until
//     reset() re-arms the parser for the next one;
//   - every internal buffer is bounded (request line, header block,
//     body), and exceeding a bound is a typed error the caller maps onto
//     the 400/413/431-style taxonomy — a hostile peer can never grow
//     parser state without limit.
//
// The server-side integration (shard event loops, routing, response
// writing) lives in net.cpp; the response-head/chunk rendering helpers
// live in http/message.hpp.  DESIGN.md §14 documents the whole layer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rvhpc::http {

/// Size bounds applied while parsing; exceeding one is a typed Error,
/// never unbounded buffering.
struct Limits {
  std::size_t max_request_line = 8 * 1024;
  std::size_t max_header_bytes = 32 * 1024;  ///< all header lines together
  std::size_t max_body = 1024 * 1024;
};

/// Why a parse failed — the caller maps these onto HTTP status codes
/// (http::status_for_error in message.hpp).
enum class Error {
  None,
  BadRequestLine,    ///< malformed "METHOD SP target SP HTTP/1.x"
  BadVersion,        ///< not HTTP/1.0 or HTTP/1.1
  BadHeader,         ///< header line without ':', or garbage
  BadContentLength,  ///< non-numeric or duplicate-conflicting length
  UnsupportedBody,   ///< Transfer-Encoding on a request (only length bodies)
  RequestLineTooLong,
  HeadersTooLarge,
  BodyTooLarge,      ///< Content-Length beyond Limits::max_body
};

[[nodiscard]] const char* to_string(Error e);

/// One parsed header, name lowercased at ingest so lookups are
/// case-insensitive without per-lookup normalisation.
struct Header {
  std::string name;   ///< lowercased
  std::string value;  ///< OWS-trimmed
};

/// Incremental HTTP/1.1 request parser (server side).
///
///   RequestParser p(limits);
///   size_t used = p.feed(buf);   // consume from the connection buffer
///   buf.erase(0, used);
///   if (p.failed())   -> status_for_error(p.error()), close
///   if (p.complete()) -> route it, then p.reset() for the next request
///
/// CRLF and bare-LF line endings are both accepted (curl sends CRLF;
/// hand-rolled test clients often do not).
class RequestParser {
 public:
  explicit RequestParser(Limits limits = {});

  /// Consumes as much of `data` as this request can use and returns the
  /// number of bytes taken.  Stops consuming once the request is
  /// complete (pipelined successors stay with the caller) or failed.
  std::size_t feed(std::string_view data);

  [[nodiscard]] bool complete() const { return state_ == State::Complete; }
  [[nodiscard]] bool failed() const { return state_ == State::Failed; }
  [[nodiscard]] Error error() const { return error_; }
  /// True once the header block has fully parsed (before the body is in)
  /// — the point where an Expect: 100-continue interim reply is due.
  [[nodiscard]] bool headers_complete() const {
    return state_ == State::Body || state_ == State::Complete;
  }
  /// True once any byte of a request has arrived (even a partial request
  /// line).  The server's slow-loris reaper keys off this: a connection
  /// that *started* a request but has not finished its headers is held to
  /// the header deadline, while a silent keep-alive connection is only
  /// subject to the (longer) idle timeout.
  [[nodiscard]] bool started() const {
    return state_ != State::RequestLine || !line_.empty();
  }

  [[nodiscard]] const std::string& method() const { return method_; }
  /// Request target as sent (path + optional query), no normalisation.
  [[nodiscard]] const std::string& target() const { return target_; }
  /// 0 for HTTP/1.0, 1 for HTTP/1.1.
  [[nodiscard]] int version_minor() const { return version_minor_; }
  [[nodiscard]] const std::vector<Header>& headers() const { return headers_; }
  /// Value of the first header named `name` (lowercase), or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  [[nodiscard]] const std::string& body() const { return body_; }
  [[nodiscard]] std::size_t content_length() const { return content_length_; }
  /// Whether the connection should stay open after this exchange:
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  [[nodiscard]] bool keep_alive() const { return keep_alive_; }
  /// The client asked for a "100 Continue" before sending its body.
  [[nodiscard]] bool expect_continue() const { return expect_continue_; }

  /// Re-arms for the next request on a keep-alive connection.  Buffers
  /// keep their capacity, so a pipelined burst parses without
  /// re-allocating per request.
  void reset();

 private:
  enum class State { RequestLine, Headers, Body, Complete, Failed };

  void fail(Error e);
  bool parse_request_line();
  bool parse_header_line();
  void finish_headers();

  Limits limits_;
  State state_ = State::RequestLine;
  Error error_ = Error::None;
  std::string line_;  ///< the header/request line being accumulated
  std::string method_;
  std::string target_;
  int version_minor_ = 1;
  std::vector<Header> headers_;
  std::size_t live_headers_ = 0;  ///< headers of the current message;
                                  ///< entries past it are reused storage
  std::size_t header_bytes_ = 0;
  std::string body_;
  std::size_t content_length_ = 0;
  bool have_content_length_ = false;
  bool keep_alive_ = true;
  bool expect_continue_ = false;
};

/// Incremental HTTP/1.1 response parser (client side: rvhpc-client
/// --http, bench/http_throughput).  Handles Content-Length bodies,
/// chunked transfer coding (the server streams batch replies chunked)
/// and read-until-EOF bodies; interim 1xx responses are skipped
/// transparently.
class ResponseParser {
 public:
  explicit ResponseParser(Limits limits = {0, 32 * 1024,
                                           std::size_t(256) * 1024 * 1024});

  /// Consumes as much of `data` as the current response can use.
  std::size_t feed(std::string_view data);
  /// For a response with neither Content-Length nor chunked coding the
  /// body runs to connection close: the caller reports EOF here, which
  /// completes such a response (and is an error mid-chunk/mid-length).
  void finish_eof();

  [[nodiscard]] bool complete() const { return state_ == State::Complete; }
  [[nodiscard]] bool failed() const { return state_ == State::Failed; }
  [[nodiscard]] Error error() const { return error_; }
  [[nodiscard]] int status() const { return status_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }
  [[nodiscard]] const std::vector<Header>& headers() const { return headers_; }
  [[nodiscard]] const std::string* header(std::string_view name) const;
  [[nodiscard]] const std::string& body() const { return body_; }
  [[nodiscard]] bool chunked() const { return chunked_; }
  [[nodiscard]] bool keep_alive() const { return keep_alive_; }

  /// Re-arms for the next response on a keep-alive connection.
  void reset();

 private:
  enum class State {
    StatusLine,
    Headers,
    BodyLength,    ///< Content-Length countdown
    BodyEof,       ///< neither length nor chunked: read to EOF
    ChunkSize,     ///< hex size line
    ChunkData,
    ChunkDataEnd,  ///< CRLF after chunk payload
    Trailers,      ///< after the 0-size chunk
    Complete,
    Failed,
  };

  void fail(Error e);
  bool parse_status_line();
  bool parse_header_line();
  void finish_headers();

  Limits limits_;
  State state_ = State::StatusLine;
  Error error_ = Error::None;
  std::string line_;
  int status_ = 0;
  std::string reason_;
  std::vector<Header> headers_;
  std::size_t live_headers_ = 0;  ///< headers of the current message;
                                  ///< entries past it are reused storage
  std::size_t header_bytes_ = 0;
  std::string body_;
  std::size_t content_length_ = 0;
  bool have_content_length_ = false;
  bool chunked_ = false;
  std::size_t chunk_remaining_ = 0;
  bool keep_alive_ = true;
  int version_minor_ = 1;
};

}  // namespace rvhpc::http
