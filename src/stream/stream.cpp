#include "stream/stream.hpp"

#include <omp.h>

#include <chrono>
#include <cmath>

namespace rvhpc::stream {
namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string to_string(StreamKernel k) {
  switch (k) {
    case StreamKernel::Copy:  return "copy";
    case StreamKernel::Scale: return "scale";
    case StreamKernel::Add:   return "add";
    case StreamKernel::Triad: return "triad";
  }
  return "unknown";
}

std::vector<StreamResult> run(const StreamConfig& cfg) {
  const std::size_t n = cfg.elements;
  std::vector<double> a(n), b(n), c(n);
  constexpr double kScalar = 3.0;

#pragma omp parallel for schedule(static) num_threads(cfg.threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    a[static_cast<std::size_t>(i)] = 1.0;
    b[static_cast<std::size_t>(i)] = 2.0;
    c[static_cast<std::size_t>(i)] = 0.0;
  }

  const double bytes2 = 2.0 * sizeof(double) * static_cast<double>(n);
  const double bytes3 = 3.0 * sizeof(double) * static_cast<double>(n);
  std::vector<StreamResult> results(4);
  for (int q = 0; q < 4; ++q) {
    results[static_cast<std::size_t>(q)].kernel = static_cast<StreamKernel>(q);
  }
  std::vector<double> best(4, 1e300), total(4, 0.0);

  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    double t = now();
#pragma omp parallel for schedule(static) num_threads(cfg.threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      c[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
    }
    double dt = now() - t;
    best[0] = std::min(best[0], dt);
    total[0] += dt;

    t = now();
#pragma omp parallel for schedule(static) num_threads(cfg.threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      b[static_cast<std::size_t>(i)] = kScalar * c[static_cast<std::size_t>(i)];
    }
    dt = now() - t;
    best[1] = std::min(best[1], dt);
    total[1] += dt;

    t = now();
#pragma omp parallel for schedule(static) num_threads(cfg.threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      c[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
    }
    dt = now() - t;
    best[2] = std::min(best[2], dt);
    total[2] += dt;

    t = now();
#pragma omp parallel for schedule(static) num_threads(cfg.threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      a[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] +
          kScalar * c[static_cast<std::size_t>(i)];
    }
    dt = now() - t;
    best[3] = std::min(best[3], dt);
    total[3] += dt;
  }

  // Analytic verification (STREAM's checkSTREAMresults).
  double ea = 1.0, eb = 2.0, ec = 0.0;
  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    ec = ea;
    eb = kScalar * ec;
    ec = ea + eb;
    ea = eb + kScalar * ec;
  }
  double err = std::fabs(a[n / 2] - ea) + std::fabs(b[n / 2] - eb) +
               std::fabs(c[n / 2] - ec);
  const bool ok = err < 1e-8 * (std::fabs(ea) + std::fabs(eb) + std::fabs(ec));

  const double byte_count[4] = {bytes2, bytes2, bytes3, bytes3};
  for (int q = 0; q < 4; ++q) {
    auto& r = results[static_cast<std::size_t>(q)];
    r.best_gbs = byte_count[q] / best[static_cast<std::size_t>(q)] / 1e9;
    r.avg_gbs = byte_count[q] * cfg.repetitions /
                total[static_cast<std::size_t>(q)] / 1e9;
    r.verified = ok;
  }
  return results;
}

}  // namespace rvhpc::stream
