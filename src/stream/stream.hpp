#pragma once
// rvhpc::stream — the STREAM sustainable-bandwidth benchmark (McCalpin),
// the measurement behind the paper's Figure 1.  Four kernels over three
// large arrays; bandwidth counts the bytes each kernel logically moves.

#include <string>
#include <vector>

namespace rvhpc::stream {

/// The four STREAM kernels.
enum class StreamKernel { Copy, Scale, Add, Triad };
[[nodiscard]] std::string to_string(StreamKernel k);

/// One kernel's measurement.
struct StreamResult {
  StreamKernel kernel = StreamKernel::Copy;
  double best_gbs = 0.0;     ///< best-of-repetitions bandwidth
  double avg_gbs = 0.0;
  bool verified = false;     ///< array contents match the analytic result
};

/// Configuration: array length and timed repetitions.
struct StreamConfig {
  std::size_t elements = 20'000'000;
  int repetitions = 10;
  int threads = 1;
};

/// Runs all four kernels; returns results in Copy/Scale/Add/Triad order.
[[nodiscard]] std::vector<StreamResult> run(const StreamConfig& cfg);

}  // namespace rvhpc::stream
