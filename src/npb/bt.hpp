#pragma once
// rvhpc::npb — BT: the Block Tridiagonal pseudo-application.
//
// ADI time stepping of the coupled 5-component advection-diffusion system:
// each step factors the implicit operator into x/y/z line solves, each a
// block-tridiagonal system with dense 5x5 blocks solved by block Thomas —
// the defining memory/compute pattern of NPB BT.

#include "npb/app_common.hpp"

namespace rvhpc::npb::bt {

/// Detailed outputs for tests.
struct BtOutputs {
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double max_line_residual = 0.0;  ///< worst sampled line-system residual
};

/// Runs BT at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, BtOutputs* out = nullptr);

}  // namespace rvhpc::npb::bt
