#include "npb/ep.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

namespace rvhpc::npb::ep {
namespace {

constexpr int kBatchLog = 16;  ///< NPB NK: 2^16 pairs per batch
constexpr std::uint64_t kBatch = 1ull << kBatchLog;

}  // namespace

int log2_pairs(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return 20;  // trimmed from NPB's 24 for test speed
    case ProblemClass::W: return 21;
    case ProblemClass::A: return 24;
    case ProblemClass::B: return 26;
    case ProblemClass::C: return 28;
  }
  return 20;
}

BenchResult run(ProblemClass cls, int threads, EpOutputs* out) {
  const int m = log2_pairs(cls);
  const std::uint64_t pairs = 1ull << m;
  const std::uint64_t batches = pairs / kBatch;

  EpOutputs total;
  // Per-batch partials, reduced in batch order afterwards so results are
  // bit-identical for any thread count.
  std::vector<EpOutputs> partial(static_cast<std::size_t>(batches));
  Timer timer;
  TimedRegionSpan region(Kernel::EP, cls, threads);
  timer.start();

#pragma omp parallel num_threads(threads)
  {
    std::vector<double> xs(2 * kBatch);

#pragma omp for schedule(static)
    for (long long b = 0; b < static_cast<long long>(batches); ++b) {
      EpOutputs local;
      // Deterministic per-batch seed: skip 2*kBatch deviates per batch.
      NpbRandom rng;
      rng.skip(2ull * kBatch * static_cast<std::uint64_t>(b));
      for (std::uint64_t i = 0; i < 2 * kBatch; ++i) xs[i] = rng.next();

      for (std::uint64_t i = 0; i < kBatch; ++i) {
        const double x = 2.0 * xs[2 * i] - 1.0;
        const double y = 2.0 * xs[2 * i + 1] - 1.0;
        const double t = x * x + y * y;
        if (t <= 1.0 && t > 0.0) {
          const double f = std::sqrt(-2.0 * std::log(t) / t);
          const double gx = x * f;
          const double gy = y * f;
          const double mx = std::max(std::fabs(gx), std::fabs(gy));
          const int annulus = std::min(static_cast<int>(mx), 9);
          ++local.counts[annulus];
          local.sx += gx;
          local.sy += gy;
          ++local.accepted;
        }
      }
      partial[static_cast<std::size_t>(b)] = local;
    }
  }
  for (const EpOutputs& local : partial) {
    total.sx += local.sx;
    total.sy += local.sy;
    total.accepted += local.accepted;
    for (int i = 0; i < 10; ++i) total.counts[i] += local.counts[i];
  }

  BenchResult result;
  result.kernel = Kernel::EP;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = timer.seconds();
  region.close();
  // NPB counts each generated pair as one operation unit scaled by the
  // Gaussian transform cost; we report pairs/second like the reference.
  result.mops = static_cast<double>(pairs) / result.seconds / 1e6;

  // Verification: counts must sum to the accepted total; the acceptance
  // rate of the polar method is pi/4; Gaussian sums are O(sqrt(N)).
  double count_sum = 0.0;
  for (double c : total.counts) count_sum += c;
  const double accept_rate =
      static_cast<double>(total.accepted) / static_cast<double>(pairs);
  const double bound = 6.0 * std::sqrt(static_cast<double>(total.accepted));
  const bool ok_counts = count_sum == static_cast<double>(total.accepted);
  const bool ok_rate = std::fabs(accept_rate - 0.7853981633974483) < 2e-3;
  const bool ok_moments =
      std::fabs(total.sx) < bound && std::fabs(total.sy) < bound;
  result.verified = ok_counts && ok_rate && ok_moments;
  result.verification = "accept-rate " + std::to_string(accept_rate) +
                        ", |sx| " + std::to_string(std::fabs(total.sx)) +
                        ", |sy| " + std::to_string(std::fabs(total.sy));
  result.checksum = total.sx + total.sy + count_sum;
  if (out != nullptr) *out = total;
  return result;
}

}  // namespace rvhpc::npb::ep
