#pragma once
// rvhpc::npb — shared substrate for the BT / SP / LU pseudo-applications.
//
// The three NPB pseudo-applications solve the same implicitly-discretised
// 3-D PDE system with different solvers: BT factors it into block-
// tridiagonal line solves, SP into (diagonalised) scalar pentadiagonal
// line solves, LU applies an SSOR sweep.  This module provides the common
// pieces: a five-component field on a cubic grid with Dirichlet walls, a
// coupled advection-diffusion operator, 5x5 block arithmetic, and the
// line solvers.
//
// The physics is a manufactured stand-in (coupled advection-diffusion
// rather than compressible Navier-Stokes), chosen so correctness is
// checkable by construction: the implicit solves must satisfy their
// linear systems exactly, energy must decay, and results must be
// thread-count independent.  The *solver structure and memory pattern*
// match the originals, which is what the performance study needs.

#include <array>
#include <vector>

#include "npb/npb_common.hpp"

namespace rvhpc::npb::app {

/// Five coupled solution components per grid point (NPB's u(1..5)).
constexpr int kComponents = 5;
using Vec5 = std::array<double, kComponents>;

/// Grid/time-stepping parameters per class.
struct AppParams {
  int edge;       ///< interior points per dimension
  int steps;      ///< time steps
  double dt;
  double nu;      ///< diffusion coefficient
  std::array<double, 3> advect;  ///< advection velocity per direction
};
[[nodiscard]] AppParams app_params(ProblemClass cls);

/// A dense 5x5 block.
struct Block55 {
  std::array<double, 25> m{};

  [[nodiscard]] static Block55 identity();
  [[nodiscard]] static Block55 scaled(const Block55& k, double s);
  [[nodiscard]] double& at(int r, int c) { return m[static_cast<std::size_t>(r * 5 + c)]; }
  [[nodiscard]] double at(int r, int c) const { return m[static_cast<std::size_t>(r * 5 + c)]; }

  Block55& operator+=(const Block55& o);
  [[nodiscard]] Vec5 mul(const Vec5& v) const;
  [[nodiscard]] Block55 mul(const Block55& o) const;

  /// In-place LU factorisation (partial-pivot-free; blocks are strongly
  /// diagonally dominant by construction).  Returns false if a pivot
  /// underflows.
  bool lu_factor();
  /// Solves L U x = b with a factored block.
  [[nodiscard]] Vec5 lu_solve(const Vec5& b) const;
  /// X such that (LU) X = B.
  [[nodiscard]] Block55 lu_solve(const Block55& b) const;
};

/// The symmetric component-coupling matrix K (unit diagonal, small
/// off-diagonal couplings): what makes BT's blocks genuinely 5x5.
[[nodiscard]] const Block55& coupling_matrix();

/// Five-component field on an edge^3 grid with one ghost layer of zeros
/// (Dirichlet walls).
class Field5 {
 public:
  explicit Field5(int edge);
  [[nodiscard]] int edge() const { return edge_; }

  /// Interior accessors; i/j/k in [0, edge).  Ghost reads return zeros.
  [[nodiscard]] Vec5 get(int i, int j, int k) const;
  void set(int i, int j, int k, const Vec5& v);

  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

  /// Deterministic smooth initial condition (products of sines, phased
  /// per component).
  void init_smooth();

  /// Sum of squares over all components/points.
  [[nodiscard]] double energy(int threads) const;
  /// Mean of component 0 (conservation diagnostics).
  [[nodiscard]] double mean0(int threads) const;
  /// Strided deterministic checksum.
  [[nodiscard]] double checksum() const;

 private:
  int edge_;
  std::vector<double> data_;  ///< (edge^3) * 5, point-major
  [[nodiscard]] std::size_t base(int i, int j, int k) const {
    return ((static_cast<std::size_t>(k) * edge_ + static_cast<std::size_t>(j)) *
                edge_ +
            static_cast<std::size_t>(i)) *
           kComponents;
  }
  [[nodiscard]] bool inside(int i, int j, int k) const {
    return i >= 0 && j >= 0 && k >= 0 && i < edge_ && j < edge_ && k < edge_;
  }
};

/// Solves a block-tridiagonal system in place (Thomas algorithm):
/// sub[i] x[i-1] + diag[i] x[i] + sup[i] x[i+1] = rhs[i].
/// All vectors have length n; sub[0] and sup[n-1] are ignored.
/// Returns false on pivot failure.
bool block_tridiag_solve(std::vector<Block55>& sub, std::vector<Block55>& diag,
                         std::vector<Block55>& sup, std::vector<Vec5>& rhs);

/// Solves a scalar pentadiagonal system in place:
/// e2[i]x[i-2]+e1[i]x[i-1]+d[i]x[i]+f1[i]x[i+1]+f2[i]x[i+2]=rhs[i].
/// Returns false on pivot failure.
bool penta_solve(std::vector<double>& e2, std::vector<double>& e1,
                 std::vector<double>& d, std::vector<double>& f1,
                 std::vector<double>& f2, std::vector<double>& rhs);

}  // namespace rvhpc::npb::app
