#pragma once
// rvhpc::npb — MG: the Multi-Grid benchmark.
//
// V-cycle multigrid approximate solve of a 3-D Poisson problem
// (discrete Laplacian, periodic boundaries) with the NPB stencil
// operators: residual (a-coefficients), smoother (c-coefficients),
// full-weighting restriction and trilinear interpolation.  The suite's
// memory-bandwidth yardstick.

#include <vector>

#include "npb/npb_common.hpp"

namespace rvhpc::npb::mg {

/// Class geometry: cubic grid edge (power of two) and V-cycle count.
struct Params {
  int edge;
  int niter;
};
[[nodiscard]] Params params(ProblemClass cls);

/// A cubic periodic grid of doubles, edge must be a power of two >= 4.
class Grid {
 public:
  explicit Grid(int edge);
  [[nodiscard]] int edge() const { return edge_; }
  [[nodiscard]] double& at(int i, int j, int k) {
    return data_[index(i, j, k)];
  }
  [[nodiscard]] double at(int i, int j, int k) const {
    return data_[index(i, j, k)];
  }
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  void fill(double v);

  /// Periodic wrap of coordinate c.
  [[nodiscard]] int wrap(int c) const {
    const int e = edge_;
    return ((c % e) + e) % e;
  }

 private:
  int edge_;
  std::vector<double> data_;
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    return (static_cast<std::size_t>(wrap(k)) * edge_ +
            static_cast<std::size_t>(wrap(j))) *
               edge_ +
           static_cast<std::size_t>(wrap(i));
  }
};

/// r = v - A u with the NPB 27-point residual stencil (OpenMP).
void residual(const Grid& u, const Grid& v, Grid& r, int threads);

/// u += S r with the NPB smoother stencil (OpenMP).
void smooth(Grid& u, const Grid& r, int threads, ProblemClass cls);

/// Full-weighting restriction of `fine` onto `coarse` (half edge).
void restrict_grid(const Grid& fine, Grid& coarse, int threads);

/// Trilinear interpolation of `coarse` added onto `fine`.
void interpolate_add(const Grid& coarse, Grid& fine, int threads);

/// L2 norm of a grid.
[[nodiscard]] double l2_norm(const Grid& g, int threads);

/// Detailed outputs for tests.
struct MgOutputs {
  double initial_rnorm = 0.0;
  double final_rnorm = 0.0;
};

/// Runs MG at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, MgOutputs* out = nullptr);

}  // namespace rvhpc::npb::mg
