#include "npb/cg.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <map>

namespace rvhpc::npb::cg {
namespace {

constexpr int kCgInnerSteps = 25;

double dot(const std::vector<double>& a, const std::vector<double>& b,
           int threads) {
  double sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(a.size()); ++i) {
    sum += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  return sum;
}

}  // namespace

Params params(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return {1400, 7, 15, 10.0};
    case ProblemClass::W: return {7000, 8, 15, 12.0};
    case ProblemClass::A: return {14000, 11, 15, 20.0};
    case ProblemClass::B: return {30000, 9, 25, 60.0};   // reduced from NPB
    case ProblemClass::C: return {60000, 11, 25, 110.0}; // reduced from NPB
  }
  return {1400, 7, 15, 10.0};
}

CsrMatrix make_matrix(ProblemClass cls) {
  const Params p = params(cls);
  // A = I + sum_i w_i v_i v_i^T with sparse random v_i and geometrically
  // decaying weights: symmetric positive definite by construction, with a
  // condition profile controlled by the decay (NPB's rcond idea).
  std::vector<std::map<std::int32_t, double>> rows(
      static_cast<std::size_t>(p.n));
  NpbRandom rng;
  std::vector<std::int32_t> idx(static_cast<std::size_t>(p.nonzer));
  std::vector<double> v(static_cast<std::size_t>(p.nonzer));
  const double decay = std::pow(0.1, 1.0 / p.n);  // rcond = 0.1 across rows
  double w = 1.0;
  for (int i = 0; i < p.n; ++i, w *= decay) {
    // nonzer distinct random positions; one of them pinned to i so the
    // diagonal stays well fed.
    for (int k = 0; k < p.nonzer; ++k) {
      idx[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(rng.next() * p.n) % p.n;
      v[static_cast<std::size_t>(k)] = 2.0 * rng.next() - 1.0;
    }
    idx[0] = static_cast<std::int32_t>(i);
    for (int a = 0; a < p.nonzer; ++a) {
      for (int b = 0; b < p.nonzer; ++b) {
        rows[static_cast<std::size_t>(idx[static_cast<std::size_t>(a)])]
            [idx[static_cast<std::size_t>(b)]] +=
            w * v[static_cast<std::size_t>(a)] * v[static_cast<std::size_t>(b)];
      }
    }
  }
  for (int i = 0; i < p.n; ++i) {
    rows[static_cast<std::size_t>(i)][static_cast<std::int32_t>(i)] += 1.0;
  }

  CsrMatrix a;
  a.n = p.n;
  a.row_begin.resize(static_cast<std::size_t>(p.n) + 1, 0);
  for (int i = 0; i < p.n; ++i) {
    a.row_begin[static_cast<std::size_t>(i) + 1] =
        a.row_begin[static_cast<std::size_t>(i)] +
        static_cast<std::int64_t>(rows[static_cast<std::size_t>(i)].size());
  }
  a.col.reserve(static_cast<std::size_t>(a.row_begin.back()));
  a.val.reserve(static_cast<std::size_t>(a.row_begin.back()));
  for (int i = 0; i < p.n; ++i) {
    for (const auto& [c, value] : rows[static_cast<std::size_t>(i)]) {
      a.col.push_back(c);
      a.val.push_back(value);
    }
  }
  return a;
}

namespace {

/// Row sum with the inner loop unrolled `U` ways (U partial accumulators,
/// scalar remainder) — the structure of NPB's alternative cong_grad loops.
template <int U>
double row_sum_unrolled(const CsrMatrix& a, const std::vector<double>& x,
                        std::int64_t begin, std::int64_t end) {
  double acc[U] = {};
  std::int64_t k = begin;
  for (; k + U <= end; k += U) {
    for (int u = 0; u < U; ++u) {
      const auto kk = static_cast<std::size_t>(k + u);
      acc[u] += a.val[kk] * x[static_cast<std::size_t>(a.col[kk])];
    }
  }
  double sum = 0.0;
  for (int u = 0; u < U; ++u) sum += acc[u];
  for (; k < end; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    sum += a.val[kk] * x[static_cast<std::size_t>(a.col[kk])];
  }
  return sum;
}

}  // namespace

void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y, int threads, SpmvVariant variant) {
#pragma omp parallel for schedule(static) num_threads(threads)
  for (long long i = 0; i < a.n; ++i) {
    const auto row = static_cast<std::size_t>(i);
    const std::int64_t begin = a.row_begin[row];
    const std::int64_t end = a.row_begin[row + 1];
    double sum = 0.0;
    switch (variant) {
      case SpmvVariant::Default:
        for (std::int64_t k = begin; k < end; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sum += a.val[kk] * x[static_cast<std::size_t>(a.col[kk])];
        }
        break;
      case SpmvVariant::Unroll2:
        sum = row_sum_unrolled<2>(a, x, begin, end);
        break;
      case SpmvVariant::Unroll8:
        sum = row_sum_unrolled<8>(a, x, begin, end);
        break;
    }
    y[row] = sum;
  }
}

BenchResult run(ProblemClass cls, int threads, CgOutputs* out) {
  const Params p = params(cls);
  const CsrMatrix a = make_matrix(cls);
  const auto n = static_cast<std::size_t>(p.n);

  std::vector<double> x(n, 1.0), z(n, 0.0), r(n), q(n), pv(n);
  double zeta = 0.0, rnorm = 0.0;

  Timer timer;
  TimedRegionSpan region(Kernel::CG, cls, threads);
  timer.start();
  for (int outer = 0; outer < p.niter; ++outer) {
    // 25 CG steps on A z = x, starting from z = 0.
    std::fill(z.begin(), z.end(), 0.0);
    r = x;
    pv = r;
    double rho = dot(r, r, threads);
    for (int it = 0; it < kCgInnerSteps; ++it) {
      spmv(a, pv, q, threads);
      const double alpha = rho / dot(pv, q, threads);
#pragma omp parallel for schedule(static) num_threads(threads)
      for (long long i = 0; i < static_cast<long long>(n); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        z[ii] += alpha * pv[ii];
        r[ii] -= alpha * q[ii];
      }
      const double rho_new = dot(r, r, threads);
      const double beta = rho_new / rho;
      rho = rho_new;
#pragma omp parallel for schedule(static) num_threads(threads)
      for (long long i = 0; i < static_cast<long long>(n); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        pv[ii] = r[ii] + beta * pv[ii];
      }
    }
    rnorm = std::sqrt(rho);
    zeta = p.shift + 1.0 / dot(x, z, threads);
    // x = z / ||z||
    const double znorm = std::sqrt(dot(z, z, threads));
#pragma omp parallel for schedule(static) num_threads(threads)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      x[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] / znorm;
    }
  }
  const double seconds = timer.seconds();
  region.close();

  BenchResult result;
  result.kernel = Kernel::CG;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double flops = 2.0 * static_cast<double>(a.nnz()) * kCgInnerSteps *
                           p.niter +
                       10.0 * static_cast<double>(p.n) * kCgInnerSteps * p.niter;
  result.mops = flops / seconds / 1e6;
  // Verification: the inner solves must have converged (SPD matrix, CG
  // contraction) and zeta must be finite and above the shift.
  const double x_scale = std::sqrt(static_cast<double>(p.n));
  result.verified = std::isfinite(zeta) && zeta > p.shift &&
                    rnorm < 1e-8 * x_scale;
  result.verification =
      "zeta " + std::to_string(zeta) + ", rnorm " + std::to_string(rnorm);
  result.checksum = zeta;
  if (out != nullptr) *out = {zeta, rnorm};
  return result;
}

}  // namespace rvhpc::npb::cg
