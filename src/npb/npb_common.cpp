#include "npb/npb_common.hpp"

#include <cmath>
#include <sstream>

namespace rvhpc::npb {
namespace {

// 2^-23, 2^23, 2^-46, 2^46 — the NPB randlc constants.
constexpr double kR23 = 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 *
                        0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 *
                        0.5 * 0.5 * 0.5 * 0.5 * 0.5;
constexpr double kT23 = 1.0 / kR23;
constexpr double kR46 = kR23 * kR23;
constexpr double kT46 = kT23 * kT23;

}  // namespace

double randlc(double& x, double a) {
  // Split a and x into 23-bit halves and form a*x mod 2^46 exactly in
  // double arithmetic — verbatim NPB randlc.
  const double t1a = kR23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1a));
  const double a2 = a - kT23 * a1;

  const double t1x = kR23 * x;
  const double x1 = static_cast<double>(static_cast<long long>(t1x));
  const double x2 = x - kT23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<long long>(kR23 * t1));
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<long long>(kR46 * t3));
  x = t3 - kT46 * t4;
  return kR46 * x;
}

double NpbRandom::next() { return randlc(x_, kA); }

double NpbRandom::power(double a, std::uint64_t n) {
  // a^n mod 2^46 via binary exponentiation on randlc multiplication.
  double result = 1.0;
  double base = a;
  while (n > 0) {
    if (n & 1ull) {
      double tmp = result;
      randlc(tmp, base);
      result = tmp;
    }
    double sq = base;
    randlc(sq, base);
    base = sq;
    n >>= 1;
  }
  return result;
}

void NpbRandom::skip(std::uint64_t n) {
  const double an = power(kA, n);
  randlc(x_, an);
}

TimedRegionSpan::TimedRegionSpan(Kernel k, ProblemClass cls, int threads) {
  const std::string name = model::to_string(k) + ".timed";
  obs::ScopedSpan& span = span_.emplace("npb", name.c_str());
  if (span.active()) {
    span.arg("class", model::to_string(cls));
    span.arg("threads", std::to_string(threads));
  }
}

std::string to_string(const BenchResult& r) {
  std::ostringstream os;
  os << model::to_string(r.kernel) << "." << model::to_string(r.problem_class)
     << " (" << r.threads << " threads): " << r.mops << " Mop/s in "
     << r.seconds << " s — " << (r.verified ? "VERIFIED" : "FAILED") << " ("
     << r.verification << ")";
  return os.str();
}

}  // namespace rvhpc::npb
