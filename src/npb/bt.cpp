#include "npb/bt.hpp"

#include <omp.h>

#include <cmath>

namespace rvhpc::npb::bt {
namespace {

using app::AppParams;
using app::Block55;
using app::Field5;
using app::Vec5;

/// Coefficients of one directional implicit factor (I + dt L_d).
struct LineOperator {
  Block55 sub, diag, sup;
};

LineOperator line_operator(const AppParams& p, int direction) {
  const double h = 1.0 / (p.edge + 1);
  const double cd = p.dt * p.nu / (h * h);                    // diffusion
  const double ca = p.dt * p.advect[static_cast<std::size_t>(direction)] /
                    (2.0 * h);                                // advection
  const Block55& k = app::coupling_matrix();
  LineOperator op;
  op.diag = Block55::identity();
  op.diag += Block55::scaled(k, 2.0 * cd);
  op.sub = Block55::scaled(k, -cd - ca);
  op.sup = Block55::scaled(k, -cd + ca);
  return op;
}

/// Reads one grid line along `direction` at cross-position (s, t).
void read_line(const Field5& u, int direction, int s, int t,
               std::vector<Vec5>& line) {
  const int n = u.edge();
  for (int i = 0; i < n; ++i) {
    switch (direction) {
      case 0: line[static_cast<std::size_t>(i)] = u.get(i, s, t); break;
      case 1: line[static_cast<std::size_t>(i)] = u.get(s, i, t); break;
      default: line[static_cast<std::size_t>(i)] = u.get(s, t, i); break;
    }
  }
}

void write_line(Field5& u, int direction, int s, int t,
                const std::vector<Vec5>& line) {
  const int n = u.edge();
  for (int i = 0; i < n; ++i) {
    switch (direction) {
      case 0: u.set(i, s, t, line[static_cast<std::size_t>(i)]); break;
      case 1: u.set(s, i, t, line[static_cast<std::size_t>(i)]); break;
      default: u.set(s, t, i, line[static_cast<std::size_t>(i)]); break;
    }
  }
}

/// Residual of the line system A x = b for verification sampling.
double line_residual(const LineOperator& op, const std::vector<Vec5>& x,
                     const std::vector<Vec5>& b) {
  const std::size_t n = x.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Vec5 ax = op.diag.mul(x[i]);
    if (i > 0) {
      const Vec5 t = op.sub.mul(x[i - 1]);
      for (int c = 0; c < 5; ++c) ax[static_cast<std::size_t>(c)] += t[static_cast<std::size_t>(c)];
    }
    if (i + 1 < n) {
      const Vec5 t = op.sup.mul(x[i + 1]);
      for (int c = 0; c < 5; ++c) ax[static_cast<std::size_t>(c)] += t[static_cast<std::size_t>(c)];
    }
    for (int c = 0; c < 5; ++c) {
      worst = std::max(worst, std::fabs(ax[static_cast<std::size_t>(c)] -
                                        b[i][static_cast<std::size_t>(c)]));
    }
  }
  return worst;
}

}  // namespace

BenchResult run(ProblemClass cls, int threads, BtOutputs* out) {
  const AppParams p = app::app_params(cls);
  Field5 u(p.edge);
  u.init_smooth();

  BtOutputs outputs;
  outputs.initial_energy = u.energy(threads);

  Timer timer;
  TimedRegionSpan region(Kernel::BT, cls, threads);
  timer.start();
  const int n = p.edge;
  for (int step = 0; step < p.steps; ++step) {
    for (int dir = 0; dir < 3; ++dir) {
      const LineOperator op = line_operator(p, dir);
      double dir_worst = 0.0;
#pragma omp parallel num_threads(threads) reduction(max : dir_worst)
      {
        std::vector<Vec5> line(static_cast<std::size_t>(n));
        std::vector<Vec5> saved(static_cast<std::size_t>(n));
        std::vector<Block55> sub(static_cast<std::size_t>(n));
        std::vector<Block55> diag(static_cast<std::size_t>(n));
        std::vector<Block55> sup(static_cast<std::size_t>(n));
#pragma omp for collapse(2) schedule(static)
        for (int s = 0; s < n; ++s) {
          for (int t = 0; t < n; ++t) {
            read_line(u, dir, s, t, line);
            const bool sampled = (s == 0 && t == 0);
            if (sampled) saved = line;
            for (int i = 0; i < n; ++i) {
              sub[static_cast<std::size_t>(i)] = op.sub;
              diag[static_cast<std::size_t>(i)] = op.diag;
              sup[static_cast<std::size_t>(i)] = op.sup;
            }
            app::block_tridiag_solve(sub, diag, sup, line);
            if (sampled) {
              dir_worst = std::max(dir_worst, line_residual(op, line, saved));
            }
            write_line(u, dir, s, t, line);
          }
        }
      }
      outputs.max_line_residual = std::max(outputs.max_line_residual, dir_worst);
    }
  }
  const double seconds = timer.seconds();
  region.close();
  outputs.final_energy = u.energy(threads);

  BenchResult result;
  result.kernel = Kernel::BT;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double pts = static_cast<double>(n) * n * n;
  // ~600 flops/point/direction for block assembly + Thomas.
  result.mops = pts * p.steps * 3.0 * 600.0 / seconds / 1e6;
  // Verification: the sampled line systems are solved to round-off, and
  // diffusion with homogeneous walls must not grow the solution energy.
  result.verified = outputs.max_line_residual < 1e-10 &&
                    outputs.final_energy <= outputs.initial_energy * 1.0000001 &&
                    std::isfinite(outputs.final_energy);
  result.verification =
      "line residual " + std::to_string(outputs.max_line_residual) +
      ", energy " + std::to_string(outputs.initial_energy) + " -> " +
      std::to_string(outputs.final_energy);
  result.checksum = u.checksum();
  if (out != nullptr) *out = outputs;
  return result;
}

}  // namespace rvhpc::npb::bt
