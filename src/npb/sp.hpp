#pragma once
// rvhpc::npb — SP: the Scalar Pentadiagonal pseudo-application.
//
// Same ADI structure as BT but with the component coupling diagonalised
// (NPB SP "fully diagonalises the equations"), leaving five independent
// scalar solves per line; fourth-order artificial dissipation widens the
// bandwidth from tridiagonal to pentadiagonal — the suite's most
// bandwidth-hungry pseudo-application.

#include "npb/app_common.hpp"

namespace rvhpc::npb::sp {

/// Detailed outputs for tests.
struct SpOutputs {
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double max_line_residual = 0.0;
};

/// Runs SP at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, SpOutputs* out = nullptr);

}  // namespace rvhpc::npb::sp
