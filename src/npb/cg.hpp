#pragma once
// rvhpc::npb — CG: the Conjugate Gradient benchmark.
//
// Estimates the largest eigenvalue of a sparse symmetric positive-definite
// matrix by inverse power iteration, with a 25-step conjugate-gradient
// solve per outer iteration — the suite's irregular-memory member (SpMV
// gathers).  The matrix is built as a sum of sparse outer products plus an
// identity shift, so it is SPD by construction and the verification can be
// residual-based.

#include <cstdint>
#include <vector>

#include "npb/npb_common.hpp"

namespace rvhpc::npb::cg {

/// Class parameters: matrix order, nonzeros per generating vector, outer
/// iterations and eigenvalue shift (NPB values for S/W/A; B/C reduced in
/// order for host runs to stay tractable).
struct Params {
  int n;
  int nonzer;
  int niter;
  double shift;
};
[[nodiscard]] Params params(ProblemClass cls);

/// CSR sparse matrix.
struct CsrMatrix {
  int n = 0;
  std::vector<std::int64_t> row_begin;  ///< n+1 offsets
  std::vector<std::int32_t> col;
  std::vector<double> val;

  [[nodiscard]] std::int64_t nnz() const {
    return row_begin.empty() ? 0 : row_begin.back();
  }
};

/// Builds the benchmark matrix for `cls` (deterministic; NPB LCG driven).
[[nodiscard]] CsrMatrix make_matrix(ProblemClass cls);

/// Inner-loop variants of the matrix-vector product.  NPB ships the SpMV
/// unrolled by 2 and by 8 as alternatives to the plain loop; the paper's
/// §6 measures all three under RVV vectorisation.
enum class SpmvVariant { Default, Unroll2, Unroll8 };

/// y = A x, OpenMP over rows.
void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y, int threads,
          SpmvVariant variant = SpmvVariant::Default);

/// Detailed outputs for tests.
struct CgOutputs {
  double zeta = 0.0;           ///< shift + 1/(x.z) after the final iteration
  double final_rnorm = 0.0;    ///< ||r|| of the last inner solve
};

/// Runs CG at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, CgOutputs* out = nullptr);

}  // namespace rvhpc::npb::cg
