#include "npb/ft.hpp"

#include <omp.h>

#include <cmath>
#include <numbers>

namespace rvhpc::npb::ft {
namespace {

constexpr double kAlpha = 1e-6;  // NPB diffusion coefficient

/// Frequency index folded to the symmetric range [-n/2, n/2).
int folded(int i, int n) { return i >= n / 2 ? i - n : i; }

}  // namespace

Params params(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return {64, 64, 64, 6};
    case ProblemClass::W: return {128, 128, 32, 6};
    case ProblemClass::A: return {256, 256, 128, 6};
    case ProblemClass::B: return {256, 256, 128, 20};  // reduced from NPB
    case ProblemClass::C: return {256, 256, 256, 20};  // reduced from NPB
  }
  return {64, 64, 64, 6};
}

void fft1d(Complex* data, int n, int sign) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / len;
    const Complex wl(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const Complex a = data[i + k];
        const Complex b = data[i + k + len / 2] * w;
        data[i + k] = a + b;
        data[i + k + len / 2] = a - b;
        w *= wl;
      }
    }
  }
}

void fft3d(std::vector<Complex>& grid, const Params& p, int sign, int threads) {
  const int nx = p.nx, ny = p.ny, nz = p.nz;
  const auto idx = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * ny + static_cast<std::size_t>(j)) *
               nx +
           static_cast<std::size_t>(i);
  };
  // X pencils (contiguous).
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      fft1d(&grid[idx(0, j, k)], nx, sign);
    }
  }
  // Y pencils (gather/scatter through a local buffer — the memory
  // transposition that makes FT bandwidth-hungry).
#pragma omp parallel num_threads(threads)
  {
    std::vector<Complex> pencil(static_cast<std::size_t>(ny));
#pragma omp for collapse(2) schedule(static)
    for (int k = 0; k < nz; ++k) {
      for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < ny; ++j) pencil[static_cast<std::size_t>(j)] = grid[idx(i, j, k)];
        fft1d(pencil.data(), ny, sign);
        for (int j = 0; j < ny; ++j) grid[idx(i, j, k)] = pencil[static_cast<std::size_t>(j)];
      }
    }
  }
  // Z pencils.
#pragma omp parallel num_threads(threads)
  {
    std::vector<Complex> pencil(static_cast<std::size_t>(nz));
#pragma omp for collapse(2) schedule(static)
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int k = 0; k < nz; ++k) pencil[static_cast<std::size_t>(k)] = grid[idx(i, j, k)];
        fft1d(pencil.data(), nz, sign);
        for (int k = 0; k < nz; ++k) grid[idx(i, j, k)] = pencil[static_cast<std::size_t>(k)];
      }
    }
  }
}

BenchResult run(ProblemClass cls, int threads, FtOutputs* out) {
  const Params p = params(cls);
  const std::size_t n =
      static_cast<std::size_t>(p.nx) * p.ny * static_cast<std::size_t>(p.nz);

  // Random initial state from the NPB LCG (pairs -> complex values),
  // deterministic per z-plane for thread-count independence.
  std::vector<Complex> u0(n);
#pragma omp parallel for schedule(static) num_threads(threads)
  for (int k = 0; k < p.nz; ++k) {
    const std::size_t plane = static_cast<std::size_t>(p.nx) * p.ny;
    NpbRandom rng;
    rng.skip(2ull * plane * static_cast<std::uint64_t>(k));
    for (std::size_t t = 0; t < plane; ++t) {
      const double re = rng.next();
      const double im = rng.next();
      u0[static_cast<std::size_t>(k) * plane + t] = {re, im};
    }
  }

  Timer timer;
  TimedRegionSpan region(Kernel::FT, cls, threads);
  timer.start();
  std::vector<Complex> uhat = u0;
  fft3d(uhat, p, -1, threads);

  FtOutputs outputs;
  std::vector<Complex> w(n);
  for (int iter = 1; iter <= p.niter; ++iter) {
    // Evolve in frequency space: multiply by exp(-4 alpha pi^2 |k|^2 t).
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
    for (int k = 0; k < p.nz; ++k) {
      for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
          const double kk =
              static_cast<double>(folded(i, p.nx)) * folded(i, p.nx) +
              static_cast<double>(folded(j, p.ny)) * folded(j, p.ny) +
              static_cast<double>(folded(k, p.nz)) * folded(k, p.nz);
          const double factor = std::exp(-4.0 * kAlpha *
                                         std::numbers::pi * std::numbers::pi *
                                         kk * iter);
          const std::size_t id =
              (static_cast<std::size_t>(k) * p.ny + static_cast<std::size_t>(j)) *
                  p.nx +
              static_cast<std::size_t>(i);
          w[id] = uhat[id] * factor;
        }
      }
    }
    fft3d(w, p, +1, threads);
    // NPB checksum: 1024 strided samples of the (unnormalised) inverse.
    Complex sum{0.0, 0.0};
    for (int t = 1; t <= 1024; ++t) {
      const int q = (5 * t) % p.nx;
      const int r = (3 * t) % p.ny;
      const int s = t % p.nz;
      const std::size_t id =
          (static_cast<std::size_t>(s) * p.ny + static_cast<std::size_t>(r)) *
              p.nx +
          static_cast<std::size_t>(q);
      sum += w[id];
    }
    outputs.checksums.push_back(sum / static_cast<double>(n));
  }
  const double seconds = timer.seconds();
  region.close();

  // Verification: round-trip — the inverse of the forward transform must
  // reproduce the initial state to near machine precision.
  std::vector<Complex> round = uhat;
  fft3d(round, p, +1, threads);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; i += 101) {
    max_err = std::max(max_err,
                       std::abs(round[i] / static_cast<double>(n) - u0[i]));
  }
  // Parseval: energy preserved by the forward transform.
  double e_time = 0.0, e_freq = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : e_time, e_freq) \
    num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    e_time += std::norm(u0[static_cast<std::size_t>(i)]);
    e_freq += std::norm(uhat[static_cast<std::size_t>(i)]);
  }
  const bool ok_parseval =
      std::fabs(e_freq / static_cast<double>(n) - e_time) < 1e-6 * e_time;

  BenchResult result;
  result.kernel = Kernel::FT;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double lg = std::log2(static_cast<double>(n));
  result.mops = static_cast<double>(n) * p.niter * lg / seconds / 1e6;
  result.verified = max_err < 1e-10 && ok_parseval;
  result.verification = "roundtrip err " + std::to_string(max_err) +
                        ", parseval " + (ok_parseval ? "ok" : "violated");
  result.checksum = outputs.checksums.empty()
                        ? 0.0
                        : outputs.checksums.back().real() +
                              outputs.checksums.back().imag();
  if (out != nullptr) *out = std::move(outputs);
  return result;
}

}  // namespace rvhpc::npb::ft
