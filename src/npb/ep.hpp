#pragma once
// rvhpc::npb — EP: the Embarrassingly Parallel benchmark.
//
// Generates 2^M pairs of uniform deviates with the NPB LCG, transforms the
// accepted pairs into Gaussian deviates with the Marsaglia polar method
// (exactly the NPB acceptance test), and accumulates per-annulus counts
// and coordinate sums.  Compute-bound by construction — the suite's pure
// arithmetic yardstick.

#include "npb/npb_common.hpp"

namespace rvhpc::npb::ep {

/// Detailed outputs, exposed for tests.
struct EpOutputs {
  double sx = 0.0;              ///< sum of Gaussian X deviates
  double sy = 0.0;              ///< sum of Gaussian Y deviates
  double counts[10] = {};       ///< annulus counts q[0..9]
  std::uint64_t accepted = 0;   ///< pairs passing the polar test
};

/// log2 of the pair count for each class (NPB: S=24, W=25, A=28, B=30, C=32).
[[nodiscard]] int log2_pairs(ProblemClass cls);

/// Runs EP at `cls` with `threads` OpenMP threads.  Deterministic for any
/// thread count (per-batch seed skip-ahead, ordered reduction).
BenchResult run(ProblemClass cls, int threads, EpOutputs* out = nullptr);

}  // namespace rvhpc::npb::ep
