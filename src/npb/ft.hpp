#pragma once
// rvhpc::npb — FT: the 3-D Fast Fourier Transform benchmark.
//
// Solves a 3-D diffusion PDE spectrally: forward 3-D FFT of a random
// initial state, repeated evolution by frequency-dependent exponential
// factors, inverse FFT and checksum per iteration — the suite's
// all-to-all / transpose-heavy member.  The FFT is an iterative
// radix-2 Cooley-Tukey, applied pencil-wise along each dimension with
// OpenMP across pencils.

#include <complex>
#include <vector>

#include "npb/npb_common.hpp"

namespace rvhpc::npb::ft {

using Complex = std::complex<double>;

/// Class geometry (power-of-two box) and iteration count.
struct Params {
  int nx, ny, nz;
  int niter;
};
[[nodiscard]] Params params(ProblemClass cls);

/// In-place radix-2 FFT of length n (power of two); sign=-1 forward,
/// sign=+1 inverse (unscaled; caller divides by n for the inverse).
void fft1d(Complex* data, int n, int sign);

/// 3-D FFT over a contiguous nx*ny*nz box (x fastest), OpenMP pencils.
void fft3d(std::vector<Complex>& grid, const Params& p, int sign, int threads);

/// Detailed outputs for tests: per-iteration checksums.
struct FtOutputs {
  std::vector<Complex> checksums;
};

/// Runs FT at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, FtOutputs* out = nullptr);

}  // namespace rvhpc::npb::ft
