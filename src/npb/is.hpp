#pragma once
// rvhpc::npb — IS: the Integer Sort benchmark.
//
// Ranks (counting-sorts) N integer keys drawn from the NPB random
// sequence, for 10 iterations, exactly the bucketed-histogram structure of
// the reference code: the memory-latency-bound member of the suite.

#include <cstdint>
#include <vector>

#include "npb/npb_common.hpp"

namespace rvhpc::npb::is {

/// Class geometry (log2 of key count / max key).  S/W follow NPB; larger
/// classes are reduced by a constant factor so host runs stay tractable —
/// access *pattern* is what matters for this repo.
struct Geometry {
  int log2_keys;
  int log2_max_key;
};
[[nodiscard]] Geometry geometry(ProblemClass cls);

/// Ranking algorithm variants.  NPB IS at scale first scatters keys into
/// per-range buckets so each thread ranks a contiguous key range with good
/// locality; the flat variant histogram-ranks directly.  Both produce
/// identical ranks.
enum class IsAlgorithm { FlatHistogram, Bucketed };

/// Runs IS at `cls` with `threads` OpenMP threads.
/// If `ranks_out` is non-null it receives the final key ranks.
BenchResult run(ProblemClass cls, int threads,
                std::vector<std::int32_t>* ranks_out = nullptr,
                IsAlgorithm algorithm = IsAlgorithm::FlatHistogram);

/// Generates the NPB key sequence for `cls` (exposed for tests).
[[nodiscard]] std::vector<std::int32_t> generate_keys(ProblemClass cls);

}  // namespace rvhpc::npb::is
