#include "npb/sp.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

namespace rvhpc::npb::sp {
namespace {

using app::AppParams;
using app::Field5;
using app::Vec5;

/// Pentadiagonal coefficients of one (diagonalised) directional factor for
/// component `comp`: tridiagonal advection-diffusion plus (1,-4,6,-4,1)
/// fourth-order dissipation.
struct PentaOp {
  double e2, e1, d, f1, f2;
};

PentaOp line_operator(const AppParams& p, int direction, int comp) {
  const double h = 1.0 / (p.edge + 1);
  // Diagonalisation spreads the coupling eigenvalues across components.
  const double lambda = 1.0 + 0.08 * comp;
  const double cd = p.dt * p.nu * lambda / (h * h);
  const double ca =
      p.dt * p.advect[static_cast<std::size_t>(direction)] * lambda / (2.0 * h);
  const double eps = 0.25 * cd;  // 4th-order dissipation strength
  PentaOp op;
  op.e2 = eps;
  op.e1 = -cd - ca - 4.0 * eps;
  op.d = 1.0 + 2.0 * cd + 6.0 * eps;
  op.f1 = -cd + ca - 4.0 * eps;
  op.f2 = eps;
  return op;
}

double penta_residual(const PentaOp& op, const std::vector<double>& x,
                      const std::vector<double>& b) {
  const std::size_t n = x.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = op.d * x[i];
    if (i >= 1) ax += op.e1 * x[i - 1];
    if (i >= 2) ax += op.e2 * x[i - 2];
    if (i + 1 < n) ax += op.f1 * x[i + 1];
    if (i + 2 < n) ax += op.f2 * x[i + 2];
    worst = std::max(worst, std::fabs(ax - b[i]));
  }
  return worst;
}

}  // namespace

BenchResult run(ProblemClass cls, int threads, SpOutputs* out) {
  const AppParams p = app::app_params(cls);
  Field5 u(p.edge);
  u.init_smooth();

  SpOutputs outputs;
  outputs.initial_energy = u.energy(threads);

  Timer timer;
  TimedRegionSpan region(Kernel::SP, cls, threads);
  timer.start();
  const int n = p.edge;
  for (int step = 0; step < p.steps; ++step) {
    for (int dir = 0; dir < 3; ++dir) {
      double dir_worst = 0.0;
#pragma omp parallel num_threads(threads) reduction(max : dir_worst)
      {
        std::vector<double> x(static_cast<std::size_t>(n));
        std::vector<double> saved(static_cast<std::size_t>(n));
        std::vector<double> e2(static_cast<std::size_t>(n));
        std::vector<double> e1(static_cast<std::size_t>(n));
        std::vector<double> d(static_cast<std::size_t>(n));
        std::vector<double> f1(static_cast<std::size_t>(n));
        std::vector<double> f2(static_cast<std::size_t>(n));
#pragma omp for collapse(2) schedule(static)
        for (int s = 0; s < n; ++s) {
          for (int t = 0; t < n; ++t) {
            for (int comp = 0; comp < app::kComponents; ++comp) {
              const PentaOp op = line_operator(p, dir, comp);
              // Gather the component along the line.
              for (int i = 0; i < n; ++i) {
                Vec5 v;
                switch (dir) {
                  case 0: v = u.get(i, s, t); break;
                  case 1: v = u.get(s, i, t); break;
                  default: v = u.get(s, t, i); break;
                }
                x[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(comp)];
              }
              const bool sampled = (s == 0 && t == 0 && comp == 0);
              if (sampled) saved = x;
              for (int i = 0; i < n; ++i) {
                e2[static_cast<std::size_t>(i)] = op.e2;
                e1[static_cast<std::size_t>(i)] = op.e1;
                d[static_cast<std::size_t>(i)] = op.d;
                f1[static_cast<std::size_t>(i)] = op.f1;
                f2[static_cast<std::size_t>(i)] = op.f2;
              }
              app::penta_solve(e2, e1, d, f1, f2, x);
              if (sampled) {
                dir_worst =
                    std::max(dir_worst, penta_residual(op, x, saved));
              }
              // Scatter back.
              for (int i = 0; i < n; ++i) {
                Vec5 v;
                switch (dir) {
                  case 0: v = u.get(i, s, t); break;
                  case 1: v = u.get(s, i, t); break;
                  default: v = u.get(s, t, i); break;
                }
                v[static_cast<std::size_t>(comp)] = x[static_cast<std::size_t>(i)];
                switch (dir) {
                  case 0: u.set(i, s, t, v); break;
                  case 1: u.set(s, i, t, v); break;
                  default: u.set(s, t, i, v); break;
                }
              }
            }
          }
        }
      }
      outputs.max_line_residual = std::max(outputs.max_line_residual, dir_worst);
    }
  }
  const double seconds = timer.seconds();
  region.close();
  outputs.final_energy = u.energy(threads);

  BenchResult result;
  result.kernel = Kernel::SP;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double pts = static_cast<double>(n) * n * n;
  result.mops = pts * p.steps * 3.0 * 180.0 / seconds / 1e6;
  result.verified = outputs.max_line_residual < 1e-10 &&
                    outputs.final_energy <= outputs.initial_energy * 1.0000001 &&
                    std::isfinite(outputs.final_energy);
  result.verification =
      "line residual " + std::to_string(outputs.max_line_residual) +
      ", energy " + std::to_string(outputs.initial_energy) + " -> " +
      std::to_string(outputs.final_energy);
  result.checksum = u.checksum();
  if (out != nullptr) *out = outputs;
  return result;
}

}  // namespace rvhpc::npb::sp
