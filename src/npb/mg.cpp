#include "npb/mg.hpp"

#include <omp.h>

#include <array>
#include <cmath>
#include <stdexcept>

namespace rvhpc::npb::mg {
namespace {

/// NPB residual stencil coefficients: centre, face, edge, corner.
constexpr std::array<double, 4> kA = {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};

/// NPB smoother coefficients (S/W/A variant and B/C variant).
constexpr std::array<double, 4> kCSmall = {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0,
                                           0.0};
constexpr std::array<double, 4> kCLarge = {-3.0 / 17.0, 1.0 / 33.0,
                                           -1.0 / 61.0, 0.0};

/// Applies the 27-point class stencil with coefficients w (centre, face,
/// edge, corner): out(i,j,k) = sum w_class * in(neighbours).
double apply_stencil(const Grid& g, const std::array<double, 4>& w, int i,
                     int j, int k) {
  double face = 0.0, edge = 0.0, corner = 0.0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int m = std::abs(dx) + std::abs(dy) + std::abs(dz);
        if (m == 0) continue;
        const double v = g.at(i + dx, j + dy, k + dz);
        if (m == 1) face += v;
        else if (m == 2) edge += v;
        else corner += v;
      }
    }
  }
  return w[0] * g.at(i, j, k) + w[1] * face + w[2] * edge + w[3] * corner;
}

}  // namespace

Params params(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return {32, 4};
    case ProblemClass::W: return {64, 4};   // NPB uses 128^3; reduced for host
    case ProblemClass::A: return {128, 4};  // NPB uses 256^3; reduced
    case ProblemClass::B: return {128, 20};
    case ProblemClass::C: return {256, 20};
  }
  return {32, 4};
}

Grid::Grid(int edge) : edge_(edge) {
  if (edge < 4 || (edge & (edge - 1)) != 0) {
    throw std::invalid_argument("Grid: edge must be a power of two >= 4");
  }
  data_.assign(static_cast<std::size_t>(edge) * edge * edge, 0.0);
}

void Grid::fill(double v) { data_.assign(data_.size(), v); }

void residual(const Grid& u, const Grid& v, Grid& r, int threads) {
  const int e = u.edge();
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
  for (int k = 0; k < e; ++k) {
    for (int j = 0; j < e; ++j) {
      for (int i = 0; i < e; ++i) {
        r.at(i, j, k) = v.at(i, j, k) - apply_stencil(u, kA, i, j, k);
      }
    }
  }
}

void smooth(Grid& u, const Grid& r, int threads, ProblemClass cls) {
  const auto& c = (cls == ProblemClass::B || cls == ProblemClass::C) ? kCLarge
                                                                     : kCSmall;
  const int e = u.edge();
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
  for (int k = 0; k < e; ++k) {
    for (int j = 0; j < e; ++j) {
      for (int i = 0; i < e; ++i) {
        u.at(i, j, k) += apply_stencil(r, c, i, j, k);
      }
    }
  }
}

void restrict_grid(const Grid& fine, Grid& coarse, int threads) {
  const int ce = coarse.edge();
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
  for (int k = 0; k < ce; ++k) {
    for (int j = 0; j < ce; ++j) {
      for (int i = 0; i < ce; ++i) {
        const int fi = 2 * i, fj = 2 * j, fk = 2 * k;
        double face = 0.0, edge = 0.0, corner = 0.0;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int m = std::abs(dx) + std::abs(dy) + std::abs(dz);
              if (m == 0) continue;
              const double val = fine.at(fi + dx, fj + dy, fk + dz);
              if (m == 1) face += val;
              else if (m == 2) edge += val;
              else corner += val;
            }
          }
        }
        coarse.at(i, j, k) = 0.5 * fine.at(fi, fj, fk) + 0.25 * face / 2.0 +
                             0.125 * edge / 4.0 + 0.0625 * corner / 8.0;
      }
    }
  }
}

void interpolate_add(const Grid& coarse, Grid& fine, int threads) {
  const int fe = fine.edge();
#pragma omp parallel for collapse(2) schedule(static) num_threads(threads)
  for (int k = 0; k < fe; ++k) {
    for (int j = 0; j < fe; ++j) {
      for (int i = 0; i < fe; ++i) {
        // Trilinear weights from the enclosing coarse cell.
        const int ci = i / 2, cj = j / 2, ck = k / 2;
        const int oi = i % 2, oj = j % 2, ok = k % 2;
        double v = 0.0;
        for (int dz = 0; dz <= ok; ++dz) {
          for (int dy = 0; dy <= oj; ++dy) {
            for (int dx = 0; dx <= oi; ++dx) {
              v += coarse.at(ci + dx, cj + dy, ck + dz);
            }
          }
        }
        const double w = 1.0 / ((oi + 1) * (oj + 1) * (ok + 1));
        fine.at(i, j, k) += w * v;
      }
    }
  }
}

double l2_norm(const Grid& g, int threads) {
  double sum = 0.0;
  const auto& d = g.data();
#pragma omp parallel for schedule(static) reduction(+ : sum) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(d.size()); ++i) {
    sum += d[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(i)];
  }
  return std::sqrt(sum / static_cast<double>(d.size()));
}

namespace {

/// One V-cycle: recursive coarse-grid correction with pre/post smoothing.
void v_cycle(Grid& u, const Grid& v, int threads, ProblemClass cls) {
  const int e = u.edge();
  Grid r(e);
  residual(u, v, r, threads);
  if (e > 4) {
    Grid rc(e / 2), uc(e / 2);
    restrict_grid(r, rc, threads);
    uc.fill(0.0);
    v_cycle(uc, rc, threads, cls);
    interpolate_add(uc, u, threads);
    residual(u, v, r, threads);
  }
  smooth(u, r, threads, cls);
}

}  // namespace

BenchResult run(ProblemClass cls, int threads, MgOutputs* out) {
  const Params p = params(cls);
  Grid u(p.edge), v(p.edge), r(p.edge);

  // NPB zran3-style right-hand side: +1 at ten deterministic pseudo-random
  // positions and -1 at ten others.
  NpbRandom rng;
  for (int s = 0; s < 20; ++s) {
    const int i = static_cast<int>(rng.next() * p.edge) % p.edge;
    const int j = static_cast<int>(rng.next() * p.edge) % p.edge;
    const int k = static_cast<int>(rng.next() * p.edge) % p.edge;
    v.at(i, j, k) = s < 10 ? 1.0 : -1.0;
  }

  residual(u, v, r, threads);
  const double r0 = l2_norm(r, threads);

  Timer timer;
  TimedRegionSpan region(Kernel::MG, cls, threads);
  timer.start();
  for (int it = 0; it < p.niter; ++it) v_cycle(u, v, threads, cls);
  residual(u, v, r, threads);
  const double seconds = timer.seconds();
  region.close();
  const double rn = l2_norm(r, threads);

  BenchResult result;
  result.kernel = Kernel::MG;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double pts = static_cast<double>(p.edge) * p.edge * p.edge;
  result.mops = pts * p.niter * 58.0 / seconds / 1e6;  // ~58 flop/pt/cycle
  // Verification: multigrid contraction — the residual norm must shrink by
  // a healthy factor per V-cycle.
  result.verified = rn < r0 * std::pow(0.6, p.niter) && std::isfinite(rn);
  result.verification = "rnorm " + std::to_string(r0) + " -> " +
                        std::to_string(rn) + " after " +
                        std::to_string(p.niter) + " V-cycles";
  result.checksum = rn;
  if (out != nullptr) *out = {r0, rn};
  return result;
}

}  // namespace rvhpc::npb::mg
