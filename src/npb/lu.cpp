#include "npb/lu.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

namespace rvhpc::npb::lu {
namespace {

using app::AppParams;
using app::Block55;
using app::Field5;
using app::Vec5;

/// The implicit operator A = D + L + U with first-order upwind advection:
/// D couples the point to itself, L the (i-1, j-1, k-1) neighbours,
/// U the (i+1, j+1, k+1) neighbours.
struct Operator {
  Block55 diag_factored;           ///< LU-factored diagonal block
  std::array<Block55, 3> lower;    ///< per-direction lower blocks
  std::array<Block55, 3> upper;    ///< per-direction upper blocks
};

Operator make_operator(const AppParams& p) {
  const double h = 1.0 / (p.edge + 1);
  const Block55& k = app::coupling_matrix();
  Operator op;
  double diag_scale = 0.0;
  for (int d = 0; d < 3; ++d) {
    const double cd = p.dt * p.nu / (h * h);
    const double ca = p.dt * p.advect[static_cast<std::size_t>(d)] / h;
    diag_scale += 2.0 * cd + ca;
    op.lower[static_cast<std::size_t>(d)] = Block55::scaled(k, -cd - ca);
    op.upper[static_cast<std::size_t>(d)] = Block55::scaled(k, -cd);
  }
  op.diag_factored = Block55::identity();
  op.diag_factored += Block55::scaled(k, diag_scale);
  op.diag_factored.lu_factor();
  return op;
}

/// Hyperplane decomposition: points grouped by i+j+k for wavefront sweeps.
std::vector<std::vector<std::array<int, 3>>> hyperplanes(int n) {
  std::vector<std::vector<std::array<int, 3>>> planes(
      static_cast<std::size_t>(3 * n - 2));
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        planes[static_cast<std::size_t>(i + j + k)].push_back({i, j, k});
      }
    }
  }
  return planes;
}

Vec5 gather_neighbours(const Field5& x, const Operator& op, int i, int j,
                       int k, bool lower, bool upper) {
  Vec5 acc{};
  auto add = [&](const Block55& b, int ii, int jj, int kk) {
    const Vec5 t = b.mul(x.get(ii, jj, kk));
    for (int c = 0; c < 5; ++c) acc[static_cast<std::size_t>(c)] += t[static_cast<std::size_t>(c)];
  };
  if (lower) {
    add(op.lower[0], i - 1, j, k);
    add(op.lower[1], i, j - 1, k);
    add(op.lower[2], i, j, k - 1);
  }
  if (upper) {
    add(op.upper[0], i + 1, j, k);
    add(op.upper[1], i, j + 1, k);
    add(op.upper[2], i, j, k + 1);
  }
  return acc;
}

/// Max-norm of b - A x.
double residual_norm(const Field5& x, const Field5& b, const Operator& op,
                     int threads) {
  const int n = x.edge();
  double worst = 0.0;
#pragma omp parallel for collapse(2) schedule(static) reduction(max : worst) \
    num_threads(threads)
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        // A x = (L+U) x + D x, with D x recovered from the factored block
        // as L·(U·x): U is the upper triangle incl. diagonal, L the unit
        // lower triangle.
        const Vec5 neigh = gather_neighbours(x, op, i, j, k, true, true);
        const Vec5 xv = x.get(i, j, k);
        Vec5 dx{};
        for (int r = 0; r < 5; ++r) {
          double s = 0.0;
          for (int c = r; c < 5; ++c) s += op.diag_factored.at(r, c) * xv[static_cast<std::size_t>(c)];
          dx[static_cast<std::size_t>(r)] = s;
        }
        for (int r = 4; r >= 1; --r) {
          double s = dx[static_cast<std::size_t>(r)];
          for (int c = 0; c < r; ++c) s += op.diag_factored.at(r, c) * dx[static_cast<std::size_t>(c)];
          dx[static_cast<std::size_t>(r)] = s;
        }
        const Vec5 bv = b.get(i, j, k);
        for (int c = 0; c < 5; ++c) {
          const double r_c = bv[static_cast<std::size_t>(c)] -
                             (dx[static_cast<std::size_t>(c)] +
                              neigh[static_cast<std::size_t>(c)]);
          worst = std::max(worst, std::fabs(r_c));
        }
      }
    }
  }
  return worst;
}

/// One symmetric Gauss-Seidel (SSOR, omega = 1) sweep pair.
void ssor_sweep(Field5& x, const Field5& b, const Operator& op,
                const std::vector<std::vector<std::array<int, 3>>>& planes,
                int threads) {
  // Forward wavefront.
  for (const auto& plane : planes) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (long long t = 0; t < static_cast<long long>(plane.size()); ++t) {
      const auto [i, j, k] = plane[static_cast<std::size_t>(t)];
      const Vec5 rhs = b.get(i, j, k);
      const Vec5 neigh = gather_neighbours(x, op, i, j, k, true, true);
      Vec5 v;
      for (int c = 0; c < 5; ++c) v[static_cast<std::size_t>(c)] = rhs[static_cast<std::size_t>(c)] - neigh[static_cast<std::size_t>(c)];
      x.set(i, j, k, op.diag_factored.lu_solve(v));
    }
  }
  // Backward wavefront.
  for (auto it = planes.rbegin(); it != planes.rend(); ++it) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (long long t = 0; t < static_cast<long long>(it->size()); ++t) {
      const auto [i, j, k] = (*it)[static_cast<std::size_t>(t)];
      const Vec5 rhs = b.get(i, j, k);
      const Vec5 neigh = gather_neighbours(x, op, i, j, k, true, true);
      Vec5 v;
      for (int c = 0; c < 5; ++c) v[static_cast<std::size_t>(c)] = rhs[static_cast<std::size_t>(c)] - neigh[static_cast<std::size_t>(c)];
      x.set(i, j, k, op.diag_factored.lu_solve(v));
    }
  }
}

}  // namespace

BenchResult run(ProblemClass cls, int threads, LuOutputs* out) {
  const AppParams p = app::app_params(cls);
  const Operator op = make_operator(p);
  const auto planes = hyperplanes(p.edge);

  Field5 u(p.edge);
  u.init_smooth();

  LuOutputs outputs;
  outputs.initial_energy = u.energy(threads);

  constexpr int kSweeps = 3;
  Timer timer;
  TimedRegionSpan region(Kernel::LU, cls, threads);
  timer.start();
  for (int step = 0; step < p.steps; ++step) {
    Field5 b = u;  // right-hand side: previous state
    if (step == 0) outputs.first_residual = residual_norm(u, b, op, threads);
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      ssor_sweep(u, b, op, planes, threads);
    }
    if (step == 0) outputs.last_residual = residual_norm(u, b, op, threads);
  }
  const double seconds = timer.seconds();
  region.close();
  outputs.final_energy = u.energy(threads);

  BenchResult result;
  result.kernel = Kernel::LU;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  const double pts = static_cast<double>(p.edge) * p.edge * p.edge;
  result.mops = pts * p.steps * kSweeps * 2.0 * 400.0 / seconds / 1e6;
  // Verification: SSOR must contract the first step's residual sharply,
  // and the dissipative system must not gain energy.
  result.verified = outputs.last_residual < outputs.first_residual * 0.05 &&
                    outputs.final_energy <= outputs.initial_energy * 1.0000001 &&
                    std::isfinite(outputs.final_energy);
  result.verification =
      "step-0 residual " + std::to_string(outputs.first_residual) + " -> " +
      std::to_string(outputs.last_residual) + ", energy " +
      std::to_string(outputs.initial_energy) + " -> " +
      std::to_string(outputs.final_energy);
  result.checksum = u.checksum();
  if (out != nullptr) *out = outputs;
  return result;
}

}  // namespace rvhpc::npb::lu
