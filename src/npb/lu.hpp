#pragma once
// rvhpc::npb — LU: the Lower-Upper Gauss-Seidel pseudo-application.
//
// Solves the same implicit 5-component system as BT, but with SSOR
// (symmetric successive over-relaxation) sweeps instead of direct line
// factorisation: a forward wavefront over (i-1, j-1, k-1) dependencies and
// a backward wavefront over (i+1, j+1, k+1), parallelised by hyperplane —
// the sync-dense member of the pseudo-applications.

#include "npb/app_common.hpp"

namespace rvhpc::npb::lu {

/// Detailed outputs for tests.
struct LuOutputs {
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double first_residual = 0.0;  ///< ||Au-b|| before the first step's sweeps
  double last_residual = 0.0;   ///< after that step's sweeps
};

/// Runs LU at `cls` with `threads` OpenMP threads.
BenchResult run(ProblemClass cls, int threads, LuOutputs* out = nullptr);

}  // namespace rvhpc::npb::lu
