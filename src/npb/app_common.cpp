#include "npb/app_common.hpp"

#include <omp.h>

#include <cmath>
#include <numbers>

namespace rvhpc::npb::app {

AppParams app_params(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return {12, 20, 0.01, 0.05, {1.0, 0.8, 0.6}};
    case ProblemClass::W: return {24, 20, 0.008, 0.05, {1.0, 0.8, 0.6}};
    case ProblemClass::A: return {36, 30, 0.006, 0.05, {1.0, 0.8, 0.6}};
    case ProblemClass::B: return {64, 40, 0.004, 0.05, {1.0, 0.8, 0.6}};
    case ProblemClass::C: return {102, 50, 0.003, 0.05, {1.0, 0.8, 0.6}};
  }
  return {12, 20, 0.01, 0.05, {1.0, 0.8, 0.6}};
}

Block55 Block55::identity() {
  Block55 b;
  for (int i = 0; i < 5; ++i) b.at(i, i) = 1.0;
  return b;
}

Block55 Block55::scaled(const Block55& k, double s) {
  Block55 b = k;
  for (double& x : b.m) x *= s;
  return b;
}

Block55& Block55::operator+=(const Block55& o) {
  for (std::size_t i = 0; i < m.size(); ++i) m[i] += o.m[i];
  return *this;
}

Vec5 Block55::mul(const Vec5& v) const {
  Vec5 out{};
  for (int r = 0; r < 5; ++r) {
    double s = 0.0;
    for (int c = 0; c < 5; ++c) s += at(r, c) * v[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r)] = s;
  }
  return out;
}

Block55 Block55::mul(const Block55& o) const {
  Block55 out;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      double s = 0.0;
      for (int k = 0; k < 5; ++k) s += at(r, k) * o.at(k, c);
      out.at(r, c) = s;
    }
  }
  return out;
}

bool Block55::lu_factor() {
  // Doolittle LU without pivoting; valid for the diagonally dominant
  // blocks this solver produces.
  for (int k = 0; k < 5; ++k) {
    const double pivot = at(k, k);
    if (std::fabs(pivot) < 1e-300) return false;
    for (int r = k + 1; r < 5; ++r) {
      const double f = at(r, k) / pivot;
      at(r, k) = f;
      for (int c = k + 1; c < 5; ++c) at(r, c) -= f * at(k, c);
    }
  }
  return true;
}

Vec5 Block55::lu_solve(const Vec5& b) const {
  Vec5 y{};
  for (int r = 0; r < 5; ++r) {
    double s = b[static_cast<std::size_t>(r)];
    for (int c = 0; c < r; ++c) s -= at(r, c) * y[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = s;
  }
  Vec5 x{};
  for (int r = 4; r >= 0; --r) {
    double s = y[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < 5; ++c) s -= at(r, c) * x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(r)] = s / at(r, r);
  }
  return x;
}

Block55 Block55::lu_solve(const Block55& b) const {
  Block55 out;
  for (int col = 0; col < 5; ++col) {
    Vec5 rhs{};
    for (int r = 0; r < 5; ++r) rhs[static_cast<std::size_t>(r)] = b.at(r, col);
    const Vec5 x = lu_solve(rhs);
    for (int r = 0; r < 5; ++r) out.at(r, col) = x[static_cast<std::size_t>(r)];
  }
  return out;
}

const Block55& coupling_matrix() {
  static const Block55 k = [] {
    Block55 b = Block55::identity();
    // Symmetric, diagonally dominant coupling: neighbours exchange ~10%.
    for (int r = 0; r < 5; ++r) {
      for (int c = 0; c < 5; ++c) {
        if (r != c) b.at(r, c) = 0.1 / (1.0 + std::abs(r - c));
      }
    }
    return b;
  }();
  return k;
}

Field5::Field5(int edge) : edge_(edge) {
  data_.assign(static_cast<std::size_t>(edge) * edge * edge * kComponents, 0.0);
}

Vec5 Field5::get(int i, int j, int k) const {
  Vec5 v{};
  if (!inside(i, j, k)) return v;  // Dirichlet ghost: zeros
  const std::size_t b = base(i, j, k);
  for (int c = 0; c < kComponents; ++c) v[static_cast<std::size_t>(c)] = data_[b + static_cast<std::size_t>(c)];
  return v;
}

void Field5::set(int i, int j, int k, const Vec5& v) {
  const std::size_t b = base(i, j, k);
  for (int c = 0; c < kComponents; ++c) data_[b + static_cast<std::size_t>(c)] = v[static_cast<std::size_t>(c)];
}

void Field5::init_smooth() {
  const double h = std::numbers::pi / (edge_ + 1);
  for (int k = 0; k < edge_; ++k) {
    for (int j = 0; j < edge_; ++j) {
      for (int i = 0; i < edge_; ++i) {
        Vec5 v{};
        const double s = std::sin((i + 1) * h) * std::sin((j + 1) * h) *
                         std::sin((k + 1) * h);
        for (int c = 0; c < kComponents; ++c) {
          v[static_cast<std::size_t>(c)] = s * (1.0 + 0.1 * c);
        }
        set(i, j, k, v);
      }
    }
  }
}

double Field5::energy(int threads) const {
  double sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(data_.size()); ++i) {
    sum += data_[static_cast<std::size_t>(i)] * data_[static_cast<std::size_t>(i)];
  }
  return sum;
}

double Field5::mean0(int threads) const {
  double sum = 0.0;
  const long long pts = static_cast<long long>(data_.size()) / kComponents;
#pragma omp parallel for schedule(static) reduction(+ : sum) num_threads(threads)
  for (long long p = 0; p < pts; ++p) {
    sum += data_[static_cast<std::size_t>(p) * kComponents];
  }
  return sum / static_cast<double>(pts);
}

double Field5::checksum() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); i += 31) sum += data_[i];
  return sum;
}

bool block_tridiag_solve(std::vector<Block55>& sub, std::vector<Block55>& diag,
                         std::vector<Block55>& sup, std::vector<Vec5>& rhs) {
  const std::size_t n = diag.size();
  // Forward elimination.
  if (!diag[0].lu_factor()) return false;
  for (std::size_t i = 1; i < n; ++i) {
    // m = sub[i] * diag[i-1]^{-1}
    const Block55 dinv_sup = diag[i - 1].lu_solve(sup[i - 1]);
    const Vec5 dinv_rhs = diag[i - 1].lu_solve(rhs[i - 1]);
    // diag[i] -= sub[i] * dinv_sup ; rhs[i] -= sub[i] * dinv_rhs
    const Block55 prod = sub[i].mul(dinv_sup);
    for (std::size_t t = 0; t < diag[i].m.size(); ++t) diag[i].m[t] -= prod.m[t];
    const Vec5 pr = sub[i].mul(dinv_rhs);
    for (int c = 0; c < 5; ++c) rhs[i][static_cast<std::size_t>(c)] -= pr[static_cast<std::size_t>(c)];
    if (!diag[i].lu_factor()) return false;
  }
  // Back substitution.
  rhs[n - 1] = diag[n - 1].lu_solve(rhs[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    const Vec5 tail = sup[i].mul(rhs[i + 1]);
    Vec5 b = rhs[i];
    for (int c = 0; c < 5; ++c) b[static_cast<std::size_t>(c)] -= tail[static_cast<std::size_t>(c)];
    rhs[i] = diag[i].lu_solve(b);
  }
  return true;
}

bool penta_solve(std::vector<double>& e2, std::vector<double>& e1,
                 std::vector<double>& d, std::vector<double>& f1,
                 std::vector<double>& f2, std::vector<double>& rhs) {
  const std::size_t n = d.size();
  // Gaussian elimination on the banded system, two sub-diagonals.
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(d[i]) < 1e-300) return false;
    if (i + 1 < n) {
      const double m1 = e1[i + 1] / d[i];
      d[i + 1] -= m1 * f1[i];
      if (i + 2 < n) f1[i + 1] -= m1 * f2[i];
      rhs[i + 1] -= m1 * rhs[i];
      if (i + 2 < n) {
        const double m2 = e2[i + 2] / d[i];
        e1[i + 2] -= m2 * f1[i];
        d[i + 2] -= m2 * f2[i];
        rhs[i + 2] -= m2 * rhs[i];
      }
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = rhs[i];
    if (i + 1 < n) s -= f1[i] * rhs[i + 1];
    if (i + 2 < n) s -= f2[i] * rhs[i + 2];
    rhs[i] = s / d[i];
  }
  return true;
}

}  // namespace rvhpc::npb::app
