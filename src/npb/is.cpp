#include "npb/is.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

namespace rvhpc::npb::is {

Geometry geometry(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::S: return {16, 11};
    case ProblemClass::W: return {20, 16};
    case ProblemClass::A: return {21, 17};  // reduced from NPB 23/19
    case ProblemClass::B: return {22, 18};  // reduced from NPB 25/21
    case ProblemClass::C: return {23, 19};  // reduced from NPB 27/23
  }
  return {16, 11};
}

std::vector<std::int32_t> generate_keys(ProblemClass cls) {
  const Geometry g = geometry(cls);
  const std::int64_t n = 1ll << g.log2_keys;
  const std::int32_t max_key = 1 << g.log2_max_key;
  std::vector<std::int32_t> keys(static_cast<std::size_t>(n));
  // NPB create_seq: each key is the average of four LCG deviates scaled to
  // the key range, which produces the benchmark's hump-shaped distribution.
  const double k4 = static_cast<double>(max_key) / 4.0;
#pragma omp parallel
  {
    const int nt = omp_get_num_threads();
    const int id = omp_get_thread_num();
    const std::int64_t chunk = (n + nt - 1) / nt;
    const std::int64_t begin = id * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin < end) {
      NpbRandom rng;
      rng.skip(4ull * static_cast<std::uint64_t>(begin));
      for (std::int64_t i = begin; i < end; ++i) {
        double v = rng.next();
        v += rng.next();
        v += rng.next();
        v += rng.next();
        keys[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(k4 * v);
      }
    }
  }
  return keys;
}

namespace {

/// Flat variant: one shared histogram built from per-thread partials.
void rank_flat(const std::vector<std::int32_t>& keys,
               std::vector<std::int32_t>& histogram,
               std::vector<std::int32_t>& ranks, int threads) {
  const std::size_t n = keys.size();
  std::fill(histogram.begin(), histogram.end(), 0);
#pragma omp parallel num_threads(threads)
  {
    // Per-thread histogram then deterministic reduction: bit-identical
    // results for any thread count.
    std::vector<std::int32_t> local(histogram.size(), 0);
#pragma omp for schedule(static) nowait
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      ++local[static_cast<std::size_t>(keys[static_cast<std::size_t>(i)])];
    }
#pragma omp critical
    for (std::size_t k = 0; k < local.size(); ++k) histogram[k] += local[k];
  }
  // Exclusive prefix sum turns counts into ranks.
  std::int32_t running = 0;
  for (std::size_t k = 0; k < histogram.size(); ++k) {
    const std::int32_t c = histogram[k];
    histogram[k] = running;
    running += c;
  }
#pragma omp parallel for schedule(static) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    ranks[static_cast<std::size_t>(i)] =
        histogram[static_cast<std::size_t>(keys[static_cast<std::size_t>(i)])];
  }
}

/// Bucketed variant (NPB's production algorithm): scatter keys into
/// key-range buckets first so each thread then histograms a private,
/// cache-friendly sub-range.
void rank_bucketed(const std::vector<std::int32_t>& keys,
                   std::vector<std::int32_t>& histogram,
                   std::vector<std::int32_t>& ranks, std::int32_t max_key,
                   int threads) {
  const std::size_t n = keys.size();
  const int buckets = std::max(threads, 1);
  const std::int32_t range =
      (max_key + static_cast<std::int32_t>(buckets) - 1) /
      static_cast<std::int32_t>(buckets);

  // Count keys per bucket (deterministic partials as above).
  std::vector<std::int64_t> bucket_count(static_cast<std::size_t>(buckets), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++bucket_count[static_cast<std::size_t>(keys[i] / range)];
  }
  std::vector<std::int64_t> bucket_begin(static_cast<std::size_t>(buckets) + 1, 0);
  for (int b = 0; b < buckets; ++b) {
    bucket_begin[static_cast<std::size_t>(b) + 1] =
        bucket_begin[static_cast<std::size_t>(b)] +
        bucket_count[static_cast<std::size_t>(b)];
  }

  // Scatter key *indices* into bucket order (stable, sequential scatter so
  // ranking remains deterministic).
  std::vector<std::int64_t> cursor(bucket_begin.begin(), bucket_begin.end() - 1);
  std::vector<std::int64_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(keys[i] / range)]++)] =
        static_cast<std::int64_t>(i);
  }

  // Per-bucket histogram + rank, independent across buckets; bucket b's
  // ranks start at bucket_begin[b] because all smaller keys precede it.
  std::fill(histogram.begin(), histogram.end(), 0);
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (int b = 0; b < buckets; ++b) {
    const std::int32_t key_lo = b * range;
    const std::int32_t key_hi = std::min(max_key, key_lo + range);
    for (std::int64_t t = bucket_begin[static_cast<std::size_t>(b)];
         t < bucket_begin[static_cast<std::size_t>(b) + 1]; ++t) {
      ++histogram[static_cast<std::size_t>(
          keys[static_cast<std::size_t>(order[static_cast<std::size_t>(t)])])];
    }
    std::int32_t running =
        static_cast<std::int32_t>(bucket_begin[static_cast<std::size_t>(b)]);
    for (std::int32_t k = key_lo; k < key_hi; ++k) {
      const std::int32_t c = histogram[static_cast<std::size_t>(k)];
      histogram[static_cast<std::size_t>(k)] = running;
      running += c;
    }
    for (std::int64_t t = bucket_begin[static_cast<std::size_t>(b)];
         t < bucket_begin[static_cast<std::size_t>(b) + 1]; ++t) {
      const auto i =
          static_cast<std::size_t>(order[static_cast<std::size_t>(t)]);
      ranks[i] = histogram[static_cast<std::size_t>(keys[i])];
    }
  }
}

}  // namespace

BenchResult run(ProblemClass cls, int threads,
                std::vector<std::int32_t>* ranks_out, IsAlgorithm algorithm) {
  const Geometry g = geometry(cls);
  const std::int32_t max_key = 1 << g.log2_max_key;
  constexpr int kIterations = 10;

  std::vector<std::int32_t> keys = generate_keys(cls);
  const std::size_t n = keys.size();
  std::vector<std::int32_t> ranks(n);
  std::vector<std::int32_t> histogram(static_cast<std::size_t>(max_key));

  Timer timer;
  TimedRegionSpan region(Kernel::IS, cls, threads);
  timer.start();
  for (int iter = 0; iter < kIterations; ++iter) {
    // NPB perturbs two keys per iteration to defeat caching of results.
    keys[static_cast<std::size_t>(iter)] = iter;
    keys[static_cast<std::size_t>(iter) + 16] = max_key - iter - 1;

    if (algorithm == IsAlgorithm::FlatHistogram) {
      rank_flat(keys, histogram, ranks, threads);
    } else {
      rank_bucketed(keys, histogram, ranks, max_key, threads);
    }
  }
  const double seconds = timer.seconds();
  region.close();

  // Full verification: scattering keys by rank yields a sorted permutation.
  std::vector<std::int32_t> sorted(n);
  std::vector<std::int32_t> offset(static_cast<std::size_t>(max_key), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = static_cast<std::size_t>(keys[i]);
    sorted[static_cast<std::size_t>(ranks[i] + offset[key])] = keys[i];
    ++offset[key];
  }
  bool ok = std::is_sorted(sorted.begin(), sorted.end());
  // Permutation check: per-key counts must match the input's.
  std::vector<std::int32_t> in_count(static_cast<std::size_t>(max_key), 0);
  std::vector<std::int32_t> out_count(static_cast<std::size_t>(max_key), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++in_count[static_cast<std::size_t>(keys[i])];
    ++out_count[static_cast<std::size_t>(sorted[i])];
  }
  ok = ok && in_count == out_count;

  BenchResult result;
  result.kernel = Kernel::IS;
  result.problem_class = cls;
  result.threads = threads;
  result.seconds = seconds;
  result.mops = static_cast<double>(n) * kIterations / seconds / 1e6;
  result.verified = ok;
  result.verification = ok ? "sorted permutation of input" : "ranking corrupt";
  double checksum = 0.0;
  for (std::size_t i = 0; i < n; i += 997) checksum += ranks[i];
  result.checksum = checksum;
  if (ranks_out != nullptr) *ranks_out = std::move(ranks);
  return result;
}

}  // namespace rvhpc::npb::is
