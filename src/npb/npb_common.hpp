#pragma once
// rvhpc::npb — shared infrastructure for the from-scratch NPB suite.
//
// This is a clean-room C++20/OpenMP implementation of the eight NAS
// Parallel Benchmarks' algorithmic patterns.  Problem classes follow the
// NPB 3.x size definitions.  Verification is constructive (invariants and
// manufactured solutions) rather than NASA's published checksums — see
// DESIGN.md §2 for the rationale and per-benchmark criteria.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "model/workload.hpp"  // reuse Kernel / ProblemClass enums
#include "obs/trace.hpp"

namespace rvhpc::npb {

using model::Kernel;
using model::ProblemClass;

/// NPB linear congruential generator: x' = a*x mod 2^46, returning
/// x'/2^46 in (0,1).  Exactly the NPB randlc arithmetic (double-based,
/// split into 23-bit halves), so sequences are bit-identical to the
/// reference implementation's.
class NpbRandom {
 public:
  static constexpr double kDefaultSeed = 314159265.0;
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NpbRandom(double seed = kDefaultSeed) : x_(seed) {}

  /// Advances the state once and returns the uniform deviate.
  double next();

  /// Advances the state by `n` steps in O(log n) (NPB's ipow46 trick);
  /// used to give each OpenMP thread an independent, deterministic
  /// sub-sequence.
  void skip(std::uint64_t n);

  /// a^n mod 2^46 as a seed multiplier (NPB ipow46).
  [[nodiscard]] static double power(double a, std::uint64_t n);

  [[nodiscard]] double state() const { return x_; }
  void set_state(double x) { x_ = x; }

 private:
  double x_;
};

/// One NPB step of the generator without an object (NPB's free randlc).
double randlc(double& x, double a);

/// Result of one benchmark run.
struct BenchResult {
  Kernel kernel = Kernel::EP;
  ProblemClass problem_class = ProblemClass::S;
  int threads = 1;
  double seconds = 0.0;
  double mops = 0.0;          ///< NPB-counted operation rate
  bool verified = false;
  std::string verification;   ///< human-readable verification detail
  double checksum = 0.0;      ///< deterministic scalar for cross-run equality
};

/// Wall-clock helper.
class Timer {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
};

/// RAII span bracketing a kernel's timed region so host-run traces line up
/// with modelled predict() spans in one timeline.  Open it next to
/// Timer::start() and close() it where timer.seconds() is read; when no
/// trace session is active every operation is a no-op.  Emits category
/// "npb", name "<kernel>.timed", with class/threads args.
class TimedRegionSpan {
 public:
  TimedRegionSpan(Kernel k, ProblemClass cls, int threads);
  /// Ends the span now rather than at scope exit.
  void close() { span_.reset(); }

 private:
  std::optional<obs::ScopedSpan> span_;
};

/// Formats "IS.S: 12.34 Mop/s (verified)" for example binaries.
[[nodiscard]] std::string to_string(const BenchResult& r);

}  // namespace rvhpc::npb
