// rvhpc::analysis — workload-signature plausibility rules (A101-A108) and
// the cross-class suite rule (A110).
//
// Signatures are the model's only per-benchmark inputs; a bad one produces
// confidently wrong tables on every machine at once.  These rules encode
// what a signature must satisfy regardless of calibration: fractions are
// fractions, footprints nest, per-op traffic has sane units, and a bigger
// NPB class never does less work.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/rules.hpp"
#include "model/signatures.hpp"

namespace rvhpc::analysis::detail {
namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string sig_name(const model::WorkloadSignature& s) {
  return to_string(s.kernel) + "/" + to_string(s.problem_class);
}

void check_fraction(Report& out, const model::WorkloadSignature& s,
                    const char* field, double v) {
  if (v < 0.0 || v > 1.0) {
    emit(out, "A101-fraction-range", sig_name(s), field,
         num(v) + " is not a fraction; must lie in [0, 1]");
  }
}

}  // namespace

void signature_rules(Report& out, const model::WorkloadSignature& s) {
  const std::string who = sig_name(s);

  // A101 — every fraction-typed field is a fraction.
  check_fraction(out, s, "vectorisable_fraction", s.vectorisable_fraction);
  check_fraction(out, s, "gather_fraction", s.gather_fraction);
  check_fraction(out, s, "read_fraction", s.read_fraction);
  check_fraction(out, s, "serial_fraction", s.serial_fraction);
  check_fraction(out, s, "random_llc_hit_fraction", s.random_llc_hit_fraction);
  check_fraction(out, s, "random_overlap", s.random_overlap);

  // A102 — the random-access footprint is part of the working set; it can
  // neither vanish while accesses exist nor exceed the total.
  if (s.random_access_per_op > 0.0) {
    if (s.random_footprint_mib <= 0.0) {
      emit(out, "A102-footprint-inconsistent", who, "random_footprint_mib",
           "signature does " + num(s.random_access_per_op) +
               " latency-bound accesses per op but declares no footprint "
               "for them to land in");
    } else if (s.random_footprint_mib > s.working_set_mib * 1.001) {
      emit(out, "A102-footprint-inconsistent", who, "random_footprint_mib",
           num(s.random_footprint_mib) + " MiB random footprint exceeds the " +
               num(s.working_set_mib) + " MiB total working set");
    }
  }

  // A103 — totals must be positive (work, cycle cost, footprint) or
  // non-negative (per-op traffic, syncs).
  const auto positive = [&](const char* field, double v) {
    if (v <= 0.0) {
      emit(out, "A103-work-nonpositive", who, field, num(v) + " must be > 0");
    }
  };
  const auto non_negative = [&](const char* field, double v) {
    if (v < 0.0) {
      emit(out, "A103-work-nonpositive", who, field, num(v) + " must be >= 0");
    }
  };
  positive("total_mop", s.total_mop);
  positive("cycles_per_op", s.cycles_per_op);
  positive("working_set_mib", s.working_set_mib);
  non_negative("streamed_bytes_per_op", s.streamed_bytes_per_op);
  non_negative("random_access_per_op", s.random_access_per_op);
  non_negative("comm_bytes_per_op", s.comm_bytes_per_op);
  non_negative("global_syncs", s.global_syncs);
  non_negative("imbalance_coeff", s.imbalance_coeff);

  // A104 — the suite models double (64-bit) and int (32-bit) kernels only.
  if (s.element_bits != 32 && s.element_bits != 64) {
    emit(out, "A104-element-bits", who, "element_bits",
         std::to_string(s.element_bits) +
             " bits per element; the NPB kernels operate on 32- or 64-bit "
             "elements");
  }

  // A105 — more than a cache line of streamed DRAM traffic per counted op
  // is almost certainly a bytes-vs-KiB or per-op-vs-per-iteration slip.
  if (s.streamed_bytes_per_op > 64.0) {
    emit(out, "A105-bytes-per-op-implausible", who, "streamed_bytes_per_op",
         num(s.streamed_bytes_per_op) +
             " bytes per op exceeds a full 64 B cache line; STREAM copy "
             "itself only moves 24");
  }

  // A106 — vectorisation fields must cohere.
  if (s.vectorisable_fraction > 0.0 && s.vector_elem_parallelism < 1.0) {
    emit(out, "A106-vector-shape-inconsistent", who, "vector_elem_parallelism",
         num(s.vector_elem_parallelism) +
             " useful elements cannot carry the declared " +
             num(s.vectorisable_fraction) + " vectorisable fraction");
  }
  if (s.gather_fraction > 0.0 && s.vectorisable_fraction <= 0.0) {
    emit(out, "A106-vector-shape-inconsistent", who, "gather_fraction",
         "a gather fraction of " + num(s.gather_fraction) +
             " is meaningless when nothing vectorises");
  }
  if (s.rvv_codegen_derate <= 0.0 || s.rvv_codegen_derate > 1.0) {
    emit(out, "A106-vector-shape-inconsistent", who, "rvv_codegen_derate",
         num(s.rvv_codegen_derate) + " must be in (0, 1]");
  }

  // A107 — latency-bound accesses that never miss the LLC never reach
  // DRAM, so they are not latency-bound; the field pair is self-defeating.
  if (s.random_access_per_op > 0.0 && s.random_llc_hit_fraction >= 1.0) {
    emit(out, "A107-random-never-misses", who, "random_llc_hit_fraction",
         "latency-bound accesses with a 1.0 LLC hit fraction never touch "
         "DRAM; model them as cache traffic instead");
  }

  // A108 — a run cannot synchronise more often than it operates.
  if (s.global_syncs > s.total_mop * 1e6) {
    emit(out, "A108-sync-density", who, "global_syncs",
         num(s.global_syncs) + " barriers exceed the total op count (" +
             num(s.total_mop) + " Mop) — likely a unit error");
  }
}

void suite_rules(Report& out) {
  static const std::vector<model::ProblemClass> classes = {
      model::ProblemClass::S, model::ProblemClass::W, model::ProblemClass::A,
      model::ProblemClass::B, model::ProblemClass::C};
  std::vector<model::Kernel> kernels = model::npb_all();
  kernels.insert(kernels.end(),
                 {model::Kernel::StreamCopy, model::Kernel::StreamTriad,
                  model::Kernel::Hpl, model::Kernel::Hpcg});

  // A110 — NPB classes are strictly ordered problem sizes (S < W < A < B
  // < C); a signature whose work or footprint shrinks as the class grows
  // has its class tables swapped.
  for (model::Kernel k : kernels) {
    for (std::size_t i = 1; i < classes.size(); ++i) {
      const auto prev = model::signature(k, classes[i - 1]);
      const auto cur = model::signature(k, classes[i]);
      const std::string who =
          to_string(k) + "/" + to_string(classes[i - 1]) + "->" +
          to_string(classes[i]);
      if (cur.total_mop < prev.total_mop) {
        emit(out, "A110-class-regression", who, "total_mop",
             "work drops from " + num(prev.total_mop) + " to " +
                 num(cur.total_mop) + " Mop as the class grows");
      }
      if (cur.working_set_mib < prev.working_set_mib) {
        emit(out, "A110-class-regression", who, "working_set_mib",
             "working set drops from " + num(prev.working_set_mib) + " to " +
                 num(cur.working_set_mib) + " MiB as the class grows");
      }
    }
  }
}

}  // namespace rvhpc::analysis::detail
