// rvhpc-lint — static analysis for machine models and workload signatures.
//
// Usage:
//   rvhpc-lint                        # lint registry + signature suite
//   rvhpc-lint file.machine ...       # lint machine description files
//   rvhpc-lint bench/foo.cpp ...      # lint C++ sources (B0xx rules)
//   rvhpc-lint --registry             # registry machines + calibration only
//   rvhpc-lint --signatures           # signature suite only
//   rvhpc-lint --rules                # print the rule catalogue
//   rvhpc-lint --werror ...           # warnings are errors (exit non-zero)
//   rvhpc-lint --suppress=A001,A105   # drop rules by id or prefix
//   rvhpc-lint --csv ...              # emit findings as CSV instead
//
// Exit status: 0 when no errors (after suppression and --werror
// promotion), 1 on findings of error severity, 2 on usage/parse failure.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "arch/serialize.hpp"
#include "cli/cli.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-lint",
    "static analysis for machine models and workload signatures",
    "usage: rvhpc-lint [--werror] [--suppress=A001,...] [--csv]\n"
    "                  [--registry] [--signatures] [--rules]\n"
    "                  [file.machine | file.cpp ...]\n"
    "With no mode or files, lints the registry and the signature suite.\n"
    "C++ files (.cpp/.cc/.cxx/.hpp/.h) get the B0xx bench-source rules;\n"
    "everything else is parsed as a .machine description."};

struct CliOptions {
  analysis::LintOptions lint;
  bool registry = false;
  bool signatures = false;
  bool rules = false;
  bool csv = false;
  std::vector<std::string> files;
};

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      opts.lint.werror = true;
    } else if (arg == "--registry") {
      opts.registry = true;
    } else if (arg == "--signatures") {
      opts.signatures = true;
    } else if (arg == "--rules") {
      opts.rules = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg.rfind("--suppress=", 0) == 0) {
      std::istringstream list(arg.substr(std::string("--suppress=").size()));
      std::string id;
      while (std::getline(list, id, ',')) {
        if (!id.empty()) opts.lint.suppressed.push_back(id);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rvhpc-lint: unknown option '" << arg << "'\n";
      cli::print_help(std::cerr, kTool);
      return false;
    } else {
      opts.files.push_back(arg);
    }
  }
  return true;
}

bool is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".cxx", ".hpp", ".h"}) {
    const std::string suffix(ext);
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

analysis::Report lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  if (is_cpp_source(path)) {
    std::ostringstream source;
    source << in.rdbuf();
    return analysis::lint_bench_source(source.str(), path);
  }
  const arch::ParsedMachine pm = arch::parse_machine(in);
  return analysis::lint_machine_file(pm, path);
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return 2;

  if (opts.rules) {
    std::cout << analysis::render_catalogue().render();
    return 0;
  }

  analysis::Report report;
  try {
    for (const std::string& path : opts.files) {
      report.merge(lint_file(path));
    }
    const bool default_everything =
        opts.files.empty() && !opts.registry && !opts.signatures;
    if (opts.registry || default_everything) {
      report.merge(analysis::lint_registry());
    }
    if (opts.signatures || default_everything) {
      report.merge(analysis::lint_signature_suite());
    }
  } catch (const std::exception& e) {
    std::cerr << "rvhpc-lint: " << e.what() << "\n";
    return 2;
  }

  report = analysis::apply(std::move(report), opts.lint);
  if (!report.empty()) {
    std::cout << (opts.csv ? analysis::render_table(report).to_csv()
                           : analysis::render_table(report).render());
  }
  std::cout << analysis::summarize(report) << "\n";
  return report.has_errors() ? 1 : 0;
}
