// rvhpc-lint — static analysis for machine models, workload signatures
// and the repo's own C++ sources.
//
// Usage:
//   rvhpc-lint                        # lint registry + signature suite
//   rvhpc-lint file.machine ...       # lint machine description files
//   rvhpc-lint bench/foo.cpp ...      # lint C++ sources (B0xx + S-family)
//   rvhpc-lint --sources src          # recursive source lint of a tree
//   rvhpc-lint --baseline FILE ...    # drop findings listed in a baseline
//   rvhpc-lint --registry             # registry machines + calibration only
//   rvhpc-lint --signatures           # signature suite only
//   rvhpc-lint --rules                # print the rule catalogue
//   rvhpc-lint --werror ...           # warnings are errors (exit non-zero)
//   rvhpc-lint --suppress=A001,A105   # drop rules by id or prefix
//   rvhpc-lint --format=json ...      # emit findings as JSON (or csv/text)
//
// Exit status (documented in --help, so CI can branch on it):
//   0  no findings above note severity
//   1  findings of error severity (including --werror promotions)
//   2  findings of warning severity only
//   3  usage error (unknown flag, bad --format, missing operand)
//   4  I/O or parse failure (unreadable file, malformed baseline)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "arch/serialize.hpp"
#include "cli/cli.hpp"

using namespace rvhpc;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWarnings = 2;
constexpr int kExitUsage = 3;
constexpr int kExitIo = 4;

const cli::ToolInfo kTool{
    "rvhpc-lint",
    "static analysis for machine models, signatures and C++ sources",
    "usage: rvhpc-lint [--werror] [--suppress=A001,...]\n"
    "                  [--format=text|csv|json] [--baseline=FILE]\n"
    "                  [--sources=DIR] [--registry] [--signatures] [--rules]\n"
    "                  [file.machine | file.cpp ...]\n"
    "With no mode or files, lints the registry and the signature suite.\n"
    "C++ files (.cpp/.cc/.cxx/.hpp/.h) get the B0xx bench rules plus the\n"
    "S-family source rules (S0xx concurrency, S1xx hot-path hygiene, S2xx\n"
    "syscall robustness); everything else is parsed as a .machine\n"
    "description.  --sources=DIR lints every C++ file under DIR.\n"
    "--baseline=FILE drops findings listed there (one `<rule>\n"
    "<path-suffix> <field-or-*>` entry per line) before severity is\n"
    "applied, gating on new findings only.\n"
    "Exit status: 0 clean, 1 error-severity findings (--werror promotes\n"
    "warnings), 2 warning-severity findings only, 3 usage error, 4 I/O or\n"
    "parse failure."};

struct CliOptions {
  analysis::LintOptions lint;
  bool registry = false;
  bool signatures = false;
  bool rules = false;
  std::string format = "text";
  std::string baseline;
  std::vector<std::string> source_dirs;
  std::vector<std::string> files;
};

/// Returns the value of `--name=V` or `--name V`; advances `i` for the
/// two-argument spelling.  Empty optional when `arg` is a different flag.
bool flag_value(const std::string& name, int argc, char** argv, int& i,
                std::string& out, bool& usage_error) {
  const std::string arg = argv[i];
  const std::string eq = name + "=";
  if (arg.rfind(eq, 0) == 0) {
    out = arg.substr(eq.size());
    return true;
  }
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << "rvhpc-lint: " << name << " needs a value\n";
      usage_error = true;
      return true;
    }
    out = argv[++i];
    return true;
  }
  return false;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool usage_error = false;
    std::string value;
    if (arg == "--werror") {
      opts.lint.werror = true;
    } else if (arg == "--registry") {
      opts.registry = true;
    } else if (arg == "--signatures") {
      opts.signatures = true;
    } else if (arg == "--rules") {
      opts.rules = true;
    } else if (arg == "--csv") {
      opts.format = "csv";  // legacy alias for --format=csv
    } else if (flag_value("--format", argc, argv, i, value, usage_error)) {
      if (usage_error) return false;
      if (value != "text" && value != "csv" && value != "json") {
        std::cerr << "rvhpc-lint: --format must be text, csv or json (got '"
                  << value << "')\n";
        return false;
      }
      opts.format = value;
    } else if (flag_value("--baseline", argc, argv, i, value, usage_error)) {
      if (usage_error) return false;
      opts.baseline = value;
    } else if (flag_value("--sources", argc, argv, i, value, usage_error)) {
      if (usage_error) return false;
      opts.source_dirs.push_back(value);
    } else if (arg.rfind("--suppress=", 0) == 0) {
      std::istringstream list(arg.substr(std::string("--suppress=").size()));
      std::string id;
      while (std::getline(list, id, ',')) {
        if (!id.empty()) opts.lint.suppressed.push_back(id);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rvhpc-lint: unknown option '" << arg << "'\n";
      cli::print_help(std::cerr, kTool);
      return false;
    } else {
      opts.files.push_back(arg);
    }
  }
  return true;
}

bool is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".cxx", ".hpp", ".h"}) {
    const std::string suffix(ext);
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

analysis::Report lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  if (is_cpp_source(path)) {
    std::ostringstream source;
    source << in.rdbuf();
    return analysis::lint_source(source.str(), path);
  }
  const arch::ParsedMachine pm = arch::parse_machine(in);
  return analysis::lint_machine_file(pm, path);
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return kExitUsage;

  if (opts.rules) {
    std::cout << analysis::render_catalogue().render();
    return kExitClean;
  }

  analysis::Report report;
  analysis::Baseline baseline;
  try {
    if (!opts.baseline.empty()) {
      baseline = analysis::load_baseline(opts.baseline);
    }
    for (const std::string& dir : opts.source_dirs) {
      report.merge(analysis::lint_sources(dir));
    }
    for (const std::string& path : opts.files) {
      report.merge(lint_file(path));
    }
    const bool default_everything = opts.files.empty() &&
                                    opts.source_dirs.empty() &&
                                    !opts.registry && !opts.signatures;
    if (opts.registry || default_everything) {
      report.merge(analysis::lint_registry());
    }
    if (opts.signatures || default_everything) {
      report.merge(analysis::lint_signature_suite());
    }
  } catch (const std::exception& e) {
    std::cerr << "rvhpc-lint: " << e.what() << "\n";
    return kExitIo;
  }

  // Baseline first: accepted findings are dropped before --suppress and
  // --werror promotion, so a baselined warning can never fail the gate.
  std::vector<analysis::BaselineEntry> stale;
  report = analysis::apply_baseline(std::move(report), baseline, &stale);
  for (const analysis::BaselineEntry& e : stale) {
    std::cerr << "rvhpc-lint: stale baseline entry (matched nothing): "
              << opts.baseline << ":" << e.line << ": " << e.rule << " "
              << e.path << " " << e.field << "\n";
  }
  report = analysis::apply(std::move(report), opts.lint);

  if (opts.format == "json") {
    std::cout << analysis::render_json(report);
  } else if (!report.empty()) {
    std::cout << (opts.format == "csv"
                      ? analysis::render_table(report).to_csv()
                      : analysis::render_table(report).render());
  }
  if (opts.format != "json") {
    std::cout << analysis::summarize(report) << "\n";
  }
  if (report.has_errors()) return kExitErrors;
  if (report.count(analysis::Severity::Warn) > 0) return kExitWarnings;
  return kExitClean;
}
