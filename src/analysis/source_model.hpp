#pragma once
// rvhpc::analysis — token-stream model of a C++ source file.
//
// The B001 bench-loop rule started as a one-off lexical mode machine; the
// S-family concurrency and hot-path rules need the same understanding of
// comments, string/char/raw-string literals, identifiers and nesting, so
// the lexer lives here once and every source rule consumes Tokens instead
// of raw characters.  This is still a lexer, not a parser: rules built on
// it are heuristic by design and say so in their messages.
//
// Beyond tokens, the model records two kinds of annotation comment.  Both
// must start the comment (after whitespace), so prose that merely mentions
// them — like this paragraph — does not trigger:
//   * disable directives, matching the `.machine` file contract:
//       (slash-slash) rvhpc-lint: disable=S101,B001
//   * hot-path regions, bounding the S1xx allocation-hygiene rules:
//       (slash-slash) rvhpc: hot-path begin <free-form label>
//       ...
//       (slash-slash) rvhpc: hot-path end
//
// analyze_structure() layers a best-effort scope analysis on top: which
// braces open namespaces, classes or function bodies, and the qualified
// name of each function definition.  Constructors with member-initialiser
// lists and lambdas are handled approximately (a lambda body counts as part
// of its enclosing function, which is what the concurrency rules want).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rvhpc::analysis {

/// One lexical token.  Comments and preprocessor lines are consumed by the
/// lexer and never appear here; their directives surface on SourceModel.
struct Token {
  enum class Kind : std::uint8_t {
    Identifier,  ///< identifiers and keywords, `text` is the spelling
    Number,      ///< numeric literal (handles hex, exponents, ' separators)
    String,      ///< "..."/R"(...)", `text` is the uninterpreted contents
    CharLit,     ///< '...' with escapes, `text` is the contents
    Punct,       ///< operator/punctuation, maximal munch ("::", "<<=", ...)
  };

  Kind kind = Kind::Punct;
  std::string text;
  int line = 0;         ///< 1-based line the token starts on
  int brace_depth = 0;  ///< `{`/`}` carry the depth *outside* their pair
  int paren_depth = 0;  ///< likewise for `(`/`)`

  [[nodiscard]] bool is(Kind k, const char* t) const {
    return kind == k && text == t;
  }
  [[nodiscard]] bool ident(const char* t) const {
    return is(Kind::Identifier, t);
  }
  [[nodiscard]] bool punct(const char* t) const { return is(Kind::Punct, t); }
};

/// A `rvhpc: hot-path begin`/`end` annotated line range, inclusive.  An
/// unterminated begin extends to the last line of the file.
struct HotRegion {
  int begin_line = 0;
  int end_line = 0;
};

/// The lexed file: token stream plus the annotations the rules honour.
struct SourceModel {
  std::string path;
  std::vector<Token> tokens;
  std::vector<HotRegion> hot_regions;
  std::vector<std::string> disabled_rules;  ///< from disable directives
  int last_line = 1;

  [[nodiscard]] bool in_hot_region(int line) const;
};

/// Lexes `src`.  Never fails: malformed input degrades to best-effort
/// tokens (an unterminated literal ends at the line break).
[[nodiscard]] SourceModel build_source_model(const std::string& src,
                                             const std::string& path);

/// One recognised function definition: `body_begin`/`body_end` are token
/// indices of the `{`/`}` pair bounding the body.
struct FunctionSpan {
  std::string name;  ///< as written, qualified: "Server::run", "take_line"
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;  ///< line of the opening brace

  [[nodiscard]] bool contains(std::size_t token_index) const {
    return token_index > body_begin && token_index < body_end;
  }
};

/// Scope analysis over a SourceModel's tokens.
struct Structure {
  std::vector<FunctionSpan> functions;  ///< in body_begin order
  /// Per token: true when the token sits at namespace scope (not inside
  /// any class body, function body or other block).
  std::vector<bool> namespace_scope;

  /// The function whose body contains token `i`, or nullptr.  Lambdas and
  /// plain blocks do not open new spans, so this is the named enclosing
  /// function the diagnostics should point at.
  [[nodiscard]] const FunctionSpan* enclosing(std::size_t i) const;
};

[[nodiscard]] Structure analyze_structure(const SourceModel& m);

}  // namespace rvhpc::analysis
