// S-family source rules over the token-stream model (source_model.hpp).
//
// S0xx — concurrency: blocking work on the net::Server event loop (S001),
// cross-thread flags that are not std::atomic (S002), mutex pairs locked
// in opposite orders by different functions (S003), detached or unjoined
// std::thread locals (S004).
//
// S1xx — hot-path hygiene, active only inside annotated
// hot-path begin/end regions: allocations (S101), by-value std::string
// parameters/returns (S102), std::to_string (S103), and map lookups that
// construct a temporary key (S104).
//
// S2xx — syscall robustness: write/send/poll/rename results silently
// discarded (S201).
//
// All of these are lexical heuristics, tuned to the constructs this repo
// actually uses; each message says what the rule inferred so a false
// positive is easy to recognise (and suppress with a disable directive).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"
#include "analysis/source_model.hpp"

namespace rvhpc::analysis::detail {
namespace {

using Tokens = std::vector<Token>;

bool is_call(const Tokens& t, std::size_t i) {
  return i + 1 < t.size() && t[i + 1].punct("(");
}

bool member_access_before(const Tokens& t, std::size_t i) {
  return i > 0 && (t[i - 1].punct(".") || t[i - 1].punct("->"));
}

/// Reads a chained lvalue name ("stats_mu_", "c.mu", "obj->m") starting at
/// token `i`; advances `i` past it.  Used for mutex and thread operands.
std::string read_chain(const Tokens& t, std::size_t& i) {
  std::string name;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == Token::Kind::Identifier || tok.punct("::") ||
        tok.punct(".") || tok.punct("->")) {
      name += tok.text;
      ++i;
    } else {
      break;
    }
  }
  return name;
}

// --- S001: blocking calls on the net::Server event loop --------------------

/// Calls that stall every connection when made from the poll() loop: sleeps,
/// the prediction itself (serve::Service::handle_line runs it inline), and
/// persistent-cache I/O.
bool blocking_call(const std::string& name) {
  static const std::set<std::string> kBlocking = {
      "sleep",        "usleep",     "nanosleep",  "sleep_for",
      "sleep_until",  "system",     "getline",    "predict",
      "predict_paper_setup",        "save_cache", "load_cache",
      "flush",        "handle_line"};
  return kBlocking.count(name) > 0;
}

bool file_stream_type(const std::string& name) {
  return name == "ifstream" || name == "ofstream" || name == "fstream";
}

void event_loop_rules(Report& out, const SourceModel& m, const Structure& st) {
  for (const FunctionSpan& fn : st.functions) {
    if (fn.name.rfind("Server::", 0) != 0) continue;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& tok = m.tokens[i];
      if (tok.kind != Token::Kind::Identifier) continue;
      if (blocking_call(tok.text) && is_call(m.tokens, i)) {
        emit(out, "S001-blocking-call-in-event-loop", fn.name, tok.text,
             tok.text + "() blocks the single-threaded poll() loop — every "
             "connection stalls until it returns; dispatch to the engine "
             "ThreadPool or move it off the event thread");
        out.diagnostics.back().loc = {m.path, tok.line};
      } else if (file_stream_type(tok.text)) {
        emit(out, "S001-blocking-call-in-event-loop", fn.name, tok.text,
             "file stream I/O (" + tok.text + ") on the event-loop thread "
             "blocks every connection; stage it through a worker instead");
        out.diagnostics.back().loc = {m.path, tok.line};
      }
    }
  }
}

// --- S002: cross-thread flags that are not std::atomic ---------------------

bool scalar_type_token(const Token& t) {
  static const std::set<std::string> kScalar = {
      "bool",    "int",      "unsigned", "long",     "short",    "char",
      "signed",  "size_t",   "ssize_t",  "int8_t",   "int16_t",  "int32_t",
      "int64_t", "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "intptr_t",
      "uintptr_t", "ptrdiff_t", "sig_atomic_t", "std", "volatile", "static"};
  return (t.kind == Token::Kind::Identifier && kScalar.count(t.text) > 0) ||
         t.punct("::");
}

bool lock_acquisition_name(const std::string& s) {
  return s == "lock_guard" || s == "scoped_lock" || s == "unique_lock" ||
         s == "shared_lock";
}

/// True when `fn` acquires any lock (guard construction or .lock() call) —
/// the heuristic for "this access is mutex-protected".
bool function_locks(const SourceModel& m, const FunctionSpan& fn) {
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& tok = m.tokens[i];
    if (tok.kind != Token::Kind::Identifier) continue;
    if (lock_acquisition_name(tok.text)) return true;
    if (tok.text == "lock" && member_access_before(m.tokens, i) &&
        is_call(m.tokens, i)) {
      return true;
    }
  }
  return false;
}

bool assignment_op(const Token& t) {
  return t.punct("=") || t.punct("+=") || t.punct("-=") || t.punct("*=") ||
         t.punct("/=") || t.punct("%=") || t.punct("&=") || t.punct("|=") ||
         t.punct("^=") || t.punct("<<=") || t.punct(">>=");
}

/// S002 only makes sense where a second thread of control can exist: the
/// file spawns threads, runs async work, or installs signal handlers.
/// Single-threaded tools with file-scope counters stay quiet.
bool has_concurrency_evidence(const Tokens& t) {
  static const std::set<std::string> kEvidence = {
      "thread", "jthread", "async", "signal", "sigaction", "pthread_create"};
  for (const Token& tok : t) {
    if (tok.kind == Token::Kind::Identifier && kEvidence.count(tok.text) > 0) {
      return true;
    }
  }
  return false;
}

void shared_flag_rules(Report& out, const SourceModel& m,
                       const Structure& st) {
  const Tokens& t = m.tokens;
  if (!has_concurrency_evidence(t)) return;

  // Namespace-scope declarations of plain scalar variables.
  struct Candidate {
    std::string name;
    int line;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!st.namespace_scope[i]) continue;
    const bool stmt_start = i == 0 || t[i - 1].punct(";") ||
                            t[i - 1].punct("{") || t[i - 1].punct("}");
    if (!stmt_start || t[i].kind != Token::Kind::Identifier) continue;

    // Collect the declaration up to `;`, bailing on anything that is not a
    // plain scalar (templates, pointers, const, functions, atomics...).
    std::size_t j = i;
    std::vector<std::size_t> type_tokens;
    while (j < t.size() && scalar_type_token(t[j])) type_tokens.push_back(j++);
    if (type_tokens.empty() || j >= t.size() ||
        t[j].kind != Token::Kind::Identifier) {
      continue;
    }
    const std::size_t name_idx = j++;
    // Accept `= init;`, `{init};` or a bare `;` — reject anything else
    // (function declarations, arrays, comma lists).
    if (j < t.size() && t[j].punct("{")) {
      int depth = 1;
      for (++j; j < t.size() && depth > 0; ++j) {
        if (t[j].punct("{")) ++depth;
        if (t[j].punct("}")) --depth;
      }
    } else if (j < t.size() && t[j].punct("=")) {
      while (j < t.size() && !t[j].punct(";")) ++j;
    }
    if (j >= t.size() || !t[j].punct(";")) continue;
    candidates.push_back({t[name_idx].text, t[name_idx].line});
    i = j;
  }

  for (const Candidate& c : candidates) {
    const FunctionSpan* writer = nullptr;
    const FunctionSpan* reader = nullptr;
    bool unlocked_access = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident(c.name.c_str()) || member_access_before(t, i)) continue;
      const FunctionSpan* fn = st.enclosing(i);
      if (!fn) continue;
      const bool write =
          (i + 1 < t.size() && (assignment_op(t[i + 1]) ||
                                t[i + 1].punct("++") || t[i + 1].punct("--"))) ||
          (i > 0 && (t[i - 1].punct("++") || t[i - 1].punct("--")));
      if (write && !writer) writer = fn;
      if (!write && !reader) reader = fn;
      if (!function_locks(m, *fn)) unlocked_access = true;
    }
    if (writer && reader && writer != reader && unlocked_access) {
      emit(out, "S002-non-atomic-shared-flag", c.name, c.name,
           "'" + c.name + "' is written in " + writer->name + " and read in " +
               reader->name + " without std::atomic or a lock — a data race "
               "if those run on different threads (the PR 5 shutdown-flag "
               "bug); use std::atomic with explicit memory order");
      out.diagnostics.back().loc = {m.path, c.line};
    }
  }
}

// --- S003: inconsistent mutex acquisition order ----------------------------

struct Acquisition {
  std::string mutex;
  int depth;  ///< brace depth the guard was declared at (-1 = whole fn)
  int line;
};

void lock_order_rules(Report& out, const SourceModel& m, const Structure& st) {
  const Tokens& t = m.tokens;
  struct OrderedPair {
    std::string first, second;
    const FunctionSpan* fn;
    int line;
  };
  std::vector<OrderedPair> pairs;

  for (const FunctionSpan& fn : st.functions) {
    std::vector<Acquisition> held;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& tok = t[i];
      if (tok.punct("}")) {
        std::erase_if(held, [&](const Acquisition& a) {
          return a.depth >= 0 && a.depth > tok.brace_depth;
        });
        continue;
      }
      if (tok.kind != Token::Kind::Identifier) continue;

      std::string mutex_name;
      int depth = -2;
      if (lock_acquisition_name(tok.text) && !member_access_before(t, i)) {
        // `lock_guard[<...>] name(mu)` / `{mu}` — guard released when the
        // enclosing block closes.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].punct("<")) {
          while (j < t.size() && !t[j].punct(">")) ++j;
          if (j < t.size()) ++j;
        }
        if (j >= t.size() || t[j].kind != Token::Kind::Identifier) continue;
        ++j;
        if (j >= t.size() || !(t[j].punct("(") || t[j].punct("{"))) continue;
        ++j;
        mutex_name = read_chain(t, j);
        // std::scoped_lock with several mutexes orders them internally —
        // that is the fix, not a finding.
        if (j < t.size() && t[j].punct(",")) continue;
        if (mutex_name.empty()) continue;
        depth = tok.brace_depth;
      } else if (tok.text == "lock" && member_access_before(t, i) &&
                 is_call(t, i)) {
        // `mu.lock()` — held until `.unlock()` or the end of the function.
        std::size_t start = i - 1;
        while (start > 0 &&
               (t[start - 1].kind == Token::Kind::Identifier ||
                t[start - 1].punct("::") || t[start - 1].punct(".") ||
                t[start - 1].punct("->"))) {
          --start;
        }
        std::size_t j = start;
        mutex_name = read_chain(t, j);  // includes the trailing .lock
        const std::size_t dot = mutex_name.rfind(".lock");
        if (dot == std::string::npos) continue;
        mutex_name.erase(dot);
        depth = -1;
      } else if (tok.text == "unlock" && member_access_before(t, i) &&
                 is_call(t, i)) {
        std::size_t start = i - 1;
        while (start > 0 &&
               (t[start - 1].kind == Token::Kind::Identifier ||
                t[start - 1].punct("::") || t[start - 1].punct(".") ||
                t[start - 1].punct("->"))) {
          --start;
        }
        std::size_t j = start;
        std::string name = read_chain(t, j);
        const std::size_t dot = name.rfind(".unlock");
        if (dot != std::string::npos) {
          name.erase(dot);
          std::erase_if(held, [&](const Acquisition& a) {
            return a.mutex == name;
          });
        }
        continue;
      } else {
        continue;
      }

      for (const Acquisition& h : held) {
        if (h.mutex != mutex_name) {
          pairs.push_back({h.mutex, mutex_name, &fn, tok.line});
        }
      }
      held.push_back({mutex_name, depth, tok.line});
    }
  }

  std::set<std::string> reported;
  for (const OrderedPair& p : pairs) {
    for (const OrderedPair& q : pairs) {
      if (p.first != q.second || p.second != q.first) continue;
      std::string key = std::min(p.first, p.second) + "/" +
                        std::max(p.first, p.second);
      if (!reported.insert(std::move(key)).second) continue;
      emit(out, "S003-lock-order-inversion", p.fn->name + "/" + q.fn->name,
           p.first + "," + p.second,
           "'" + p.first + "' then '" + p.second + "' in " + p.fn->name +
               " but the opposite order in " + q.fn->name +
               " — two threads taking one each deadlock; pick one order or "
               "use std::scoped_lock over both");
      out.diagnostics.back().loc = {m.path, q.line};
    }
  }
}

// --- S004: detached / unjoined std::thread locals --------------------------

void thread_rules(Report& out, const SourceModel& m, const Structure& st) {
  const Tokens& t = m.tokens;
  for (const FunctionSpan& fn : st.functions) {
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!t[i].ident("thread") || member_access_before(t, i)) continue;
      // Declaration shape: `std::thread name(...)` / `{...}` / `;` / ` = `.
      if (i + 2 >= t.size() || t[i + 1].kind != Token::Kind::Identifier) {
        continue;
      }
      const std::string& var = t[i + 1].text;
      const Token& after = t[i + 2];
      if (!(after.punct("(") || after.punct("{") || after.punct(";") ||
            after.punct("="))) {
        continue;
      }
      bool joined = false, detached = false, escaped = false;
      int detach_line = 0;
      for (std::size_t j = i + 2; j < fn.body_end; ++j) {
        if (!t[j].ident(var.c_str())) continue;
        if (j + 2 < t.size() && (t[j + 1].punct(".") || t[j + 1].punct("->"))) {
          if (t[j + 2].ident("join")) joined = true;
          if (t[j + 2].ident("detach")) {
            detached = true;
            detach_line = t[j + 2].line;
          }
          continue;
        }
        // Passed along (moved, stored, returned): ownership escapes, the
        // joining is someone else's contract.
        const bool arg_like =
            j > 0 && (t[j - 1].punct("(") || t[j - 1].punct(",")) &&
            j + 1 < t.size() && (t[j + 1].punct(")") || t[j + 1].punct(","));
        const bool returned = j > 0 && t[j - 1].ident("return");
        if (arg_like || returned) escaped = true;
      }
      if (detached) {
        emit(out, "S004-unjoined-thread", fn.name, var,
             "'" + var + "' is detached — it can outlive every object it "
             "captures and no shutdown path can wait for it; keep the "
             "handle and join() on drain");
        out.diagnostics.back().loc = {m.path, detach_line};
      } else if (!joined && !escaped) {
        emit(out, "S004-unjoined-thread", fn.name, var,
             "'" + var + "' is never joined in " + fn.name +
                 " — std::terminate fires if it is still joinable at "
                 "destruction; join() it on every path");
        out.diagnostics.back().loc = {m.path, t[i + 1].line};
      }
    }
  }
}

// --- S1xx: hot-path hygiene ------------------------------------------------

const char* allocation_name(const std::string& s) {
  if (s == "new") return "new";
  if (s == "make_unique" || s == "make_shared" || s == "malloc" ||
      s == "calloc" || s == "realloc" || s == "strdup") {
    return s.c_str();
  }
  return nullptr;
}

bool lookup_member(const std::string& s) {
  return s == "find" || s == "count" || s == "at" || s == "contains";
}

/// True for `std :: string` ending at index `i` (of the `string` token).
bool std_string_at(const Tokens& t, std::size_t i) {
  return t[i].ident("string") && i >= 2 && t[i - 1].punct("::") &&
         t[i - 2].ident("std");
}

void hot_path_rules(Report& out, const SourceModel& m, const Structure& st) {
  if (m.hot_regions.empty()) return;
  const Tokens& t = m.tokens;
  const auto subject = [&](std::size_t i) {
    const FunctionSpan* fn = st.enclosing(i);
    return fn ? fn->name : m.path;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (!m.in_hot_region(tok.line)) continue;
    if (tok.kind != Token::Kind::Identifier) continue;

    if (const char* alloc = allocation_name(tok.text)) {
      // `make_unique<Entry>(...)` carries a template argument list between
      // the name and the call parens; skip it before the `(` check.
      std::size_t call_at = i;
      if (i + 1 < t.size() && t[i + 1].punct("<")) {
        int angle = 0;
        for (std::size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
          if (t[j].punct("<")) ++angle;
          if (t[j].punct(">") && --angle == 0) {
            call_at = j;
            break;
          }
        }
      }
      const bool call_like = tok.text == "new" || is_call(t, call_at);
      if (call_like && !member_access_before(t, i)) {
        emit(out, "S101-hot-path-allocation", subject(i), tok.text,
             std::string(alloc) + " allocates inside a hot-path region — "
             "the warm serve/engine path targets zero allocations; hoist, "
             "pool or arena-allocate it");
        out.diagnostics.back().loc = {m.path, tok.line};
      }
      continue;
    }

    if (tok.text == "to_string" && is_call(t, i)) {
      emit(out, "S103-hot-path-to-string", subject(i), tok.text,
           "to_string() materialises a std::string on the hot path — format "
           "into a reused buffer or defer to the response-building stage");
      out.diagnostics.back().loc = {m.path, tok.line};
      continue;
    }

    if (std_string_at(t, i)) {
      // By-value parameter: `std::string name [,)=]` inside a parameter
      // list; by-value return: `std::string name(...) {`.
      if (i + 2 < t.size() && t[i + 1].kind == Token::Kind::Identifier) {
        const Token& after = t[i + 2];
        if (tok.paren_depth > 0 &&
            (after.punct(",") || after.punct(")") || after.punct("="))) {
          emit(out, "S102-hot-path-string-copy", subject(i), t[i + 1].text,
               "parameter '" + t[i + 1].text + "' takes std::string by value "
               "— every call copies the buffer; take std::string_view or a "
               "const reference");
          out.diagnostics.back().loc = {m.path, tok.line};
        } else if (tok.paren_depth == 0 && after.punct("(")) {
          std::size_t j = i + 2;
          int depth = 0;
          while (j < t.size()) {
            if (t[j].punct("(")) ++depth;
            if (t[j].punct(")") && --depth == 0) break;
            ++j;
          }
          while (++j < t.size() &&
                 (t[j].ident("const") || t[j].ident("noexcept"))) {
          }
          if (j < t.size() && t[j].punct("{")) {
            emit(out, "S102-hot-path-string-copy", subject(i), t[i + 1].text,
                 "'" + t[i + 1].text + "' returns std::string by value on "
                 "the hot path — return std::string_view into interned data "
                 "or write into a caller-provided buffer");
            out.diagnostics.back().loc = {m.path, tok.line};
          }
        }
      }
      continue;
    }

    if (lookup_member(tok.text) && member_access_before(t, i) &&
        is_call(t, i) && i + 2 < t.size()) {
      const Token& arg = t[i + 2];
      const bool literal_key = arg.kind == Token::Kind::String;
      const bool constructed_key =
          arg.ident("std") && i + 5 < t.size() && t[i + 3].punct("::") &&
          t[i + 4].ident("string") && t[i + 5].punct("(");
      if (literal_key || constructed_key) {
        emit(out, "S104-hot-path-temp-key", subject(i), tok.text,
             "map ." + tok.text + "() builds a temporary std::string key on "
             "the hot path — intern the key or use a heterogeneous "
             "(string_view) comparator");
        out.diagnostics.back().loc = {m.path, tok.line};
      }
    }
  }
}

// --- S201: discarded syscall results ---------------------------------------

bool checked_syscall(const std::string& s) {
  return s == "write" || s == "send" || s == "poll" || s == "rename";
}

void syscall_rules(Report& out, const SourceModel& m, const Structure& st) {
  const Tokens& t = m.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::Identifier || !checked_syscall(t[i].text)) {
      continue;
    }
    if (!is_call(t, i) || member_access_before(t, i)) continue;
    // Walk past `::` / `std::` qualification to the token before the call
    // expression; the result is discarded when that token starts a
    // statement.  `(void)` casts leave a `)` there and are respected.
    std::size_t j = i;
    if (j > 0 && t[j - 1].punct("::")) {
      --j;
      if (j > 0 && t[j - 1].ident("std")) --j;
    }
    const bool stmt_start = j == 0 || t[j - 1].punct(";") ||
                            t[j - 1].punct("{") || t[j - 1].punct("}") ||
                            t[j - 1].ident("else");
    if (!stmt_start) continue;
    const FunctionSpan* fn = st.enclosing(i);
    emit(out, "S201-ignored-syscall-result", fn ? fn->name : m.path,
         t[i].text,
         t[i].text + "() can fail or short-" +
             (t[i].text == "write" || t[i].text == "send" ? "write"
                                                          : "circuit") +
             " and the result is discarded — check it, retry, or cast to "
             "(void) with a comment saying why failure is acceptable");
    out.diagnostics.back().loc = {m.path, t[i].line};
  }
}

}  // namespace

void source_rules(Report& out, const SourceModel& m) {
  const Structure st = analyze_structure(m);
  event_loop_rules(out, m, st);
  shared_flag_rules(out, m, st);
  lock_order_rules(out, m, st);
  thread_rules(out, m, st);
  hot_path_rules(out, m, st);
  syscall_rules(out, m, st);
}

}  // namespace rvhpc::analysis::detail
