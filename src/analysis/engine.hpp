#pragma once
// rvhpc::analysis — rule-based static analysis of machine models and
// workload signatures.
//
// arch::validate() enforces *structural* invariants (positive sizes,
// ordered cache levels).  This engine checks what validate() cannot: that
// the numbers are physically consistent with each other — a DDR5 channel
// bandwidth that matches the part's data rate, cache sharing that matches
// the cluster geometry, an ISA that can actually carry the declared vector
// unit, workload signatures whose footprints and fractions cohere, and
// registry calibration that still reproduces the paper's anchor claims.
//
// Findings come back as a Report of Diagnostics with stable rule ids.
// Severity semantics and suppression:
//   * each rule has a default severity (rule_catalogue());
//   * LintOptions::suppressed drops rules by id or "A001"-style prefix;
//   * LintOptions::werror promotes every warning to an error;
//   * `.machine` files can self-suppress with `# rvhpc-lint: disable=A001`.
// The `rvhpc-lint` CLI drives these entry points over the registry, the
// signature suite and user `.machine` files.

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "arch/machine.hpp"
#include "arch/serialize.hpp"
#include "model/workload.hpp"

namespace rvhpc::analysis {

/// Catalogue entry for one rule.
struct RuleInfo {
  std::string id;        ///< "A001-bw-channel-mismatch"
  Severity severity;     ///< default severity before werror promotion
  std::string summary;   ///< one-line description for `rvhpc-lint --rules`
};

/// Every rule the engine knows, in id order.  A0xx lint machines, A1xx
/// lint workload signatures (A110 the cross-class suite), A2xx check the
/// registry's calibration against the paper's anchors, B0xx lint bench
/// and example C++ sources, S0xx/S1xx/S2xx lint the main sources for
/// concurrency hazards, hot-path hygiene and syscall robustness.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

/// True when diagnostic id `id` is selected by `pattern` — either the full
/// id or its numeric prefix ("A001").
[[nodiscard]] bool rule_matches(const std::string& id, const std::string& pattern);

/// How a lint run should treat its findings.
struct LintOptions {
  std::vector<std::string> suppressed;  ///< rule ids or prefixes to drop
  bool werror = false;                  ///< promote warnings to errors
};

/// An ordered collection of findings.
struct Report {
  std::vector<Diagnostic> diagnostics;

  void add(Diagnostic d) { diagnostics.push_back(std::move(d)); }
  void merge(Report other);

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::Error) > 0; }
  [[nodiscard]] bool empty() const { return diagnostics.empty(); }
  /// Findings with rule id `id_or_prefix` (full id or "A001" prefix).
  [[nodiscard]] std::vector<Diagnostic> by_rule(const std::string& id_or_prefix) const;
  /// One formatted finding per line (Diagnostic::format()).
  [[nodiscard]] std::string format() const;
};

/// Applies suppression and werror promotion to `r`.
[[nodiscard]] Report apply(Report r, const LintOptions& opts);

/// Cross-field physical-plausibility lint of one machine (rules A0xx).
[[nodiscard]] Report lint_machine(const arch::MachineModel& m);

/// As lint_machine, but for a parsed `.machine` file: diagnostics carry
/// the source line of the offending key, and the file's own
/// `# rvhpc-lint: disable=` directives are honoured.
[[nodiscard]] Report lint_machine_file(const arch::ParsedMachine& pm,
                                       const std::string& path);

/// Plausibility lint of one workload signature (rules A101-A108).
[[nodiscard]] Report lint_signature(const model::WorkloadSignature& sig);

/// Lints every (kernel, class) signature the suite defines, plus the
/// cross-class monotonicity rule A110.
[[nodiscard]] Report lint_signature_suite();

/// Lints every registry machine, then runs the calibration-drift rules
/// (A2xx) that hold the registry to the paper's published anchors.
[[nodiscard]] Report lint_registry();

/// Lexical lint of a bench/example C++ source (rules B0xx): flags direct
/// predict() calls inside loop bodies that bypass the rvhpc::engine batch
/// layer.  `path` labels the diagnostics; the file's own
/// `// rvhpc-lint: disable=B001` directives are honoured.
[[nodiscard]] Report lint_bench_source(const std::string& source,
                                       const std::string& path);

/// Full source lint of one C++ file: the B0xx bench rules plus the S-family
/// (S0xx concurrency, S1xx hot-path hygiene inside annotated regions, S2xx
/// syscall robustness).  In-file disable directives are honoured; see
/// source_model.hpp for the annotation syntax.
[[nodiscard]] Report lint_source(const std::string& source,
                                 const std::string& path);

/// The C++ sources (.cpp/.cc/.cxx/.hpp/.h) under `dir`, recursively, in
/// sorted path order.  Throws std::runtime_error when `dir` is not a
/// readable directory.
[[nodiscard]] std::vector<std::string> find_sources(const std::string& dir);

/// lint_source() over every file find_sources(dir) returns, merged.
/// Throws std::runtime_error when the directory or a file is unreadable.
[[nodiscard]] Report lint_sources(const std::string& dir);

}  // namespace rvhpc::analysis
