// rvhpc::analysis — calibration-drift rules (A201-A203).
//
// The registry's sustained-throughput summaries are calibrated against the
// paper; someone re-tuning a machine for one table can silently break the
// headline claims every other table rests on.  These rules re-derive the
// paper's anchor statements (model/paper_reference) from the current
// registry and warn when they no longer hold.  Tolerances are wide — the
// model is analytic, not a fit — so a firing rule means real drift, not
// noise.

#include <cmath>
#include <cstdio>
#include <string>

#include "analysis/rules.hpp"
#include "arch/registry.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"

namespace rvhpc::analysis::detail {
namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

void calibration_rules(Report& out) {
  using arch::MachineId;
  using model::Kernel;
  using model::ProblemClass;

  const arch::MachineModel& sg2044 = arch::machine(MachineId::Sg2044);
  const arch::MachineModel& sg2042 = arch::machine(MachineId::Sg2042);

  // A201 — Fig. 1's headline: the SG2044 sustains >3x the SG2042's copy
  // bandwidth at full chip.  The chip-wide streaming roofs must keep that
  // ratio or every bandwidth-bound table shifts.
  {
    const double ratio =
        sg2044.memory.chip_stream_bw_gbs() / sg2042.memory.chip_stream_bw_gbs();
    const double want = model::paper::figure1().sg2044_over_sg2042_at_64;
    if (ratio < want) {
      emit(out, "A201-fig1-ratio-drift", "sg2044 vs sg2042",
           "memory.stream_efficiency",
           "chip streaming bandwidth ratio is " + num(ratio) +
               "x; the paper's Fig. 1 claims >" + num(want) + "x at 64 cores");
    }
  }

  // A202 — Table 3 (single-core class C) is the calibration target the
  // signatures were fitted against; more than 40% relative drift on any
  // cell means a machine or signature edit detached the model from it.
  constexpr double kTable3Tolerance = 0.40;
  for (const auto& row : model::paper::table3_single_core()) {
    const auto check = [&](MachineId id, double paper_mops, const char* name) {
      const auto p = model::at_cores(id, row.kernel, ProblemClass::C, 1);
      const double ours = p.ran ? p.mops : 0.0;
      const double rel = std::fabs(ours - paper_mops) / paper_mops;
      if (rel > kTable3Tolerance) {
        emit(out, "A202-table3-drift", std::string(name) + " " +
                 to_string(row.kernel) + "/C 1-core", "",
             "predicts " + num(ours) + " Mop/s vs the paper's " +
                 num(paper_mops) + " (" + num(rel * 100.0) +
                 "% off, tolerance " + num(kTable3Tolerance * 100.0) + "%)");
      }
    };
    check(MachineId::Sg2044, row.sg2044_mops, "sg2044");
    check(MachineId::Sg2042, row.sg2042_mops, "sg2042");
  }

  // A203 — Fig. 1 prose: up to ~8 cores the two chips draw comparable
  // STREAM bandwidth (the SG2044's extra controllers only matter once
  // enough cores demand them).  Parity within ±50% must survive.
  {
    const int cores = static_cast<int>(model::paper::figure1().similar_up_to_cores);
    const auto s44 = model::at_cores(MachineId::Sg2044, Kernel::StreamCopy,
                                     ProblemClass::C, cores);
    const auto s42 = model::at_cores(MachineId::Sg2042, Kernel::StreamCopy,
                                     ProblemClass::C, cores);
    const double ratio = s44.achieved_bw_gbs / s42.achieved_bw_gbs;
    if (ratio < 0.5 || ratio > 1.5) {
      emit(out, "A203-stream-parity-drift", "sg2044 vs sg2042", "",
           "STREAM copy bandwidth ratio at " + std::to_string(cores) +
               " cores is " + num(ratio) +
               "x; the paper reports the chips comparable there");
    }
  }
}

}  // namespace rvhpc::analysis::detail
