// rvhpc::analysis — topology plausibility rules (A301-A304).
//
// arch::validate() already enforces structural soundness of a topology
// (unique ids, declared link endpoints, positive resources); these rules
// ask the cross-field questions a structurally sound overlay can still
// get wrong, the same split the A0xx machine rules keep with validate().
// Field names match the serializer's key_lines ("topology.domain[i]",
// "topology.link[i]"), so lint_machine_file reports them with the
// offending machine-file line.

#include <cmath>
#include <cstdio>
#include <string>

#include "analysis/rules.hpp"
#include "arch/machine.hpp"

namespace rvhpc::analysis::detail {
namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

void topology_rules(Report& out, const arch::MachineModel& m) {
  const topo::Topology& t = m.topology;
  if (t.flat()) return;
  const std::string& who = m.name;

  // A301 — the domains must partition the chip's cores exactly: a sum
  // below cores leaves phantom cores with no DRAM behind them, a sum
  // above invents silicon.  (The topology analogue of A009.)
  if (t.total_cores() != m.cores) {
    emit(out, "A301-topo-core-sum", who, "topology.domain[0]",
         "domain core counts sum to " + std::to_string(t.total_cores()) +
             " but the machine has " + std::to_string(m.cores) + " cores");
  }

  // A302 — an inter-socket link claiming more bandwidth than the DRAM
  // behind either endpoint would make remote access free; every real
  // interconnect (and both source papers' measurements) sits well below
  // local DRAM.
  for (std::size_t i = 0; i < t.links.size(); ++i) {
    const topo::Link& l = t.links[i];
    const topo::Domain* a = t.find(l.from);
    const topo::Domain* b = t.find(l.to);
    if (!a || !b) continue;  // dangling endpoints are validate()'s problem
    const double local = std::min(a->dram_bw_gbs, b->dram_bw_gbs);
    if (local > 0.0 && l.bandwidth_gbs >= local) {
      emit(out, "A302-topo-link-outruns-dram", who,
           "topology.link[" + std::to_string(i) + "]",
           "link " + l.from + "-" + l.to + " claims " + num(l.bandwidth_gbs) +
               " GB/s, at or above the " + num(local) +
               " GB/s local DRAM bandwidth behind it");
    }
  }

  // A303 — the domains' DRAM slices should account for the machine's
  // DRAM; a mismatch usually means one side was edited without the
  // other.  Note-level: partial overlays are legal.
  double slice_sum = 0.0;
  for (const topo::Domain& d : t.domains) slice_sum += d.dram_gib;
  if (std::abs(slice_sum - m.memory.dram_gib) >
      1e-6 * std::max(1.0, m.memory.dram_gib)) {
    emit(out, "A303-topo-dram-slice-mismatch", who, "memory.dram_gib",
         "domain DRAM slices sum to " + num(slice_sum) +
             " GiB but memory.dram_gib is " + num(m.memory.dram_gib));
  }

  // A304 — the flat NUMA blend (memory.numa_regions) and the explicit
  // overlay describe the same hardware; disagreeing counts mean one of
  // them is stale.
  if (m.memory.numa_regions != static_cast<int>(t.domains.size())) {
    emit(out, "A304-topo-numa-region-mismatch", who, "memory.numa_regions",
         std::to_string(m.memory.numa_regions) +
             " NUMA regions but the topology declares " +
             std::to_string(t.domains.size()) + " domains");
  }
}

}  // namespace rvhpc::analysis::detail
