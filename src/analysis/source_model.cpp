#include "analysis/source_model.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace rvhpc::analysis {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Raw-string literal prefixes: the identifier just lexed ends the token
/// stream in one of these and the next character is '"'.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// Multi-character operators, longest first so maximal munch works.
constexpr std::array<std::string_view, 24> kPuncts = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",
};

/// Comment-borne annotations.  Both must start the (whitespace-trimmed)
/// comment text, so documentation that merely mentions them stays inert.
constexpr std::string_view kDisable = "rvhpc-lint: disable=";
constexpr std::string_view kHotBegin = "rvhpc: hot-path begin";
constexpr std::string_view kHotEnd = "rvhpc: hot-path end";

void parse_disable_ids(std::string_view text, std::vector<std::string>& out) {
  std::string id;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-') {
      id.push_back(c);
    } else if (c == ',') {
      if (!id.empty()) out.push_back(std::move(id));
      id.clear();
    } else {
      break;
    }
  }
  if (!id.empty()) out.push_back(std::move(id));
}

class Lexer {
 public:
  Lexer(const std::string& src, const std::string& path) : src_(src) {
    model_.path = path;
  }

  SourceModel run() {
    while (i_ < src_.size()) step();
    if (open_hot_line_ > 0) {
      model_.hot_regions.push_back({open_hot_line_, line_});
    }
    model_.last_line = line_;
    return std::move(model_);
  }

 private:
  char peek(std::size_t k = 0) const {
    return i_ + k < src_.size() ? src_[i_ + k] : '\0';
  }

  void newline() {
    ++line_;
    at_line_start_ = true;
  }

  void step() {
    const char c = src_[i_];
    if (c == '\n') {
      newline();
      ++i_;
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i_;
      return;
    }
    if (c == '#' && at_line_start_) {
      preprocessor_line();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    at_line_start_ = false;
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      number();
      return;
    }
    punct();
  }

  /// Consumes one logical preprocessor line (backslash continuations
  /// included); directives contribute no tokens.
  void preprocessor_line() {
    while (i_ < src_.size()) {
      if (src_[i_] == '\\' && peek(1) == '\n') {
        i_ += 2;
        ++line_;
        continue;
      }
      if (src_[i_] == '\n') return;  // main loop handles the newline
      ++i_;
    }
  }

  void line_comment() {
    const int start = line_;
    i_ += 2;
    const std::size_t text_begin = i_;
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
    handle_comment({src_.data() + text_begin, i_ - text_begin}, start);
  }

  void block_comment() {
    const int start = line_;
    i_ += 2;
    const std::size_t text_begin = i_;
    std::size_t text_end = src_.size();
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        text_end = i_;
        i_ += 2;
        break;
      }
      if (src_[i_] == '\n') newline();
      ++i_;
    }
    handle_comment({src_.data() + text_begin, text_end - text_begin}, start);
  }

  void handle_comment(std::string_view text, int start_line) {
    const std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string_view::npos) return;
    text.remove_prefix(first);
    if (text.starts_with(kDisable)) {
      parse_disable_ids(text.substr(kDisable.size()), model_.disabled_rules);
    } else if (text.starts_with(kHotBegin)) {
      if (open_hot_line_ == 0) open_hot_line_ = start_line;
    } else if (text.starts_with(kHotEnd)) {
      if (open_hot_line_ > 0) {
        model_.hot_regions.push_back({open_hot_line_, start_line});
        open_hot_line_ = 0;
      }
    }
  }

  /// "..." with backslash escapes.  A bare newline ends the literal (real
  /// C++ strings cannot span lines), so a stray quote cannot desync the
  /// rest of the file — the failure mode the old B001 scanner had.
  void string_literal() {
    const int start = line_;
    ++i_;
    const std::size_t text_begin = i_;
    while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size() && src_[i_ + 1] != '\n') {
        ++i_;
      }
      ++i_;
    }
    emit(Token::Kind::String, src_.substr(text_begin, i_ - text_begin), start);
    if (i_ < src_.size() && src_[i_] == '"') ++i_;
  }

  /// R"delim( ... )delim" — no escapes, newlines allowed.
  void raw_string() {
    const int start = line_;
    ++i_;  // the opening quote
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(src_[i_++]);
    }
    if (i_ < src_.size() && src_[i_] == '(') ++i_;
    const std::string closer = ")" + delim + "\"";
    const std::size_t text_begin = i_;
    const std::size_t end = src_.find(closer, i_);
    const std::size_t text_end = end == std::string::npos ? src_.size() : end;
    for (std::size_t k = text_begin; k < text_end; ++k) {
      if (src_[k] == '\n') ++line_;
    }
    emit(Token::Kind::String, src_.substr(text_begin, text_end - text_begin),
         start);
    i_ = end == std::string::npos ? src_.size() : end + closer.size();
  }

  void char_literal() {
    const int start = line_;
    ++i_;
    const std::size_t text_begin = i_;
    while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size() && src_[i_ + 1] != '\n') {
        ++i_;
      }
      ++i_;
    }
    emit(Token::Kind::CharLit, src_.substr(text_begin, i_ - text_begin),
         start);
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
  }

  void identifier() {
    const int start = line_;
    const std::size_t begin = i_;
    while (i_ < src_.size() && ident_char(src_[i_])) ++i_;
    std::string text = src_.substr(begin, i_ - begin);
    if (raw_string_prefix(text) && peek() == '"') {
      raw_string();
      return;
    }
    emit(Token::Kind::Identifier, std::move(text), start);
  }

  void number() {
    const int start = line_;
    const std::size_t begin = i_;
    const bool hex = peek() == '0' && (peek(1) == 'x' || peek(1) == 'X');
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '.' ||
          (c == '\'' && ident_char(peek(1)))) {  // digit separator
        ++i_;
        const bool exp = hex ? (c == 'p' || c == 'P')
                             : (c == 'e' || c == 'E' || c == 'p' || c == 'P');
        if (exp && (peek() == '+' || peek() == '-')) ++i_;
        continue;
      }
      break;
    }
    emit(Token::Kind::Number, src_.substr(begin, i_ - begin), start);
  }

  void punct() {
    const std::string_view rest(src_.data() + i_, src_.size() - i_);
    for (std::string_view op : kPuncts) {
      if (rest.starts_with(op)) {
        emit(Token::Kind::Punct, std::string(op), line_);
        i_ += op.size();
        return;
      }
    }
    const char c = src_[i_++];
    // Depth bookkeeping: the brace/paren token itself carries the depth
    // *outside* its pair, so matching open/close tokens agree.
    if (c == '{') {
      emit_depths(Token::Kind::Punct, std::string(1, c), line_, brace_, paren_);
      ++brace_;
      return;
    }
    if (c == '}') {
      brace_ = std::max(0, brace_ - 1);
      emit_depths(Token::Kind::Punct, std::string(1, c), line_, brace_, paren_);
      return;
    }
    if (c == '(') {
      emit_depths(Token::Kind::Punct, std::string(1, c), line_, brace_, paren_);
      ++paren_;
      return;
    }
    if (c == ')') {
      paren_ = std::max(0, paren_ - 1);
      emit_depths(Token::Kind::Punct, std::string(1, c), line_, brace_, paren_);
      return;
    }
    emit(Token::Kind::Punct, std::string(1, c), line_);
  }

  void emit(Token::Kind kind, std::string text, int start_line) {
    emit_depths(kind, std::move(text), start_line, brace_, paren_);
  }

  void emit_depths(Token::Kind kind, std::string text, int start_line,
                   int brace, int paren) {
    model_.tokens.push_back({kind, std::move(text), start_line, brace, paren});
  }

  const std::string& src_;
  SourceModel model_;
  std::size_t i_ = 0;
  int line_ = 1;
  int brace_ = 0;
  int paren_ = 0;
  bool at_line_start_ = true;
  int open_hot_line_ = 0;
};

}  // namespace

bool SourceModel::in_hot_region(int line) const {
  return std::any_of(hot_regions.begin(), hot_regions.end(),
                     [line](const HotRegion& r) {
                       return line >= r.begin_line && line <= r.end_line;
                     });
}

SourceModel build_source_model(const std::string& src,
                               const std::string& path) {
  return Lexer(src, path).run();
}

// --- structure analysis ----------------------------------------------------

namespace {

enum class BraceKind : std::uint8_t { Namespace, Class, Function, Block };

bool specifier(const Token& t) {
  return t.ident("const") || t.ident("noexcept") || t.ident("override") ||
         t.ident("final") || t.ident("mutable") || t.ident("try");
}

bool control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "constexpr";
}

bool init_list_context(const std::vector<Token>& t, std::size_t close,
                       std::size_t brace);

/// Index of the `(` matching the `)` at `close`, or npos.
std::size_t matching_open_paren(const std::vector<Token>& t,
                                std::size_t close) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (t[j].punct(")")) ++depth;
    if (t[j].punct("(")) {
      if (--depth == 0) return j;
    }
  }
  return std::string::npos;
}

/// Reads a qualified name ("Server::run", "~Listener") ending at token
/// `last`; empty when `last` is not an identifier.
std::string qualified_name(const std::vector<Token>& t, std::size_t last) {
  if (t[last].kind != Token::Kind::Identifier) return {};
  std::size_t first = last;
  while (first >= 1 && t[first - 1].punct("~")) --first;
  while (first >= 2 && t[first - 1].punct("::") &&
         t[first - 2].kind == Token::Kind::Identifier) {
    first -= 2;
  }
  std::string name;
  for (std::size_t j = first; j <= last; ++j) name += t[j].text;
  return name;
}

/// Classifies the `{` at index `i` and, for functions, yields the name.
BraceKind classify_brace(const std::vector<Token>& t, std::size_t i,
                         std::string& fn_name) {
  if (i == 0) return BraceKind::Block;
  std::size_t j = i - 1;

  // namespace / class heads: walk back over the name and base clause
  // looking for the introducing keyword.
  if (t[j].kind == Token::Kind::Identifier || t[j].punct("::") ||
      t[j].punct(":") || t[j].punct(",") || t[j].punct("<") ||
      t[j].punct(">")) {
    for (std::size_t back = 0, k = j + 1; back < 48 && k-- > 0; ++back) {
      const Token& tk = t[k];
      if (tk.ident("namespace")) return BraceKind::Namespace;
      if (tk.ident("class") || tk.ident("struct") || tk.ident("union") ||
          tk.ident("enum")) {
        return BraceKind::Class;
      }
      const bool head_token = tk.kind == Token::Kind::Identifier ||
                              tk.punct("::") || tk.punct(":") ||
                              tk.punct(",") || tk.punct("<") || tk.punct(">");
      if (!head_token) break;
    }
  }

  // `) [specifiers] {` and `) : init-list {` — function definitions.  Walk
  // back over trailing specifiers and a member-initialiser list to find the
  // parameter list's `)`.
  std::size_t k = j;
  for (int guard = 0; guard < 256; ++guard) {
    if (specifier(t[k])) {
      if (k == 0) return BraceKind::Block;
      --k;
      continue;
    }
    // Member-initialiser items end with `)` or `}`; hop over the balanced
    // group and the preceding name, then any `,`/`:` separator.
    if (t[k].punct("}") || (t[k].punct(")") && init_list_context(t, k, i))) {
      const char open = t[k].punct("}") ? '{' : '(';
      const char close = t[k].punct("}") ? '}' : ')';
      int depth = 0;
      while (true) {
        const std::string& s = t[k].text;
        if (t[k].kind == Token::Kind::Punct && s.size() == 1 &&
            s[0] == close) {
          ++depth;
        }
        if (t[k].kind == Token::Kind::Punct && s.size() == 1 && s[0] == open) {
          if (--depth == 0) break;
        }
        if (k == 0) return BraceKind::Block;
        --k;
      }
      if (k == 0) return BraceKind::Block;
      --k;  // the initialised member's name
      if (t[k].kind != Token::Kind::Identifier) return BraceKind::Block;
      if (k == 0) return BraceKind::Block;
      --k;
      if (t[k].punct(",")) {
        if (k == 0) return BraceKind::Block;
        --k;
        continue;  // previous init item
      }
      if (t[k].punct(":")) {
        if (k == 0) return BraceKind::Block;
        --k;  // now at the parameter list's `)`
      } else {
        return BraceKind::Block;
      }
    }
    break;
  }
  if (!t[k].punct(")")) return BraceKind::Block;
  const std::size_t open = matching_open_paren(t, k);
  if (open == std::string::npos || open == 0) return BraceKind::Block;
  const Token& before = t[open - 1];
  if (before.kind != Token::Kind::Identifier) return BraceKind::Block;
  if (control_keyword(before.text)) return BraceKind::Block;
  fn_name = qualified_name(t, open - 1);
  return fn_name.empty() ? BraceKind::Block : BraceKind::Function;
}

/// True when the `)` at `close` plausibly ends a member-initialiser item
/// rather than the parameter list itself: somewhere between it and the
/// body `{` there is no specifier barrier, and walking further back will
/// find `name (`/`name {` groups.  The caller does the real validation;
/// this only rejects the common `) {` case so plain functions take the
/// fast path.
bool init_list_context(const std::vector<Token>& t, std::size_t close,
                       std::size_t brace) {
  (void)brace;
  const std::size_t open = matching_open_paren(t, close);
  if (open == std::string::npos || open < 2) return false;
  // `name ( ... )` preceded by `:` or `,` — an init item, not a parameter
  // list (a parameter list's name is preceded by a type or `::`).
  if (t[open - 1].kind != Token::Kind::Identifier) return false;
  return t[open - 2].punct(":") || t[open - 2].punct(",");
}

}  // namespace

const FunctionSpan* Structure::enclosing(std::size_t i) const {
  for (const FunctionSpan& f : functions) {
    if (f.contains(i)) return &f;
  }
  return nullptr;
}

Structure analyze_structure(const SourceModel& m) {
  const std::vector<Token>& t = m.tokens;
  Structure s;
  s.namespace_scope.assign(t.size(), false);

  std::vector<BraceKind> stack;
  std::vector<std::size_t> open_functions;  // indices into s.functions
  int non_namespace = 0;

  for (std::size_t i = 0; i < t.size(); ++i) {
    s.namespace_scope[i] = non_namespace == 0;
    if (t[i].punct("{")) {
      std::string name;
      const BraceKind kind = classify_brace(t, i, name);
      stack.push_back(kind);
      if (kind != BraceKind::Namespace) ++non_namespace;
      if (kind == BraceKind::Function) {
        open_functions.push_back(s.functions.size());
        s.functions.push_back({std::move(name), i, t.size(), t[i].line});
      }
    } else if (t[i].punct("}") && !stack.empty()) {
      const BraceKind kind = stack.back();
      stack.pop_back();
      if (kind != BraceKind::Namespace) --non_namespace;
      if (kind == BraceKind::Function && !open_functions.empty()) {
        s.functions[open_functions.back()].body_end = i;
        open_functions.pop_back();
      }
    }
  }
  return s;
}

}  // namespace rvhpc::analysis
