#include "analysis/baseline.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rvhpc::analysis {
namespace {

/// True when `path` ends with `suffix` at a `/` boundary — `net.cpp`
/// matches `src/net/net.cpp` but not `src/net/subnet.cpp`.
bool path_suffix_match(const std::string& path, const std::string& suffix) {
  if (suffix.size() > path.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return suffix.size() == path.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

bool entry_matches(const BaselineEntry& e, const Diagnostic& d) {
  if (!rule_matches(d.rule, e.rule)) return false;
  if (!path_suffix_match(d.loc.file, e.path)) return false;
  return e.field == "*" || e.field == d.field;
}

}  // namespace

bool Baseline::matches(const Diagnostic& d) const {
  for (const BaselineEntry& e : entries) {
    if (entry_matches(e, d)) return true;
  }
  return false;
}

Baseline parse_baseline(const std::string& text, const std::string& path) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream fields(line);
    std::string rule, file, field, extra;
    if (!(fields >> rule) || rule[0] == '#') continue;
    if (!(fields >> file >> field) || (fields >> extra)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": baseline lines are `<rule> <path-suffix> "
                               "<field-or-*>` (got: " + line + ")");
    }
    b.entries.push_back({rule, file, field, lineno});
  }
  return b;
}

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read baseline file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_baseline(buf.str(), path);
}

Report apply_baseline(Report r, const Baseline& b,
                      std::vector<BaselineEntry>* stale) {
  std::vector<bool> used(b.entries.size(), false);
  Report out;
  for (Diagnostic& d : r.diagnostics) {
    bool matched = false;
    for (std::size_t i = 0; i < b.entries.size(); ++i) {
      if (entry_matches(b.entries[i], d)) {
        used[i] = true;
        matched = true;  // keep scanning: every matching entry counts used
      }
    }
    if (!matched) out.add(std::move(d));
  }
  if (stale) {
    for (std::size_t i = 0; i < b.entries.size(); ++i) {
      if (!used[i]) stale->push_back(b.entries[i]);
    }
  }
  return out;
}

}  // namespace rvhpc::analysis
