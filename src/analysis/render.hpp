#pragma once
// rvhpc::analysis — rendering lint reports through rvhpc::report.
//
// The CLI and benches present findings the same way the reproduction
// presents its tables: an aligned text table (and, via Table::to_csv or
// report::maybe_write_csv, a CSV side-output).

#include <string>

#include "analysis/engine.hpp"
#include "report/table.hpp"

namespace rvhpc::analysis {

/// One row per finding: severity, rule, location, subject, field, message.
[[nodiscard]] report::Table render_table(const Report& r);

/// The rule catalogue as a table (id, severity, summary) — `--rules`.
[[nodiscard]] report::Table render_catalogue();

/// "2 errors, 1 warning, 0 notes" summary line.
[[nodiscard]] std::string summarize(const Report& r);

/// The report as a JSON document: `{"findings": [...], "summary": {...}}`,
/// one object per finding with rule/severity/file/line/subject/field/
/// message keys — for `rvhpc-lint --format=json` and CI consumers.
[[nodiscard]] std::string render_json(const Report& r);

}  // namespace rvhpc::analysis
