// Rule B001: bench/example C++ sources must route prediction sweeps
// through rvhpc::engine instead of calling predict() inside hand-rolled
// loops.  Runs over the shared token-stream model (source_model.hpp), so
// comments, string/char/raw-string literals and escaped quotes are handled
// by one lexer instead of a private mode machine — the old char-level scan
// desynced on `R"(...)"` and `'\''`.  Benches that measure the raw
// predict() hot path on purpose self-suppress with a disable directive.

#include <string>
#include <vector>

#include "analysis/rules.hpp"
#include "analysis/source_model.hpp"

namespace rvhpc::analysis::detail {
namespace {

/// The model entry points a bench loop can use to bypass the engine: the
/// core predictor and the per-point sweep wrappers around it.
bool is_bypass_call(const std::string& name) {
  return name == "predict" || name == "predict_paper_setup" ||
         name == "at_cores" || name == "scale_cores";
}

}  // namespace

void bench_source_rules(Report& out, const SourceModel& m) {
  // Loop recognition: `for`/`while` arm a pending state that survives the
  // parenthesised head; the body is the next braced block (tracked by
  // depth) or, braceless, the single statement up to its semicolon.
  enum class Pending { None, AwaitParen, InParen, AwaitBody };

  Pending pending = Pending::None;
  int head_paren_depth = 0;
  std::vector<int> loop_bodies;      ///< brace depth inside each loop body
  std::vector<int> braceless_loops;  ///< brace depth of single-stmt bodies

  const auto in_loop = [&] {
    return !loop_bodies.empty() || !braceless_loops.empty();
  };

  const std::vector<Token>& toks = m.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];

    // A braceless body starts at the first token after the loop head that
    // is neither `{` nor the empty-statement `;` — including when that
    // token is itself the bypass call.
    if (pending == Pending::AwaitBody && !tok.punct("{") && !tok.punct(";")) {
      braceless_loops.push_back(tok.brace_depth);
      pending = Pending::None;
    }

    if (tok.kind == Token::Kind::Identifier) {
      if (tok.text == "for" || tok.text == "while") {
        pending = Pending::AwaitParen;
      } else if (tok.text == "do") {
        pending = Pending::AwaitBody;
      } else if (is_bypass_call(tok.text) && in_loop() &&
                 i + 1 < toks.size() && toks[i + 1].punct("(")) {
        // Member access would be a different API (`cache.predict(...)`);
        // namespace qualification (`model::predict(`) must still match.
        const bool member =
            i > 0 && (toks[i - 1].punct(".") || toks[i - 1].punct("->"));
        if (!member) {
          emit(out, "B001-direct-predict-sweep", m.path, tok.text,
               "direct " + tok.text +
                   "() call inside a loop — build an engine::RequestSet and "
                   "evaluate it as one batch (engine/batch.hpp)");
          out.diagnostics.back().loc = {m.path, tok.line};
        }
      }
      continue;
    }

    if (tok.punct("(")) {
      if (pending == Pending::AwaitParen) {
        pending = Pending::InParen;
        head_paren_depth = tok.paren_depth;
      }
    } else if (tok.punct(")")) {
      if (pending == Pending::InParen &&
          tok.paren_depth == head_paren_depth) {
        pending = Pending::AwaitBody;
      }
    } else if (tok.punct("{")) {
      if (pending == Pending::AwaitBody) {
        loop_bodies.push_back(tok.brace_depth + 1);
        pending = Pending::None;
      }
    } else if (tok.punct("}")) {
      while (!loop_bodies.empty() && loop_bodies.back() > tok.brace_depth) {
        loop_bodies.pop_back();
      }
      while (!braceless_loops.empty() &&
             braceless_loops.back() > tok.brace_depth) {
        braceless_loops.pop_back();
      }
    } else if (tok.punct(";")) {
      if (pending == Pending::AwaitBody) {
        pending = Pending::None;  // `for (...);` — empty body
      } else if (pending == Pending::None && !braceless_loops.empty() &&
                 braceless_loops.back() == tok.brace_depth) {
        braceless_loops.pop_back();  // single-statement body ends
      }
    }
  }
}

}  // namespace rvhpc::analysis::detail
