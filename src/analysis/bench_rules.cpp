// Rule B001: bench/example C++ sources must route prediction sweeps
// through rvhpc::engine instead of calling predict() inside hand-rolled
// loops.  A lexical scan — not a real parser — that understands comments,
// string/char literals, brace depth and loop bodies well enough to catch
// the regression this repo actually had: `for (...) { ... predict(...) }`
// in a table/figure generator.  Benches that measure the raw predict()
// hot path on purpose self-suppress with `// rvhpc-lint: disable=B001`.

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "analysis/rules.hpp"

namespace rvhpc::analysis::detail {
namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The model entry points a bench loop can use to bypass the engine: the
/// core predictor and the per-point sweep wrappers around it.
bool is_bypass_call(const std::string& name) {
  return name == "predict" || name == "predict_paper_setup" ||
         name == "at_cores" || name == "scale_cores";
}

}  // namespace

void bench_source_rules(Report& out, const std::string& src,
                        const std::string& path) {
  enum class Mode { Code, LineComment, BlockComment, String, Char };
  // Loop recognition: `for`/`while` arm a pending state that survives the
  // parenthesised head; the body is the next braced block (tracked by
  // depth) or, braceless, the single statement up to its semicolon.
  enum class Pending { None, AwaitParen, InParen, AwaitBody };

  Mode mode = Mode::Code;
  Pending pending = Pending::None;
  int pending_parens = 0;
  int line = 1;
  int brace_depth = 0;
  std::vector<int> loop_bodies;      ///< brace depth inside each loop body
  std::vector<int> braceless_loops;  ///< brace depth of single-stmt bodies
  std::string word;
  int word_line = 0;

  const auto in_loop = [&] {
    return !loop_bodies.empty() || !braceless_loops.empty();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') ++line;

    switch (mode) {
      case Mode::LineComment:
        if (c == '\n') mode = Mode::Code;
        continue;
      case Mode::BlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::Code;
          ++i;
        }
        continue;
      case Mode::String:
        if (c == '\\') ++i;
        else if (c == '"') mode = Mode::Code;
        continue;
      case Mode::Char:
        if (c == '\\') ++i;
        else if (c == '\'') mode = Mode::Code;
        continue;
      case Mode::Code:
        break;
    }

    if (is_ident(c)) {
      if (word.empty()) {
        word_line = line;
        if (pending == Pending::AwaitBody) {  // braceless loop body starts
          braceless_loops.push_back(brace_depth);
          pending = Pending::None;
        }
      }
      word.push_back(c);
      continue;
    }

    // A non-identifier character: the current word (if any) just ended.
    const std::string ended = std::exchange(word, std::string());
    if (ended == "for" || ended == "while") {
      pending = Pending::AwaitParen;
    } else if (ended == "do") {
      pending = Pending::AwaitBody;
    } else if (is_bypass_call(ended) && in_loop()) {
      // Direct call check: next significant char is '(' and the name is
      // not a member access (`cache.predict(...)` would be a different
      // API; `model::predict(` must still match).
      std::size_t j = i;
      while (j < src.size() &&
             std::isspace(static_cast<unsigned char>(src[j])) != 0) {
        ++j;
      }
      const std::size_t before = i - ended.size();
      const bool member = before > 0 && src[before - 1] == '.';
      if (j < src.size() && src[j] == '(' && !member) {
        emit(out, "B001-direct-predict-sweep", path, ended,
             "direct " + ended +
                 "() call inside a loop — build an engine::RequestSet and "
                 "evaluate it as one batch (engine/batch.hpp)");
        out.diagnostics.back().loc = {path, word_line};
      }
    }

    switch (c) {
      case '/':
        if (next == '/') {
          mode = Mode::LineComment;
          ++i;
        } else if (next == '*') {
          mode = Mode::BlockComment;
          ++i;
        }
        break;
      case '"':
        mode = Mode::String;
        break;
      case '\'':
        mode = Mode::Char;
        break;
      case '(':
        if (pending == Pending::AwaitParen) {
          pending = Pending::InParen;
          pending_parens = 1;
        } else if (pending == Pending::InParen) {
          ++pending_parens;
        }
        break;
      case ')':
        if (pending == Pending::InParen && --pending_parens == 0) {
          pending = Pending::AwaitBody;
        }
        break;
      case '{':
        ++brace_depth;
        if (pending == Pending::AwaitBody) {
          loop_bodies.push_back(brace_depth);
          pending = Pending::None;
        }
        break;
      case '}':
        --brace_depth;
        while (!loop_bodies.empty() && loop_bodies.back() > brace_depth) {
          loop_bodies.pop_back();
        }
        while (!braceless_loops.empty() &&
               braceless_loops.back() > brace_depth) {
          braceless_loops.pop_back();
        }
        break;
      case ';':
        if (pending == Pending::AwaitBody) {
          pending = Pending::None;  // `for (...);` — empty body
        } else if (pending == Pending::None && !braceless_loops.empty() &&
                   braceless_loops.back() == brace_depth) {
          braceless_loops.pop_back();  // single-statement body ends
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace rvhpc::analysis::detail
