#include "analysis/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/rules.hpp"
#include "arch/registry.hpp"
#include "model/signatures.hpp"

namespace rvhpc::analysis {

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> rules = {
      // --- machine rules ---------------------------------------------------
      {"A001-bw-channel-mismatch", Severity::Error,
       "per-channel bandwidth exceeds the ddr_kind data rate's theoretical peak"},
      {"A002-ddr-kind-opaque", Severity::Note,
       "ddr_kind does not parse as FAMILY-RATE; bandwidth cross-check skipped"},
      {"A003-stream-efficiency-implausible", Severity::Warn,
       "STREAM efficiency outside the (0.02, 0.95) range real chips exhibit"},
      {"A004-cluster-cache-mismatch", Severity::Warn,
       "a partially-shared cache level is not shared by cluster_size cores"},
      {"A005-cache-per-core-shrink", Severity::Warn,
       "an outer cache level offers less capacity per sharing core than the inner one"},
      {"A006-isa-vector-mismatch", Severity::Error,
       "the declared vector ISA cannot exist on the declared scalar ISA"},
      {"A007-vector-width-pow2", Severity::Error,
       "architectural vector width is not a power of two"},
      {"A008-idle-latency-implausible", Severity::Warn,
       "idle DRAM latency outside the [20, 400] ns range of real systems"},
      {"A009-numa-core-split", Severity::Warn,
       "cores do not divide evenly across NUMA regions"},
      {"A010-clock-implausible", Severity::Warn,
       "core clock outside the [0.3, 6.0] GHz range of shipping silicon"},
      {"A011-llc-exceeds-dram", Severity::Error,
       "last-level cache is larger than DRAM"},
      {"A012-opc-exceeds-decode", Severity::Warn,
       "sustained scalar op/cycle exceeds the decode width that must feed it"},
      {"A013-inorder-deep-mlp", Severity::Warn,
       "an in-order core claims more outstanding misses than it can track"},
      {"A014-channel-controller-split", Severity::Warn,
       "channels do not divide evenly across memory controllers"},
      // --- topology rules (src/topo overlay) -------------------------------
      {"A301-topo-core-sum", Severity::Error,
       "NUMA domain core counts do not sum to the machine's cores"},
      {"A302-topo-link-outruns-dram", Severity::Warn,
       "an inter-socket link claims bandwidth at or above the local DRAM "
       "behind it"},
      {"A303-topo-dram-slice-mismatch", Severity::Note,
       "domain DRAM slices do not sum to memory.dram_gib"},
      {"A304-topo-numa-region-mismatch", Severity::Warn,
       "memory.numa_regions disagrees with the number of topology domains"},
      // --- workload-signature rules ---------------------------------------
      {"A101-fraction-range", Severity::Error,
       "a fraction-typed signature field is outside [0, 1]"},
      {"A102-footprint-inconsistent", Severity::Error,
       "random-access footprint contradicts the total working set"},
      {"A103-work-nonpositive", Severity::Error,
       "work, cycle, byte or footprint totals must be positive/non-negative"},
      {"A104-element-bits", Severity::Error,
       "vector element width is neither 32 nor 64 bits"},
      {"A105-bytes-per-op-implausible", Severity::Warn,
       "more than a cache line of DRAM traffic per op — likely a unit error"},
      {"A106-vector-shape-inconsistent", Severity::Warn,
       "vectorisation fields contradict each other"},
      {"A107-random-never-misses", Severity::Note,
       "latency-bound accesses that always hit the LLC never touch DRAM"},
      {"A108-sync-density", Severity::Warn,
       "more global synchronisations than operations — likely a unit error"},
      {"A110-class-regression", Severity::Warn,
       "work or footprint shrinks as the NPB problem class grows"},
      // --- calibration-drift rules ----------------------------------------
      {"A201-fig1-ratio-drift", Severity::Warn,
       "registry no longer reproduces Fig. 1's SG2044/SG2042 bandwidth ratio"},
      {"A202-table3-drift", Severity::Warn,
       "single-core class C prediction drifted from the paper's Table 3"},
      {"A203-stream-parity-drift", Severity::Warn,
       "SG2044/SG2042 low-core-count STREAM parity (Fig. 1 prose) lost"},
      // --- bench-source rules ----------------------------------------------
      {"B001-direct-predict-sweep", Severity::Warn,
       "bench/example source calls predict() inside a loop instead of "
       "batching through rvhpc::engine"},
      // --- source concurrency rules ----------------------------------------
      {"S001-blocking-call-in-event-loop", Severity::Warn,
       "a net::Server method calls blocking work (sleep, prediction, cache "
       "I/O) on the single-threaded poll() loop"},
      {"S002-non-atomic-shared-flag", Severity::Warn,
       "a file-scope scalar flag is written and read by different functions "
       "without std::atomic or a lock"},
      {"S003-lock-order-inversion", Severity::Warn,
       "two mutexes are acquired in opposite orders by different functions "
       "— a deadlock when the callers race"},
      {"S004-unjoined-thread", Severity::Warn,
       "a local std::thread is detached or never joined on some path"},
      // --- hot-path hygiene rules (inside annotated hot-path regions) ------
      {"S101-hot-path-allocation", Severity::Warn,
       "heap allocation (new/make_unique/make_shared/malloc) inside an "
       "annotated hot-path region"},
      {"S102-hot-path-string-copy", Severity::Warn,
       "std::string passed or returned by value inside an annotated "
       "hot-path region"},
      {"S103-hot-path-to-string", Severity::Warn,
       "std::to_string materialises a temporary string inside an annotated "
       "hot-path region"},
      {"S104-hot-path-temp-key", Severity::Warn,
       "map lookup constructs a temporary std::string key inside an "
       "annotated hot-path region"},
      // --- syscall robustness rules ----------------------------------------
      {"S201-ignored-syscall-result", Severity::Warn,
       "the result of write/send/poll/rename is silently discarded — "
       "failures and short writes go unnoticed"},
  };
  return rules;
}

bool rule_matches(const std::string& id, const std::string& pattern) {
  if (pattern.empty()) return false;
  if (id == pattern) return true;
  // "A001" selects "A001-bw-channel-mismatch".
  return id.size() > pattern.size() && id[pattern.size()] == '-' &&
         id.compare(0, pattern.size(), pattern) == 0;
}

namespace detail {

void emit(Report& out, const std::string& rule_id, std::string subject,
          std::string field, std::string message) {
  for (const RuleInfo& info : rule_catalogue()) {
    if (info.id == rule_id) {
      out.add({rule_id, info.severity, std::move(subject), std::move(field),
               std::move(message), {}});
      return;
    }
  }
  throw std::logic_error("rvhpc::analysis: rule '" + rule_id +
                         "' missing from rule_catalogue()");
}

}  // namespace detail

void Report::merge(Report other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<Diagnostic> Report::by_rule(const std::string& id_or_prefix) const {
  std::vector<Diagnostic> hits;
  for (const Diagnostic& d : diagnostics) {
    if (rule_matches(d.rule, id_or_prefix)) hits.push_back(d);
  }
  return hits;
}

std::string Report::format() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) os << d.format() << "\n";
  return os.str();
}

Report apply(Report r, const LintOptions& opts) {
  Report out;
  for (Diagnostic& d : r.diagnostics) {
    const bool suppressed =
        std::any_of(opts.suppressed.begin(), opts.suppressed.end(),
                    [&](const std::string& p) { return rule_matches(d.rule, p); });
    if (suppressed) continue;
    if (opts.werror && d.severity == Severity::Warn) d.severity = Severity::Error;
    out.add(std::move(d));
  }
  return out;
}

Report lint_machine(const arch::MachineModel& m) {
  Report r;
  detail::machine_rules(r, m);
  detail::topology_rules(r, m);
  return r;
}

Report lint_machine_file(const arch::ParsedMachine& pm, const std::string& path) {
  Report r = lint_machine(pm.model);
  for (Diagnostic& d : r.diagnostics) {
    d.loc.file = path;
    d.loc.line = pm.line_of(d.field);
  }
  LintOptions file_opts;
  file_opts.suppressed = pm.suppressed_rules;
  return apply(std::move(r), file_opts);
}

Report lint_signature(const model::WorkloadSignature& sig) {
  Report r;
  detail::signature_rules(r, sig);
  return r;
}

Report lint_signature_suite() {
  Report r;
  std::vector<model::Kernel> kernels = model::npb_all();
  kernels.insert(kernels.end(),
                 {model::Kernel::StreamCopy, model::Kernel::StreamTriad,
                  model::Kernel::Hpl, model::Kernel::Hpcg});
  for (model::Kernel k : kernels) {
    for (model::ProblemClass c :
         {model::ProblemClass::S, model::ProblemClass::W, model::ProblemClass::A,
          model::ProblemClass::B, model::ProblemClass::C}) {
      r.merge(lint_signature(model::signature(k, c)));
    }
  }
  detail::suite_rules(r);
  return r;
}

Report lint_registry() {
  Report r;
  for (arch::MachineId id : arch::all_machines()) {
    r.merge(lint_machine(arch::machine(id)));
  }
  // The topology-bearing machines live outside all_machines() (paper-order
  // artifacts stay bit-identical) but are registry entries all the same.
  for (arch::MachineId id : arch::topo_machines()) {
    r.merge(lint_machine(arch::machine(id)));
  }
  detail::calibration_rules(r);
  return r;
}

namespace {

/// Applies the model's own comment-directive suppressions, the same
/// contract as the `#`-comment form in `.machine` files.
Report apply_file_directives(Report r, const SourceModel& m) {
  LintOptions file_opts;
  file_opts.suppressed = m.disabled_rules;
  return apply(std::move(r), file_opts);
}

}  // namespace

Report lint_bench_source(const std::string& source, const std::string& path) {
  const SourceModel m = build_source_model(source, path);
  Report r;
  detail::bench_source_rules(r, m);
  return apply_file_directives(std::move(r), m);
}

Report lint_source(const std::string& source, const std::string& path) {
  const SourceModel m = build_source_model(source, path);
  Report r;
  detail::bench_source_rules(r, m);
  detail::source_rules(r, m);
  return apply_file_directives(std::move(r), m);
}

std::vector<std::string> find_sources(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw std::runtime_error("rvhpc::analysis: not a readable directory: " +
                             dir);
  }
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      throw std::runtime_error("rvhpc::analysis: cannot walk " + dir + ": " +
                               ec.message());
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
        ext == ".h") {
      paths.push_back(it->path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Report lint_sources(const std::string& dir) {
  Report r;
  for (const std::string& path : find_sources(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("rvhpc::analysis: cannot read " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    r.merge(lint_source(buf.str(), path));
  }
  return r;
}

}  // namespace rvhpc::analysis
