// rvhpc::analysis — machine plausibility rules (A001-A014).
//
// Each rule states a cross-field physical fact a MachineModel must honour.
// The thresholds are deliberately generous: they catch unit errors and
// contradictions (the typical authoring mistakes in `.machine` files), not
// unusual-but-real silicon.  Every registry machine must pass all of them
// (tested), so a rule that fires on real hardware is a bug in the rule.

#include <cmath>
#include <cstdlib>
#include <string>

#include "analysis/rules.hpp"
#include "arch/machine.hpp"

namespace rvhpc::analysis::detail {
namespace {

/// Data rate in MT/s parsed from a "DDR5-4266" / "LPDDR4X-2666" style
/// string; 0 when the string does not follow the FAMILY-RATE convention.
int ddr_rate_mts(const std::string& ddr_kind) {
  const auto dash = ddr_kind.rfind('-');
  if (dash == std::string::npos || dash + 1 >= ddr_kind.size()) return 0;
  const std::string digits = ddr_kind.substr(dash + 1);
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return 0;
  }
  return std::atoi(digits.c_str());
}

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

void machine_rules(Report& out, const arch::MachineModel& m) {
  const std::string& who = m.name;
  const arch::CoreModel& c = m.core;
  const arch::MemorySubsystem& mem = m.memory;

  // A001/A002 — dimensional cross-check of the per-channel bandwidth
  // against the DDR generation's data rate.  A 64-bit channel moves 8 bytes
  // per transfer, so rate(MT/s) x 8 / 1000 GB/s is the hard ceiling for any
  // channel width the family ships.
  if (const int rate = ddr_rate_mts(mem.ddr_kind); rate > 0) {
    const double peak_gbs = rate * 8.0 / 1000.0;
    if (mem.channel_bw_gbs > peak_gbs * 1.005) {
      emit(out, "A001-bw-channel-mismatch", who, "memory.channel_bw_gbs",
           num(mem.channel_bw_gbs) + " GB/s exceeds the " + num(peak_gbs) +
               " GB/s theoretical peak of one 64-bit " + mem.ddr_kind +
               " channel (" + std::to_string(rate) + " MT/s x 8 B)");
    }
  } else {
    emit(out, "A002-ddr-kind-opaque", who, "memory.ddr_kind",
         "'" + mem.ddr_kind +
             "' does not parse as FAMILY-RATE (e.g. DDR5-4266); the "
             "channel-bandwidth cross-check (A001) was skipped");
  }

  // A003 — STREAM efficiency: nothing sustains ~100% of peak on a
  // copy-with-write-allocate kernel, and below ~2% the peak numbers are
  // meaningless (the seed registry's worst real part sustains 3.8%).
  if (mem.stream_efficiency > 0.95 || mem.stream_efficiency <= 0.02) {
    emit(out, "A003-stream-efficiency-implausible", who,
         "memory.stream_efficiency",
         num(mem.stream_efficiency) +
             " is outside (0.02, 0.95]; real chips sustain a fraction of "
             "peak on STREAM, not all of it (and not none of it)");
  }

  // A004 — a cache level shared by more than one core but fewer than all of
  // them defines the cluster; it must agree with cluster_size.
  for (std::size_t i = 0; i < m.caches.size(); ++i) {
    const arch::CacheLevel& lvl = m.caches[i];
    if (lvl.shared_by_cores > 1 && lvl.shared_by_cores < m.cores &&
        lvl.shared_by_cores != m.cluster_size) {
      emit(out, "A004-cluster-cache-mismatch", who,
           "cache[" + std::to_string(i) + "]",
           lvl.name + " is shared by " + std::to_string(lvl.shared_by_cores) +
               " cores but cluster_size is " + std::to_string(m.cluster_size) +
               "; mid-level sharing defines the cluster");
    }
  }

  // A005 — capacity per sharing core must not shrink at an outer level;
  // an L3 that gives each core less than its L2 would be pure latency.
  for (std::size_t i = 1; i < m.caches.size(); ++i) {
    const arch::CacheLevel& inner = m.caches[i - 1];
    const arch::CacheLevel& outer = m.caches[i];
    const double inner_per_core =
        static_cast<double>(inner.size_bytes) / inner.shared_by_cores;
    const double outer_per_core =
        static_cast<double>(outer.size_bytes) / outer.shared_by_cores;
    if (outer_per_core < inner_per_core * (1.0 - 1e-9)) {
      emit(out, "A005-cache-per-core-shrink", who,
           "cache[" + std::to_string(i) + "]",
           outer.name + " offers " + num(outer_per_core / 1024.0) +
               " KiB per sharing core, less than " + inner.name + "'s " +
               num(inner_per_core / 1024.0) + " KiB");
    }
  }

  // A006 — ISA / vector-ISA compatibility matrix.
  if (c.vector.isa != arch::VectorIsa::None) {
    const arch::VectorIsa v = c.vector.isa;
    const bool rvv = v == arch::VectorIsa::RvvV0_7 || v == arch::VectorIsa::RvvV1_0;
    const bool avx = v == arch::VectorIsa::Avx2 || v == arch::VectorIsa::Avx512;
    bool ok = true;
    std::string why;
    if (m.isa == arch::Isa::Rv64gc) {
      ok = false;
      why = "RV64GC is by definition the no-vector profile; a core with " +
            to_string(v) + " must be RV64GCV";
    } else if (rvv && m.isa != arch::Isa::Rv64gcv) {
      ok = false;
      why = to_string(v) + " is a RISC-V extension but the ISA is " +
            to_string(m.isa);
    } else if (avx && m.isa != arch::Isa::X86_64) {
      ok = false;
      why = to_string(v) + " requires x86-64 but the ISA is " + to_string(m.isa);
    } else if (v == arch::VectorIsa::Neon && m.isa != arch::Isa::Armv8) {
      ok = false;
      why = "NEON requires Armv8 but the ISA is " + to_string(m.isa);
    }
    if (!ok) emit(out, "A006-isa-vector-mismatch", who, "core.vector.isa", why);
  }

  // A007 — every shipped SIMD/vector register file is a power of two wide
  // (RVV requires VLEN to be one); a 192-bit width is a typo.
  if (c.vector.usable() && !is_pow2(c.vector.width_bits)) {
    emit(out, "A007-vector-width-pow2", who, "core.vector.width_bits",
         std::to_string(c.vector.width_bits) +
             " bits is not a power of two; no vector register file is");
  }

  // A008 — idle DRAM latency sanity.
  if (mem.idle_latency_ns < 20.0 || mem.idle_latency_ns > 400.0) {
    emit(out, "A008-idle-latency-implausible", who, "memory.idle_latency_ns",
         num(mem.idle_latency_ns) +
             " ns is outside [20, 400]; even the slowest seed board "
             "(VisionFive V1) sits at 330 ns");
  }

  // A009 — NUMA regions must partition the cores.
  if (mem.numa_regions > 0 && m.cores % mem.numa_regions != 0) {
    emit(out, "A009-numa-core-split", who, "memory.numa_regions",
         std::to_string(m.cores) + " cores do not divide into " +
             std::to_string(mem.numa_regions) + " NUMA regions evenly");
  }

  // A010 — clock sanity.
  if (c.clock_ghz < 0.3 || c.clock_ghz > 6.0) {
    emit(out, "A010-clock-implausible", who, "core.clock_ghz",
         num(c.clock_ghz) + " GHz is outside the [0.3, 6.0] range of "
                            "shipping silicon");
  }

  // A011 — the last-level cache cannot exceed DRAM.
  const double dram_bytes = mem.dram_gib * 1024.0 * 1024.0 * 1024.0;
  if (!m.caches.empty() && static_cast<double>(m.llc_bytes()) > dram_bytes) {
    emit(out, "A011-llc-exceeds-dram", who, "memory.dram_gib",
         "last-level cache (" + num(m.llc_bytes() / (1024.0 * 1024.0)) +
             " MiB) is larger than DRAM (" + num(mem.dram_gib) + " GiB)");
  }

  // A012 — the frontend bounds sustained throughput: a core cannot retire
  // more ops per cycle than it decodes.  (validate() only checks the
  // issue-width bound, which is looser on every decoupled frontend.)
  if (c.sustained_scalar_opc > static_cast<double>(c.decode_width)) {
    emit(out, "A012-opc-exceeds-decode", who, "core.sustained_scalar_opc",
         num(c.sustained_scalar_opc) + " sustained op/cycle exceeds the " +
             std::to_string(c.decode_width) + "-wide decode that feeds it");
  }

  // A013 — in-order cores track few outstanding misses (no ROB to run
  // ahead); double-digit MLP on one is a calibration error.
  if (!c.out_of_order && c.miss_level_parallelism > 8) {
    emit(out, "A013-inorder-deep-mlp", who, "core.miss_level_parallelism",
         std::to_string(c.miss_level_parallelism) +
             " outstanding misses on an in-order core; without a ROB to "
             "run ahead, real in-order designs sustain <= 8");
  }

  // A014 — channels hang off controllers; an uneven split means one
  // controller's channel count is fictional.
  if (mem.controllers > 0 && mem.channels % mem.controllers != 0) {
    emit(out, "A014-channel-controller-split", who, "memory.channels",
         std::to_string(mem.channels) + " channels do not divide across " +
             std::to_string(mem.controllers) + " controllers evenly");
  }
}

}  // namespace rvhpc::analysis::detail
