#include "analysis/diagnostic.hpp"

#include <sstream>

namespace rvhpc::analysis {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warn: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string SourceLoc::to_string() const {
  if (!known()) return "";
  if (file.empty()) return "line " + std::to_string(line);
  return file + ":" + std::to_string(line);
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  if (loc.known()) os << loc.to_string() << ": ";
  os << analysis::to_string(severity) << ": [" << rule << "] ";
  if (!subject.empty()) os << subject << ": ";
  if (!field.empty()) os << field << ": ";
  os << message;
  return os.str();
}

}  // namespace rvhpc::analysis
