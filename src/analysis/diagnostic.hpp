#pragma once
// rvhpc::analysis — diagnostics.
//
// The static-analysis layer reports findings as Diagnostics: a stable rule
// id ("A001-bw-channel-mismatch"), a severity, the field the finding is
// anchored to, a human-readable message, and — when the machine came from a
// `.machine` file — the source line the offending key was set on.  The
// engine (engine.hpp) produces them; report rendering (render.hpp) and the
// rvhpc-lint CLI consume them.

#include <string>

namespace rvhpc::analysis {

/// How bad a finding is.  `note` is informational (a check was skipped, a
/// value is unusual but defensible), `warn` is probably-a-mistake, `error`
/// means the model contradicts itself and predictions would be wrong.
enum class Severity : std::uint8_t { Note, Warn, Error };

[[nodiscard]] std::string to_string(Severity s);

/// Where in a `.machine` file a finding points.  `line == 0` means the
/// machine did not come from a file (registry entry, brace-initialised
/// model) or the field was left at its default.
struct SourceLoc {
  std::string file;  ///< path as given to the linter; may be empty
  int line = 0;

  [[nodiscard]] bool known() const { return line > 0; }
  /// "path/to/x.machine:12" / "line 12" / "" as information allows.
  [[nodiscard]] std::string to_string() const;
};

/// One static-analysis finding.
struct Diagnostic {
  std::string rule;      ///< stable id, e.g. "A001-bw-channel-mismatch"
  Severity severity = Severity::Warn;
  std::string subject;   ///< what was linted: machine or signature name
  std::string field;     ///< serialisation key the finding anchors to
  std::string message;   ///< the contradiction, with both sides quantified
  SourceLoc loc;

  /// "x.machine:31: error: [A001-bw-channel-mismatch] memory.channel_bw_gbs: ..."
  [[nodiscard]] std::string format() const;
};

}  // namespace rvhpc::analysis
