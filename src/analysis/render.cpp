#include "analysis/render.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace rvhpc::analysis {

report::Table render_table(const Report& r) {
  report::Table t({"severity", "rule", "location", "subject", "field", "message"});
  for (const Diagnostic& d : r.diagnostics) {
    t.add_row({to_string(d.severity), d.rule, d.loc.to_string(), d.subject,
               d.field, d.message});
  }
  return t;
}

report::Table render_catalogue() {
  report::Table t({"rule", "severity", "summary"});
  for (const RuleInfo& info : rule_catalogue()) {
    t.add_row({info.id, to_string(info.severity), info.summary});
  }
  return t;
}

std::string summarize(const Report& r) {
  std::ostringstream os;
  os << r.count(Severity::Error) << " error(s), " << r.count(Severity::Warn)
     << " warning(s), " << r.count(Severity::Note) << " note(s)";
  return os.str();
}

std::string render_json(const Report& r) {
  namespace json = obs::json;
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  bool first = true;
  for (const Diagnostic& d : r.diagnostics) {
    os << (first ? "\n" : ",\n") << "    {"
       << "\"rule\": \"" << json::escape(d.rule) << "\", "
       << "\"severity\": \"" << json::escape(to_string(d.severity)) << "\", "
       << "\"file\": \"" << json::escape(d.loc.file) << "\", "
       << "\"line\": " << d.loc.line << ", "
       << "\"subject\": \"" << json::escape(d.subject) << "\", "
       << "\"field\": \"" << json::escape(d.field) << "\", "
       << "\"message\": \"" << json::escape(d.message) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n"
     << "  \"summary\": {\"errors\": " << r.count(Severity::Error)
     << ", \"warnings\": " << r.count(Severity::Warn)
     << ", \"notes\": " << r.count(Severity::Note) << "}\n}\n";
  return os.str();
}

}  // namespace rvhpc::analysis
