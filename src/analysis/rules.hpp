#pragma once
// rvhpc::analysis — internal seams between the engine and its rule packs.
//
// Each rule pack appends Diagnostics to a Report; the engine composes them
// and applies severities from the catalogue.  Not part of the public API.

#include <string>

#include "analysis/engine.hpp"
#include "analysis/source_model.hpp"

namespace rvhpc::analysis::detail {

/// Appends one finding, taking the severity from rule_catalogue().
void emit(Report& out, const std::string& rule_id, std::string subject,
          std::string field, std::string message);

/// Rules A001-A014: cross-field physical plausibility of one machine.
void machine_rules(Report& out, const arch::MachineModel& m);

/// Rules A301-A304: plausibility of a machine's NUMA topology overlay.
void topology_rules(Report& out, const arch::MachineModel& m);

/// Rules A101-A108: plausibility of one workload signature.
void signature_rules(Report& out, const model::WorkloadSignature& sig);

/// Rule A110: cross-class monotonicity over the whole signature suite.
void suite_rules(Report& out);

/// Rules A201-A203: registry calibration drift against the paper anchors.
void calibration_rules(Report& out);

/// Rule B001: direct predict() calls inside loops in bench/example C++
/// sources.  Token-stream scan, not a parser — see bench_rules.cpp.
void bench_source_rules(Report& out, const SourceModel& m);

/// Rules S0xx/S1xx/S2xx: concurrency, hot-path hygiene and syscall
/// robustness over the main sources — see source_rules.cpp.
void source_rules(Report& out, const SourceModel& m);

}  // namespace rvhpc::analysis::detail
