#pragma once
// rvhpc::analysis — checked-in baseline of accepted lint findings.
//
// A baseline file turns `rvhpc-lint --sources src --werror` into a gate on
// *new* findings: pre-existing ones are listed once, with a comment saying
// why they are accepted, and the gate stays green until someone adds a
// fresh violation.  Format, one entry per line:
//
//     # comment — say WHY the finding is accepted
//     <rule-id-or-prefix> <path-suffix> <field-or-*>
//
// e.g. `S001 src/net/net.cpp handle_line`.  The rule column accepts the
// same id-or-prefix patterns as rule_matches(); the path column matches
// when the diagnostic's file path ends with the suffix at a `/` boundary
// (so `net.cpp` matches `src/net/net.cpp` but not `subnet.cpp`); the field
// column is an exact field match or `*`.  One entry may match any number
// of findings.  Entries that match nothing are reported as stale so the
// baseline shrinks as findings get fixed.

#include <string>
#include <vector>

#include "analysis/engine.hpp"

namespace rvhpc::analysis {

/// One parsed baseline entry.
struct BaselineEntry {
  std::string rule;   ///< rule id or prefix, rule_matches() semantics
  std::string path;   ///< path suffix, `/`-boundary anchored
  std::string field;  ///< exact field or "*"
  int line = 0;       ///< line in the baseline file, for stale reporting
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  [[nodiscard]] bool matches(const Diagnostic& d) const;
};

/// Parses baseline text.  Throws std::runtime_error on a malformed line
/// (anything that is not blank, a `#` comment, or three whitespace-
/// separated columns).
[[nodiscard]] Baseline parse_baseline(const std::string& text,
                                      const std::string& path);

/// parse_baseline() over a file's contents.  Throws std::runtime_error
/// when the file cannot be read.
[[nodiscard]] Baseline load_baseline(const std::string& path);

/// Drops every finding in `r` matched by the baseline.  Entries that
/// matched nothing are returned through `stale` (when non-null) so callers
/// can nudge the baseline back to minimal.
[[nodiscard]] Report apply_baseline(Report r, const Baseline& b,
                                    std::vector<BaselineEntry>* stale);

}  // namespace rvhpc::analysis
