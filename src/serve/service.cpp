#include "serve/service.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/engine.hpp"
#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"
#include "engine/backend.hpp"
#include "engine/request.hpp"
#include "engine/thread_pool.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvhpc::serve {
namespace {

using Clock = std::chrono::steady_clock;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

// --- shutdown flag (async-signal-safe) ------------------------------------

// A lock-free atomic store is async-signal-safe, and unlike a volatile
// sig_atomic_t it is also a *cross-thread* handoff TSan accepts: the net
// event loop polls this flag from its own thread.
std::atomic<int> g_shutdown{0};
static_assert(std::atomic<int>::is_always_lock_free);

void on_signal(int) { g_shutdown.store(1, std::memory_order_relaxed); }

// --- serve-level metrics --------------------------------------------------

enum class Count { Request, Rejected, Timeout };

void count(Count which, std::uint64_t n = 1) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& requests = obs::Registry::global().counter(
      "rvhpc_serve_requests_total", "request lines received by the service");
  static obs::Counter& rejected = obs::Registry::global().counter(
      "rvhpc_serve_rejected_total",
      "requests rejected at admission (parse, lint, overloaded)");
  static obs::Counter& timeouts = obs::Registry::global().counter(
      "rvhpc_serve_timeouts_total",
      "requests whose deadline expired before evaluation");
  switch (which) {
    case Count::Request:  requests.add(n); break;
    case Count::Rejected: rejected.add(n); break;
    case Count::Timeout:  timeouts.add(n); break;
  }
}

// --- request parsing ------------------------------------------------------

/// Admission rejection with structured per-rule detail (lint findings).
struct LintReject : std::runtime_error {
  LintReject(const std::string& msg, std::vector<std::string> d)
      : std::runtime_error(msg), detail(std::move(d)) {}
  std::vector<std::string> detail;
};

const obs::json::Value* member(const obs::json::Value& v, const char* key) {
  const obs::json::Value* m = v.find(key);
  return (m && !m->is(obs::json::Value::Type::Null)) ? m : nullptr;
}

std::string require_string(const obs::json::Value& v, const char* key) {
  const obs::json::Value* m = member(v, key);
  if (!m || !m->is(obs::json::Value::Type::String)) {
    throw std::invalid_argument(std::string("missing or non-string '") + key +
                                "' member");
  }
  return m->str;
}

std::string error_json(const std::string& id, const char* kind,
                       const std::string& message,
                       const std::vector<std::string>& detail = {}) {
  std::ostringstream os;
  os << "{\"id\": \"" << obs::json::escape(id) << "\", \"status\": \"error\", "
     << "\"error\": \"" << kind << "\", \"message\": \""
     << obs::json::escape(message) << "\"";
  if (!detail.empty()) {
    os << ", \"detail\": [";
    for (std::size_t i = 0; i < detail.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << obs::json::escape(detail[i]) << "\"";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed) != 0;
}

void reset_shutdown() { g_shutdown.store(0, std::memory_order_relaxed); }

// --- one admitted request -------------------------------------------------

struct Service::Parsed {
  std::string id;
  std::string tag;
  arch::MachineModel machine;
  model::WorkloadSignature sig;
  model::RunConfig cfg;
  engine::Backend backend = engine::Backend::Analytic;
  double timeout_ms = 0.0;
  std::uint64_t key = 0;
};

namespace {

/// Parses one request line into a Parsed, applying admission lint.
/// Throws std::invalid_argument (parse) or LintReject (admission).
Service::Parsed parse_request(const std::string& line, bool lint_admission,
                              double default_timeout_ms) {
  const obs::json::Value doc = obs::json::parse(line);
  if (!doc.is(obs::json::Value::Type::Object)) {
    throw std::invalid_argument("request is not a JSON object");
  }
  Service::Parsed req;
  if (const auto* id = member(doc, "id");
      id && id->is(obs::json::Value::Type::String)) {
    req.id = id->str;
  }
  if (const auto* tag = member(doc, "tag");
      tag && tag->is(obs::json::Value::Type::String)) {
    req.tag = tag->str;
  }

  // Machine: registry name or inline description, never both.
  const obs::json::Value* name = member(doc, "machine");
  const obs::json::Value* text = member(doc, "machine_text");
  if ((name == nullptr) == (text == nullptr)) {
    throw std::invalid_argument(
        "exactly one of 'machine' (registry name) or 'machine_text' "
        "(inline description) is required");
  }
  if (name) {
    if (!name->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'machine' must be a string");
    }
    try {
      req.machine = arch::machine(name->str);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("unknown machine '" + name->str + "'");
    }
  } else {
    if (!text->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'machine_text' must be a string");
    }
    // parse_machine throws invalid_argument with a line number on bad keys.
    req.machine = arch::from_text(text->str);
    if (const auto issues = arch::validate(req.machine); !issues.empty()) {
      std::vector<std::string> detail;
      for (const auto& issue : issues) detail.push_back(issue.message);
      throw LintReject("machine_text fails structural validation",
                       std::move(detail));
    }
    if (lint_admission) {
      const analysis::Report lint = analysis::lint_machine(req.machine);
      if (lint.has_errors()) {
        std::vector<std::string> detail;
        for (const auto& d : lint.diagnostics) detail.push_back(d.format());
        throw LintReject("machine_text fails A0xx admission lint",
                         std::move(detail));
      }
    }
  }

  const model::Kernel kernel = model::parse_kernel(require_string(doc, "kernel"));
  model::ProblemClass cls = model::ProblemClass::C;
  if (const auto* c = member(doc, "class")) {
    if (!c->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'class' must be a string");
    }
    cls = model::parse_problem_class(c->str);
  }
  req.sig = model::signature(kernel, cls);

  int cores = req.machine.cores;
  if (const auto* n = member(doc, "cores")) {
    if (!n->is(obs::json::Value::Type::Number) || n->num < 1 ||
        n->num != static_cast<double>(static_cast<int>(n->num))) {
      throw std::invalid_argument("'cores' must be a positive integer");
    }
    cores = static_cast<int>(n->num);
  }
  req.cfg = model::paper_run_config(req.machine, kernel, cores);
  if (const auto* c = member(doc, "compiler")) {
    if (!c->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'compiler' must be a string");
    }
    req.cfg.compiler.id = model::parse_compiler_id(c->str);
  }
  if (const auto* v = member(doc, "vectorise")) {
    if (!v->is(obs::json::Value::Type::Bool)) {
      throw std::invalid_argument("'vectorise' must be a boolean");
    }
    req.cfg.compiler.vectorise = v->boolean;
  }
  if (const auto* p = member(doc, "placement")) {
    if (!p->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'placement' must be a string");
    }
    req.cfg.placement = model::parse_placement(p->str);
  }
  if (const auto* b = member(doc, "backend")) {
    if (!b->is(obs::json::Value::Type::String)) {
      throw std::invalid_argument("'backend' must be a string");
    }
    // parse_backend throws invalid_argument naming the valid backends;
    // handle_line turns that into a structured "parse" error.
    req.backend = engine::parse_backend(b->str);
  }
  req.timeout_ms = default_timeout_ms;
  if (const auto* t = member(doc, "timeout_ms")) {
    if (!t->is(obs::json::Value::Type::Number) || t->num < 0) {
      throw std::invalid_argument("'timeout_ms' must be a non-negative number");
    }
    req.timeout_ms = t->num;
  }

  req.key = engine::PredictionRequest(req.machine, req.sig, req.cfg, "",
                                      req.backend)
                .key();
  return req;
}

/// Best-effort id recovery for error responses: a request that failed
/// admission still names itself when its JSON was at least parseable.
std::string recover_id(const std::string& line) {
  try {
    const obs::json::Value doc = obs::json::parse(line);
    if (const obs::json::Value* id = member(doc, "id");
        id && id->is(obs::json::Value::Type::String)) {
      return id->str;
    }
  } catch (const std::exception&) {
  }
  return "";
}

}  // namespace

Service::Service(Options opts)
    : opts_(std::move(opts)),
      jobs_(opts_.jobs > 0 ? opts_.jobs : engine::default_jobs()),
      cache_(opts_.cache_capacity) {}

Service::~Service() {
  if (!opts_.cache_file.empty()) {
    try {
      (void)save_cache(opts_.cache_file, cache_, opts_.cache_max_entries);
    } catch (const std::exception& e) {
      std::cerr << "rvhpc-serve: cache flush failed: " << e.what() << "\n";
    }
  }
}

std::size_t Service::start(std::ostream& log) {
  if (opts_.cache_file.empty()) return 0;
  const LoadResult r = load_cache(opts_.cache_file, cache_);
  std::lock_guard lock(stats_mu_);
  switch (r.status) {
    case LoadResult::Status::Loaded:
      stats_.restored = r.restored;
      log << "serve: restored " << r.restored << " cache entr"
          << (r.restored == 1 ? "y" : "ies") << " from " << opts_.cache_file
          << "\n";
      break;
    case LoadResult::Status::Missing:
      log << "serve: no cache file at " << opts_.cache_file
          << " (cold start)\n";
      break;
    case LoadResult::Status::VersionMismatch:
    case LoadResult::Status::Corrupt:
      // Deliberately non-fatal: a bad cache is a cold start.
      log << "serve: WARNING: ignoring " << to_string(r.status)
          << " cache file: " << r.detail << "\n";
      break;
  }
  return stats_.restored;
}

std::string Service::complete(const Parsed& req, double arrival_us) {
  // Deadline: checked at evaluation time, so a request that sat in the
  // backlog past its budget answers "timeout" instead of burning a worker
  // on an answer nobody is waiting for.
  if (req.timeout_ms > 0.0 &&
      now_us() - arrival_us > req.timeout_ms * 1000.0) {
    count(Count::Timeout);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.timeouts;
    }
    return error_json(req.id, "timeout",
                      "deadline of " + std::to_string(req.timeout_ms) +
                          " ms expired before evaluation");
  }

  obs::ScopedSpan span("serve", "request");
  bool hit = false;
  model::Prediction p;
  // rvhpc: hot-path begin — serve cache-hit fast path: a warm request must
  // answer from the memo without allocating (rvhpc-lint S1xx guards this).
  if (std::optional<model::Prediction> cached = cache_.get(req.key)) {
    p = *std::move(cached);
    hit = true;
  }
  // rvhpc: hot-path end
  if (!hit) {
    p = engine::backend_for(req.backend)
            .predict(req.machine, req.sig, req.cfg);
    cache_.put(req.key, p);
  }
  if (span.active()) {
    span.arg("id", req.id);
    span.arg("backend", engine::to_string(req.backend));
    span.arg("machine", req.machine.name);
    span.arg("kernel", to_string(req.sig.kernel));
    span.arg("cache", hit ? "hit" : "miss");
  }
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.ok;
    if (hit) ++stats_.cache_hits;
    if (!p.ran) ++stats_.dnr;
  }

  std::ostringstream os;
  os << "{\"id\": \"" << obs::json::escape(req.id)
     << "\", \"status\": \"ok\", \"ran\": " << (p.ran ? "true" : "false");
  if (!req.tag.empty()) {
    os << ", \"tag\": \"" << obs::json::escape(req.tag) << "\"";
  }
  if (!p.ran) {
    os << ", \"dnr_reason\": \"" << obs::json::escape(p.dnr_reason) << "\"";
  }
  os << ", \"backend\": \"" << obs::json::escape(engine::to_string(req.backend))
     << "\", \"machine\": \"" << obs::json::escape(req.machine.name)
     << "\", \"kernel\": \"" << obs::json::escape(to_string(req.sig.kernel))
     << "\", \"class\": \""
     << obs::json::escape(to_string(req.sig.problem_class))
     << "\", \"cores\": " << req.cfg.cores
     << ", \"seconds\": " << obs::json::number(p.seconds)
     << ", \"mops\": " << obs::json::number(p.mops)
     << ", \"bw_gbs\": " << obs::json::number(p.achieved_bw_gbs)
     << ", \"bottleneck\": \""
     << obs::json::escape(to_string(p.breakdown.dominant))
     << "\", \"vectorised\": " << (p.vector.vectorised ? "true" : "false");
  if (opts_.live_fields) {
    os << ", \"cache\": \"" << (hit ? "hit" : "miss") << "\""
       << ", \"latency_us\": " << obs::json::number(now_us() - arrival_us);
  }
  os << "}";
  // End-to-end latency, admission to completion (seconds, the repo-wide
  // log-spaced timer layout): the p99 the throughput bench gates on.
  if (obs::Histogram* h =
          obs::timer_target("rvhpc_serve_request_latency_seconds")) {
    h->observe((now_us() - arrival_us) * 1e-6);
  }
  return os.str();
}

bool Service::cached(const Parsed& req) { return cache_.contains(req.key); }

Service::Admission Service::admit(const std::string& line) {
  Admission adm;
  adm.arrival_us = now_us();
  count(Count::Request);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.received;
  }
  try {
    auto req = std::make_shared<Parsed>(
        parse_request(line, opts_.lint_admission, opts_.default_timeout_ms));
    adm.id = req->id;
    adm.had_id = !req->id.empty();
    adm.request = std::move(req);
  } catch (const LintReject& e) {
    count(Count::Rejected);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.lint_rejected;
    }
    adm.id = recover_id(line);
    adm.had_id = !adm.id.empty();
    adm.response = error_json(adm.id, "lint", e.what(), e.detail);
  } catch (const std::exception& e) {
    count(Count::Rejected);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.parse_errors;
    }
    adm.id = recover_id(line);
    adm.had_id = !adm.id.empty();
    adm.response = error_json(adm.id, "parse", e.what());
  }
  return adm;
}

std::string Service::handle_line(const std::string& line) {
  const Admission adm = admit(line);
  if (!adm.request) return adm.response;
  return complete(*adm.request, adm.arrival_us);
}

std::string Service::reject_overloaded(const std::string& id) {
  count(Count::Request);
  count(Count::Rejected);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.received;
    ++stats_.overloaded;
  }
  return error_json(id, "overloaded",
                    "backlog full (" + std::to_string(opts_.queue_capacity) +
                        " requests pending); retry later");
}

bool Service::note_evaluation() {
  if (opts_.cache_file.empty() || opts_.checkpoint_every == 0) return false;
  std::lock_guard lock(stats_mu_);
  if (++since_checkpoint_ >= opts_.checkpoint_every) {
    since_checkpoint_ = 0;
    return true;
  }
  return false;
}

void Service::maybe_checkpoint(std::ostream& log) {
  if (note_evaluation()) flush(log);
}

void Service::flush(std::ostream& log) {
  if (opts_.cache_file.empty()) return;
  std::lock_guard save_lock(save_mu_);
  try {
    const SaveResult saved =
        save_cache(opts_.cache_file, cache_, opts_.cache_max_entries);
    log << "serve: checkpointed " << saved.written << " cache entr"
        << (saved.written == 1 ? "y" : "ies");
    if (saved.trimmed > 0) {
      log << " (trimmed " << saved.trimmed << " oldest)";
    }
    log << " to " << opts_.cache_file << "\n";
  } catch (const std::exception& e) {
    log << "serve: WARNING: checkpoint failed: " << e.what() << "\n";
  }
}

void Service::run(std::istream& in, std::ostream& out, std::ostream& log) {
  obs::ScopedSpan session_span("serve", "session");
  engine::ThreadPool pool(jobs_);
  std::mutex out_mu;
  std::atomic<std::size_t> pending{0};

  const auto emit = [&](const std::string& response) {
    std::lock_guard lock(out_mu);
    out << response << "\n" << std::flush;
  };

  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    // Bounded backlog: a request beyond the bound is answered immediately
    // instead of queueing without limit — predictable worst-case memory
    // and latency under overload.
    if (pending.load(std::memory_order_relaxed) >= opts_.queue_capacity) {
      emit(reject_overloaded());
      continue;
    }

    pending.fetch_add(1, std::memory_order_relaxed);
    pool.submit([this, &emit, &log, &pending, line] {
      // A worker must never throw: any unexpected failure becomes a
      // structured response, the process stays up.
      std::string response;
      try {
        response = handle_line(line);
      } catch (const std::exception& e) {
        response = error_json("", "internal", e.what());
      }
      emit(response);
      pending.fetch_sub(1, std::memory_order_relaxed);
      maybe_checkpoint(log);
    });
  }

  // Graceful drain: EOF or SIGTERM stops admission; everything already
  // admitted still gets its answer, then the cache hits disk.
  pool.wait();
  flush(log);
  const ServiceStats s = stats();
  log << "serve: drained — " << s.received << " received, " << s.ok << " ok, "
      << s.parse_errors + s.lint_rejected << " rejected, " << s.timeouts
      << " timed out, " << s.overloaded << " overloaded, " << s.cache_hits
      << " cache hits\n";
}

std::string Service::replay(const std::string& path, std::ostream& out,
                            std::ostream& log) {
  obs::ScopedSpan session_span("serve", "replay");
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open replay log '" + path + "'");
  }
  // live_fields off for the whole replay: responses must not depend on
  // wall clock or cache temperature, so a warm rerun is byte-identical.
  const bool was_live = opts_.live_fields;
  opts_.live_fields = false;

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
  }

  std::vector<std::string> responses(lines.size());
  {
    engine::ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      pool.submit([this, &lines, &responses, i] {
        try {
          responses[i] = handle_line(lines[i]);
        } catch (const std::exception& e) {
          responses[i] = error_json("", "internal", e.what());
        }
      });
    }
    pool.wait();
  }
  opts_.live_fields = was_live;

  // Request order, not completion order: replay output is a document.
  for (const std::string& r : responses) out << r << "\n";
  flush(log);

  const ServiceStats s = stats();
  const std::uint64_t errors = s.parse_errors + s.lint_rejected + s.timeouts;
  const double hit_rate =
      s.ok > 0 ? 100.0 * static_cast<double>(s.cache_hits) /
                     static_cast<double>(s.ok)
               : 0.0;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "replay summary — " << path << "\n"
     << "  requests:       " << s.received << "\n"
     << "  ok:             " << s.ok << " (" << s.dnr << " DNR)\n"
     << "  errors:         " << errors << " (parse " << s.parse_errors
     << ", lint " << s.lint_rejected << ", timeout " << s.timeouts << ")\n"
     << "  cache:          " << s.cache_hits << " hits / "
     << (s.ok - s.cache_hits) << " misses  (cache-hit-rate: " << hit_rate
     << "%)\n"
     << "  cache-restored: " << s.restored << "\n"
     << "  pool:           " << jobs_ << " worker thread(s)\n";
  return os.str();
}

ServiceStats Service::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace rvhpc::serve
