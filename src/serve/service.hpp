#pragma once
// rvhpc::serve — a long-running prediction service over the engine.
//
// Every prediction tool in the repo so far is a one-shot process: it cold
// starts, sweeps, and throws the engine's memo cache away on exit.  The
// Service turns the same engine into a resident server: line-delimited
// JSON requests come in (stdin or a replay file), are admitted through a
// bounded backlog into a worker pool, evaluated against a persistent
// PredictionCache (serve/persist.hpp), and answered with line-delimited
// JSON responses carrying per-request status, latency and cache-hit
// attribution.
//
// Request schema (one JSON object per line; DESIGN.md §9.2):
//   {"id": "r1", "machine": "sg2044", "kernel": "CG", "class": "C",
//    "cores": 64}
// optional members:
//   "machine_text"  inline `.machine` description instead of "machine"
//                   (validated + linted on admission; A0xx errors reject)
//   "compiler"      toolchain name ("GCC 15.2", ...); default: the
//                   paper's compiler for the machine
//   "vectorise"     bool; default: the paper setup for (machine, kernel)
//   "placement"     "os-default" | "spread" | "close"
//   "backend"       "analytic" (default) | "interval": which prediction
//                   mechanism evaluates the request (DESIGN.md §12).  The
//                   backend is part of the memo key, so cached analytic
//                   results never answer interval requests; unknown
//                   values are a structured `parse` error.
//   "timeout_ms"    per-request deadline; a request still queued when it
//                   expires answers {"status":"error","error":"timeout"}
//   "tag"           opaque label echoed in the response
//
// Response schema:
//   {"id": "r1", "status": "ok", "ran": true, "backend": "analytic",
//    "seconds": ..., "mops": ..., "bw_gbs": ..., "bottleneck": "...",
//    "vectorised": ..., "cores": N, "cache": "hit"|"miss",
//    "latency_us": ...}
//   {"id": "r1", "status": "error", "error": "parse"|"lint"|"timeout"|
//    "overloaded", "message": "...", "detail": ["..."]}
// "cache" and "latency_us" are live-mode fields: replay omits them so a
// cold and a warm replay of the same log are byte-identical (the
// acceptance gate scripts/check.sh enforces).
//
// Robustness semantics (ISSUE 4): malformed JSON, lint-rejected machines,
// expired deadlines, a full backlog and a corrupt cache file all produce
// structured error responses or logged warnings — never a crash, never a
// silently dropped request.  EOF or SIGTERM drains the backlog, flushes
// the cache to disk and exits cleanly.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "serve/persist.hpp"

namespace rvhpc::serve {

/// Aggregate counters of one Service instance's lifetime (the obs
/// registry's rvhpc_serve_* counters aggregate across instances; tests and
/// the replay summary want per-instance numbers).
struct ServiceStats {
  std::uint64_t received = 0;       ///< request lines seen (non-blank)
  std::uint64_t ok = 0;             ///< evaluated, status "ok"
  std::uint64_t dnr = 0;            ///< of `ok`, predictions with ran=false
  std::uint64_t parse_errors = 0;   ///< malformed JSON / unknown fields
  std::uint64_t lint_rejected = 0;  ///< machines failing A0xx admission
  std::uint64_t timeouts = 0;       ///< deadline expired before evaluation
  std::uint64_t overloaded = 0;     ///< backlog full at admission
  std::uint64_t cache_hits = 0;     ///< of `ok`, served from the memo cache
  std::uint64_t restored = 0;       ///< entries loaded from the cache file
};

class Service {
 public:
  struct Options {
    /// Worker threads evaluating admitted requests; <= 0 means
    /// engine::default_jobs() (RVHPC_JOBS or hardware_concurrency).
    int jobs = 0;
    /// Maximum requests admitted but not yet answered (live mode).  A
    /// request arriving past this bound is answered "overloaded"
    /// immediately.  0 rejects everything — useful for drills and tests.
    std::size_t queue_capacity = 256;
    /// Deadline applied to requests that do not carry "timeout_ms";
    /// 0 = no deadline.
    double default_timeout_ms = 0.0;
    /// Persistent cache file: loaded on start(), checkpointed every
    /// `checkpoint_every` evaluations, flushed on shutdown.  Empty =
    /// in-process cache only.
    std::string cache_file;
    std::size_t cache_capacity = engine::PredictionCache::kDefaultCapacity;
    /// Cap on entries *written* to the cache file: saves trim the
    /// oldest-LRU overflow first (rvhpc_serve_cache_trimmed_total counts
    /// them) so a long-lived service file stays bounded.  0 = uncapped.
    std::size_t cache_max_entries = 0;
    /// Checkpoint period in *evaluated requests*; 0 = only on shutdown.
    std::size_t checkpoint_every = 0;
    /// Reject machines whose A0xx lint has errors (registry machines
    /// always pass; this guards inline "machine_text" descriptions).
    bool lint_admission = true;
    /// Emit "cache" and "latency_us" response fields.  True for the live
    /// loop; replay() forces false so its output is deterministic.
    bool live_fields = true;
  };

  explicit Service(Options opts);
  /// Flushes the persistent cache (best-effort; errors to stderr).
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Loads the persistent cache if configured.  Corrupt, truncated or
  /// version-mismatched files are logged to `log` and ignored — a bad
  /// cache is a cold start, never a fatal error.  Returns entries
  /// restored.
  std::size_t start(std::ostream& log);

  /// Serves `in` until EOF or shutdown_requested(): one response line per
  /// request line, written to `out` in completion order, then drains the
  /// pool and flushes the cache.
  void run(std::istream& in, std::ostream& out, std::ostream& log);

  /// Batch-replays a request log: every line is admitted (no backlog
  /// rejection — replay is offline), evaluated across the pool, and
  /// answered in *request order* with deterministic fields only.  Returns
  /// the human-readable summary block (also used by scripts/check.sh:
  /// keep the "cache-hit-rate:" and "cache-restored:" tokens stable).
  std::string replay(const std::string& path, std::ostream& out,
                     std::ostream& log);

  struct Parsed;  // one admitted request (defined in service.cpp)

  /// Outcome of the cheap parse/admission phase of one request line.
  /// Either the line was resolved immediately (`response` is the final
  /// JSON: parse error, lint rejection) and `request` is null, or it was
  /// admitted and `request` holds the parsed prediction request awaiting
  /// the compute phase (`complete()`).  `had_id` records whether the line
  /// carried a non-empty "id" — the wire-ordering contract keys on it:
  /// responses to id-less requests must be delivered in request order,
  /// id-carrying responses may complete out of order (DESIGN.md §13).
  struct Admission {
    std::shared_ptr<const Parsed> request;  ///< null when resolved inline
    std::string response;  ///< final JSON when `request` is null
    std::string id;        ///< the request's "id" ("" when absent)
    double arrival_us = 0.0;
    bool had_id = false;
  };

  /// Phase 1 of handle_line: parse + admission lint only — cheap enough
  /// for an event-loop thread.  Never throws; failures become structured
  /// error responses.
  [[nodiscard]] Admission admit(const std::string& line);

  /// Phase 2: evaluates an admitted request (cache probe, then the
  /// backend predict on a miss) and renders the response JSON.
  /// Thread-safe; this is what the net front end dispatches to the engine
  /// ThreadPool as a future.  Never throws.
  [[nodiscard]] std::string complete(const Parsed& req, double arrival_us);

  /// True when `req` would answer from the memo cache — the front end
  /// completes such requests inline instead of paying a pool handoff.
  [[nodiscard]] bool cached(const Parsed& req);

  /// Parses, admits and evaluates one request line synchronously,
  /// returning the response JSON (no trailing newline) — admit() +
  /// complete() back to back.  The stdio run()/replay() path; exposed for
  /// tests.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// The structured "overloaded" rejection (also counts it): the shared
  /// shape for every admission-bound front end (stdio backlog, net
  /// in-flight bound).  `id` is echoed so id-matching clients can pair
  /// the rejection with its request.
  [[nodiscard]] std::string reject_overloaded(const std::string& id = "");

  /// Counts one completed evaluation toward the checkpoint period;
  /// true when a checkpoint is now due (caller decides which thread pays
  /// for the flush — the net front end hands it to a background flusher).
  [[nodiscard]] bool note_evaluation();

  /// Writes the persistent cache now (no-op without a cache_file).
  void flush(std::ostream& log);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] engine::PredictionCache& cache() { return cache_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] int jobs() const { return jobs_; }

 private:
  void maybe_checkpoint(std::ostream& log);

  Options opts_;
  int jobs_;
  engine::PredictionCache cache_;
  mutable std::mutex stats_mu_;
  std::mutex save_mu_;  ///< serialises checkpoint writes from worker threads
  ServiceStats stats_;
  std::uint64_t since_checkpoint_ = 0;
};

/// Installs SIGTERM/SIGINT handlers that request a graceful drain: the
/// run() loop stops admitting after the current line, finishes in-flight
/// work, flushes the cache and returns.
void install_shutdown_handlers();
[[nodiscard]] bool shutdown_requested();
/// Clears the flag (tests; a fresh run() after a drained one).
void reset_shutdown();

}  // namespace rvhpc::serve
