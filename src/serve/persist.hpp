#pragma once
// rvhpc::serve — disk-backed persistence for the prediction memo cache.
//
// The engine's PredictionCache is in-process only; this module gives it a
// life across processes so a warm rvhpc-serve (or a repeated
// calibration_check/suite_summary run) never pays cold predict() cost for
// a point it has already evaluated.  The file is a versioned binary
// snapshot keyed by the engine's FNV-1a request keys (request.cpp hashes
// every machine/signature/config field at full double precision, so keys
// are stable across runs for identical inputs and never alias perturbed
// machines).
//
// File format (little-endian, see DESIGN.md §9.3):
//   magic   "RVPC"            4 bytes
//   version u32               currently 2; versions 1 and 2 are readable,
//                             anything else is rejected
//   count   u64               number of entries
//   trimmed u64               version >= 2 only: entries the save cap
//                             dropped from this snapshot (informational)
//   payload count x entry     entries ordered least-recently-used FIRST,
//                             so replaying them through put() reproduces
//                             the cache's exact recency order on load
//   check   u64               FNV-1a over the payload bytes
//   entry := key u64 | Prediction (ran u8, dnr_reason str, seconds f64,
//            mops f64, achieved_bw_gbs f64, VectorOutcome, TimeBreakdown)
//   str   := len u32 | bytes
//
// Robustness contract: loading is ALL-OR-NOTHING and NEVER fatal.  A
// missing file is a cold start; a truncated, corrupt or version-mismatched
// file is reported through LoadResult (callers log it) and leaves the
// cache untouched.  Doubles round-trip bit-exactly (stored via bit_cast),
// which is what makes a warm replay byte-identical to a cold one.

#include <cstddef>
#include <cstdint>
#include <string>

#include "engine/cache.hpp"

namespace rvhpc::serve {

/// Outcome of one load_cache() call.
struct LoadResult {
  enum class Status {
    Loaded,           ///< entries restored (possibly zero, empty file)
    Missing,          ///< no file at `path` — a cold start, not an error
    VersionMismatch,  ///< recognised header, unsupported version
    Corrupt,          ///< bad magic, truncation or checksum failure
  };
  Status status = Status::Missing;
  std::size_t restored = 0;  ///< entries inserted into the cache
  std::size_t trimmed = 0;   ///< v2+: entries the saver's cap had dropped
  std::string detail;        ///< human-readable reason for non-Loaded

  [[nodiscard]] bool ok() const { return status == Status::Loaded; }
};

[[nodiscard]] std::string to_string(LoadResult::Status s);

/// Current file-format version written by save_cache().  Version 2 added
/// the trimmed-count header field; the reader still accepts version-1
/// files (written before the eviction cap existed) unchanged.
inline constexpr std::uint32_t kCacheFormatVersion = 2;
inline constexpr std::uint32_t kOldestReadableCacheFormatVersion = 1;

/// Outcome of one save_cache() call.
struct SaveResult {
  std::size_t written = 0;  ///< entries serialised to the file
  std::size_t trimmed = 0;  ///< oldest-LRU entries dropped by max_entries
};

/// Restores `path` into `cache` (entries are replayed oldest-first through
/// put(), so the resident LRU order matches the saved one).  Publishes the
/// restored count through obs::metrics as rvhpc_serve_cache_restored_total
/// when metrics are enabled.  Never throws; see LoadResult.
LoadResult load_cache(const std::string& path, engine::PredictionCache& cache);

/// Serialises the resident entries of `cache` to `path`, writing to
/// `path`.tmp first and renaming into place so a crash mid-write can never
/// leave a half-written cache where the next start would read it.  A
/// non-zero `max_entries` caps the snapshot: the least-recently-used
/// overflow is trimmed before writing (the resident cache is untouched),
/// keeping long-lived service cache files bounded; trimmed entries count
/// into rvhpc_serve_cache_trimmed_total.  Throws std::runtime_error when
/// the destination is unwritable.
SaveResult save_cache(const std::string& path,
                      const engine::PredictionCache& cache,
                      std::size_t max_entries = 0);

}  // namespace rvhpc::serve
