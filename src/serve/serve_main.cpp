// rvhpc-serve — the prediction model as a long-running service.
//
// Reads line-delimited JSON prediction requests (stdin by default, a
// replay log with --replay, or a loopback TCP socket with --listen=tcp),
// answers each with one line of JSON, and keeps the engine's memo cache
// warm across processes through a persistent cache file.  See
// src/serve/service.hpp for the request/response schema, DESIGN.md §9 for
// the service and §10 for the TCP transport.
//
//   echo '{"id":"r1","machine":"sg2044","kernel":"CG","cores":64}' |
//     rvhpc-serve --cache-file=predictions.bin
//   rvhpc-serve --replay=tests/data/serve_replay20.jsonl
//               --cache-file=predictions.bin --out=responses.jsonl
//   rvhpc-serve --listen=tcp:0 --cache-file=predictions.bin &
//     # stderr logs "net: listening on 127.0.0.1:<port>"; drive it with
//     # rvhpc-client --connect=127.0.0.1:<port> --in=requests.jsonl
//   rvhpc-serve --http=tcp:0 &
//     # stderr logs "http: listening on 127.0.0.1:<port>"; then
//     # curl --data-binary @requests.jsonl http://127.0.0.1:<port>/v1/predict
//     # (README "Serving over HTTP" has the full tour; --listen=tcp and
//     # --http may run together in one process, on separate ports)
//
// Exit status: 0 on success (including replays with per-request errors —
// those are *answered*, not fatal), 1 on gate failure, 2 on usage errors.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "cli/cli.hpp"
#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "serve/persist.hpp"
#include "serve/service.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-serve",
    "serve predictions over line-delimited JSON with a persistent cache",
    "usage: rvhpc-serve [--listen=stdio|tcp:PORT] [--http=tcp:PORT]\n"
    "                   [--shards=N] [--max-body=N]\n"
    "                   [--replay=<requests.jsonl>]\n"
    "                   [--out=<responses.jsonl>] [--cache-file=<file.bin>]\n"
    "                   [--cache-capacity=N] [--cache-max-entries=N]\n"
    "                   [--queue=N] [--timeout-ms=T] [--idle-timeout-ms=T]\n"
    "                   [--header-timeout-ms=T]\n"
    "                   [--checkpoint-every=N] [--no-lint] [--no-live-fields]\n"
    "                   [--jobs=N] [--metrics[=<file>]] [--gate]\n"
    "\n"
    "  --listen=stdio        serve requests from stdin until EOF/SIGTERM\n"
    "                        (the default; incompatible with --http)\n"
    "  --listen=tcp:PORT     serve concurrent clients on 127.0.0.1:PORT\n"
    "                        until SIGTERM; PORT 0 picks an ephemeral port\n"
    "                        (logged as \"net: listening on ...\"); drive it\n"
    "                        with rvhpc-client\n"
    "  --http=tcp:PORT       also serve HTTP/1.1 on 127.0.0.1:PORT (0 =\n"
    "                        ephemeral, logged as \"http: listening on ...\"):\n"
    "                        POST /v1/predict (JSON-lines body; batches\n"
    "                        stream back chunked), GET /metrics, GET\n"
    "                        /healthz.  Alone it replaces the stdio\n"
    "                        listener; with --listen=tcp:PORT one process\n"
    "                        serves both protocols\n"
    "  --shards=N            tcp/http: event-loop shards accepting\n"
    "                        connections round-robin (default 1); 0 = auto,\n"
    "                        min(hardware threads, 4)\n"
    "  --max-body=N          http only: largest request body in bytes\n"
    "                        (default 1048576); beyond it the request is\n"
    "                        answered 413 and the connection closed\n"
    "  --replay=FILE         batch-replay a request log instead of serving;\n"
    "                        responses in request order, summary on stderr\n"
    "  --out=FILE            write responses there instead of stdout\n"
    "  --cache-file=FILE     load the prediction cache on start, checkpoint\n"
    "                        and flush it on shutdown (corrupt or\n"
    "                        version-mismatched files are ignored, cold)\n"
    "  --cache-capacity=N    resident cache entries (default 16384)\n"
    "  --cache-max-entries=N cap entries written to --cache-file; saves trim\n"
    "                        the oldest-LRU overflow first (0 = uncapped)\n"
    "  --queue=N             live-mode admission bound; requests past it\n"
    "                        answer \"overloaded\" (default 256)\n"
    "  --timeout-ms=T        default per-request deadline (0 = none)\n"
    "  --idle-timeout-ms=T   tcp only: disconnect clients idle for T ms\n"
    "                        (0 = never, the default)\n"
    "  --header-timeout-ms=T tcp/http: disconnect clients that start a\n"
    "                        request but do not finish framing it within T\n"
    "                        ms (slow loris; 0 = never, the default).\n"
    "                        Distinct from --idle-timeout-ms, which a\n"
    "                        dripped byte resets\n"
    "  --checkpoint-every=N  checkpoint the cache every N evaluations\n"
    "  --no-lint             skip A0xx admission lint of machine_text\n"
    "  --no-live-fields      omit the \"cache\"/\"latency_us\" response\n"
    "                        fields so live output is byte-comparable with\n"
    "                        a --replay of the same requests\n"
    + cli::jobs_flag_help() + "\n"
    "  --metrics[=FILE]      dump the Prometheus metrics registry on exit\n"
    "                        (stderr, or FILE)\n"
    "  --gate                self-check: replay determinism across pool\n"
    "                        sizes and cold/warm cache runs, then exit"};

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

struct Options {
  serve::Service::Options svc;
  net::ServerOptions net;
  std::string replay_path;
  std::string out_path;
  std::string metrics_path;  ///< empty = stderr
  bool tcp = false;          ///< --listen=tcp:PORT (port in net.port)
  bool http = false;         ///< --http=tcp:PORT (port in net.http_port)
  bool metrics = false;
  bool gate = false;
};

using cli::parse_size;

int usage_error(const std::string& message) {
  std::cerr << "rvhpc-serve: " << message << "\n\n" << kTool.usage << "\n";
  return 2;
}

// --- gate -----------------------------------------------------------------

/// Synthetic replay log: the paper's HPC machines × three kernels × the
/// power-of-two core counts — enough distinct points that pool scheduling
/// differences would show if responses depended on evaluation order.
std::string gate_requests() {
  std::ostringstream os;
  int id = 0;
  for (arch::MachineId mid : arch::hpc_machines()) {
    const arch::MachineModel& m = arch::machine(mid);
    for (const char* kernel : {"CG", "MG", "EP"}) {
      for (int cores = 1; cores <= m.cores; cores *= 2) {
        os << "{\"id\": \"g" << id++ << "\", \"machine\": \"" << m.name
           << "\", \"kernel\": \"" << kernel << "\", \"cores\": " << cores
           << "}\n";
      }
    }
  }
  return os.str();
}

/// One full replay of `path` with its own Service; responses to `out`,
/// summary discarded, wall time returned in seconds.
double timed_replay(const std::string& path, int jobs,
                    const std::string& cache_file, std::ostream& out,
                    serve::ServiceStats* stats = nullptr) {
  serve::Service::Options opts;
  opts.jobs = jobs;
  opts.cache_file = cache_file;
  std::ostringstream log;
  serve::Service svc(opts);
  svc.start(log);
  const auto t0 = std::chrono::steady_clock::now();
  (void)svc.replay(path, out, log);
  const auto t1 = std::chrono::steady_clock::now();
  if (stats) *stats = svc.stats();
  return std::chrono::duration<double>(t1 - t0).count();
}

int run_gate() {
  const std::string requests_path = "rvhpc-serve-gate-requests.tmp";
  const std::string cache_path = "rvhpc-serve-gate-cache.tmp";
  {
    std::ofstream f(requests_path);
    f << gate_requests();
    if (!f.good()) {
      std::cerr << "gate: cannot write " << requests_path << "\n";
      return 1;
    }
  }
  std::remove(cache_path.c_str());
  bool ok = true;

  // 1. Pool-size independence: jobs=1 and jobs=4 replays are byte-equal.
  std::ostringstream one, four;
  const double t1 = timed_replay(requests_path, 1, "", one);
  const double t4 = timed_replay(requests_path, 4, "", four);
  if (one.str() != four.str() || one.str().empty()) {
    std::cerr << "gate: FAIL — replay responses differ between jobs=1 and "
                 "jobs=4 pools\n";
    ok = false;
  } else {
    std::cerr << "gate: ok — jobs=1 and jobs=4 replays byte-identical ("
              << t1 << "s vs " << t4 << "s)\n";
  }

  // 2. Cold/warm cache equivalence: a warm run answers from the restored
  //    cache and must reproduce the cold run exactly.
  std::ostringstream cold, warm;
  serve::ServiceStats cold_stats, warm_stats;
  timed_replay(requests_path, 0, cache_path, cold, &cold_stats);
  timed_replay(requests_path, 0, cache_path, warm, &warm_stats);
  if (cold.str() != warm.str() || cold.str().empty()) {
    std::cerr << "gate: FAIL — warm-cache replay differs from cold replay\n";
    ok = false;
  } else if (warm_stats.cache_hits < warm_stats.ok ||
             warm_stats.restored == 0) {
    std::cerr << "gate: FAIL — warm replay restored " << warm_stats.restored
              << " entries and hit on " << warm_stats.cache_hits << "/"
              << warm_stats.ok << " requests (want all)\n";
    ok = false;
  } else {
    std::cerr << "gate: ok — warm replay bit-identical, " << warm_stats.restored
              << " entries restored, " << warm_stats.cache_hits << "/"
              << warm_stats.ok << " cache hits\n";
  }

  // 3. Throughput: the pool should beat one worker — only meaningful on
  //    real multicore hardware and without sanitizer overhead.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4 && !kSanitized) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      std::ostringstream sink1, sink4;
      const double s1 = timed_replay(requests_path, 1, "", sink1);
      const double s4 = timed_replay(requests_path, 4, "", sink4);
      if (s4 > 0.0) best = std::max(best, s1 / s4);
    }
    if (best < 1.5) {
      std::cerr << "gate: FAIL — jobs=4 replay only " << best
                << "x faster than jobs=1 (want >= 1.5x)\n";
      ok = false;
    } else {
      std::cerr << "gate: ok — jobs=4 replay " << best << "x faster\n";
    }
  } else {
    std::cerr << "gate: skip — throughput check needs >= 4 hardware threads"
              << " and an unsanitized build (have " << hw
              << (kSanitized ? ", sanitized" : "") << ")\n";
  }

  std::remove(requests_path.c_str());
  std::remove(cache_path.c_str());
  std::cerr << (ok ? "gate: PASS\n" : "gate: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;
  const int jobs_applied = cli::apply_jobs_flag(argc, argv);

  Options opt;
  bool shards_set = false;
  bool stdio_set = false;
  bool max_body_set = false;
  if (jobs_applied > 0) opt.svc.jobs = jobs_applied;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--listen=", 0) == 0) {
      // Validate the listener by name: an unrecognised value must be a
      // usage error, never silently treated as stdio.
      const std::string listener = value("--listen=");
      if (listener == "stdio") {
        opt.tcp = false;
        stdio_set = true;
      } else if (listener.rfind("tcp:", 0) == 0) {
        std::size_t port = 0;
        if (!parse_size(listener.substr(4), port) || port > 65535) {
          return usage_error("bad --listen port in '" + arg +
                             "' (want tcp:0..65535)");
        }
        opt.tcp = true;
        opt.net.port = static_cast<std::uint16_t>(port);
      } else {
        return usage_error("unknown --listen value '" + listener +
                           "' (want stdio or tcp:PORT)");
      }
    } else if (arg.rfind("--http=", 0) == 0) {
      const std::string listener = value("--http=");
      if (listener.rfind("tcp:", 0) != 0) {
        return usage_error("unknown --http value '" + listener +
                           "' (want tcp:PORT)");
      }
      std::size_t port = 0;
      if (!parse_size(listener.substr(4), port) || port > 65535) {
        return usage_error("bad --http port in '" + arg +
                           "' (want tcp:0..65535)");
      }
      opt.http = true;
      opt.net.http = true;
      opt.net.http_port = static_cast<std::uint16_t>(port);
    } else if (arg.rfind("--max-body=", 0) == 0) {
      if (!parse_size(value("--max-body="), opt.net.max_body_bytes) ||
          opt.net.max_body_bytes == 0) {
        return usage_error("bad --max-body value '" + arg +
                           "' (want bytes >= 1)");
      }
      max_body_set = true;
    } else if (arg.rfind("--shards=", 0) == 0) {
      std::size_t shards = 0;
      if (!parse_size(value("--shards="), shards) || shards > 256) {
        return usage_error("bad --shards value '" + arg + "' (want 0..256)");
      }
      if (shards == 0) {
        // Auto: one loop per core is overkill for a line protocol —
        // clamp at 4, the point where accept fan-out stops mattering.
        const unsigned hw = std::thread::hardware_concurrency();
        shards = std::min<std::size_t>(hw > 0 ? hw : 1, 4);
      }
      opt.net.shards = shards;
      shards_set = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // consumed by cli::apply_jobs_flag above
    } else if (arg.rfind("--replay=", 0) == 0) {
      opt.replay_path = value("--replay=");
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out_path = value("--out=");
    } else if (arg.rfind("--cache-file=", 0) == 0) {
      opt.svc.cache_file = value("--cache-file=");
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      if (!parse_size(value("--cache-capacity="), opt.svc.cache_capacity)) {
        return usage_error("bad --cache-capacity value '" + arg + "'");
      }
    } else if (arg.rfind("--cache-max-entries=", 0) == 0) {
      if (!parse_size(value("--cache-max-entries="),
                      opt.svc.cache_max_entries)) {
        return usage_error("bad --cache-max-entries value '" + arg + "'");
      }
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      try {
        opt.net.idle_timeout_ms = std::stod(value("--idle-timeout-ms="));
      } catch (const std::exception&) {
        return usage_error("bad --idle-timeout-ms value '" + arg + "'");
      }
      if (opt.net.idle_timeout_ms < 0) {
        return usage_error("--idle-timeout-ms must be >= 0");
      }
    } else if (arg.rfind("--header-timeout-ms=", 0) == 0) {
      try {
        opt.net.header_timeout_ms = std::stod(value("--header-timeout-ms="));
      } catch (const std::exception&) {
        return usage_error("bad --header-timeout-ms value '" + arg + "'");
      }
      if (opt.net.header_timeout_ms < 0) {
        return usage_error("--header-timeout-ms must be >= 0");
      }
    } else if (arg.rfind("--queue=", 0) == 0) {
      if (!parse_size(value("--queue="), opt.svc.queue_capacity)) {
        return usage_error("bad --queue value '" + arg + "'");
      }
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      try {
        opt.svc.default_timeout_ms = std::stod(value("--timeout-ms="));
      } catch (const std::exception&) {
        return usage_error("bad --timeout-ms value '" + arg + "'");
      }
      if (opt.svc.default_timeout_ms < 0) {
        return usage_error("--timeout-ms must be >= 0");
      }
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!parse_size(value("--checkpoint-every="),
                      opt.svc.checkpoint_every)) {
        return usage_error("bad --checkpoint-every value '" + arg + "'");
      }
    } else if (arg == "--no-lint") {
      opt.svc.lint_admission = false;
    } else if (arg == "--no-live-fields") {
      opt.svc.live_fields = false;
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      opt.metrics = true;
      opt.metrics_path = value("--metrics=");
    } else if (arg == "--gate") {
      opt.gate = true;
    } else {
      return usage_error("unknown argument '" + arg + "'");
    }
  }

  if (shards_set && !opt.tcp && !opt.http) {
    return usage_error(
        "--shards only applies to --listen=tcp:PORT or --http=tcp:PORT");
  }
  if (stdio_set && opt.http) {
    return usage_error(
        "--listen=stdio and --http are mutually exclusive (stdio serves "
        "exactly one pipe; pick --listen=tcp:PORT to serve both protocols)");
  }
  if (max_body_set && !opt.http) {
    return usage_error("--max-body only applies to --http=tcp:PORT");
  }
  if (opt.http && !opt.replay_path.empty()) {
    return usage_error("--replay and --http are mutually exclusive");
  }
  // HTTP-only processes do not bind the raw JSON-lines port at all.
  opt.net.json_listener = opt.tcp;

  if (opt.gate) return run_gate();

  obs::set_metrics_enabled(true);

  std::ofstream out_file;
  if (!opt.out_path.empty()) {
    out_file.open(opt.out_path);
    if (!out_file.good()) {
      return usage_error("cannot open --out file '" + opt.out_path + "'");
    }
  }
  std::ostream& out = opt.out_path.empty() ? std::cout : out_file;

  int status = 0;
  {
    serve::Service svc(opt.svc);
    svc.start(std::cerr);
    if (!opt.replay_path.empty()) {
      try {
        std::cerr << svc.replay(opt.replay_path, out, std::cerr);
      } catch (const std::exception& e) {
        std::cerr << "rvhpc-serve: " << e.what() << "\n";
        status = 2;
      }
    } else if (opt.tcp || opt.http) {
      serve::install_shutdown_handlers();
      net::Server server(svc, opt.net);
      try {
        server.open(std::cerr);
      } catch (const std::exception& e) {
        return usage_error(e.what());
      }
      server.run(std::cerr);
    } else {
      serve::install_shutdown_handlers();
      svc.run(std::cin, out, std::cerr);
    }
  }

  if (opt.metrics && status == 0) {
    const std::string text = obs::Registry::global().render_text();
    if (opt.metrics_path.empty()) {
      std::cerr << text;
    } else {
      std::ofstream m(opt.metrics_path);
      m << text;
      if (!m.good()) {
        std::cerr << "rvhpc-serve: cannot write --metrics file '"
                  << opt.metrics_path << "'\n";
        status = 2;
      }
    }
  }
  return status;
}
