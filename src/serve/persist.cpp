#include "serve/persist.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace rvhpc::serve {
namespace {

constexpr char kMagic[4] = {'R', 'V', 'P', 'C'};

// Same FNV-1a the engine keys with; here it seals the payload so a
// truncated or bit-flipped file fails closed instead of restoring garbage.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void count_restored(std::size_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  static obs::Counter& restored = obs::Registry::global().counter(
      "rvhpc_serve_cache_restored_total",
      "prediction cache entries restored from a persistent cache file");
  restored.add(n);
}

void count_trimmed(std::size_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  static obs::Counter& trimmed = obs::Registry::global().counter(
      "rvhpc_serve_cache_trimmed_total",
      "oldest-LRU cache entries dropped by the save cap (--cache-max-entries)");
  trimmed.add(n);
}

// --- little-endian scalar writers into a std::string buffer ---------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out += static_cast<char>(v);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

void put_prediction(std::string& out, const model::Prediction& p) {
  put_u8(out, p.ran ? 1 : 0);
  put_str(out, p.dnr_reason);
  put_f64(out, p.seconds);
  put_f64(out, p.mops);
  put_f64(out, p.achieved_bw_gbs);
  put_u8(out, p.vector.vectorised ? 1 : 0);
  put_f64(out, p.vector.unit_stride_speedup);
  put_f64(out, p.vector.gather_speedup);
  put_f64(out, p.vector.blended_speedup);
  put_f64(out, p.breakdown.compute_s);
  put_f64(out, p.breakdown.stream_s);
  put_f64(out, p.breakdown.latency_s);
  put_f64(out, p.breakdown.sync_s);
  put_f64(out, p.breakdown.imbalance);
  put_u8(out, static_cast<std::uint8_t>(p.breakdown.dominant));
}

// --- bounds-checked reader ------------------------------------------------

struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  [[nodiscard]] bool need(std::size_t n) const {
    return pos + n <= buf.size();
  }
  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = static_cast<std::uint8_t>(buf[pos++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!need(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!need(8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len) || !need(len)) return false;
    v.assign(buf, pos, len);
    pos += len;
    return true;
  }
};

bool read_prediction(Reader& r, model::Prediction& p) {
  std::uint8_t ran = 0, vectorised = 0, dominant = 0;
  const bool ok = r.u8(ran) && r.str(p.dnr_reason) && r.f64(p.seconds) &&
                  r.f64(p.mops) && r.f64(p.achieved_bw_gbs) &&
                  r.u8(vectorised) && r.f64(p.vector.unit_stride_speedup) &&
                  r.f64(p.vector.gather_speedup) &&
                  r.f64(p.vector.blended_speedup) &&
                  r.f64(p.breakdown.compute_s) &&
                  r.f64(p.breakdown.stream_s) &&
                  r.f64(p.breakdown.latency_s) && r.f64(p.breakdown.sync_s) &&
                  r.f64(p.breakdown.imbalance) && r.u8(dominant);
  if (!ok) return false;
  if (dominant > static_cast<std::uint8_t>(model::Bottleneck::Sync)) {
    return false;  // enum out of range — corrupt entry
  }
  p.ran = ran != 0;
  p.vector.vectorised = vectorised != 0;
  p.breakdown.dominant = static_cast<model::Bottleneck>(dominant);
  return true;
}

LoadResult fail(LoadResult::Status status, std::string detail) {
  LoadResult r;
  r.status = status;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

std::string to_string(LoadResult::Status s) {
  switch (s) {
    case LoadResult::Status::Loaded:          return "loaded";
    case LoadResult::Status::Missing:         return "missing";
    case LoadResult::Status::VersionMismatch: return "version-mismatch";
    case LoadResult::Status::Corrupt:         return "corrupt";
  }
  return "unknown";
}

LoadResult load_cache(const std::string& path,
                      engine::PredictionCache& cache) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return fail(LoadResult::Status::Missing, "no cache file at '" + path + "'");
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  Reader r{buf};
  if (!r.need(8) || std::memcmp(buf.data(), kMagic, 4) != 0) {
    return fail(LoadResult::Status::Corrupt,
                "'" + path + "' is not a rvhpc cache file (bad magic)");
  }
  r.pos = 4;
  std::uint32_t version = 0;
  (void)r.u32(version);
  if (version < kOldestReadableCacheFormatVersion ||
      version > kCacheFormatVersion) {
    return fail(LoadResult::Status::VersionMismatch,
                "'" + path + "' has format version " + std::to_string(version) +
                    ", this build reads versions " +
                    std::to_string(kOldestReadableCacheFormatVersion) + ".." +
                    std::to_string(kCacheFormatVersion));
  }
  std::uint64_t count = 0;
  if (!r.u64(count)) {
    return fail(LoadResult::Status::Corrupt, "'" + path + "' truncated header");
  }
  // Version 2 added the trimmed count; version-1 files simply lack it.
  std::uint64_t trimmed = 0;
  if (version >= 2 && !r.u64(trimmed)) {
    return fail(LoadResult::Status::Corrupt, "'" + path + "' truncated header");
  }

  // Checksum first: the payload must be intact before anything is applied,
  // so a truncated file restores nothing instead of a silent prefix.
  if (buf.size() < 8) {
    return fail(LoadResult::Status::Corrupt, "'" + path + "' truncated");
  }
  const std::size_t payload_begin = r.pos;
  const std::size_t payload_end = buf.size() - 8;
  if (payload_end < payload_begin) {
    return fail(LoadResult::Status::Corrupt, "'" + path + "' truncated");
  }
  Reader tail{buf, payload_end};
  std::uint64_t stored_check = 0;
  (void)tail.u64(stored_check);
  const std::string payload =
      buf.substr(payload_begin, payload_end - payload_begin);
  if (fnv1a(payload) != stored_check) {
    return fail(LoadResult::Status::Corrupt,
                "'" + path + "' checksum mismatch (truncated or corrupted)");
  }

  std::vector<engine::CacheEntry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    engine::CacheEntry e;
    if (!r.u64(e.key) || !read_prediction(r, e.prediction)) {
      return fail(LoadResult::Status::Corrupt,
                  "'" + path + "' entry " + std::to_string(i) + " malformed");
    }
    entries.push_back(std::move(e));
  }
  if (r.pos != payload_end) {
    return fail(LoadResult::Status::Corrupt,
                "'" + path + "' has trailing bytes after the last entry");
  }

  // Entries are stored LRU-first; put() fronts each one, so the last put
  // (the saved MRU) ends up most recent — recency order survives the trip.
  for (const engine::CacheEntry& e : entries) {
    cache.put(e.key, e.prediction);
  }
  LoadResult result;
  result.status = LoadResult::Status::Loaded;
  result.restored = entries.size();
  result.trimmed = static_cast<std::size_t>(trimmed);
  count_restored(entries.size());
  return result;
}

SaveResult save_cache(const std::string& path,
                      const engine::PredictionCache& cache,
                      std::size_t max_entries) {
  std::vector<engine::CacheEntry> mru_first = cache.entries();

  // Eviction cap: entries() is MRU-first, so truncating the tail drops
  // exactly the least-recently-used overflow — the snapshot keeps the
  // entries a restart is most likely to want warm.
  SaveResult saved;
  if (max_entries > 0 && mru_first.size() > max_entries) {
    saved.trimmed = mru_first.size() - max_entries;
    mru_first.resize(max_entries);
    count_trimmed(saved.trimmed);
  }
  saved.written = mru_first.size();

  std::string out;
  out.append(kMagic, 4);
  put_u32(out, kCacheFormatVersion);
  put_u64(out, mru_first.size());
  put_u64(out, saved.trimmed);

  std::string payload;
  for (auto it = mru_first.rbegin(); it != mru_first.rend(); ++it) {
    put_u64(payload, it->key);
    put_prediction(payload, it->prediction);
  }
  const std::uint64_t check = fnv1a(payload);
  out += payload;
  put_u64(out, check);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) {
      throw std::runtime_error("cannot open '" + tmp + "' for writing");
    }
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f.good()) throw std::runtime_error("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return saved;
}

}  // namespace rvhpc::serve
