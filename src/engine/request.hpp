#pragma once
// rvhpc::engine — immutable prediction request/result value types.
//
// Every reproduced table and figure is a sweep: machines × kernels × core
// counts × compiler configurations, each point one predict() call.  The
// engine turns those sweeps into data — a PredictionRequest captures one
// point as a value (machine description included, so custom what-if
// machines work exactly like registry entries), a RequestSet accumulates a
// sweep, and the BatchEvaluator (batch.hpp) runs the set across a thread
// pool with deterministic, input-ordered results.
//
// Requests are immutable once constructed: the memoisation key (a hash of
// machine, signature, core count and compiler configuration) is computed
// in the constructor and never changes.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/registry.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"

namespace rvhpc::engine {

/// Which prediction mechanism evaluates a request.  Folded into the memo
/// key, so a cached analytic result can never answer an interval request
/// (and vice versa) — the two backends are deliberately different models
/// of the same machine.
enum class Backend : std::uint8_t {
  Analytic,  ///< closed-form ECM model (model::predict)
  Interval,  ///< interval core simulation over memsim (sim::predict_interval)
};

/// "analytic" / "interval".
[[nodiscard]] std::string to_string(Backend b);

/// Inverse of to_string(Backend); throws std::invalid_argument naming the
/// valid backends on anything else (serve turns that into a parse error).
[[nodiscard]] Backend parse_backend(const std::string& name);

/// 64-bit FNV-1a fingerprint of a machine description.  Hashes every
/// MachineModel field (serialize.cpp's to_text() is the field checklist;
/// keep the two in sync when the model grows a knob) at full double
/// precision, so the 5%-perturbed machines the sensitivity analysis sweeps
/// never alias a registry entry in the memo cache.
[[nodiscard]] std::uint64_t machine_fingerprint(const arch::MachineModel& m);

/// One point of a sweep, as an immutable value.
class PredictionRequest {
 public:
  PredictionRequest(arch::MachineModel machine, model::WorkloadSignature sig,
                    model::RunConfig cfg, std::string tag = "",
                    Backend backend = Backend::Analytic);

  [[nodiscard]] const arch::MachineModel& machine() const { return machine_; }
  [[nodiscard]] const model::WorkloadSignature& signature() const {
    return signature_;
  }
  [[nodiscard]] const model::RunConfig& config() const { return config_; }
  /// Caller-chosen label carried through to the result (row/series key).
  [[nodiscard]] const std::string& tag() const { return tag_; }
  /// The mechanism that will evaluate this request.
  [[nodiscard]] Backend backend() const { return backend_; }
  /// Memoisation key over (machine, signature, cores, compiler, placement,
  /// backend) — request.cpp static-asserts the field checklists so a new
  /// field cannot silently stay out of the key.
  [[nodiscard]] std::uint64_t key() const { return key_; }

 private:
  arch::MachineModel machine_;
  model::WorkloadSignature signature_;
  model::RunConfig config_;
  std::string tag_;
  Backend backend_;
  std::uint64_t key_;
};

/// One evaluated point.  `index` is the request's position in the set the
/// evaluator ran, so results are always relatable to inputs regardless of
/// which pool thread computed them.
struct PredictionResult {
  std::size_t index = 0;
  std::string tag;
  model::Prediction prediction;
  bool from_cache = false;
};

/// Builder for a sweep's worth of requests.  The add_* helpers encode the
/// configurations the paper's tables use so bench binaries stop hand-
/// rolling them.
class RequestSet {
 public:
  void add(PredictionRequest r) { requests_.push_back(std::move(r)); }
  void add(arch::MachineModel machine, model::WorkloadSignature sig,
           model::RunConfig cfg, std::string tag = "");

  /// The paper-setup prediction of `kernel`@`cls` on registry machine `id`
  /// at exactly `cores` cores (compiler and placement as published).
  void add_paper_setup(arch::MachineId id, model::Kernel kernel,
                       model::ProblemClass cls, int cores,
                       std::string tag = "");
  /// As add_paper_setup, for a custom machine description.
  void add_paper_setup(const arch::MachineModel& m, model::Kernel kernel,
                       model::ProblemClass cls, int cores,
                       std::string tag = "");

  /// One request per power-of-two core count up to the chip (the x-axis of
  /// the paper's Figures 1-6), with `cfg`'s compiler/placement and the core
  /// count overridden per point.  Tags are "<tag>@<cores>".
  void add_scaling(const arch::MachineModel& m, model::Kernel kernel,
                   model::ProblemClass cls, model::RunConfig cfg,
                   std::string tag = "");

  [[nodiscard]] const std::vector<PredictionRequest>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

 private:
  std::vector<PredictionRequest> requests_;
};

}  // namespace rvhpc::engine
