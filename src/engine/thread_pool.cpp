#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace rvhpc::engine {

int default_jobs() {
  if (const char* env = std::getenv("RVHPC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rvhpc::engine
