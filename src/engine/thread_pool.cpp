#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace rvhpc::engine {

namespace {

/// Best-effort: pin the calling thread to the `domain`-th of `domains`
/// contiguous CPU blocks.  Returns whether the affinity call succeeded;
/// any failure (no permission, exotic cpuset, non-Linux host) leaves the
/// thread free-running, which is always correct, just unplaced.
bool pin_to_domain(int domain, int domains, int hw) {
#ifdef __linux__
  if (domains <= 1 || hw < domains) return false;
  const int per = hw / domains;                    // block size, >= 1
  const int lo = domain * per;
  const int hi = (domain == domains - 1) ? hw : lo + per;  // last takes slack
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu = lo; cpu < hi; ++cpu) CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)domain;
  (void)domains;
  (void)hw;
  return false;
#endif
}

}  // namespace

PlacementHints placement_for(const arch::MachineModel& m) {
  PlacementHints h;
  if (!m.topology.flat())
    h.domains = static_cast<int>(m.topology.domains.size());
  return h;
}

int default_jobs() {
  if (const char* env = std::getenv("RVHPC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : ThreadPool(threads, PlacementHints{}) {}

ThreadPool::ThreadPool(int threads, const PlacementHints& hints) {
  const int n = std::max(threads, 1);
  domains_ = std::max(hints.domains, 1);
  // The gate: only place when the host actually has one CPU per domain.
  // A single-CPU CI box therefore takes exactly the unhinted path.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const bool place = domains_ > 1 && hw >= domains_;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int domain = domain_of(i);
    workers_.emplace_back([this, domain, place, hw] {
      if (place && pin_to_domain(domain, domains_, hw)) ++placed_;
      worker_loop();
    });
  }
}

int ThreadPool::domain_of(int worker) const {
  // Round-robin, so any pool size spreads as evenly as possible over the
  // hinted domains (the same filled-first order topo::domains_spanned
  // assumes is immaterial here: every domain hosts ceil/floor(n/d)).
  return domains_ > 1 ? worker % domains_ : 0;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rvhpc::engine
