#pragma once
// rvhpc::engine — prediction-backend dispatch.
//
// The engine no longer hard-codes the analytic model: every evaluation
// goes through a PredictionBackend chosen per request (engine::Backend on
// the PredictionRequest, "backend" on serve/net request lines).  Both
// implementations are pure and deterministic, so the BatchEvaluator's
// bit-identity and memoisation guarantees hold for either; the memo key
// includes the backend, so results never cross mechanisms.
//
// Each dispatch bumps rvhpc_engine_backend_requests_total{backend="..."}
// so metrics show which mechanism served the traffic.

#include "arch/machine.hpp"
#include "engine/request.hpp"
#include "model/predictor.hpp"
#include "model/workload.hpp"

namespace rvhpc::engine {

/// One prediction mechanism.  Implementations are stateless singletons;
/// references from backend_for() are valid for the process lifetime.
class PredictionBackend {
 public:
  virtual ~PredictionBackend() = default;

  [[nodiscard]] virtual Backend id() const = 0;

  /// Evaluates one point.  Must be pure (no shared mutable state) — the
  /// BatchEvaluator calls this concurrently from its pool threads.
  [[nodiscard]] virtual model::Prediction predict(
      const arch::MachineModel& m, const model::WorkloadSignature& sig,
      const model::RunConfig& cfg) const = 0;
};

/// The process-wide implementation of `b` (analytic -> model::predict,
/// interval -> sim::predict_interval).
[[nodiscard]] const PredictionBackend& backend_for(Backend b);

}  // namespace rvhpc::engine
