#pragma once
// rvhpc::engine — a deliberately simple fixed-size thread pool.
//
// predict() calls are uniform (~µs each) and batches are large, so a
// single mutex-protected queue is plenty: work-stealing would buy nothing
// and cost determinism-of-reasoning.  Tasks are plain std::function<void()>;
// exceptions thrown by a task are caught, stored, and rethrown from wait()
// on the submitting thread so batch callers see ordinary C++ error flow.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "arch/machine.hpp"

namespace rvhpc::engine {

/// Number of workers to use when the caller does not say: the
/// RVHPC_JOBS environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency(), else 1.
[[nodiscard]] int default_jobs();

/// Optional NUMA-placement hints for a pool.  Workers are assigned to
/// `domains` domains round-robin and — best-effort, Linux only — pinned
/// to that domain's contiguous slice of the host's CPUs.  The gate:
/// pinning is attempted only when the host has at least `domains` CPUs,
/// so a single-CPU CI box takes exactly the unhinted code path.  Hints
/// are an optimisation, never a correctness requirement; pinning
/// failures are ignored and only counted (ThreadPool::placed_workers).
struct PlacementHints {
  int domains = 1;  ///< <= 1 means no placement at all
};

/// Hints matching a machine's NUMA topology: one pool domain per
/// declared topo::Domain (flat machines hint nothing), so a batch
/// evaluated for a dual-socket machine can spread its workers the same
/// way the modeled threads spread.
[[nodiscard]] PlacementHints placement_for(const arch::MachineModel& m);

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).  `threads == 1` still
  /// spawns one worker so the execution path is identical at every size.
  explicit ThreadPool(int threads);
  /// Same, with NUMA placement hints (see PlacementHints).
  ThreadPool(int threads, const PlacementHints& hints);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Submits a task whose result (or exception) is delivered through the
  /// returned future instead of wait() — the dispatch path the async
  /// serving front end completes requests on.  Unlike submit(), an
  /// exception thrown by the task is owned by the future (rethrown from
  /// get()), never by wait(): a caller holding the future is the one
  /// waiting for this task, so wait()'s batch error channel stays
  /// reserved for fire-and-forget work.
  template <typename F>
  auto submit_future(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable callables and
    // std::packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if one did).
  void wait();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Planned domain of worker `i` under the construction hints
  /// (round-robin); 0 when the pool is unhinted.
  [[nodiscard]] int domain_of(int worker) const;
  /// Workers actually pinned to their domain's CPU slice.  0 when the
  /// gate kept placement off (unhinted pool, or host CPUs < domains).
  [[nodiscard]] int placed_workers() const { return placed_; }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signalled when a task is queued
  std::condition_variable idle_cv_;   ///< signalled when in-flight hits zero
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;         ///< queued + currently executing
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  int domains_ = 1;
  std::atomic<int> placed_{0};
};

}  // namespace rvhpc::engine
