#include "engine/backend.hpp"

#include "obs/metrics.hpp"
#include "sim/interval.hpp"

namespace rvhpc::engine {
namespace {

void count_backend_request(Backend b) {
  if (!obs::metrics_enabled()) return;
  // Prometheus-style label embedded in the counter name: the registry is
  // name-keyed, and the text renderer emits `name{label} value` verbatim.
  static obs::Counter& analytic = obs::Registry::global().counter(
      "rvhpc_engine_backend_requests_total{backend=\"analytic\"}",
      "requests dispatched to the analytic ECM backend");
  static obs::Counter& interval = obs::Registry::global().counter(
      "rvhpc_engine_backend_requests_total{backend=\"interval\"}",
      "requests dispatched to the interval-simulation backend");
  (b == Backend::Interval ? interval : analytic).add();
}

class AnalyticBackend final : public PredictionBackend {
 public:
  [[nodiscard]] Backend id() const override { return Backend::Analytic; }
  [[nodiscard]] model::Prediction predict(
      const arch::MachineModel& m, const model::WorkloadSignature& sig,
      const model::RunConfig& cfg) const override {
    count_backend_request(Backend::Analytic);
    return model::predict(m, sig, cfg);
  }
};

class IntervalBackend final : public PredictionBackend {
 public:
  [[nodiscard]] Backend id() const override { return Backend::Interval; }
  [[nodiscard]] model::Prediction predict(
      const arch::MachineModel& m, const model::WorkloadSignature& sig,
      const model::RunConfig& cfg) const override {
    count_backend_request(Backend::Interval);
    return sim::predict_interval(m, sig, cfg);
  }
};

}  // namespace

const PredictionBackend& backend_for(Backend b) {
  static const AnalyticBackend analytic;
  static const IntervalBackend interval;
  if (b == Backend::Interval) return interval;
  return analytic;
}

}  // namespace rvhpc::engine
