#include "engine/request.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "model/sweep.hpp"

namespace rvhpc::engine {
namespace {

// --- stale-key guard -------------------------------------------------------
// The memo key must cover every field of every struct it fingerprints; a
// field added to arch/model but not to the hash_* functions below would
// silently alias requests in the cache.  These asserts count aggregate
// fields at compile time: growing any struct fails the build here until
// the matching hash_* checklist (and the count) is updated.
//
// Deliberate exclusions, for the record: MachineModel::part (marketing
// label, no model effect) and PredictionRequest's tag (a display label)
// are the only fields the key skips on purpose.

struct AnyField {
  template <class T>
  operator T() const;  // never defined: unevaluated contexts only
};

template <class T, class... Fields>
constexpr std::size_t aggregate_field_count() {
  if constexpr (requires { T{Fields{}..., AnyField{}}; }) {
    return aggregate_field_count<T, Fields..., AnyField>();
  } else {
    return sizeof...(Fields);
  }
}

static_assert(aggregate_field_count<arch::VectorUnit>() == 4,
              "VectorUnit grew: update hash_vector_unit and this count");
static_assert(aggregate_field_count<arch::CoreModel>() == 11,
              "CoreModel grew: update hash_core and this count");
static_assert(aggregate_field_count<arch::CacheLevel>() == 6,
              "CacheLevel grew: update hash_machine's cache loop and this count");
static_assert(aggregate_field_count<arch::MemorySubsystem>() == 11,
              "MemorySubsystem grew: update hash_memory and this count");
static_assert(aggregate_field_count<topo::Domain>() == 5,
              "topo::Domain grew: update hash_topology and this count");
static_assert(aggregate_field_count<topo::Link>() == 5,
              "topo::Link grew: update hash_topology and this count");
static_assert(aggregate_field_count<topo::Topology>() == 2,
              "topo::Topology grew: update hash_topology and this count");
static_assert(aggregate_field_count<arch::MachineModel>() == 9,
              "MachineModel grew: update hash_machine and this count");
static_assert(aggregate_field_count<model::WorkloadSignature>() == 23,
              "WorkloadSignature grew: update hash_signature and this count");
static_assert(aggregate_field_count<model::CompilerConfig>() == 2,
              "CompilerConfig grew: update request_key and this count");
static_assert(aggregate_field_count<model::RunConfig>() == 3,
              "RunConfig grew: update request_key and this count");

// FNV-1a, 64-bit.  Fields are hashed at full bit precision (doubles via
// bit_cast, never via text formatting) so two machines differing in the
// 10th significand — exactly what sensitivity analysis produces — get
// distinct fingerprints.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void hash_vector_unit(Fnv1a& h, const arch::VectorUnit& v) {
  h.i(static_cast<int>(v.isa));
  h.i(v.width_bits);
  h.i(v.pipes);
  h.f64(v.gather_efficiency);
}

void hash_core(Fnv1a& h, const arch::CoreModel& c) {
  h.f64(c.clock_ghz);
  h.b(c.out_of_order);
  h.i(c.decode_width);
  h.i(c.issue_width);
  h.i(c.fp_units);
  h.i(c.load_store_units);
  h.i(c.pipeline_stages);
  h.f64(c.sustained_scalar_opc);
  h.i(c.miss_level_parallelism);
  h.f64(c.complex_loop_efficiency);
  hash_vector_unit(h, c.vector);
}

void hash_memory(Fnv1a& h, const arch::MemorySubsystem& mem) {
  h.i(mem.controllers);
  h.i(mem.channels);
  h.str(mem.ddr_kind);
  h.f64(mem.channel_bw_gbs);
  h.f64(mem.stream_efficiency);
  h.f64(mem.per_core_bw_gbs);
  h.f64(mem.idle_latency_ns);
  h.i(mem.controller_queue_depth);
  h.f64(mem.read_bw_bonus);
  h.i(mem.numa_regions);
  h.f64(mem.dram_gib);
}

void hash_topology(Fnv1a& h, const topo::Topology& t) {
  h.u64(t.domains.size());
  for (const topo::Domain& d : t.domains) {
    h.str(d.id);
    h.i(d.cores);
    h.f64(d.dram_gib);
    h.f64(d.dram_bw_gbs);
    h.f64(d.llc_mib);
  }
  h.u64(t.links.size());
  for (const topo::Link& l : t.links) {
    h.str(l.from);
    h.str(l.to);
    h.f64(l.bandwidth_gbs);
    h.f64(l.latency_ns);
    h.f64(l.coherence_ns);
  }
}

void hash_machine(Fnv1a& h, const arch::MachineModel& m) {
  h.str(m.name);
  h.i(static_cast<int>(m.isa));
  h.i(m.cores);
  h.i(m.cluster_size);
  hash_core(h, m.core);
  h.u64(m.caches.size());
  for (const arch::CacheLevel& c : m.caches) {
    h.str(c.name);
    h.u64(c.size_bytes);
    h.i(c.associativity);
    h.i(c.line_bytes);
    h.i(c.shared_by_cores);
    h.f64(c.latency_cycles);
  }
  hash_memory(h, m.memory);
  hash_topology(h, m.topology);
}

void hash_signature(Fnv1a& h, const model::WorkloadSignature& s) {
  h.i(static_cast<int>(s.kernel));
  h.i(static_cast<int>(s.problem_class));
  h.f64(s.total_mop);
  h.f64(s.cycles_per_op);
  h.f64(s.vectorisable_fraction);
  h.f64(s.vector_elem_parallelism);
  h.f64(s.gather_fraction);
  h.i(s.element_bits);
  h.f64(s.rvv_codegen_derate);
  h.b(s.complex_control);
  h.f64(s.serial_fraction);
  h.f64(s.read_fraction);
  h.f64(s.streamed_bytes_per_op);
  h.f64(s.random_access_per_op);
  h.f64(s.random_llc_hit_fraction);
  h.f64(s.random_overlap);
  h.b(s.dependent_chain);
  h.f64(s.capacity_sensitivity);
  h.f64(s.random_footprint_mib);
  h.f64(s.working_set_mib);
  h.f64(s.comm_bytes_per_op);
  h.f64(s.global_syncs);
  h.f64(s.imbalance_coeff);
}

std::uint64_t request_key(const arch::MachineModel& m,
                          const model::WorkloadSignature& sig,
                          const model::RunConfig& cfg, Backend backend) {
  Fnv1a h;
  hash_machine(h, m);
  hash_signature(h, sig);
  h.i(cfg.cores);
  h.i(static_cast<int>(cfg.compiler.id));
  h.b(cfg.compiler.vectorise);
  h.i(static_cast<int>(cfg.placement));
  h.i(static_cast<int>(backend));
  return h.h;
}

}  // namespace

std::string to_string(Backend b) {
  switch (b) {
    case Backend::Analytic: return "analytic";
    case Backend::Interval: return "interval";
  }
  return "unknown";
}

Backend parse_backend(const std::string& name) {
  if (name == "analytic") return Backend::Analytic;
  if (name == "interval") return Backend::Interval;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (expected \"analytic\" or \"interval\")");
}

std::uint64_t machine_fingerprint(const arch::MachineModel& m) {
  Fnv1a h;
  hash_machine(h, m);
  return h.h;
}

PredictionRequest::PredictionRequest(arch::MachineModel machine,
                                     model::WorkloadSignature sig,
                                     model::RunConfig cfg, std::string tag,
                                     Backend backend)
    : machine_(std::move(machine)),
      signature_(std::move(sig)),
      config_(cfg),
      tag_(std::move(tag)),
      backend_(backend),
      key_(request_key(machine_, signature_, config_, backend_)) {}

void RequestSet::add(arch::MachineModel machine, model::WorkloadSignature sig,
                     model::RunConfig cfg, std::string tag) {
  requests_.emplace_back(std::move(machine), std::move(sig), cfg,
                         std::move(tag));
}

void RequestSet::add_paper_setup(arch::MachineId id, model::Kernel kernel,
                                 model::ProblemClass cls, int cores,
                                 std::string tag) {
  add_paper_setup(arch::machine(id), kernel, cls, cores, std::move(tag));
}

void RequestSet::add_paper_setup(const arch::MachineModel& m,
                                 model::Kernel kernel, model::ProblemClass cls,
                                 int cores, std::string tag) {
  add(m, model::signature(kernel, cls), model::paper_run_config(m, kernel, cores),
      std::move(tag));
}

void RequestSet::add_scaling(const arch::MachineModel& m, model::Kernel kernel,
                             model::ProblemClass cls, model::RunConfig cfg,
                             std::string tag) {
  const model::WorkloadSignature sig = model::signature(kernel, cls);
  for (int cores : model::power_of_two_cores(m.cores)) {
    model::RunConfig point = cfg;
    point.cores = cores;
    add(m, sig, point, tag + "@" + std::to_string(cores));
  }
}

}  // namespace rvhpc::engine
