#include "engine/cache.hpp"

#include "obs/metrics.hpp"

namespace rvhpc::engine {
namespace {

void count_cache_event(const char* which) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& hits = obs::Registry::global().counter(
      "rvhpc_engine_cache_hits_total", "prediction memo cache hits");
  static obs::Counter& misses = obs::Registry::global().counter(
      "rvhpc_engine_cache_misses_total", "prediction memo cache misses");
  static obs::Counter& evictions = obs::Registry::global().counter(
      "rvhpc_engine_cache_evictions_total", "prediction memo cache evictions");
  switch (which[0]) {
    case 'h': hits.add(); break;
    case 'm': misses.add(); break;
    default:  evictions.add(); break;
  }
}

}  // namespace

PredictionCache::PredictionCache(std::size_t capacity) : capacity_(capacity) {}

// rvhpc: hot-path begin — engine memo lookup: every batched request pays
// this on the warm path, so it must stay allocation-free (S1xx guards it).
std::optional<model::Prediction> PredictionCache::get(std::uint64_t key) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    count_cache_event("miss");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  count_cache_event("hit");
  return it->second->prediction;
}
// rvhpc: hot-path end

bool PredictionCache::contains(std::uint64_t key) const {
  if (capacity_ == 0) return false;
  std::lock_guard lock(mu_);
  return index_.count(key) > 0;
}

void PredictionCache::put(std::uint64_t key, const model::Prediction& p) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->prediction = p;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, p});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    count_cache_event("evict");
  }
}

std::vector<CacheEntry> PredictionCache::entries() const {
  std::lock_guard lock(mu_);
  std::vector<CacheEntry> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back({e.key, e.prediction});
  return out;
}

void PredictionCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t PredictionCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

std::uint64_t PredictionCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t PredictionCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

std::uint64_t PredictionCache::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

}  // namespace rvhpc::engine
