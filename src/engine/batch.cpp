#include "engine/batch.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "engine/backend.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvhpc::engine {
namespace {

void count_batch(std::size_t requests) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& batches = obs::Registry::global().counter(
      "rvhpc_engine_batches_total", "BatchEvaluator::evaluate calls");
  static obs::Counter& reqs = obs::Registry::global().counter(
      "rvhpc_engine_requests_total", "requests evaluated through the engine");
  batches.add();
  reqs.add(requests);
}

}  // namespace

BatchEvaluator::BatchEvaluator() : BatchEvaluator(Options{}) {}

BatchEvaluator::BatchEvaluator(Options opts)
    : jobs_(opts.jobs > 0 ? opts.jobs : default_jobs()),
      cache_(opts.cache_capacity) {}

std::vector<PredictionResult> BatchEvaluator::evaluate(const RequestSet& set) {
  obs::ScopedSpan span("engine", "evaluate");
  count_batch(set.size());

  const std::vector<PredictionRequest>& requests = set.requests();
  std::vector<PredictionResult> results(requests.size());

  // A cache hit would swallow the PredictionRecord predict() emits, so
  // attribution runs pay full price for complete traces.
  const bool use_cache = obs::session() == nullptr;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const PredictionRequest& req = requests[i];
      PredictionResult& out = results[i];
      out.index = i;
      out.tag = req.tag();
      if (use_cache) {
        if (std::optional<model::Prediction> hit = cache_.get(req.key())) {
          out.prediction = *std::move(hit);
          out.from_cache = true;
          continue;
        }
      }
      out.prediction = backend_for(req.backend())
                           .predict(req.machine(), req.signature(), req.config());
      if (use_cache) cache_.put(req.key(), out.prediction);
    }
  };

  if (requests.empty()) return results;
  if (jobs_ == 1 || requests.size() == 1) {
    run_range(0, requests.size());
  } else {
    // Contiguous chunks, a few per worker, so µs-scale requests amortise
    // queue traffic while uneven chunks still balance.
    const std::size_t want =
        static_cast<std::size_t>(jobs_) * 4;
    const std::size_t chunk =
        std::max<std::size_t>(1, (requests.size() + want - 1) / want);
    ThreadPool pool(jobs_);
    for (std::size_t begin = 0; begin < requests.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, requests.size());
      pool.submit([&run_range, begin, end] { run_range(begin, end); });
    }
    pool.wait();
  }

  if (span.active()) {
    span.arg("requests", std::to_string(requests.size()));
    span.arg("jobs", std::to_string(jobs_));
  }
  return results;
}

model::Prediction BatchEvaluator::evaluate_one(
    const arch::MachineModel& m, const model::WorkloadSignature& sig,
    const model::RunConfig& cfg, Backend backend) {
  const PredictionBackend& impl = backend_for(backend);
  if (obs::session() != nullptr) return impl.predict(m, sig, cfg);
  const PredictionRequest req(m, sig, cfg, "", backend);
  if (std::optional<model::Prediction> hit = cache_.get(req.key()))
    return *std::move(hit);
  model::Prediction p = impl.predict(m, sig, cfg);
  cache_.put(req.key(), p);
  return p;
}

namespace {

std::mutex g_default_mu;
BatchEvaluator* g_default_evaluator = nullptr;  // never freed, like Registry
int g_default_jobs = 0;                         // 0 = auto

/// Evaluators retired by set_default_jobs().  Callers may hold references
/// across the swap, so old instances are never destroyed — parking them
/// here (instead of plain-leaking the pointer) keeps them reachable and
/// LeakSanitizer quiet.
std::vector<BatchEvaluator*>& retired_evaluators() {
  static auto* retired = new std::vector<BatchEvaluator*>();
  return *retired;
}

}  // namespace

BatchEvaluator& default_evaluator() {
  std::lock_guard lock(g_default_mu);
  if (!g_default_evaluator) {
    BatchEvaluator::Options opts;
    opts.jobs = g_default_jobs;
    g_default_evaluator = new BatchEvaluator(opts);
  }
  return *g_default_evaluator;
}

void set_default_jobs(int jobs) {
  std::lock_guard lock(g_default_mu);
  g_default_jobs = jobs;
  if (g_default_evaluator && g_default_evaluator->jobs() != jobs) {
    retired_evaluators().push_back(g_default_evaluator);
    BatchEvaluator::Options opts;
    opts.jobs = jobs;
    g_default_evaluator = new BatchEvaluator(opts);
  }
}

int apply_jobs_flag(int argc, char** argv) {
  constexpr std::string_view kFlag = "--jobs=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) != 0) continue;
    char* end = nullptr;
    const std::string value(arg.substr(kFlag.size()));
    const long jobs = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value.empty()) continue;
    if (jobs == 0) {
      // --jobs=0 = "every hardware thread", uniformly across binaries
      // (previously each binary silently ignored it).
      const unsigned hw = std::thread::hardware_concurrency();
      const int effective = hw > 0 ? static_cast<int>(hw) : 1;
      set_default_jobs(effective);
      return effective;
    }
    if (jobs > 0 && jobs <= 4096) {
      set_default_jobs(static_cast<int>(jobs));
      return static_cast<int>(jobs);
    }
  }
  return 0;
}

}  // namespace rvhpc::engine
