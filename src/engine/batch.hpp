#pragma once
// rvhpc::engine — BatchEvaluator: parallel, memoised, deterministic.
//
// evaluate() fans a RequestSet across a ThreadPool and returns results in
// request order regardless of completion order — each task writes only its
// own pre-allocated slot, so the output of a 1-thread and an 8-thread run
// is identical byte for byte (predict() is pure; verified by test_engine).
//
// A process-wide default evaluator (default_evaluator()) carries the shared
// memo cache; bench binaries and model::sweep route through it so a run
// that evaluates the same point twice — suite_summary's geomean columns,
// times_faster's baselines, sensitivity's centre points — computes it once.
//
// Caching and tracing interact: a cache hit skips predict() and therefore
// the PredictionRecord it would add to an active TraceSession.  Attribution
// must stay complete, so the evaluator bypasses the cache entirely (no
// reads, no writes) while obs::session() is non-null.

#include <cstddef>
#include <vector>

#include "engine/cache.hpp"
#include "engine/request.hpp"

namespace rvhpc::engine {

class BatchEvaluator {
 public:
  struct Options {
    /// Worker threads; <= 0 means default_jobs() (RVHPC_JOBS env or
    /// hardware_concurrency).
    int jobs = 0;
    /// Memo cache entries; 0 disables memoisation.
    std::size_t cache_capacity = PredictionCache::kDefaultCapacity;
  };

  BatchEvaluator();  // Options{} defaults
  explicit BatchEvaluator(Options opts);

  /// Evaluates every request; result[i] corresponds to set.requests()[i].
  [[nodiscard]] std::vector<PredictionResult> evaluate(const RequestSet& set);

  /// Single-point convenience sharing the same memo cache.
  [[nodiscard]] model::Prediction evaluate_one(
      const arch::MachineModel& m, const model::WorkloadSignature& sig,
      const model::RunConfig& cfg, Backend backend = Backend::Analytic);

  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] PredictionCache& cache() { return cache_; }

 private:
  int jobs_;
  PredictionCache cache_;
};

/// The process-wide evaluator every migrated bench/example and the
/// model::sweep helpers share.  Constructed on first use with
/// set_default_jobs()'s value if one was set, else default_jobs().
[[nodiscard]] BatchEvaluator& default_evaluator();

/// Overrides the default evaluator's pool size (the --jobs=N flag).  Takes
/// effect immediately: the evaluator is rebuilt if already constructed.
void set_default_jobs(int jobs);

/// Scans argv for `--jobs=N` and applies it via set_default_jobs().
/// `--jobs=0` means "use every hardware thread" (hardware_concurrency) on
/// every binary, so scripts can opt into full parallelism without probing
/// the host first.  Returns the effective worker count applied (0 when the
/// flag is absent or malformed); other arguments are left for the caller.
/// Prefer calling this through cli::apply_jobs_flag, which documents the
/// flag once for every tool.
int apply_jobs_flag(int argc, char** argv);

}  // namespace rvhpc::engine
