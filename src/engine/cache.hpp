#pragma once
// rvhpc::engine — LRU memoisation cache for predictions.
//
// Repeated sweep points are everywhere: suite_summary evaluates the same
// (machine, kernel, 64-core) cells Tables 3 and 4 do, every times_faster
// call re-predicts its baseline, and sensitivity analysis re-evaluates the
// unperturbed centre for each parameter.  predict() is pure, so a hash of
// the full request (machine fields, signature fields, cores, compiler,
// placement — see request.cpp) is a sound memo key.
//
// The cache is shared across pool threads behind one mutex; a lookup is a
// hash-map probe and a list splice, orders of magnitude cheaper than the
// predict() it saves.  Hit/miss/eviction counts are published through
// obs::metrics (rvhpc_engine_cache_{hits,misses,evictions}_total).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "model/predictor.hpp"

namespace rvhpc::engine {

/// One resident cache entry, as exported by PredictionCache::entries().
/// The serve layer's persistent cache (serve/persist.hpp) writes these to
/// disk and replays them through put() on load.
struct CacheEntry {
  std::uint64_t key = 0;
  model::Prediction prediction;
};

class PredictionCache {
 public:
  /// `capacity` = maximum resident entries; 0 disables caching entirely.
  explicit PredictionCache(std::size_t capacity = kDefaultCapacity);

  /// The cached prediction for `key`, refreshing its LRU position.
  [[nodiscard]] std::optional<model::Prediction> get(std::uint64_t key);

  /// Whether `key` is resident, with no side effects: no LRU refresh, no
  /// hit/miss accounting.  The serving front end probes this at dispatch
  /// time to complete warm requests inline instead of paying a pool
  /// handoff; the authoritative lookup is still the later get().
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Inserts (or refreshes) `key`; evicts the least-recently-used entry
  /// when full.
  void put(std::uint64_t key, const model::Prediction& p);

  void clear();

  /// Every resident entry, most-recently-used first — the serialisation
  /// hook the persistent cache uses.  Replaying the snapshot through put()
  /// in *reverse* (LRU first) reproduces the exact recency order, which is
  /// how save/load preserves eviction behaviour across processes.
  [[nodiscard]] std::vector<CacheEntry> entries() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Counters for this cache instance (the obs counters aggregate across
  /// all instances; tests want per-instance numbers).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

  /// Default sized for a full suite sweep (11 machines × 12 kernels × 5
  /// classes × ~8 core counts ≈ 5k distinct points) with headroom.
  static constexpr std::size_t kDefaultCapacity = 16384;

 private:
  struct Entry {
    std::uint64_t key;
    model::Prediction prediction;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rvhpc::engine
