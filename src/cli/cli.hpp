#pragma once
// rvhpc::cli — shared command-line plumbing for the repo's tools.
//
// rvhpc-lint and rvhpc-profile (and future CLIs) route their --help and
// --version output through these helpers so the tools stay consistent:
// one version string sourced from the CMake project version, one help
// layout, one place to change either.

#include <iosfwd>
#include <string>

namespace rvhpc::cli {

/// Static identity of one CLI tool.
struct ToolInfo {
  std::string name;      ///< "rvhpc-profile"
  std::string one_line;  ///< what the tool does, for the help header
  std::string usage;     ///< full usage block (no trailing newline needed)
};

/// The library version ("1.0.0"), from the CMake project version.
[[nodiscard]] std::string version_string();

/// "name (rvhpc <version>)".
void print_version(std::ostream& os, const ToolInfo& tool);

/// Help header + usage block.
void print_help(std::ostream& os, const ToolInfo& tool);

/// Handles a leading --help/-h/--version anywhere in argv: prints the
/// matching output to `os` and returns true (caller exits 0).  Returns
/// false when neither flag is present.
[[nodiscard]] bool handle_standard_flags(int argc, char** argv,
                                         const ToolInfo& tool,
                                         std::ostream& os);

/// The one sentence every tool's usage block uses for --jobs, so the flag
/// reads identically everywhere:
///   "  --jobs=N     worker threads (0 = every hardware thread)"
[[nodiscard]] std::string jobs_flag_help();

/// Parses a non-negative decimal integer flag value ("16384") into `out`.
/// Returns false on empty input, garbage, or a negative/overflowing value
/// — the shared guts of every --queue=/--cache-capacity=/--connect=PORT
/// style flag, so each tool rejects bad numbers identically.
[[nodiscard]] bool parse_size(const std::string& text, std::size_t& out);

/// Scans argv for `--jobs=N` and sizes the engine's default evaluator
/// pool: N > 0 uses exactly N workers, N == 0 uses every hardware thread
/// (std::thread::hardware_concurrency) — the same semantics on every
/// binary.  Returns the effective worker count applied, 0 when the flag is
/// absent or malformed.  Other arguments are left untouched.
int apply_jobs_flag(int argc, char** argv);

}  // namespace rvhpc::cli
