#include "cli/cli.hpp"

#include <ostream>
#include <string>

#include "engine/batch.hpp"

#ifndef RVHPC_VERSION
#define RVHPC_VERSION "0.0.0"
#endif

namespace rvhpc::cli {

std::string version_string() { return RVHPC_VERSION; }

void print_version(std::ostream& os, const ToolInfo& tool) {
  os << tool.name << " (rvhpc " << version_string() << ")\n";
}

void print_help(std::ostream& os, const ToolInfo& tool) {
  os << tool.name << " — " << tool.one_line << "\n\n"
     << tool.usage << "\n\n"
     << "Standard options:\n"
        "  --help, -h   show this help and exit\n"
        "  --version    show \"" << tool.name << " (rvhpc "
     << version_string() << ")\" and exit\n";
}

bool handle_standard_flags(int argc, char** argv, const ToolInfo& tool,
                           std::ostream& os) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(os, tool);
      return true;
    }
    if (arg == "--version") {
      print_version(os, tool);
      return true;
    }
  }
  return false;
}

bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    const long long v = std::stoll(text, &consumed);
    if (v < 0 || consumed != text.size()) return false;
    out = static_cast<std::size_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string jobs_flag_help() {
  return "  --jobs=N     worker threads (0 = every hardware thread)";
}

int apply_jobs_flag(int argc, char** argv) {
  return engine::apply_jobs_flag(argc, argv);
}

}  // namespace rvhpc::cli
