// rvhpc-client — loopback driver for a rvhpc-serve TCP listener.
//
// Reads line-delimited JSON requests (stdin or --in), streams them to a
// rvhpc-serve --listen=tcp:PORT instance, and writes every response line
// to stdout (or --out).  Reading and writing interleave through one poll()
// loop, so the client keeps draining responses while it still has
// requests to send — it can never deadlock against the server's bounded
// write buffers.  When everything is sent the write side is shut down
// (the TCP half-close is the transport's EOF, exactly like closing stdin
// on the stdio listener) and the client reads until the server closes.
//
//   rvhpc-client --connect=127.0.0.1:8437 --in=requests.jsonl --out=out.jsonl
//
// Request lines are the serve protocol verbatim (serve/service.hpp), so
// per-request backend selection works over TCP unchanged:
//
//   echo '{"id":"r1","machine":"sg2044","kernel":"MG","cores":64,
//          "backend":"interval"}' | rvhpc-client --connect=127.0.0.1:8437
//
// The sharded server completes id-carrying requests out of order
// (DESIGN.md §13), so the client matches responses by "id" rather than by
// position: every id sent must come back (echoed in its response) for the
// run to count as fully answered.  Requests without an id keep the
// in-order contract and are matched by count.  --tag-ids injects
// "id": "auto-N" into id-less request lines so even anonymous request
// logs get exact matching.
//
// Exit status: 0 when every non-blank request line got a response line
// and every id sent was echoed back, 1 when the connection failed or the
// server closed early (e.g. the client was disconnected for oversized
// lines), 2 on usage errors.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "cli/cli.hpp"
#include "http/parser.hpp"
#include "obs/json.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-client",
    "send prediction requests to a rvhpc-serve TCP listener",
    "usage: rvhpc-client --connect=HOST:PORT [--http] [--in=<requests.jsonl>]\n"
    "                    [--out=<responses.jsonl>] [--timeout-ms=T]\n"
    "                    [--tag-ids]\n"
    "\n"
    "  --connect=HOST:PORT   the rvhpc-serve --listen=tcp listener\n"
    "                        (rvhpc-serve logs \"listening on 127.0.0.1:P\")\n"
    "  --http                speak HTTP/1.1 instead of raw JSON lines:\n"
    "                        POST the whole request log as one\n"
    "                        /v1/predict body to a rvhpc-serve --http\n"
    "                        listener and parse the (chunked) response\n"
    "                        stream; same output and exit contract\n"
    "  --in=FILE             request lines to send (default: stdin)\n"
    "  --out=FILE            write response lines there (default: stdout)\n"
    "  --timeout-ms=T        fail if the socket makes no progress for T ms\n"
    "                        (default 10000; 0 waits forever)\n"
    "  --tag-ids             inject \"id\": \"auto-N\" into request lines\n"
    "                        that carry no id, so responses (which the\n"
    "                        sharded server may deliver out of order) match\n"
    "                        exactly instead of by count"};

int usage_error(const std::string& message) {
  std::cerr << "rvhpc-client: " << message << "\n\n" << kTool.usage << "\n";
  return 2;
}

int fail(const std::string& message) {
  std::cerr << "rvhpc-client: " << message << "\n";
  return 1;
}

/// What one protocol line says about itself: whether it parsed as a JSON
/// object, and its "id" member ("" when absent or not a string).  Used on
/// request lines (to decide tagging) and response lines (to match).
struct LineInfo {
  bool object = false;
  std::string id;
};

LineInfo inspect(const std::string& line) {
  LineInfo info;
  try {
    const obs::json::Value doc = obs::json::parse(line);
    info.object = doc.is(obs::json::Value::Type::Object);
    if (const obs::json::Value* id = doc.find("id");
        id && id->is(obs::json::Value::Type::String)) {
      info.id = id->str;
    }
  } catch (const std::exception&) {
  }
  return info;
}

/// The request stream as it goes on the wire, plus the matching ledger:
/// how many non-blank lines were sent and how many responses each id is
/// owed (ids may repeat).
struct RequestPlan {
  std::string wire;
  std::size_t sent = 0;
  std::map<std::string, std::size_t> expected;
};

RequestPlan plan_requests(const std::string& raw, bool tag_ids) {
  RequestPlan plan;
  plan.wire.reserve(raw.size());
  std::istringstream in(raw);
  std::string line;
  std::size_t next_tag = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) {
      plan.wire += line;
      plan.wire += '\n';
      continue;
    }
    ++plan.sent;
    const LineInfo info = inspect(line);
    std::string id = info.id;
    if (id.empty() && tag_ids && info.object) {
      // Tag id-less requests so their responses match exactly; lines that
      // do not even parse go out untouched (the server answers them with
      // a structured parse error, matched by count).
      const std::size_t brace = line.find('{');
      id = "auto-" + std::to_string(next_tag++);
      line.insert(brace + 1, "\"id\": \"" + id + "\", ");
    }
    if (!id.empty()) ++plan.expected[id];
    plan.wire += line;
    plan.wire += '\n';
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;

  std::string host = "127.0.0.1";
  int port = -1;
  std::string in_path, out_path;
  double timeout_ms = 10000.0;
  bool tag_ids = false;
  bool http_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string spec = arg.substr(std::string("--connect=").size());
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == spec.size()) {
        return usage_error("--connect wants HOST:PORT, got '" + spec + "'");
      }
      host = spec.substr(0, colon);
      std::size_t parsed = 0;
      if (!cli::parse_size(spec.substr(colon + 1), parsed) || parsed == 0 ||
          parsed > 65535) {
        return usage_error("bad port in '" + spec + "'");
      }
      port = static_cast<int>(parsed);
    } else if (arg.rfind("--in=", 0) == 0) {
      in_path = arg.substr(std::string("--in=").size());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      try {
        timeout_ms = std::stod(arg.substr(std::string("--timeout-ms=").size()));
      } catch (const std::exception&) {
        return usage_error("bad --timeout-ms value '" + arg + "'");
      }
      if (timeout_ms < 0) return usage_error("--timeout-ms must be >= 0");
    } else if (arg == "--tag-ids") {
      tag_ids = true;
    } else if (arg == "--http") {
      http_mode = true;
    } else {
      return usage_error("unknown argument '" + arg + "'");
    }
  }
  if (port < 0) return usage_error("--connect=HOST:PORT is required");

  // Requests are read up-front: request logs are small, and it frees the
  // poll loop to care only about the socket.
  std::string requests;
  if (in_path.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    requests = buf.str();
  } else {
    std::ifstream f(in_path, std::ios::binary);
    if (!f.good()) return usage_error("cannot open --in file '" + in_path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    requests = buf.str();
  }
  if (!requests.empty() && requests.back() != '\n') requests += '\n';
  RequestPlan plan = plan_requests(requests, tag_ids);
  requests = std::move(plan.wire);
  const std::size_t sent_requests = plan.sent;
  if (http_mode) {
    // One POST carries the whole request log as its body; the server
    // streams the responses back (chunked for batches).  Connection:
    // close keeps the exchange single-shot, like the raw wire's
    // half-close contract.
    std::string head = "POST /v1/predict HTTP/1.1\r\nHost: " + host +
                       "\r\nContent-Type: application/json\r\n"
                       "Connection: close\r\nContent-Length: " +
                       std::to_string(requests.size()) + "\r\n\r\n";
    requests.insert(0, head);
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file.good()) {
      return usage_error("cannot open --out file '" + out_path + "'");
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket() failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad host '" + host + "' (want a dotted IPv4 address)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return fail("cannot connect to " + host + ":" + std::to_string(port) +
                ": " + detail);
  }
  {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  std::size_t sent_bytes = 0;
  std::size_t responses = 0;
  std::size_t matched = 0;
  std::string inbuf;
  // Responses are matched by id, not by position: the sharded server
  // delivers id-carrying responses out of order, and every id sent must
  // come back for the run to count as fully answered.
  std::map<std::string, std::size_t>& owed = plan.expected;
  const auto consume_response = [&](const std::string& rline) {
    out << rline << '\n';
    ++responses;
    const std::string id = inspect(rline).id;
    if (id.empty()) return;
    if (const auto it = owed.find(id); it != owed.end() && it->second > 0) {
      if (--it->second == 0) owed.erase(it);
      ++matched;
    }
  };
  // --http: the stream is one HTTP response whose (possibly chunked)
  // body is the familiar JSON lines — the parser unwraps the framing and
  // the lines flow through the same matching ledger.
  http::ResponseParser rp;
  std::size_t body_seen = 0;
  const auto drain_http_body = [&] {
    const std::string& body = rp.body();
    std::size_t nl;
    while ((nl = body.find('\n', body_seen)) != std::string::npos) {
      consume_response(body.substr(body_seen, nl - body_seen));
      body_seen = nl + 1;
    }
  };
  bool eof = false;
  bool half_closed = false;
  int idle_polls = 0;
  const int poll_ms = 50;
  const int max_idle_polls =
      timeout_ms > 0 ? static_cast<int>(timeout_ms / poll_ms) + 1 : -1;
  while (!eof) {
    pollfd p{fd, POLLIN, 0};
    if (sent_bytes < requests.size()) p.events |= POLLOUT;
    const int rc = ::poll(&p, 1, poll_ms);
    if (rc < 0 && errno != EINTR) {
      ::close(fd);
      return fail(std::string("poll() failed: ") + std::strerror(errno));
    }
    bool progressed = false;

    if (sent_bytes < requests.size() && (p.revents & POLLOUT) != 0) {
      const ssize_t n = ::send(fd, requests.data() + sent_bytes,
                               requests.size() - sent_bytes, MSG_NOSIGNAL);
      if (n > 0) {
        sent_bytes += static_cast<std::size_t>(n);
        progressed = true;
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        // Server closed on us mid-send (e.g. we were disconnected); keep
        // reading — its farewell explains why.
        sent_bytes = requests.size();
        half_closed = true;
      }
    }
    if (sent_bytes == requests.size() && !half_closed) {
      // Everything sent: half-close is the protocol's "no more requests".
      (void)::shutdown(fd, SHUT_WR);
      half_closed = true;
      progressed = true;
    }

    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        if (http_mode) {
          (void)rp.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
          drain_http_body();
          if (rp.failed()) {
            ::close(fd);
            return fail(std::string("bad HTTP response: ") +
                        http::to_string(rp.error()));
          }
        } else {
          inbuf.append(chunk, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = inbuf.find('\n')) != std::string::npos) {
            const std::string rline = inbuf.substr(0, nl);
            inbuf.erase(0, nl + 1);
            consume_response(rline);
          }
        }
        progressed = true;
      } else if (n == 0) {
        eof = true;
        break;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        eof = true;  // reset counts as the server hanging up
        break;
      }
    }

    idle_polls = progressed ? 0 : idle_polls + 1;
    if (max_idle_polls > 0 && idle_polls > max_idle_polls) {
      ::close(fd);
      return fail("no progress for " + std::to_string(timeout_ms) +
                  " ms (server hung?); gave up after " +
                  std::to_string(responses) + " response(s)");
    }
  }
  ::close(fd);
  if (http_mode) {
    rp.finish_eof();
    drain_http_body();
    if (rp.status() != 0 && rp.status() != 200) {
      std::cerr << "rvhpc-client: HTTP " << rp.status() << " " << rp.reason()
                << "\n";
    }
    // Truncated trailing body bytes, verbatim — same as the raw wire.
    if (body_seen < rp.body().size()) out << rp.body().substr(body_seen);
  } else if (!inbuf.empty()) {
    out << inbuf;  // truncated trailing line, verbatim
  }
  out.flush();

  std::size_t missing = 0;
  for (const auto& [id, n] : owed) missing += n;
  std::cerr << "rvhpc-client: sent " << sent_requests << " request(s), "
            << "received " << responses << " response line(s), matched "
            << matched << " id(s)\n";
  if (missing > 0) {
    std::cerr << "rvhpc-client: " << missing << " id(s) never answered:";
    std::size_t shown = 0;
    for (const auto& [id, n] : owed) {
      if (shown++ == 8) {
        std::cerr << " ...";
        break;
      }
      std::cerr << " " << id << (n > 1 ? "(x" + std::to_string(n) + ")" : "");
    }
    std::cerr << "\n";
  }
  return responses == sent_requests && missing == 0 ? 0 : 1;
}
