// rvhpc-client — loopback driver for a rvhpc-serve TCP listener.
//
// Reads line-delimited JSON requests (stdin or --in), streams them to a
// rvhpc-serve --listen=tcp:PORT instance, and writes every response line
// to stdout (or --out).  Reading and writing interleave through one poll()
// loop, so the client keeps draining responses while it still has
// requests to send — it can never deadlock against the server's bounded
// write buffers.  When everything is sent the write side is shut down
// (the TCP half-close is the transport's EOF, exactly like closing stdin
// on the stdio listener) and the client reads until the server closes.
//
//   rvhpc-client --connect=127.0.0.1:8437 --in=requests.jsonl --out=out.jsonl
//
// Request lines are the serve protocol verbatim (serve/service.hpp), so
// per-request backend selection works over TCP unchanged:
//
//   echo '{"id":"r1","machine":"sg2044","kernel":"MG","cores":64,
//          "backend":"interval"}' | rvhpc-client --connect=127.0.0.1:8437
//
// Exit status: 0 when every non-blank request line got a response line,
// 1 when the connection failed or the server closed early (e.g. the
// client was disconnected for oversized lines), 2 on usage errors.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli/cli.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-client",
    "send prediction requests to a rvhpc-serve TCP listener",
    "usage: rvhpc-client --connect=HOST:PORT [--in=<requests.jsonl>]\n"
    "                    [--out=<responses.jsonl>] [--timeout-ms=T]\n"
    "\n"
    "  --connect=HOST:PORT   the rvhpc-serve --listen=tcp listener\n"
    "                        (rvhpc-serve logs \"listening on 127.0.0.1:P\")\n"
    "  --in=FILE             request lines to send (default: stdin)\n"
    "  --out=FILE            write response lines there (default: stdout)\n"
    "  --timeout-ms=T        fail if the socket makes no progress for T ms\n"
    "                        (default 10000; 0 waits forever)"};

int usage_error(const std::string& message) {
  std::cerr << "rvhpc-client: " << message << "\n\n" << kTool.usage << "\n";
  return 2;
}

int fail(const std::string& message) {
  std::cerr << "rvhpc-client: " << message << "\n";
  return 1;
}

std::size_t count_nonblank_lines(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") != std::string::npos) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  if (cli::handle_standard_flags(argc, argv, kTool, std::cout)) return 0;

  std::string host = "127.0.0.1";
  int port = -1;
  std::string in_path, out_path;
  double timeout_ms = 10000.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string spec = arg.substr(std::string("--connect=").size());
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == spec.size()) {
        return usage_error("--connect wants HOST:PORT, got '" + spec + "'");
      }
      host = spec.substr(0, colon);
      std::size_t parsed = 0;
      if (!cli::parse_size(spec.substr(colon + 1), parsed) || parsed == 0 ||
          parsed > 65535) {
        return usage_error("bad port in '" + spec + "'");
      }
      port = static_cast<int>(parsed);
    } else if (arg.rfind("--in=", 0) == 0) {
      in_path = arg.substr(std::string("--in=").size());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      try {
        timeout_ms = std::stod(arg.substr(std::string("--timeout-ms=").size()));
      } catch (const std::exception&) {
        return usage_error("bad --timeout-ms value '" + arg + "'");
      }
      if (timeout_ms < 0) return usage_error("--timeout-ms must be >= 0");
    } else {
      return usage_error("unknown argument '" + arg + "'");
    }
  }
  if (port < 0) return usage_error("--connect=HOST:PORT is required");

  // Requests are read up-front: request logs are small, and it frees the
  // poll loop to care only about the socket.
  std::string requests;
  if (in_path.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    requests = buf.str();
  } else {
    std::ifstream f(in_path, std::ios::binary);
    if (!f.good()) return usage_error("cannot open --in file '" + in_path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    requests = buf.str();
  }
  if (!requests.empty() && requests.back() != '\n') requests += '\n';
  const std::size_t sent_requests = count_nonblank_lines(requests);

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file.good()) {
      return usage_error("cannot open --out file '" + out_path + "'");
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket() failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad host '" + host + "' (want a dotted IPv4 address)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return fail("cannot connect to " + host + ":" + std::to_string(port) +
                ": " + detail);
  }
  {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  std::size_t sent_bytes = 0;
  std::size_t responses = 0;
  bool eof = false;
  bool half_closed = false;
  int idle_polls = 0;
  const int poll_ms = 50;
  const int max_idle_polls =
      timeout_ms > 0 ? static_cast<int>(timeout_ms / poll_ms) + 1 : -1;
  while (!eof) {
    pollfd p{fd, POLLIN, 0};
    if (sent_bytes < requests.size()) p.events |= POLLOUT;
    const int rc = ::poll(&p, 1, poll_ms);
    if (rc < 0 && errno != EINTR) {
      ::close(fd);
      return fail(std::string("poll() failed: ") + std::strerror(errno));
    }
    bool progressed = false;

    if (sent_bytes < requests.size() && (p.revents & POLLOUT) != 0) {
      const ssize_t n = ::send(fd, requests.data() + sent_bytes,
                               requests.size() - sent_bytes, MSG_NOSIGNAL);
      if (n > 0) {
        sent_bytes += static_cast<std::size_t>(n);
        progressed = true;
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        // Server closed on us mid-send (e.g. we were disconnected); keep
        // reading — its farewell explains why.
        sent_bytes = requests.size();
        half_closed = true;
      }
    }
    if (sent_bytes == requests.size() && !half_closed) {
      // Everything sent: half-close is the protocol's "no more requests".
      (void)::shutdown(fd, SHUT_WR);
      half_closed = true;
      progressed = true;
    }

    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        out.write(chunk, static_cast<std::streamsize>(n));
        for (ssize_t i = 0; i < n; ++i) {
          if (chunk[i] == '\n') ++responses;
        }
        progressed = true;
      } else if (n == 0) {
        eof = true;
        break;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        eof = true;  // reset counts as the server hanging up
        break;
      }
    }

    idle_polls = progressed ? 0 : idle_polls + 1;
    if (max_idle_polls > 0 && idle_polls > max_idle_polls) {
      ::close(fd);
      return fail("no progress for " + std::to_string(timeout_ms) +
                  " ms (server hung?); gave up after " +
                  std::to_string(responses) + " response(s)");
    }
  }
  ::close(fd);
  out.flush();

  std::cerr << "rvhpc-client: sent " << sent_requests << " request(s), "
            << "received " << responses << " response line(s)\n";
  return responses == sent_requests ? 0 : 1;
}
