#include "net/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/thread_pool.hpp"
#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace rvhpc::net {
namespace {

using Clock = std::chrono::steady_clock;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// A transport-level error in the service's error-response shape (no
/// trailing newline), so a client can parse every line it ever receives
/// the same way.
std::string error_body(const char* kind, const std::string& message) {
  return std::string("{\"id\": \"\", \"status\": \"error\", \"error\": \"") +
         kind + "\", \"message\": \"" + obs::json::escape(message) + "\"}";
}

/// The newline-terminated farewell variant (written straight to a write
/// buffer, outside the response-delivery path).
std::string error_line(const char* kind, const std::string& message) {
  return error_body(kind, message) + "\n";
}

// --- net-level metrics ----------------------------------------------------

enum class Count { Connection, Answered };

void count(Count which, std::uint64_t n = 1) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& conns = obs::Registry::global().counter(
      "rvhpc_net_connections_total", "TCP connections accepted");
  static obs::Counter& answered = obs::Registry::global().counter(
      "rvhpc_net_requests_total", "request lines answered over TCP");
  switch (which) {
    case Count::Connection: conns.add(n); break;
    case Count::Answered:   answered.add(n); break;
  }
}

void count_bytes(bool in, std::uint64_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  static obs::Counter& read = obs::Registry::global().counter(
      "rvhpc_net_bytes_read_total", "payload bytes received over TCP");
  static obs::Counter& written = obs::Registry::global().counter(
      "rvhpc_net_bytes_written_total", "response bytes written over TCP");
  (in ? read : written).add(n);
}

void count_disconnect(Disconnect cause) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& eof = obs::Registry::global().counter(
      "rvhpc_net_disconnects_eof_total", "connections closed by the client");
  static obs::Counter& idle = obs::Registry::global().counter(
      "rvhpc_net_disconnects_idle_total",
      "connections dropped by the idle timeout");
  static obs::Counter& oversize = obs::Registry::global().counter(
      "rvhpc_net_disconnects_oversize_total",
      "connections dropped for an oversized request line");
  static obs::Counter& slow = obs::Registry::global().counter(
      "rvhpc_net_disconnects_slow_reader_total",
      "connections dropped for not draining their responses");
  static obs::Counter& refused = obs::Registry::global().counter(
      "rvhpc_net_disconnects_refused_total",
      "connections refused past the connection cap");
  static obs::Counter& error = obs::Registry::global().counter(
      "rvhpc_net_disconnects_error_total",
      "connections dropped on a socket error");
  static obs::Counter& drained = obs::Registry::global().counter(
      "rvhpc_net_disconnects_drained_total",
      "connections open when the server drained");
  // Newer causes use the labeled-series convention (one metric, a
  // reason label) rather than minting another _disconnects_<cause>_
  // name; the legacy names above predate it and stay for dashboards.
  static obs::Counter& header_timeout = obs::Registry::global().counter(
      "rvhpc_net_disconnect_total{reason=\"header_timeout\"}",
      "connections dropped for dribbling a request past the header "
      "deadline");
  switch (cause) {
    case Disconnect::Eof:        eof.add(); break;
    case Disconnect::Idle:       idle.add(); break;
    case Disconnect::Oversize:   oversize.add(); break;
    case Disconnect::SlowReader: slow.add(); break;
    case Disconnect::Refused:    refused.add(); break;
    case Disconnect::Error:      error.add(); break;
    case Disconnect::Drained:    drained.add(); break;
    case Disconnect::HeaderTimeout: header_timeout.add(); break;
  }
}

/// Per-route, per-status HTTP request counter.  The obs registry is a
/// flat name→instrument map, so Prometheus labels are embedded in the
/// name; the registry dedupes repeat lookups.
void count_http(const char* route, int status) {
  if (!obs::metrics_enabled()) return;
  // The overwhelmingly common series is a successful predict; caching its
  // instrument keeps the per-request cost at one compare instead of a
  // name build plus a locked registry lookup (the http_throughput gate
  // measures this path against the raw wire).
  static obs::Counter& predict_ok = obs::Registry::global().counter(
      "rvhpc_http_requests_total{route=\"/v1/predict\",status=\"200\"}",
      "HTTP exchanges completed, by route and status");
  if (status == 200 && std::strcmp(route, "/v1/predict") == 0) {
    predict_ok.add();
  } else {
    std::string name = "rvhpc_http_requests_total{route=\"";
    name += route;
    name += "\",status=\"";
    name += std::to_string(status);
    name += "\"}";
    obs::Registry::global()
        .counter(name, "HTTP exchanges completed, by route and status")
        .add();
  }
  static obs::Histogram& statuses = obs::Registry::global().histogram(
      "rvhpc_http_response_status", "HTTP status codes answered",
      {99.5, 199.5, 299.5, 399.5, 499.5, 599.5});
  statuses.observe(static_cast<double>(status));
}

void observe_http_duration(double start_us) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram& duration = obs::Registry::global().histogram(
      "rvhpc_http_request_duration_seconds",
      "wall time from a parsed HTTP request to its response head");
  duration.observe((now_us() - start_us) / 1e6);
}

/// Extracts the first complete line (without the '\n', trailing '\r'
/// stripped) from `buf`; false when no newline is buffered yet.
bool take_line(std::string& buf, std::string& line) {
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf, 0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(0, nl + 1);
  return true;
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

const char* to_string(Disconnect cause) {
  switch (cause) {
    case Disconnect::Eof:        return "eof";
    case Disconnect::Idle:       return "idle";
    case Disconnect::Oversize:   return "oversize";
    case Disconnect::SlowReader: return "slow-reader";
    case Disconnect::Refused:    return "refused";
    case Disconnect::Error:      return "error";
    case Disconnect::Drained:    return "drained";
    case Disconnect::HeaderTimeout: return "header-timeout";
  }
  return "unknown";
}

// --- Listener -------------------------------------------------------------

Listener::~Listener() { close(); }

void Listener::open(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + detail);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("listen() failed: " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  set_nonblocking(fd_);
}

int Listener::accept_client() const {
  if (fd_ < 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client >= 0) set_nonblocking(client);
  return client;
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

namespace detail {

// --- per-connection state (owned exclusively by one shard) ----------------

/// One admitted request awaiting delivery.  `ordered` requests (no "id" on
/// the wire) must be delivered in admission order; unordered ones deliver
/// the moment their result is ready, from any position in the deque.
struct Pending {
  std::uint64_t seq = 0;
  bool ordered = true;
  bool done = false;       ///< `response` is final
  bool delivered = false;  ///< appended to the write buffer (or dropped)
  std::future<std::string> result;  ///< compute phase, when dispatched
  std::string response;             ///< no trailing newline
};

/// One HTTP request/response pair in flight on a connection.  Exchanges
/// answer strictly in request order (HTTP pipelining), so only the front
/// of Connection::exchanges ever writes to the socket; a batch POST
/// streams each prediction as a chunk the moment it completes (subject
/// to the same ordered/unordered id contract as the raw wire).
struct HttpExchange {
  int status = 200;
  const char* route = "other";  ///< http::route_label, stable storage
  const char* allow = "";       ///< Allow header for 405 responses
  const char* content_type = "application/json";
  bool chunked = false;    ///< batch predict: stream items as chunks
  bool immediate = false;  ///< `body` is final; no items pending
  bool head_sent = false;
  bool head_only = false;  ///< HEAD request: send the head, omit the body
  bool keep_alive = true;
  bool healthz = false;  ///< status/body computed at delivery (drain-aware)
  bool metrics = false;  ///< body rendered at delivery (scrape ordering)
  std::string body;
  // Predict lines awaiting completion.  A vector with a front cursor
  // instead of a deque: the common single-request exchange then costs
  // one allocation, not a deque block map (this path is what the
  // http_throughput gate measures against the raw wire).
  std::vector<Pending> items;
  std::size_t next_item = 0;  ///< first item not yet consumed in order
  double start_us = 0.0;
};

struct Connection {
  int fd = -1;
  std::string rbuf;
  std::string wbuf;
  std::deque<Pending> pending;
  std::uint64_t next_seq = 0;
  double last_read_us = 0.0;
  /// When the currently-unfinished request's first byte arrived; 0 when
  /// no request is mid-frame.  Unlike last_read_us this is *not* advanced
  /// by further bytes — a slow loris dripping one header byte per
  /// interval keeps resetting the idle clock but never this one.
  double partial_since_us = 0.0;
  double closing_since_us = 0.0;
  bool draining = false;  ///< EOF seen; answering what is buffered
  bool closing = false;   ///< farewell queued; close once it is flushed
  Disconnect cause = Disconnect::Eof;
  // HTTP front end (connections accepted by the HTTP listener only).
  bool http = false;
  bool sent_continue = false;  ///< 100 Continue emitted for this request
  std::unique_ptr<http::RequestParser> parser;
  std::deque<HttpExchange> exchanges;
};

/// Locates a dispatched request by per-connection sequence number — it
/// lives either on the raw-wire deque or inside an HTTP exchange.
Pending* find_pending(Connection& c, std::uint64_t seq) {
  for (Pending& p : c.pending) {
    if (p.seq == seq) return &p;
  }
  for (HttpExchange& ex : c.exchanges) {
    for (Pending& p : ex.items) {
      if (p.seq == seq) return &p;
    }
  }
  return nullptr;
}

// --- CacheFlusher: the background checkpoint thread -----------------------

/// Owns the thread that writes the persistent cache.  Shards and pool
/// workers only ever notify() it — the file write (and its "serve:
/// checkpointed" log line) never runs on an event loop or a compute
/// worker.  Destruction performs the drain-time flush and joins.
class CacheFlusher {
 public:
  CacheFlusher(serve::Service& service, std::ostream& log)
      : service_(service), log_(log), thread_([this] { loop(); }) {}

  ~CacheFlusher() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  CacheFlusher(const CacheFlusher&) = delete;
  CacheFlusher& operator=(const CacheFlusher&) = delete;

  void notify() {
    {
      std::lock_guard lock(mu_);
      due_ = true;
    }
    cv_.notify_one();
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return due_ || stop_; });
      const bool stopping = stop_;
      due_ = false;
      lock.unlock();
      // On stop this doubles as the drain-time checkpoint, so the log and
      // the cache file look exactly like the single-threaded server's.
      service_.flush(log_);
      lock.lock();
      if (stopping) return;
    }
  }

  serve::Service& service_;
  std::ostream& log_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool due_ = false;
  bool stop_ = false;
  std::thread thread_;
};

// --- Shard: one event loop ------------------------------------------------

/// One poll() loop on its own thread.  The acceptor deals sockets in via
/// adopt(); the compute pool reports finished futures via on_complete();
/// both poke the wakeup pipe so the loop reacts immediately instead of on
/// the next poll timeout.  Every Connection is touched by exactly one
/// shard thread — the pool only ever holds a weak_ptr it never
/// dereferences — so connection state needs no locks.
class Shard {
 public:
  Shard(Server& server, std::size_t index);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();
  void request_stop();
  void join();

  /// Hands an accepted socket to this shard (acceptor thread).  `refused`
  /// connections get the polite "overloaded" farewell (a structured line
  /// on the raw wire, a 503 + Retry-After over HTTP) and close.  `http`
  /// fixes the connection's protocol for its lifetime.
  void adopt(int fd, bool refused, bool http);

  /// A dispatched compute phase finished (pool thread): queue the
  /// completion and wake the loop so the response is delivered now.
  void on_complete(const std::weak_ptr<Connection>& conn, std::uint64_t seq);

 private:
  struct Completion {
    std::weak_ptr<Connection> conn;
    std::uint64_t seq = 0;
  };

  void loop();
  void drain();
  void wake();
  void drain_wakeup();
  void adopt_incoming();
  void read_ready(Connection& c);
  bool admit_one(const std::shared_ptr<Connection>& cp);
  bool process_http_one(const std::shared_ptr<Connection>& cp);
  void handle_http_request(const std::shared_ptr<Connection>& cp);
  void fail_http(Connection& c, http::Error err);
  void flush_http(Connection& c);
  bool append_out(Connection& c, std::string_view data);
  void finish_exchange(Connection& c, const HttpExchange& ex);
  void process_lines();
  Pending evaluate_line(const std::shared_ptr<Connection>& cp,
                        const std::string& line);
  void dispatch(const std::shared_ptr<Connection>& cp, Pending& p,
                serve::Service::Admission adm);
  void enqueue_done(Connection& c, std::string response, bool ordered);
  void deliver(Connection& c, Pending& p);
  void note_answered();
  void flush_deliverable(Connection& c);
  void drain_completions();
  void flush_writes();
  void reap_and_time_out();
  void begin_close(Connection& c, Disconnect cause,
                   const std::string& farewell);
  void close_now(Connection& c, Disconnect cause);
  void publish_gauges() const;

  Server& server_;
  const std::size_t index_;
  int wake_fds_[2] = {-1, -1};  ///< [0] read end (polled), [1] write end
  std::thread thread_;
  std::atomic<bool> stop_{false};

  struct Incoming {
    int fd = -1;
    bool refused = false;
    bool http = false;
  };

  std::mutex in_mu_;
  std::vector<Incoming> incoming_;
  std::mutex cq_mu_;
  std::vector<Completion> completions_;

  // Loop-thread-only state.
  std::vector<std::shared_ptr<Connection>> conns_;
  std::size_t rr_ = 0;       ///< round-robin fairness cursor
  std::string http_scratch_;  ///< response head/chunk build buffer

  obs::Counter* conns_counter_ = nullptr;
  obs::Counter* reqs_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

Shard::Shard(Server& server, std::size_t index)
    : server_(server), index_(index) {
  if (::pipe(wake_fds_) == 0) {
    set_nonblocking(wake_fds_[0]);
    set_nonblocking(wake_fds_[1]);
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;  // degraded: poll-timeout latency only
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::global();
    const std::string prefix = "rvhpc_net_shard_" + std::to_string(index);
    conns_counter_ = &reg.counter(prefix + "_connections_total",
                                  "connections adopted by this shard");
    reqs_counter_ = &reg.counter(prefix + "_requests_total",
                                 "response lines delivered by this shard");
    depth_gauge_ =
        &reg.gauge(prefix + "_queue_depth_bytes",
                   "request bytes buffered on this shard, not yet admitted");
  }
}

Shard::~Shard() {
  request_stop();
  join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  for (const Incoming& in : incoming_) ::close(in.fd);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void Shard::start() {
  thread_ = std::thread([this] { loop(); });
}

void Shard::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake();
}

void Shard::join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::adopt(int fd, bool refused, bool http) {
  {
    std::lock_guard lock(in_mu_);
    incoming_.push_back({fd, refused, http});
  }
  wake();
}

void Shard::on_complete(const std::weak_ptr<Connection>& conn,
                        std::uint64_t seq) {
  {
    std::lock_guard lock(cq_mu_);
    completions_.push_back({conn, seq});
  }
  wake();
}

void Shard::wake() {
  if (wake_fds_[1] < 0) return;
  // Best-effort and non-blocking: a full pipe already guarantees the loop
  // has wakeups queued, and the poll timeout backstops a lost byte.
  const char byte = 0;
  (void)!::write(wake_fds_[1], &byte, 1);
}

void Shard::drain_wakeup() {
  if (wake_fds_[0] < 0) return;
  char sink[256];
  while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
  }
}

void Shard::adopt_incoming() {
  std::vector<Incoming> in;
  {
    std::lock_guard lock(in_mu_);
    in.swap(incoming_);
  }
  for (const Incoming& inc : in) {
    auto c = std::make_shared<Connection>();
    c->fd = inc.fd;
    c->http = inc.http;
    c->last_read_us = now_us();
    if (inc.http) {
      http::Limits limits;
      limits.max_body = server_.opts_.max_body_bytes;
      c->parser = std::make_unique<http::RequestParser>(limits);
    }
    if (conns_counter_) conns_counter_->add();
    if (inc.refused) {
      // Polite refusal: a structured answer beats a dangling connect.
      const std::string reason =
          "connection limit (" +
          std::to_string(server_.opts_.max_connections) +
          ") reached; retry later";
      if (inc.http) {
        const std::string body = error_line("overloaded", reason);
        std::string farewell;
        http::append_head(farewell, 503, /*keep_alive=*/false,
                          "application/json", body.size(),
                          "Retry-After: 1\r\n");
        farewell += body;
        count_http("other", 503);
        begin_close(*c, Disconnect::Refused, farewell);
      } else {
        begin_close(*c, Disconnect::Refused, error_line("overloaded", reason));
      }
    }
    conns_.push_back(std::move(c));
  }
}

void Shard::begin_close(Connection& c, Disconnect cause,
                        const std::string& farewell) {
  if (c.closing) return;
  // The farewell rides the normal write path; if even that does not fit
  // the bound the client is hopeless and the buffer stays as-is.
  if (c.wbuf.size() + farewell.size() <= server_.opts_.max_write_buffer) {
    c.wbuf += farewell;
  }
  c.rbuf.clear();
  c.closing = true;
  c.cause = cause;
  c.closing_since_us = now_us();
}

void Shard::close_now(Connection& c, Disconnect cause) {
  if (c.fd < 0) return;
  ::close(c.fd);
  c.fd = -1;
  server_.open_conns_.fetch_sub(1, std::memory_order_relaxed);
  count_disconnect(cause);
  std::lock_guard lock(server_.stats_mu_);
  switch (cause) {
    case Disconnect::Eof:        ++server_.stats_.disconnect_eof; break;
    case Disconnect::Idle:       ++server_.stats_.disconnect_idle; break;
    case Disconnect::Oversize:   ++server_.stats_.disconnect_oversize; break;
    case Disconnect::SlowReader: ++server_.stats_.disconnect_slow_reader; break;
    case Disconnect::Refused:    ++server_.stats_.disconnect_refused; break;
    case Disconnect::Error:      ++server_.stats_.disconnect_error; break;
    case Disconnect::Drained:    ++server_.stats_.disconnect_drained; break;
    case Disconnect::HeaderTimeout:
      ++server_.stats_.disconnect_header_timeout;
      break;
  }
}

void Shard::read_ready(Connection& c) {
  char chunk[4096];
  while (!c.draining && !c.closing &&
         c.rbuf.size() <= server_.opts_.max_line_bytes) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      c.last_read_us = now_us();
      count_bytes(true, static_cast<std::uint64_t>(n));
      std::lock_guard lock(server_.stats_mu_);
      server_.stats_.bytes_in += static_cast<std::uint64_t>(n);
    } else if (n == 0) {
      // EOF: the client is done sending.  Its buffered complete lines are
      // still answered; a trailing partial line (a client that died
      // mid-request) is discarded.
      c.draining = true;
      c.cause = Disconnect::Eof;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    } else if (errno == EINTR) {
      continue;
    } else {
      close_now(c, Disconnect::Error);
      return;
    }
  }
}

void Shard::enqueue_done(Connection& c, std::string response, bool ordered) {
  Pending p;
  p.seq = c.next_seq++;
  p.ordered = ordered;
  p.done = true;
  p.response = std::move(response);
  c.pending.push_back(std::move(p));
}

/// Admits at most one buffered line of `cp`; true when a line was consumed
/// (the round-robin scheduler uses this to detect an idle pass).
bool Shard::admit_one(const std::shared_ptr<Connection>& cp) {
  Connection& c = *cp;
  if (c.fd < 0 || c.closing) return false;

  std::string line;
  if (!take_line(c.rbuf, line)) {
    // No complete line.  A partial line past the bound can never complete
    // within it — reject it now rather than buffering forever.
    if (c.rbuf.size() > server_.opts_.max_line_bytes) {
      begin_close(c, Disconnect::Oversize,
                  error_line("overloaded",
                             "request line exceeds " +
                                 std::to_string(server_.opts_.max_line_bytes) +
                                 " bytes"));
    }
    return false;
  }
  if (blank(line)) return true;  // consumed input, no response owed
  if (line.size() > server_.opts_.max_line_bytes) {
    begin_close(c, Disconnect::Oversize,
                error_line("overloaded",
                           "request line exceeds " +
                               std::to_string(server_.opts_.max_line_bytes) +
                               " bytes"));
    return false;
  }
  c.pending.push_back(evaluate_line(cp, line));
  flush_deliverable(c);
  return true;
}

/// The protocol-independent admission core: turns one request line into a
/// Pending — resolved inline (overloaded rejection, parse/lint error,
/// warm cache hit) or dispatched to the compute pool.  The raw wire
/// pushes the result onto Connection::pending; the HTTP front end onto
/// the owning exchange's items.
Pending Shard::evaluate_line(const std::shared_ptr<Connection>& cp,
                             const std::string& line) {
  Connection& c = *cp;
  Pending p;
  p.seq = c.next_seq++;

  // A single line past the wire bound answers an error instead of ever
  // being parsed (over HTTP the connection survives — the body bound
  // already capped total memory; on the raw wire admit_one closed it).
  if (line.size() > server_.opts_.max_line_bytes) {
    p.ordered = false;
    p.done = true;
    p.response = error_body(
        "overloaded", "request line exceeds " +
                          std::to_string(server_.opts_.max_line_bytes) +
                          " bytes");
    return p;
  }

  // Admission bound, checked before the parse exactly like the stdio loop
  // checks its backlog: compute dispatched and not yet completed past the
  // service's queue capacity is answered "overloaded" immediately.
  if (server_.inflight_.load(std::memory_order_relaxed) >=
      server_.service_.options().queue_capacity) {
    p.ordered = false;
    p.done = true;
    p.response = server_.service_.reject_overloaded();
    return p;
  }

  serve::Service::Admission adm = server_.service_.admit(line);
  p.ordered = !adm.had_id;
  if (!adm.request) {
    // Resolved at admission (parse error, lint rejection).
    p.done = true;
    p.response = std::move(adm.response);
    return p;
  }
  if (server_.service_.cached(*adm.request)) {
    // Warm path: a memo probe answers inline on the event loop — cheaper
    // than a pool handoff, and it is what keeps cached hits flowing on
    // every connection while uncached requests compute.
    p.done = true;
    p.response = server_.service_.complete(*adm.request, adm.arrival_us);
    if (server_.service_.note_evaluation() && server_.flusher_) {
      server_.flusher_->notify();
    }
    return p;
  }
  dispatch(cp, p, std::move(adm));
  return p;
}

void Shard::dispatch(const std::shared_ptr<Connection>& cp, Pending& p,
                     serve::Service::Admission adm) {
  // packaged_task owns the compute phase: its future carries the response
  // (or the exception) back to the loop thread, and running it *before*
  // poking the shard guarantees the future is ready when the loop calls
  // get().
  auto task = std::make_shared<std::packaged_task<std::string()>>(
      [service = &server_.service_, req = adm.request,
       arrival = adm.arrival_us] { return service->complete(*req, arrival); });
  p.result = task->get_future();
  const std::uint64_t seq = p.seq;

  server_.inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(server_.stats_mu_);
    ++server_.stats_.dispatched;
  }
  std::weak_ptr<Connection> wk = cp;
  server_.pool_->submit([this, task, wk = std::move(wk), seq] {
    (*task)();
    const bool checkpoint_due = server_.service_.note_evaluation();
    server_.inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (checkpoint_due && server_.flusher_) server_.flusher_->notify();
    on_complete(wk, seq);
  });
}

/// Appends to the write buffer under the slow-reader bound; false (and
/// the connection is gone) when the client is not draining responses.
bool Shard::append_out(Connection& c, std::string_view data) {
  if (c.wbuf.size() + data.size() > server_.opts_.max_write_buffer) {
    close_now(c, Disconnect::SlowReader);
    return false;
  }
  c.wbuf.append(data);
  return true;
}

/// Feeds buffered bytes to the connection's request parser and turns at
/// most one completed request into an exchange per pass (the same
/// round-robin fairness admit_one gives the raw wire).  True when any
/// input was consumed or a request was handled.
bool Shard::process_http_one(const std::shared_ptr<Connection>& cp) {
  Connection& c = *cp;
  if (c.fd < 0 || c.closing) return false;
  http::RequestParser& parser = *c.parser;

  bool progress = false;
  if (!c.rbuf.empty()) {
    const std::size_t used = parser.feed(c.rbuf);
    if (used > 0) {
      c.rbuf.erase(0, used);
      progress = true;
    }
  }
  if (parser.failed()) {
    fail_http(c, parser.error());
    return true;
  }
  if (!parser.complete()) {
    // curl (and friends) pause before sending a >1 KiB body until the
    // interim "100 Continue" arrives; answer it once per request, as
    // soon as the header block is in.
    if (parser.headers_complete() && parser.expect_continue() &&
        !c.sent_continue) {
      c.sent_continue = true;
      if (!append_out(c, http::kContinue)) return true;
      progress = true;
    }
    return progress;
  }
  handle_http_request(cp);
  c.sent_continue = false;
  parser.reset();
  flush_http(c);
  return true;
}

/// Routes one complete request into an exchange (and, for predict
/// batches, admits every body line through the shared admission core).
void Shard::handle_http_request(const std::shared_ptr<Connection>& cp) {
  Connection& c = *cp;
  const http::RequestParser& parser = *c.parser;
  const http::RouteMatch match =
      http::route_target(parser.method(), parser.target());

  HttpExchange ex;
  ex.keep_alive = parser.keep_alive();
  ex.route = http::route_label(match.route);
  ex.head_only = parser.method() == "HEAD";
  ex.start_us = now_us();
  switch (match.route) {
    case http::Route::Predict: {
      // The body is the raw wire: one JSON request per line.  Each line
      // goes through exactly the admission path TCP lines do; a single
      // line answers a status-mapped fixed-length reply, two or more
      // stream back chunked as their compute completes.
      const std::string_view body = parser.body();
      std::string line;
      std::size_t pos = 0;
      while (pos < body.size()) {
        std::size_t nl = body.find('\n', pos);
        const std::size_t end = (nl == std::string_view::npos) ? body.size()
                                                               : nl;
        std::string_view raw = body.substr(pos, end - pos);
        if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
        pos = end + 1;
        line.assign(raw);
        if (!blank(line)) ex.items.push_back(evaluate_line(cp, line));
      }
      if (ex.items.empty()) {
        ex.immediate = true;
        ex.status = 400;
        ex.body = error_line("parse", "empty request body");
      } else {
        ex.chunked = ex.items.size() > 1;
      }
      break;
    }
    case http::Route::Metrics:
      // Rendered when the head is written, not here: a scrape pipelined
      // behind a predict must observe that predict's counters.
      ex.immediate = true;
      ex.metrics = true;
      ex.content_type = "text/plain; version=0.0.4";
      break;
    case http::Route::Healthz:
      // Status and body are computed when the head is written, so a
      // pipelined healthz behind a slow batch reports "draining" if the
      // server started draining in between.
      ex.immediate = true;
      ex.healthz = true;
      break;
    case http::Route::NotFound:
      ex.immediate = true;
      ex.status = 404;
      ex.body = error_line("parse", "no such route; POST /v1/predict, "
                                    "GET /metrics, GET /healthz");
      break;
    case http::Route::MethodNotAllowed:
      ex.immediate = true;
      ex.status = 405;
      ex.allow = match.allow;
      ex.body = error_line("parse", "method not allowed");
      break;
  }
  c.exchanges.push_back(std::move(ex));
}

/// A request that cannot be parsed gets one full HTTP error response and
/// a close — malformed framing leaves no way to find the next request's
/// boundary, so the connection cannot survive.
void Shard::fail_http(Connection& c, http::Error err) {
  const int status = http::status_for_error(err);
  const std::string body = error_line("parse", http::to_string(err));
  std::string farewell;
  http::append_head(farewell, status, /*keep_alive=*/false,
                    "application/json", body.size());
  farewell += body;
  count_http("other", status);
  {
    std::lock_guard lock(server_.stats_mu_);
    ++server_.stats_.http_requests;
  }
  begin_close(c,
              (status == 413 || status == 431) ? Disconnect::Oversize
                                               : Disconnect::Error,
              farewell);
}

void Shard::finish_exchange(Connection& c, const HttpExchange& ex) {
  (void)c;
  count_http(ex.route, ex.status);
  observe_http_duration(ex.start_us);
  std::lock_guard lock(server_.stats_mu_);
  ++server_.stats_.http_requests;
}

/// Writes whatever the front exchange can deliver.  Exchanges answer in
/// request order (pipelining), so only the front touches the socket:
/// fixed-length replies wait for their single item, chunked batches
/// stream every completed item (unordered from any position, ordered
/// from the front — the raw wire's id contract) and terminate with the
/// last-chunk once all items delivered.
void Shard::flush_http(Connection& c) {
  while (!c.exchanges.empty() && c.fd >= 0 && !c.closing) {
    HttpExchange& ex = c.exchanges.front();

    // A single-item predict reply becomes an immediate body once its
    // compute lands: the status is mapped from the response itself
    // (overloaded → 503, timeout → 504), which needs the whole reply
    // before the head.
    if (!ex.immediate && !ex.chunked) {
      Pending& item = ex.items.front();
      if (!item.done) break;
      ex.status = http::status_for_response(item.response);
      ex.body = std::move(item.response);
      ex.body += '\n';
      ex.items.clear();
      ex.immediate = true;
      note_answered();
    }

    if (!ex.head_sent) {
      if (ex.metrics) ex.body = obs::Registry::global().render_text();
      if (ex.healthz) {
        const bool draining = stop_.load(std::memory_order_relaxed) ||
                              server_.stop_.load(std::memory_order_relaxed) ||
                              serve::shutdown_requested();
        ex.status = draining ? 503 : 200;
        ex.body = draining ? "{\"status\": \"draining\"}\n"
                           : "{\"status\": \"serving\"}\n";
      }
      std::string& head = http_scratch_;  // shard-owned, capacity reused
      head.clear();
      std::string extra;
      if (ex.status == 503) extra += "Retry-After: 1\r\n";
      if (ex.allow[0] != '\0') {
        extra += "Allow: ";
        extra += ex.allow;
        extra += "\r\n";
      }
      if (ex.chunked) {
        http::append_chunked_head(head, ex.status, ex.keep_alive,
                                  ex.content_type, extra);
      } else {
        http::append_head(head, ex.status, ex.keep_alive, ex.content_type,
                          ex.body.size(), extra);
        if (!ex.head_only) head += ex.body;
      }
      if (!append_out(c, head)) return;
      ex.head_sent = true;
      if (!ex.chunked) {
        finish_exchange(c, ex);
        const bool keep = ex.keep_alive;
        c.exchanges.pop_front();
        if (!keep) {
          begin_close(c, Disconnect::Eof, "");
          return;
        }
        continue;
      }
    }

    // Chunked streaming: unordered (id-carrying) items the moment they
    // complete, ordered ones only from the front cursor.
    std::string& chunk = http_scratch_;  // head is already flushed out
    for (std::size_t i = ex.next_item; i < ex.items.size(); ++i) {
      Pending& p = ex.items[i];
      if (!p.ordered && p.done && !p.delivered) {
        p.response += '\n';
        chunk.clear();
        http::append_chunk(chunk, p.response);
        if (!append_out(c, chunk)) return;
        p.delivered = true;
        note_answered();
      }
    }
    while (ex.next_item < ex.items.size()) {
      Pending& front = ex.items[ex.next_item];
      if (front.delivered) {
        ++ex.next_item;
        continue;
      }
      if (front.ordered && front.done) {
        front.response += '\n';
        chunk.clear();
        http::append_chunk(chunk, front.response);
        if (!append_out(c, chunk)) return;
        front.delivered = true;
        note_answered();
        ++ex.next_item;
        continue;
      }
      break;
    }
    if (ex.next_item < ex.items.size()) break;  // still waiting on compute
    if (!append_out(c, http::kLastChunk)) return;
    finish_exchange(c, ex);
    const bool keep = ex.keep_alive;
    c.exchanges.pop_front();
    if (!keep) {
      begin_close(c, Disconnect::Eof, "");
      return;
    }
  }
}

void Shard::process_lines() {
  // Round-robin fairness: each pass gives every connection at most one
  // admitted line, starting one past last pass's starting point, until a
  // full pass makes no progress.  A client with 50 buffered requests
  // interleaves with everyone else instead of monopolising the loop.
  bool progress = true;
  while (progress) {
    progress = false;
    const std::size_t n = conns_.size();
    if (n == 0) return;
    rr_ = (rr_ + 1) % n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::shared_ptr<Connection>& cp = conns_[(rr_ + k) % n];
      progress |= cp->http ? process_http_one(cp) : admit_one(cp);
    }
  }
}

/// Books one delivered response line — shared by the raw wire and every
/// chunk/body an HTTP exchange streams.
void Shard::note_answered() {
  count(Count::Answered);
  if (reqs_counter_) reqs_counter_->add();
  std::lock_guard lock(server_.stats_mu_);
  ++server_.stats_.answered;
  ++server_.stats_.shard_answered[index_];
}

void Shard::deliver(Connection& c, Pending& p) {
  p.delivered = true;
  if (c.fd < 0 || c.closing) return;  // response owed to no one now
  if (c.wbuf.size() + p.response.size() + 1 > server_.opts_.max_write_buffer) {
    // The client is not draining responses; holding more would be
    // unbounded memory, and it cannot read an apology either.
    close_now(c, Disconnect::SlowReader);
    return;
  }
  c.wbuf += p.response;
  c.wbuf += '\n';
  note_answered();
}

void Shard::flush_deliverable(Connection& c) {
  // Unordered (id-carrying) responses deliver the moment they are done,
  // from any position — the out-of-order completion contract.
  for (Pending& p : c.pending) {
    if (c.fd < 0 || c.closing) break;
    if (!p.ordered && p.done && !p.delivered) deliver(c, p);
  }
  // Ordered (id-less) responses only ever deliver from the front, so a
  // slow ordered request holds its successors back — exactly the stdio
  // contract a client that sends no ids relies on.
  while (!c.pending.empty()) {
    Pending& front = c.pending.front();
    if (front.delivered) {
      c.pending.pop_front();
      continue;
    }
    if (front.ordered && front.done && c.fd >= 0 && !c.closing) {
      deliver(c, front);
      c.pending.pop_front();
      continue;
    }
    break;
  }
}

void Shard::drain_completions() {
  std::vector<Completion> ready;
  {
    std::lock_guard lock(cq_mu_);
    ready.swap(completions_);
  }
  for (const Completion& done : ready) {
    const std::shared_ptr<Connection> c = done.conn.lock();
    if (!c) continue;
    if (Pending* p = find_pending(*c, done.seq)) {
      try {
        p->response = p->result.get();
      } catch (const std::exception& e) {
        // complete() promises not to throw; this is the belt to that
        // suspender — the client still gets a structured line.
        p->response = error_body("internal", e.what());
      }
      p->done = true;
    }
    if (c->http) {
      flush_http(*c);
    } else {
      flush_deliverable(*c);
    }
  }
}

void Shard::flush_writes() {
  for (auto& cp : conns_) {
    Connection& c = *cp;
    while (c.fd >= 0 && !c.wbuf.empty()) {
      const ssize_t n =
          ::send(c.fd, c.wbuf.data(), c.wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.wbuf.erase(0, static_cast<std::size_t>(n));
        count_bytes(false, static_cast<std::uint64_t>(n));
        std::lock_guard lock(server_.stats_mu_);
        server_.stats_.bytes_out += static_cast<std::uint64_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        close_now(c, c.closing ? c.cause : Disconnect::Error);
        break;
      }
    }
  }
}

void Shard::reap_and_time_out() {
  const double now = now_us();
  for (auto& cp : conns_) {
    Connection& c = *cp;
    if (c.fd < 0) continue;
    const bool owes_nothing =
        c.http ? (c.rbuf.empty() && c.exchanges.empty())
               : (c.rbuf.find('\n') == std::string::npos && c.pending.empty());
    if ((c.closing || c.draining) && c.wbuf.empty() &&
        (c.closing || owes_nothing)) {
      close_now(c, c.cause);
      continue;
    }
    if (c.closing &&
        now - c.closing_since_us > server_.opts_.drain_grace_ms * 1000.0) {
      // Told to go away but not reading the farewell: forced close.
      close_now(c, c.cause);
      continue;
    }
    // Header deadline (slow loris): a request that *started* but whose
    // framing has not completed is timed from its first byte.  The idle
    // check below cannot catch this — every dripped byte advances
    // last_read_us — so the partial clock is stamped once per request
    // and only cleared when the framing completes.
    if (!c.closing && !c.draining && c.pending.empty() &&
        c.exchanges.empty() && server_.opts_.header_timeout_ms > 0.0) {
      const bool partial =
          c.http ? (c.parser && c.parser->started() && !c.parser->complete())
                 : (!c.rbuf.empty() &&
                    c.rbuf.find('\n') == std::string::npos);
      if (!partial) {
        c.partial_since_us = 0.0;
      } else if (c.partial_since_us == 0.0) {
        c.partial_since_us = now;
      } else if (now - c.partial_since_us >
                 server_.opts_.header_timeout_ms * 1000.0) {
        const std::string body = error_line(
            "timeout",
            "request not completed within " +
                std::to_string(server_.opts_.header_timeout_ms) +
                " ms; closing");
        if (c.http) {
          std::string farewell;
          http::append_head(farewell, 408, /*keep_alive=*/false,
                            "application/json", body.size());
          farewell += body;
          count_http("other", 408);
          {
            std::lock_guard lock(server_.stats_mu_);
            ++server_.stats_.http_requests;
          }
          begin_close(c, Disconnect::HeaderTimeout, farewell);
        } else {
          begin_close(c, Disconnect::HeaderTimeout, body);
        }
        continue;
      }
    }
    if (!c.closing && !c.draining && c.pending.empty() &&
        c.exchanges.empty() && server_.opts_.idle_timeout_ms > 0.0 &&
        now - c.last_read_us > server_.opts_.idle_timeout_ms * 1000.0) {
      if (c.http) {
        // An idle keep-alive connection owes no response; close quietly
        // like every stock HTTP server does.
        begin_close(c, Disconnect::Idle, "");
      } else {
        begin_close(c, Disconnect::Idle,
                    error_line(
                        "timeout",
                        "idle for more than " +
                            std::to_string(server_.opts_.idle_timeout_ms) +
                            " ms; closing"));
      }
    }
  }
  std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
    return c->fd < 0;
  });
}

void Shard::publish_gauges() const {
  if (!depth_gauge_) return;
  double pending_bytes = 0.0;
  for (const auto& c : conns_) {
    pending_bytes += static_cast<double>(c->rbuf.size());
  }
  depth_gauge_->set(pending_bytes);
}

void Shard::loop() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    if (wake_fds_[0] >= 0) fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& c : conns_) {
      short events = 0;
      if (!c->draining && !c->closing &&
          c->rbuf.size() <= server_.opts_.max_line_bytes) {
        events |= POLLIN;
      }
      if (!c->wbuf.empty()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 server_.opts_.poll_interval_ms);
    drain_wakeup();
    adopt_incoming();
    // Readiness is a hint, not a contract: reads and writes are
    // non-blocking, so sweeping every connection is safe and keeps the
    // loop free of fd-to-connection bookkeeping.
    for (auto& c : conns_) {
      if (c->fd >= 0 && !c->draining && !c->closing) read_ready(*c);
    }
    process_lines();
    drain_completions();
    flush_writes();
    reap_and_time_out();
    publish_gauges();
  }
  drain();
}

void Shard::drain() {
  adopt_incoming();
  // Pick up whatever the kernel already buffered — a client that
  // pipelined requests just before SIGTERM (say a healthz probe behind a
  // slow batch) still gets every one answered, with healthz now
  // reporting "draining".
  for (auto& c : conns_) {
    if (c->fd >= 0 && !c->draining && !c->closing) read_ready(*c);
  }
  process_lines();
  // Answered, not dropped: every dispatched compute future completes and
  // delivers before sockets are torn down.  This wait is not grace-bounded
  // — the pool outlives the shards precisely so it terminates.
  while (true) {
    drain_completions();
    flush_writes();
    bool undone = false;
    for (const auto& c : conns_) {
      if (c->fd < 0) continue;
      for (const Pending& p : c->pending) {
        if (!p.done) {
          undone = true;
          break;
        }
      }
      for (const HttpExchange& ex : c->exchanges) {
        for (const Pending& p : ex.items) {
          if (!p.done) {
            undone = true;
            break;
          }
        }
        if (undone) break;
      }
      if (undone) break;
    }
    if (!undone) break;
    if (wake_fds_[0] >= 0) {
      pollfd wp{wake_fds_[0], POLLIN, 0};
      (void)::poll(&wp, 1, server_.opts_.poll_interval_ms);
      drain_wakeup();
    } else {
      pollfd none{-1, 0, 0};
      (void)::poll(&none, 1, server_.opts_.poll_interval_ms);
    }
    for (auto& c : conns_) {
      if (c->fd >= 0 && !c->draining && !c->closing) read_ready(*c);
    }
    process_lines();
  }
  // Everything resolvable is resolved; push any responses still parked
  // on their exchanges/deques into the write buffers.
  for (auto& cp : conns_) {
    if (cp->fd < 0) continue;
    if (cp->http) {
      flush_http(*cp);
    } else {
      flush_deliverable(*cp);
    }
  }
  // Then a bounded grace for the write buffers to reach their clients.
  const double deadline = now_us() + server_.opts_.drain_grace_ms * 1000.0;
  std::vector<pollfd> fds;
  while (now_us() < deadline) {
    fds.clear();
    for (const auto& c : conns_) {
      if (c->fd >= 0 && !c->wbuf.empty()) fds.push_back({c->fd, POLLOUT, 0});
    }
    if (fds.empty()) break;
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 server_.opts_.poll_interval_ms);
    flush_writes();
    std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
      return c->fd < 0;
    });
  }
  for (auto& c : conns_) {
    if (c->fd >= 0) close_now(*c, Disconnect::Drained);
  }
  conns_.clear();
  if (depth_gauge_) depth_gauge_->set(0.0);
}

}  // namespace detail

// --- Server: the acceptor -------------------------------------------------

Server::Server(serve::Service& service, ServerOptions opts)
    : service_(service), opts_(opts) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (opts_.max_line_bytes == 0) opts_.max_line_bytes = 1;
  if (opts_.max_write_buffer == 0) opts_.max_write_buffer = 1;
  if (opts_.poll_interval_ms <= 0) opts_.poll_interval_ms = 50;
  if (opts_.max_body_bytes == 0) opts_.max_body_bytes = 1;
  if (!opts_.json_listener && !opts_.http) opts_.json_listener = true;
  stats_.shard_connections.assign(opts_.shards, 0);
  stats_.shard_answered.assign(opts_.shards, 0);
}

Server::~Server() = default;

void Server::open(std::ostream& log) {
  if (opts_.json_listener) {
    listener_.open(opts_.port);
    log << "net: listening on 127.0.0.1:" << listener_.port() << "\n"
        << std::flush;
  }
  if (opts_.http) {
    http_listener_.open(opts_.http_port);
    log << "http: listening on 127.0.0.1:" << http_listener_.port() << "\n"
        << std::flush;
  }
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void Server::publish_gauges() const {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& open_conns = obs::Registry::global().gauge(
      "rvhpc_net_open_connections", "currently connected TCP clients");
  static obs::Gauge& inflight = obs::Registry::global().gauge(
      "rvhpc_net_inflight_requests",
      "compute phases dispatched and not yet completed");
  open_conns.set(
      static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  inflight.set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
}

void Server::accept_pending() {
  if (listener_.is_open()) accept_from(listener_, /*http=*/false);
  if (http_listener_.is_open()) accept_from(http_listener_, /*http=*/true);
}

void Server::accept_from(const Listener& listener, bool http) {
  while (true) {
    const int fd = listener.accept_client();
    if (fd < 0) return;
    count(Count::Connection);
    if (opts_.so_sndbuf > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                         sizeof(opts_.so_sndbuf));
    }
    // The cap spans shards, so the check lives here on the acceptor; the
    // owning shard delivers the polite farewell.
    const bool refused =
        open_conns_.load(std::memory_order_relaxed) >= opts_.max_connections;
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t shard = next_shard_;
    next_shard_ = (next_shard_ + 1) % shards_.size();
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.accepted;
      ++stats_.shard_connections[shard];
    }
    shards_[shard]->adopt(fd, refused, http);
  }
}

void Server::run(std::ostream& log) {
  const auto stop_requested = [this] {
    return stop_.load(std::memory_order_relaxed) ||
           serve::shutdown_requested();
  };

  // One compute pool shared by every shard (sized by the service's jobs
  // setting), one background cache flusher, N event loops.  The pool and
  // the flusher must outlive the shards: shard drain waits on futures the
  // pool is still running, and the flusher owns every cache checkpoint.
  pool_ = std::make_unique<engine::ThreadPool>(service_.jobs());
  flusher_ = std::make_unique<detail::CacheFlusher>(service_, log);
  shards_.clear();
  next_shard_ = 0;
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<detail::Shard>(*this, i));
  }
  for (auto& s : shards_) s->start();

  while (!stop_requested()) {
    pollfd lps[2];
    nfds_t nfds = 0;
    if (listener_.is_open()) lps[nfds++] = {listener_.fd(), POLLIN, 0};
    if (http_listener_.is_open()) {
      lps[nfds++] = {http_listener_.fd(), POLLIN, 0};
    }
    (void)::poll(lps, nfds, opts_.poll_interval_ms);
    accept_pending();
    publish_gauges();
  }

  // Drain: stop accepting, then let every shard answer what it owes
  // (buffered complete lines and in-flight futures) before the pool and
  // the flusher wind down — the flusher's destructor performs the final
  // cache checkpoint.
  listener_.close();
  http_listener_.close();
  for (auto& s : shards_) s->request_stop();
  for (auto& s : shards_) s->join();
  pool_->wait();
  pool_.reset();
  flusher_.reset();
  shards_.clear();
  publish_gauges();

  const ServerStats s = stats();
  log << "net: drained — " << s.accepted << " connection(s), " << s.answered
      << " request(s) answered, " << s.http_requests << " http exchange(s), "
      << s.bytes_in << " bytes in, " << s.bytes_out
      << " bytes out, disconnects: " << s.disconnect_eof << " eof, "
      << s.disconnect_idle << " idle, " << s.disconnect_header_timeout
      << " header-timeout, " << s.disconnect_oversize << " oversize, "
      << s.disconnect_slow_reader << " slow-reader, "
      << s.disconnect_refused << " refused, " << s.disconnect_error
      << " error, " << s.disconnect_drained << " drained\n";
}

}  // namespace rvhpc::net
