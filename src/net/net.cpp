#include "net/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace rvhpc::net {
namespace {

using Clock = std::chrono::steady_clock;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// A transport-level error in the service's error-response shape (no
/// trailing newline), so a client can parse every line it ever receives
/// the same way.
std::string error_body(const char* kind, const std::string& message) {
  return std::string("{\"id\": \"\", \"status\": \"error\", \"error\": \"") +
         kind + "\", \"message\": \"" + obs::json::escape(message) + "\"}";
}

/// The newline-terminated farewell variant (written straight to a write
/// buffer, outside the response-delivery path).
std::string error_line(const char* kind, const std::string& message) {
  return error_body(kind, message) + "\n";
}

// --- net-level metrics ----------------------------------------------------

enum class Count { Connection, Answered };

void count(Count which, std::uint64_t n = 1) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& conns = obs::Registry::global().counter(
      "rvhpc_net_connections_total", "TCP connections accepted");
  static obs::Counter& answered = obs::Registry::global().counter(
      "rvhpc_net_requests_total", "request lines answered over TCP");
  switch (which) {
    case Count::Connection: conns.add(n); break;
    case Count::Answered:   answered.add(n); break;
  }
}

void count_bytes(bool in, std::uint64_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  static obs::Counter& read = obs::Registry::global().counter(
      "rvhpc_net_bytes_read_total", "payload bytes received over TCP");
  static obs::Counter& written = obs::Registry::global().counter(
      "rvhpc_net_bytes_written_total", "response bytes written over TCP");
  (in ? read : written).add(n);
}

void count_disconnect(Disconnect cause) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& eof = obs::Registry::global().counter(
      "rvhpc_net_disconnects_eof_total", "connections closed by the client");
  static obs::Counter& idle = obs::Registry::global().counter(
      "rvhpc_net_disconnects_idle_total",
      "connections dropped by the idle timeout");
  static obs::Counter& oversize = obs::Registry::global().counter(
      "rvhpc_net_disconnects_oversize_total",
      "connections dropped for an oversized request line");
  static obs::Counter& slow = obs::Registry::global().counter(
      "rvhpc_net_disconnects_slow_reader_total",
      "connections dropped for not draining their responses");
  static obs::Counter& refused = obs::Registry::global().counter(
      "rvhpc_net_disconnects_refused_total",
      "connections refused past the connection cap");
  static obs::Counter& error = obs::Registry::global().counter(
      "rvhpc_net_disconnects_error_total",
      "connections dropped on a socket error");
  static obs::Counter& drained = obs::Registry::global().counter(
      "rvhpc_net_disconnects_drained_total",
      "connections open when the server drained");
  switch (cause) {
    case Disconnect::Eof:        eof.add(); break;
    case Disconnect::Idle:       idle.add(); break;
    case Disconnect::Oversize:   oversize.add(); break;
    case Disconnect::SlowReader: slow.add(); break;
    case Disconnect::Refused:    refused.add(); break;
    case Disconnect::Error:      error.add(); break;
    case Disconnect::Drained:    drained.add(); break;
  }
}

/// Extracts the first complete line (without the '\n', trailing '\r'
/// stripped) from `buf`; false when no newline is buffered yet.
bool take_line(std::string& buf, std::string& line) {
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf, 0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(0, nl + 1);
  return true;
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

const char* to_string(Disconnect cause) {
  switch (cause) {
    case Disconnect::Eof:        return "eof";
    case Disconnect::Idle:       return "idle";
    case Disconnect::Oversize:   return "oversize";
    case Disconnect::SlowReader: return "slow-reader";
    case Disconnect::Refused:    return "refused";
    case Disconnect::Error:      return "error";
    case Disconnect::Drained:    return "drained";
  }
  return "unknown";
}

// --- Listener -------------------------------------------------------------

Listener::~Listener() { close(); }

void Listener::open(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + detail);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("listen() failed: " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  set_nonblocking(fd_);
}

int Listener::accept_client() const {
  if (fd_ < 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client >= 0) set_nonblocking(client);
  return client;
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

namespace detail {

// --- per-connection state (owned exclusively by one shard) ----------------

/// One admitted request awaiting delivery.  `ordered` requests (no "id" on
/// the wire) must be delivered in admission order; unordered ones deliver
/// the moment their result is ready, from any position in the deque.
struct Pending {
  std::uint64_t seq = 0;
  bool ordered = true;
  bool done = false;       ///< `response` is final
  bool delivered = false;  ///< appended to the write buffer (or dropped)
  std::future<std::string> result;  ///< compute phase, when dispatched
  std::string response;             ///< no trailing newline
};

struct Connection {
  int fd = -1;
  std::string rbuf;
  std::string wbuf;
  std::deque<Pending> pending;
  std::uint64_t next_seq = 0;
  double last_read_us = 0.0;
  double closing_since_us = 0.0;
  bool draining = false;  ///< EOF seen; answering what is buffered
  bool closing = false;   ///< farewell queued; close once it is flushed
  Disconnect cause = Disconnect::Eof;
};

// --- CacheFlusher: the background checkpoint thread -----------------------

/// Owns the thread that writes the persistent cache.  Shards and pool
/// workers only ever notify() it — the file write (and its "serve:
/// checkpointed" log line) never runs on an event loop or a compute
/// worker.  Destruction performs the drain-time flush and joins.
class CacheFlusher {
 public:
  CacheFlusher(serve::Service& service, std::ostream& log)
      : service_(service), log_(log), thread_([this] { loop(); }) {}

  ~CacheFlusher() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  CacheFlusher(const CacheFlusher&) = delete;
  CacheFlusher& operator=(const CacheFlusher&) = delete;

  void notify() {
    {
      std::lock_guard lock(mu_);
      due_ = true;
    }
    cv_.notify_one();
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return due_ || stop_; });
      const bool stopping = stop_;
      due_ = false;
      lock.unlock();
      // On stop this doubles as the drain-time checkpoint, so the log and
      // the cache file look exactly like the single-threaded server's.
      service_.flush(log_);
      lock.lock();
      if (stopping) return;
    }
  }

  serve::Service& service_;
  std::ostream& log_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool due_ = false;
  bool stop_ = false;
  std::thread thread_;
};

// --- Shard: one event loop ------------------------------------------------

/// One poll() loop on its own thread.  The acceptor deals sockets in via
/// adopt(); the compute pool reports finished futures via on_complete();
/// both poke the wakeup pipe so the loop reacts immediately instead of on
/// the next poll timeout.  Every Connection is touched by exactly one
/// shard thread — the pool only ever holds a weak_ptr it never
/// dereferences — so connection state needs no locks.
class Shard {
 public:
  Shard(Server& server, std::size_t index);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();
  void request_stop();
  void join();

  /// Hands an accepted socket to this shard (acceptor thread).  `refused`
  /// connections get the polite "overloaded" farewell and close.
  void adopt(int fd, bool refused);

  /// A dispatched compute phase finished (pool thread): queue the
  /// completion and wake the loop so the response is delivered now.
  void on_complete(const std::weak_ptr<Connection>& conn, std::uint64_t seq);

 private:
  struct Completion {
    std::weak_ptr<Connection> conn;
    std::uint64_t seq = 0;
  };

  void loop();
  void drain();
  void wake();
  void drain_wakeup();
  void adopt_incoming();
  void read_ready(Connection& c);
  bool admit_one(const std::shared_ptr<Connection>& cp);
  void process_lines();
  void dispatch(const std::shared_ptr<Connection>& cp,
                serve::Service::Admission adm);
  void enqueue_done(Connection& c, std::string response, bool ordered);
  void deliver(Connection& c, Pending& p);
  void flush_deliverable(Connection& c);
  void drain_completions();
  void flush_writes();
  void reap_and_time_out();
  void begin_close(Connection& c, Disconnect cause,
                   const std::string& farewell);
  void close_now(Connection& c, Disconnect cause);
  void publish_gauges() const;

  Server& server_;
  const std::size_t index_;
  int wake_fds_[2] = {-1, -1};  ///< [0] read end (polled), [1] write end
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::mutex in_mu_;
  std::vector<std::pair<int, bool>> incoming_;  ///< (fd, refused)
  std::mutex cq_mu_;
  std::vector<Completion> completions_;

  // Loop-thread-only state.
  std::vector<std::shared_ptr<Connection>> conns_;
  std::size_t rr_ = 0;  ///< round-robin fairness cursor

  obs::Counter* conns_counter_ = nullptr;
  obs::Counter* reqs_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

Shard::Shard(Server& server, std::size_t index)
    : server_(server), index_(index) {
  if (::pipe(wake_fds_) == 0) {
    set_nonblocking(wake_fds_[0]);
    set_nonblocking(wake_fds_[1]);
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;  // degraded: poll-timeout latency only
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::global();
    const std::string prefix = "rvhpc_net_shard_" + std::to_string(index);
    conns_counter_ = &reg.counter(prefix + "_connections_total",
                                  "connections adopted by this shard");
    reqs_counter_ = &reg.counter(prefix + "_requests_total",
                                 "response lines delivered by this shard");
    depth_gauge_ =
        &reg.gauge(prefix + "_queue_depth_bytes",
                   "request bytes buffered on this shard, not yet admitted");
  }
}

Shard::~Shard() {
  request_stop();
  join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  for (const auto& [fd, refused] : incoming_) ::close(fd);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void Shard::start() {
  thread_ = std::thread([this] { loop(); });
}

void Shard::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake();
}

void Shard::join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::adopt(int fd, bool refused) {
  {
    std::lock_guard lock(in_mu_);
    incoming_.emplace_back(fd, refused);
  }
  wake();
}

void Shard::on_complete(const std::weak_ptr<Connection>& conn,
                        std::uint64_t seq) {
  {
    std::lock_guard lock(cq_mu_);
    completions_.push_back({conn, seq});
  }
  wake();
}

void Shard::wake() {
  if (wake_fds_[1] < 0) return;
  // Best-effort and non-blocking: a full pipe already guarantees the loop
  // has wakeups queued, and the poll timeout backstops a lost byte.
  const char byte = 0;
  (void)!::write(wake_fds_[1], &byte, 1);
}

void Shard::drain_wakeup() {
  if (wake_fds_[0] < 0) return;
  char sink[256];
  while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
  }
}

void Shard::adopt_incoming() {
  std::vector<std::pair<int, bool>> in;
  {
    std::lock_guard lock(in_mu_);
    in.swap(incoming_);
  }
  for (const auto& [fd, refused] : in) {
    auto c = std::make_shared<Connection>();
    c->fd = fd;
    c->last_read_us = now_us();
    if (conns_counter_) conns_counter_->add();
    if (refused) {
      // Polite refusal: a structured line beats a dangling connect.
      begin_close(*c, Disconnect::Refused,
                  error_line("overloaded",
                             "connection limit (" +
                                 std::to_string(server_.opts_.max_connections) +
                                 ") reached; retry later"));
    }
    conns_.push_back(std::move(c));
  }
}

void Shard::begin_close(Connection& c, Disconnect cause,
                        const std::string& farewell) {
  if (c.closing) return;
  // The farewell rides the normal write path; if even that does not fit
  // the bound the client is hopeless and the buffer stays as-is.
  if (c.wbuf.size() + farewell.size() <= server_.opts_.max_write_buffer) {
    c.wbuf += farewell;
  }
  c.rbuf.clear();
  c.closing = true;
  c.cause = cause;
  c.closing_since_us = now_us();
}

void Shard::close_now(Connection& c, Disconnect cause) {
  if (c.fd < 0) return;
  ::close(c.fd);
  c.fd = -1;
  server_.open_conns_.fetch_sub(1, std::memory_order_relaxed);
  count_disconnect(cause);
  std::lock_guard lock(server_.stats_mu_);
  switch (cause) {
    case Disconnect::Eof:        ++server_.stats_.disconnect_eof; break;
    case Disconnect::Idle:       ++server_.stats_.disconnect_idle; break;
    case Disconnect::Oversize:   ++server_.stats_.disconnect_oversize; break;
    case Disconnect::SlowReader: ++server_.stats_.disconnect_slow_reader; break;
    case Disconnect::Refused:    ++server_.stats_.disconnect_refused; break;
    case Disconnect::Error:      ++server_.stats_.disconnect_error; break;
    case Disconnect::Drained:    ++server_.stats_.disconnect_drained; break;
  }
}

void Shard::read_ready(Connection& c) {
  char chunk[4096];
  while (!c.draining && !c.closing &&
         c.rbuf.size() <= server_.opts_.max_line_bytes) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      c.last_read_us = now_us();
      count_bytes(true, static_cast<std::uint64_t>(n));
      std::lock_guard lock(server_.stats_mu_);
      server_.stats_.bytes_in += static_cast<std::uint64_t>(n);
    } else if (n == 0) {
      // EOF: the client is done sending.  Its buffered complete lines are
      // still answered; a trailing partial line (a client that died
      // mid-request) is discarded.
      c.draining = true;
      c.cause = Disconnect::Eof;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    } else if (errno == EINTR) {
      continue;
    } else {
      close_now(c, Disconnect::Error);
      return;
    }
  }
}

void Shard::enqueue_done(Connection& c, std::string response, bool ordered) {
  Pending p;
  p.seq = c.next_seq++;
  p.ordered = ordered;
  p.done = true;
  p.response = std::move(response);
  c.pending.push_back(std::move(p));
}

/// Admits at most one buffered line of `cp`; true when a line was consumed
/// (the round-robin scheduler uses this to detect an idle pass).
bool Shard::admit_one(const std::shared_ptr<Connection>& cp) {
  Connection& c = *cp;
  if (c.fd < 0 || c.closing) return false;

  std::string line;
  if (!take_line(c.rbuf, line)) {
    // No complete line.  A partial line past the bound can never complete
    // within it — reject it now rather than buffering forever.
    if (c.rbuf.size() > server_.opts_.max_line_bytes) {
      begin_close(c, Disconnect::Oversize,
                  error_line("overloaded",
                             "request line exceeds " +
                                 std::to_string(server_.opts_.max_line_bytes) +
                                 " bytes"));
    }
    return false;
  }
  if (blank(line)) return true;  // consumed input, no response owed
  if (line.size() > server_.opts_.max_line_bytes) {
    begin_close(c, Disconnect::Oversize,
                error_line("overloaded",
                           "request line exceeds " +
                               std::to_string(server_.opts_.max_line_bytes) +
                               " bytes"));
    return false;
  }

  // Admission bound, checked before the parse exactly like the stdio loop
  // checks its backlog: compute dispatched and not yet completed past the
  // service's queue capacity is answered "overloaded" immediately.
  if (server_.inflight_.load(std::memory_order_relaxed) >=
      server_.service_.options().queue_capacity) {
    enqueue_done(c, server_.service_.reject_overloaded(), /*ordered=*/false);
    flush_deliverable(c);
    return true;
  }

  serve::Service::Admission adm = server_.service_.admit(line);
  if (!adm.request) {
    // Resolved at admission (parse error, lint rejection).
    const bool ordered = !adm.had_id;
    enqueue_done(c, std::move(adm.response), ordered);
    flush_deliverable(c);
    return true;
  }
  if (server_.service_.cached(*adm.request)) {
    // Warm path: a memo probe answers inline on the event loop — cheaper
    // than a pool handoff, and it is what keeps cached hits flowing on
    // every connection while uncached requests compute.
    std::string response =
        server_.service_.complete(*adm.request, adm.arrival_us);
    if (server_.service_.note_evaluation() && server_.flusher_) {
      server_.flusher_->notify();
    }
    const bool ordered = !adm.had_id;
    enqueue_done(c, std::move(response), ordered);
    flush_deliverable(c);
    return true;
  }
  dispatch(cp, std::move(adm));
  return true;
}

void Shard::dispatch(const std::shared_ptr<Connection>& cp,
                     serve::Service::Admission adm) {
  Connection& c = *cp;
  Pending p;
  p.seq = c.next_seq++;
  p.ordered = !adm.had_id;
  // packaged_task owns the compute phase: its future carries the response
  // (or the exception) back to the loop thread, and running it *before*
  // poking the shard guarantees the future is ready when the loop calls
  // get().
  auto task = std::make_shared<std::packaged_task<std::string()>>(
      [service = &server_.service_, req = adm.request,
       arrival = adm.arrival_us] { return service->complete(*req, arrival); });
  p.result = task->get_future();
  const std::uint64_t seq = p.seq;
  c.pending.push_back(std::move(p));

  server_.inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(server_.stats_mu_);
    ++server_.stats_.dispatched;
  }
  std::weak_ptr<Connection> wk = cp;
  server_.pool_->submit([this, task, wk = std::move(wk), seq] {
    (*task)();
    const bool checkpoint_due = server_.service_.note_evaluation();
    server_.inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (checkpoint_due && server_.flusher_) server_.flusher_->notify();
    on_complete(wk, seq);
  });
}

void Shard::process_lines() {
  // Round-robin fairness: each pass gives every connection at most one
  // admitted line, starting one past last pass's starting point, until a
  // full pass makes no progress.  A client with 50 buffered requests
  // interleaves with everyone else instead of monopolising the loop.
  bool progress = true;
  while (progress) {
    progress = false;
    const std::size_t n = conns_.size();
    if (n == 0) return;
    rr_ = (rr_ + 1) % n;
    for (std::size_t k = 0; k < n; ++k) {
      progress |= admit_one(conns_[(rr_ + k) % n]);
    }
  }
}

void Shard::deliver(Connection& c, Pending& p) {
  p.delivered = true;
  if (c.fd < 0 || c.closing) return;  // response owed to no one now
  if (c.wbuf.size() + p.response.size() + 1 > server_.opts_.max_write_buffer) {
    // The client is not draining responses; holding more would be
    // unbounded memory, and it cannot read an apology either.
    close_now(c, Disconnect::SlowReader);
    return;
  }
  c.wbuf += p.response;
  c.wbuf += '\n';
  count(Count::Answered);
  if (reqs_counter_) reqs_counter_->add();
  std::lock_guard lock(server_.stats_mu_);
  ++server_.stats_.answered;
  ++server_.stats_.shard_answered[index_];
}

void Shard::flush_deliverable(Connection& c) {
  // Unordered (id-carrying) responses deliver the moment they are done,
  // from any position — the out-of-order completion contract.
  for (Pending& p : c.pending) {
    if (c.fd < 0 || c.closing) break;
    if (!p.ordered && p.done && !p.delivered) deliver(c, p);
  }
  // Ordered (id-less) responses only ever deliver from the front, so a
  // slow ordered request holds its successors back — exactly the stdio
  // contract a client that sends no ids relies on.
  while (!c.pending.empty()) {
    Pending& front = c.pending.front();
    if (front.delivered) {
      c.pending.pop_front();
      continue;
    }
    if (front.ordered && front.done && c.fd >= 0 && !c.closing) {
      deliver(c, front);
      c.pending.pop_front();
      continue;
    }
    break;
  }
}

void Shard::drain_completions() {
  std::vector<Completion> ready;
  {
    std::lock_guard lock(cq_mu_);
    ready.swap(completions_);
  }
  for (const Completion& done : ready) {
    const std::shared_ptr<Connection> c = done.conn.lock();
    if (!c) continue;
    for (Pending& p : c->pending) {
      if (p.seq != done.seq) continue;
      try {
        p.response = p.result.get();
      } catch (const std::exception& e) {
        // complete() promises not to throw; this is the belt to that
        // suspender — the client still gets a structured line.
        p.response = error_body("internal", e.what());
      }
      p.done = true;
      break;
    }
    flush_deliverable(*c);
  }
}

void Shard::flush_writes() {
  for (auto& cp : conns_) {
    Connection& c = *cp;
    while (c.fd >= 0 && !c.wbuf.empty()) {
      const ssize_t n =
          ::send(c.fd, c.wbuf.data(), c.wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.wbuf.erase(0, static_cast<std::size_t>(n));
        count_bytes(false, static_cast<std::uint64_t>(n));
        std::lock_guard lock(server_.stats_mu_);
        server_.stats_.bytes_out += static_cast<std::uint64_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        close_now(c, c.closing ? c.cause : Disconnect::Error);
        break;
      }
    }
  }
}

void Shard::reap_and_time_out() {
  const double now = now_us();
  for (auto& cp : conns_) {
    Connection& c = *cp;
    if (c.fd < 0) continue;
    if ((c.closing || c.draining) && c.wbuf.empty() &&
        (c.closing ||
         (c.rbuf.find('\n') == std::string::npos && c.pending.empty()))) {
      close_now(c, c.cause);
      continue;
    }
    if (c.closing &&
        now - c.closing_since_us > server_.opts_.drain_grace_ms * 1000.0) {
      // Told to go away but not reading the farewell: forced close.
      close_now(c, c.cause);
      continue;
    }
    if (!c.closing && !c.draining && c.pending.empty() &&
        server_.opts_.idle_timeout_ms > 0.0 &&
        now - c.last_read_us > server_.opts_.idle_timeout_ms * 1000.0) {
      begin_close(c, Disconnect::Idle,
                  error_line("timeout",
                             "idle for more than " +
                                 std::to_string(server_.opts_.idle_timeout_ms) +
                                 " ms; closing"));
    }
  }
  std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
    return c->fd < 0;
  });
}

void Shard::publish_gauges() const {
  if (!depth_gauge_) return;
  double pending_bytes = 0.0;
  for (const auto& c : conns_) {
    pending_bytes += static_cast<double>(c->rbuf.size());
  }
  depth_gauge_->set(pending_bytes);
}

void Shard::loop() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    if (wake_fds_[0] >= 0) fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& c : conns_) {
      short events = 0;
      if (!c->draining && !c->closing &&
          c->rbuf.size() <= server_.opts_.max_line_bytes) {
        events |= POLLIN;
      }
      if (!c->wbuf.empty()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 server_.opts_.poll_interval_ms);
    drain_wakeup();
    adopt_incoming();
    // Readiness is a hint, not a contract: reads and writes are
    // non-blocking, so sweeping every connection is safe and keeps the
    // loop free of fd-to-connection bookkeeping.
    for (auto& c : conns_) {
      if (c->fd >= 0 && !c->draining && !c->closing) read_ready(*c);
    }
    process_lines();
    drain_completions();
    flush_writes();
    reap_and_time_out();
    publish_gauges();
  }
  drain();
}

void Shard::drain() {
  adopt_incoming();
  process_lines();
  // Answered, not dropped: every dispatched compute future completes and
  // delivers before sockets are torn down.  This wait is not grace-bounded
  // — the pool outlives the shards precisely so it terminates.
  while (true) {
    drain_completions();
    flush_writes();
    bool undone = false;
    for (const auto& c : conns_) {
      if (c->fd < 0) continue;
      for (const Pending& p : c->pending) {
        if (!p.done) {
          undone = true;
          break;
        }
      }
      if (undone) break;
    }
    if (!undone) break;
    if (wake_fds_[0] >= 0) {
      pollfd wp{wake_fds_[0], POLLIN, 0};
      (void)::poll(&wp, 1, server_.opts_.poll_interval_ms);
      drain_wakeup();
    } else {
      pollfd none{-1, 0, 0};
      (void)::poll(&none, 1, server_.opts_.poll_interval_ms);
    }
  }
  // Then a bounded grace for the write buffers to reach their clients.
  const double deadline = now_us() + server_.opts_.drain_grace_ms * 1000.0;
  std::vector<pollfd> fds;
  while (now_us() < deadline) {
    fds.clear();
    for (const auto& c : conns_) {
      if (c->fd >= 0 && !c->wbuf.empty()) fds.push_back({c->fd, POLLOUT, 0});
    }
    if (fds.empty()) break;
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 server_.opts_.poll_interval_ms);
    flush_writes();
    std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
      return c->fd < 0;
    });
  }
  for (auto& c : conns_) {
    if (c->fd >= 0) close_now(*c, Disconnect::Drained);
  }
  conns_.clear();
  if (depth_gauge_) depth_gauge_->set(0.0);
}

}  // namespace detail

// --- Server: the acceptor -------------------------------------------------

Server::Server(serve::Service& service, ServerOptions opts)
    : service_(service), opts_(opts) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (opts_.max_line_bytes == 0) opts_.max_line_bytes = 1;
  if (opts_.max_write_buffer == 0) opts_.max_write_buffer = 1;
  if (opts_.poll_interval_ms <= 0) opts_.poll_interval_ms = 50;
  stats_.shard_connections.assign(opts_.shards, 0);
  stats_.shard_answered.assign(opts_.shards, 0);
}

Server::~Server() = default;

void Server::open(std::ostream& log) {
  listener_.open(opts_.port);
  log << "net: listening on 127.0.0.1:" << listener_.port() << "\n"
      << std::flush;
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void Server::publish_gauges() const {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& open_conns = obs::Registry::global().gauge(
      "rvhpc_net_open_connections", "currently connected TCP clients");
  static obs::Gauge& inflight = obs::Registry::global().gauge(
      "rvhpc_net_inflight_requests",
      "compute phases dispatched and not yet completed");
  open_conns.set(
      static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  inflight.set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
}

void Server::accept_pending() {
  while (true) {
    const int fd = listener_.accept_client();
    if (fd < 0) return;
    count(Count::Connection);
    if (opts_.so_sndbuf > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                         sizeof(opts_.so_sndbuf));
    }
    // The cap spans shards, so the check lives here on the acceptor; the
    // owning shard delivers the polite farewell.
    const bool refused =
        open_conns_.load(std::memory_order_relaxed) >= opts_.max_connections;
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t shard = next_shard_;
    next_shard_ = (next_shard_ + 1) % shards_.size();
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.accepted;
      ++stats_.shard_connections[shard];
    }
    shards_[shard]->adopt(fd, refused);
  }
}

void Server::run(std::ostream& log) {
  const auto stop_requested = [this] {
    return stop_.load(std::memory_order_relaxed) ||
           serve::shutdown_requested();
  };

  // One compute pool shared by every shard (sized by the service's jobs
  // setting), one background cache flusher, N event loops.  The pool and
  // the flusher must outlive the shards: shard drain waits on futures the
  // pool is still running, and the flusher owns every cache checkpoint.
  pool_ = std::make_unique<engine::ThreadPool>(service_.jobs());
  flusher_ = std::make_unique<detail::CacheFlusher>(service_, log);
  shards_.clear();
  next_shard_ = 0;
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<detail::Shard>(*this, i));
  }
  for (auto& s : shards_) s->start();

  while (!stop_requested()) {
    pollfd lp{listener_.fd(), POLLIN, 0};
    (void)::poll(&lp, 1, opts_.poll_interval_ms);
    accept_pending();
    publish_gauges();
  }

  // Drain: stop accepting, then let every shard answer what it owes
  // (buffered complete lines and in-flight futures) before the pool and
  // the flusher wind down — the flusher's destructor performs the final
  // cache checkpoint.
  listener_.close();
  for (auto& s : shards_) s->request_stop();
  for (auto& s : shards_) s->join();
  pool_->wait();
  pool_.reset();
  flusher_.reset();
  shards_.clear();
  publish_gauges();

  const ServerStats s = stats();
  log << "net: drained — " << s.accepted << " connection(s), " << s.answered
      << " request(s) answered, " << s.bytes_in << " bytes in, " << s.bytes_out
      << " bytes out, disconnects: " << s.disconnect_eof << " eof, "
      << s.disconnect_idle << " idle, " << s.disconnect_oversize
      << " oversize, " << s.disconnect_slow_reader << " slow-reader, "
      << s.disconnect_refused << " refused, " << s.disconnect_error
      << " error, " << s.disconnect_drained << " drained\n";
}

}  // namespace rvhpc::net
