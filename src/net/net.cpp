#include "net/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace rvhpc::net {
namespace {

using Clock = std::chrono::steady_clock;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// A transport-level farewell in the service's error-response shape, so a
/// client can parse every line it ever receives the same way.
std::string error_line(const char* kind, const std::string& message) {
  return std::string("{\"id\": \"\", \"status\": \"error\", \"error\": \"") +
         kind + "\", \"message\": \"" + obs::json::escape(message) + "\"}\n";
}

// --- net-level metrics ----------------------------------------------------

enum class Count { Connection, Answered };

void count(Count which, std::uint64_t n = 1) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& conns = obs::Registry::global().counter(
      "rvhpc_net_connections_total", "TCP connections accepted");
  static obs::Counter& answered = obs::Registry::global().counter(
      "rvhpc_net_requests_total", "request lines answered over TCP");
  switch (which) {
    case Count::Connection: conns.add(n); break;
    case Count::Answered:   answered.add(n); break;
  }
}

void count_bytes(bool in, std::uint64_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  static obs::Counter& read = obs::Registry::global().counter(
      "rvhpc_net_bytes_read_total", "payload bytes received over TCP");
  static obs::Counter& written = obs::Registry::global().counter(
      "rvhpc_net_bytes_written_total", "response bytes written over TCP");
  (in ? read : written).add(n);
}

void count_disconnect(Disconnect cause) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& eof = obs::Registry::global().counter(
      "rvhpc_net_disconnects_eof_total", "connections closed by the client");
  static obs::Counter& idle = obs::Registry::global().counter(
      "rvhpc_net_disconnects_idle_total",
      "connections dropped by the idle timeout");
  static obs::Counter& oversize = obs::Registry::global().counter(
      "rvhpc_net_disconnects_oversize_total",
      "connections dropped for an oversized request line");
  static obs::Counter& slow = obs::Registry::global().counter(
      "rvhpc_net_disconnects_slow_reader_total",
      "connections dropped for not draining their responses");
  static obs::Counter& refused = obs::Registry::global().counter(
      "rvhpc_net_disconnects_refused_total",
      "connections refused past the connection cap");
  static obs::Counter& error = obs::Registry::global().counter(
      "rvhpc_net_disconnects_error_total",
      "connections dropped on a socket error");
  static obs::Counter& drained = obs::Registry::global().counter(
      "rvhpc_net_disconnects_drained_total",
      "connections open when the server drained");
  switch (cause) {
    case Disconnect::Eof:        eof.add(); break;
    case Disconnect::Idle:       idle.add(); break;
    case Disconnect::Oversize:   oversize.add(); break;
    case Disconnect::SlowReader: slow.add(); break;
    case Disconnect::Refused:    refused.add(); break;
    case Disconnect::Error:      error.add(); break;
    case Disconnect::Drained:    drained.add(); break;
  }
}

/// Extracts the first complete line (without the '\n', trailing '\r'
/// stripped) from `buf`; false when no newline is buffered yet.
bool take_line(std::string& buf, std::string& line) {
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf, 0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(0, nl + 1);
  return true;
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

const char* to_string(Disconnect cause) {
  switch (cause) {
    case Disconnect::Eof:        return "eof";
    case Disconnect::Idle:       return "idle";
    case Disconnect::Oversize:   return "oversize";
    case Disconnect::SlowReader: return "slow-reader";
    case Disconnect::Refused:    return "refused";
    case Disconnect::Error:      return "error";
    case Disconnect::Drained:    return "drained";
  }
  return "unknown";
}

// --- Listener -------------------------------------------------------------

Listener::~Listener() { close(); }

void Listener::open(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + detail);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    close();
    throw std::runtime_error("listen() failed: " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  set_nonblocking(fd_);
}

int Listener::accept_client() const {
  if (fd_ < 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client >= 0) set_nonblocking(client);
  return client;
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

// --- Server ---------------------------------------------------------------

Server::Server(serve::Service& service, ServerOptions opts)
    : service_(service), opts_(opts) {
  if (opts_.max_line_bytes == 0) opts_.max_line_bytes = 1;
  if (opts_.max_write_buffer == 0) opts_.max_write_buffer = 1;
  if (opts_.poll_interval_ms <= 0) opts_.poll_interval_ms = 50;
}

Server::~Server() {
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
}

void Server::open(std::ostream& log) {
  listener_.open(opts_.port);
  log << "net: listening on 127.0.0.1:" << listener_.port() << "\n"
      << std::flush;
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void Server::publish_gauges() const {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& open_conns = obs::Registry::global().gauge(
      "rvhpc_net_open_connections", "currently connected TCP clients");
  static obs::Gauge& depth = obs::Registry::global().gauge(
      "rvhpc_net_queue_depth_bytes",
      "request bytes buffered and not yet answered, across connections");
  open_conns.set(static_cast<double>(conns_.size()));
  double pending = 0.0;
  for (const auto& c : conns_) pending += static_cast<double>(c->rbuf.size());
  depth.set(pending);
}

void Server::begin_close(Connection& c, Disconnect cause,
                         const std::string& farewell) {
  if (c.closing) return;
  // The farewell rides the normal write path; if even that does not fit
  // the bound the client is hopeless and the buffer stays as-is.
  if (c.wbuf.size() + farewell.size() <= opts_.max_write_buffer) {
    c.wbuf += farewell;
  }
  c.rbuf.clear();
  c.closing = true;
  c.cause = cause;
  c.closing_since_us = now_us();
}

void Server::close_now(Connection& c, Disconnect cause) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  count_disconnect(cause);
  std::lock_guard lock(stats_mu_);
  switch (cause) {
    case Disconnect::Eof:        ++stats_.disconnect_eof; break;
    case Disconnect::Idle:       ++stats_.disconnect_idle; break;
    case Disconnect::Oversize:   ++stats_.disconnect_oversize; break;
    case Disconnect::SlowReader: ++stats_.disconnect_slow_reader; break;
    case Disconnect::Refused:    ++stats_.disconnect_refused; break;
    case Disconnect::Error:      ++stats_.disconnect_error; break;
    case Disconnect::Drained:    ++stats_.disconnect_drained; break;
  }
}

void Server::accept_pending() {
  while (true) {
    const int fd = listener_.accept_client();
    if (fd < 0) return;
    count(Count::Connection);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.accepted;
    }
    if (opts_.so_sndbuf > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                         sizeof(opts_.so_sndbuf));
    }
    auto c = std::make_unique<Connection>();
    c->fd = fd;
    c->last_read_us = now_us();
    if (conns_.size() >= opts_.max_connections) {
      // Polite refusal: a structured line beats a dangling connect.
      begin_close(*c, Disconnect::Refused,
                  error_line("overloaded",
                             "connection limit (" +
                                 std::to_string(opts_.max_connections) +
                                 ") reached; retry later"));
    }
    conns_.push_back(std::move(c));
  }
}

void Server::read_ready(Connection& c) {
  char chunk[4096];
  while (!c.draining && !c.closing && c.rbuf.size() <= opts_.max_line_bytes) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      c.last_read_us = now_us();
      count_bytes(true, static_cast<std::uint64_t>(n));
      std::lock_guard lock(stats_mu_);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
    } else if (n == 0) {
      // EOF: the client is done sending.  Its buffered complete lines are
      // still answered; a trailing partial line (a client that died
      // mid-request) is discarded.
      c.draining = true;
      c.cause = Disconnect::Eof;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    } else if (errno == EINTR) {
      continue;
    } else {
      close_now(c, Disconnect::Error);
      return;
    }
  }
}

/// Answers at most one buffered line of `c`; true when a line was consumed
/// (the round-robin scheduler uses this to detect an idle pass).
bool Server::answer_one_line(Connection& c) {
  if (c.fd < 0 || c.closing) return false;

  std::string line;
  if (!take_line(c.rbuf, line)) {
    // No complete line.  A partial line past the bound can never complete
    // within it — reject it now rather than buffering forever.
    if (c.rbuf.size() > opts_.max_line_bytes) {
      begin_close(c, Disconnect::Oversize,
                  error_line("overloaded",
                             "request line exceeds " +
                                 std::to_string(opts_.max_line_bytes) +
                                 " bytes"));
    }
    return false;
  }
  if (blank(line)) return true;  // consumed input, no response owed
  if (line.size() > opts_.max_line_bytes) {
    begin_close(c, Disconnect::Oversize,
                error_line("overloaded",
                           "request line exceeds " +
                               std::to_string(opts_.max_line_bytes) +
                               " bytes"));
    return false;
  }

  const std::string response = service_.handle_line(line) + "\n";
  if (c.wbuf.size() + response.size() > opts_.max_write_buffer) {
    // The client is not draining responses; holding more would be
    // unbounded memory, and it cannot read an apology either.
    close_now(c, Disconnect::SlowReader);
    return false;
  }
  c.wbuf += response;
  count(Count::Answered);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.answered;
  }
  return true;
}

void Server::process_lines() {
  // Round-robin fairness: each pass gives every connection at most one
  // answered line, starting one past last pass's starting point, until a
  // full pass makes no progress.  A client with 50 buffered requests
  // interleaves with everyone else instead of monopolising the loop.
  bool progress = true;
  while (progress) {
    progress = false;
    const std::size_t n = conns_.size();
    if (n == 0) return;
    rr_ = (rr_ + 1) % n;
    for (std::size_t k = 0; k < n; ++k) {
      progress |= answer_one_line(*conns_[(rr_ + k) % n]);
    }
  }
}

void Server::flush_writes() {
  for (auto& cp : conns_) {
    Connection& c = *cp;
    while (c.fd >= 0 && !c.wbuf.empty()) {
      const ssize_t n =
          ::send(c.fd, c.wbuf.data(), c.wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.wbuf.erase(0, static_cast<std::size_t>(n));
        count_bytes(false, static_cast<std::uint64_t>(n));
        std::lock_guard lock(stats_mu_);
        stats_.bytes_out += static_cast<std::uint64_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        close_now(c, c.closing ? c.cause : Disconnect::Error);
        break;
      }
    }
  }
}

void Server::reap_and_time_out() {
  const double now = now_us();
  for (auto& cp : conns_) {
    Connection& c = *cp;
    if (c.fd < 0) continue;
    if ((c.closing || c.draining) && c.wbuf.empty() &&
        (c.closing || c.rbuf.find('\n') == std::string::npos)) {
      close_now(c, c.cause);
      continue;
    }
    if (c.closing &&
        now - c.closing_since_us > opts_.drain_grace_ms * 1000.0) {
      // Told to go away but not reading the farewell: forced close.
      close_now(c, c.cause);
      continue;
    }
    if (!c.closing && !c.draining && opts_.idle_timeout_ms > 0.0 &&
        now - c.last_read_us > opts_.idle_timeout_ms * 1000.0) {
      begin_close(c, Disconnect::Idle,
                  error_line("timeout",
                             "idle for more than " +
                                 std::to_string(opts_.idle_timeout_ms) +
                                 " ms; closing"));
    }
  }
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) {
    return c->fd < 0;
  });
}

void Server::run(std::ostream& log) {
  const auto stop_requested = [this] {
    return stop_.load(std::memory_order_relaxed) ||
           serve::shutdown_requested();
  };

  std::vector<pollfd> fds;
  while (!stop_requested()) {
    fds.clear();
    if (listener_.is_open()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    for (const auto& c : conns_) {
      short events = 0;
      if (!c->draining && !c->closing &&
          c->rbuf.size() <= opts_.max_line_bytes) {
        events |= POLLIN;
      }
      if (!c->wbuf.empty()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               opts_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) {
      log << "net: WARNING: poll failed: " << std::strerror(errno) << "\n";
    }

    accept_pending();
    // Readiness is a hint, not a contract: reads and writes are
    // non-blocking, so sweeping every connection is safe and keeps the
    // loop free of fd-to-connection bookkeeping.
    for (auto& c : conns_) {
      if (c->fd >= 0 && !c->draining && !c->closing) read_ready(*c);
    }
    process_lines();
    flush_writes();
    reap_and_time_out();
    publish_gauges();
  }

  // Drain: stop accepting, answer every complete line already buffered,
  // then give the write buffers a bounded grace to reach their clients.
  listener_.close();
  process_lines();
  flush_writes();
  const double deadline = now_us() + opts_.drain_grace_ms * 1000.0;
  while (now_us() < deadline) {
    fds.clear();
    for (const auto& c : conns_) {
      if (c->fd >= 0 && !c->wbuf.empty()) fds.push_back({c->fd, POLLOUT, 0});
    }
    if (fds.empty()) break;
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 opts_.poll_interval_ms);
    flush_writes();
    std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) {
      return c->fd < 0;
    });
  }
  for (auto& c : conns_) {
    if (c->fd >= 0) close_now(*c, Disconnect::Drained);
  }
  conns_.clear();
  publish_gauges();

  service_.flush(log);
  const ServerStats s = stats();
  log << "net: drained — " << s.accepted << " connection(s), " << s.answered
      << " request(s) answered, " << s.bytes_in << " bytes in, " << s.bytes_out
      << " bytes out, disconnects: " << s.disconnect_eof << " eof, "
      << s.disconnect_idle << " idle, " << s.disconnect_oversize
      << " oversize, " << s.disconnect_slow_reader << " slow-reader, "
      << s.disconnect_refused << " refused, " << s.disconnect_error
      << " error, " << s.disconnect_drained << " drained\n";
}

}  // namespace rvhpc::net
