#pragma once
// rvhpc::net — sharded TCP transport and multi-client front end.
//
// rvhpc-serve's stdio listener serves exactly one client: whoever owns the
// pipe.  This module puts the same Service behind a loopback TCP socket so
// the persistent prediction cache becomes a shared resource — many
// concurrent clients, one resident cache, one process paying each
// predict() once.  The protocol is unchanged: line-delimited JSON requests
// in (including per-request "backend" selection — serve/service.hpp is
// the schema), one JSON response line per request out.
//
// The same shards optionally serve HTTP/1.1 on a second listener
// (ServerOptions::http): POST /v1/predict carries one request line or a
// JSON-lines batch as a Content-Length body and streams the responses
// back (single → a status-mapped fixed-length reply, batch → chunked,
// each response a chunk as its compute completes, matched by id exactly
// like the raw wire), GET /metrics renders the obs registry inline on
// the shard, and GET /healthz answers drain-aware 200/503.  The framing
// layer is src/http — a pure incremental parser driven by the same
// poll() reads; a connection's protocol is fixed by the listener that
// accepted it, and both protocols share the admission path, the compute
// pool, the bounded-memory taxonomy and the drain contract.
//
// Architecture (DESIGN.md §13): I/O and compute never share a thread.
//
//   acceptor ──round-robin──▶ shard 0..N-1 (one poll() loop each)
//                                 │ admit (cheap parse/lint)
//                                 ▼
//                         engine::ThreadPool ──futures──▶ completions
//                                 ▲                            │
//                                 └── wakeup pipe re-arms ◀────┘
//
// The acceptor thread (the caller of run()) owns the Listener and deals
// accepted sockets round-robin to N event-loop shards; each shard owns its
// connections exclusively and runs its own poll() loop with a wakeup pipe.
// A shard splits every request line through serve::Service::admit() — the
// cheap parse/admission phase — and dispatches the compute phase to the
// shared engine ThreadPool as a std::future; a completed future pokes the
// shard's wakeup pipe so the response is flushed immediately instead of on
// the next poll tick.  Responses complete out of order per connection:
// requests carrying an "id" are answered as soon as their future resolves
// (the id is echoed so clients can match), requests without an "id" keep
// the in-order contract stdio replay relies on.  Warm requests are
// completed inline on the shard (a memo probe, no pool handoff), so one
// slow uncached prediction never stalls cached hits — on the same
// connection or any other.  The periodic persistent-cache checkpoint runs
// on a dedicated background flusher thread, never on an event loop.
//
// Bounded-memory contract (unchanged): a request line longer than
// max_line_bytes answers a structured "overloaded" error and closes; a
// client that stops reading until max_write_buffer fills is disconnected;
// a connection idle past idle_timeout_ms is told "timeout" and closed;
// compute in flight past the service's queue_capacity answers
// "overloaded" at admission.  Nothing about a misbehaving peer can grow
// server state without bound or wedge a loop.
//
// Shutdown: SIGTERM/SIGINT (serve::install_shutdown_handlers) or stop()
// stops accepting, answers every complete request line already buffered,
// waits for every in-flight compute future (answered, not dropped),
// flushes write buffers (bounded grace) and the persistent cache, and
// returns from run().

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rvhpc::serve {
class Service;
}
namespace rvhpc::engine {
class ThreadPool;
}

namespace rvhpc::net {

/// Why a connection was closed — stats and rvhpc_net_disconnects_*_total
/// metrics attribute every close to exactly one cause.
enum class Disconnect {
  Eof,         ///< client closed; its buffered requests were answered first
  Idle,        ///< nothing received for idle_timeout_ms ("timeout" answered)
  Oversize,    ///< request line exceeded max_line_bytes ("overloaded" answered)
  SlowReader,  ///< write buffer bound hit — the client is not reading
  Refused,     ///< accepted past max_connections ("overloaded" answered)
  Error,       ///< socket error (reset, broken pipe)
  Drained,     ///< server shut down while the connection was open
  HeaderTimeout,  ///< a started request's headers dribbled past
                  ///< header_timeout_ms (slow loris; 408 answered on HTTP)
};

[[nodiscard]] const char* to_string(Disconnect cause);

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (the bound one
  /// is reported by Server::port() and logged by open()).
  std::uint16_t port = 0;
  /// Serve the raw JSON-lines protocol on `port`.  Disabled only when the
  /// process is HTTP-only (rvhpc-serve --http without --listen=tcp); at
  /// least one listener is always forced on.
  bool json_listener = true;
  /// Also serve HTTP/1.1 (POST /v1/predict, GET /metrics, GET /healthz —
  /// DESIGN.md §14) on `http_port`.  Both protocols share the shards, the
  /// service and the compute pool; a connection's protocol is fixed by
  /// the listener that accepted it.
  bool http = false;
  /// Port for the HTTP listener; 0 picks an ephemeral port (reported by
  /// http_port() and logged by open()).
  std::uint16_t http_port = 0;
  /// Largest admissible HTTP request body (Content-Length beyond it is
  /// answered 413 and the connection closed).  Header-block and
  /// request-line bounds are fixed (32 KiB / 8 KiB).
  std::size_t max_body_bytes = 1024 * 1024;
  /// Event-loop shards: accepted connections are dealt round-robin across
  /// this many independent poll() loops, each on its own thread.  Clamped
  /// to >= 1.  rvhpc-serve's --shards=0 resolves to
  /// min(hardware_concurrency, 4) before it gets here.
  std::size_t shards = 1;
  /// Concurrent clients across all shards; one past the cap is answered
  /// "overloaded" and closed instead of left dangling in the accept queue.
  std::size_t max_connections = 64;
  /// Longest admissible request line; beyond it the client gets a
  /// structured "overloaded" error and a disconnect.  Also the read-buffer
  /// bound, so per-connection input state never exceeds it (plus one read
  /// chunk).
  std::size_t max_line_bytes = 64 * 1024;
  /// Write-buffer bound per connection: responses a slow reader has not
  /// drained.  Exceeding it disconnects the client.
  std::size_t max_write_buffer = 256 * 1024;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default.  The
  /// slow-reader bound only trips once the kernel's send buffer is full,
  /// so tests (and memory-tight deployments) shrink this to make the
  /// transport's bounded-memory contract bite early.
  int so_sndbuf = 0;
  /// Disconnect a connection that sent nothing for this long; 0 disables.
  double idle_timeout_ms = 0.0;
  /// Deadline for *finishing* a request once its first byte arrives; 0
  /// disables.  Distinct from idle_timeout_ms, which a slow-loris client
  /// defeats by dripping one header byte per interval: each drip resets
  /// the idle clock, but the clock started here runs from the first byte
  /// of the request until its framing completes, no matter how the bytes
  /// arrive.  HTTP connections are answered 408; raw JSON-lines
  /// connections get the structured "timeout" error line.
  double header_timeout_ms = 0.0;
  /// poll() timeout — the latency bound on noticing stop()/SIGTERM.
  /// (Completed futures do not wait for it: they poke the owning shard's
  /// wakeup pipe.)
  int poll_interval_ms = 50;
  /// Grace for flushing write buffers at drain (and for closing
  /// connections that were answered an error but are not reading it).
  /// In-flight compute is *not* grace-bounded at drain: admitted requests
  /// are answered, not dropped.
  double drain_grace_ms = 2000.0;
};

/// Aggregate counters of one Server's lifetime (mirrors the rvhpc_net_*
/// obs metrics, which aggregate across instances; tests want these).
struct ServerStats {
  std::uint64_t accepted = 0;    ///< connections accepted (incl. refused)
  std::uint64_t answered = 0;    ///< response lines delivered to write buffers
  std::uint64_t dispatched = 0;  ///< compute phases handed to the pool
  std::uint64_t bytes_in = 0;    ///< payload bytes received
  std::uint64_t bytes_out = 0;   ///< response bytes written
  std::uint64_t http_requests = 0;  ///< HTTP exchanges completed (all routes)
  std::uint64_t disconnect_eof = 0;
  std::uint64_t disconnect_idle = 0;
  std::uint64_t disconnect_oversize = 0;
  std::uint64_t disconnect_slow_reader = 0;
  std::uint64_t disconnect_refused = 0;
  std::uint64_t disconnect_error = 0;
  std::uint64_t disconnect_drained = 0;
  std::uint64_t disconnect_header_timeout = 0;
  /// Per-shard fan-out, indexed by shard: connections adopted, response
  /// lines delivered.  Sized ServerOptions::shards.
  std::vector<std::uint64_t> shard_connections;
  std::vector<std::uint64_t> shard_answered;
};

/// The listening socket: binds 127.0.0.1:<port>, hands out accepted fds.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens (non-blocking).  Throws std::runtime_error when the
  /// port cannot be bound.  port 0 binds an ephemeral port; port() reports
  /// the one the kernel chose.
  void open(std::uint16_t port);
  /// One pending client as a non-blocking fd, or -1 when none is waiting.
  [[nodiscard]] int accept_client() const;
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

namespace detail {
class Shard;
class CacheFlusher;
}  // namespace detail

class Server {
 public:
  /// The Service outlives the Server; request lines are admitted by
  /// service.admit on a shard thread and completed on the engine pool.
  Server(serve::Service& service, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener(s) and logs "net: listening on 127.0.0.1:<port>"
  /// (and "http: listening on 127.0.0.1:<port>" when HTTP is enabled) —
  /// the lines scripts/check.sh parses ephemeral ports from.  Throws
  /// std::runtime_error on bind failure.
  void open(std::ostream& log);
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  /// Port of the HTTP listener (0 when ServerOptions::http is off).
  [[nodiscard]] std::uint16_t http_port() const {
    return http_listener_.port();
  }

  /// Accept loop: spawns the shards, the compute pool and the background
  /// cache flusher, then deals accepted sockets round-robin until stop()
  /// or serve::shutdown_requested().  Drains (buffered requests answered,
  /// in-flight futures completed, write buffers and the persistent cache
  /// flushed) and logs a "net: drained" summary before returning.
  void run(std::ostream& log);

  /// Requests the same graceful drain SIGTERM does (thread-safe).
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] ServerStats stats() const;

 private:
  friend class detail::Shard;
  friend class detail::CacheFlusher;

  void accept_pending();
  void accept_from(const Listener& listener, bool http);
  void publish_gauges() const;

  serve::Service& service_;
  ServerOptions opts_;
  Listener listener_;       ///< raw JSON-lines protocol
  Listener http_listener_;  ///< HTTP/1.1 front end (when opts_.http)
  std::vector<std::unique_ptr<detail::Shard>> shards_;
  std::unique_ptr<engine::ThreadPool> pool_;
  std::unique_ptr<detail::CacheFlusher> flusher_;
  std::size_t next_shard_ = 0;  ///< round-robin deal cursor
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> open_conns_{0};  ///< across shards (cap check)
  std::atomic<std::size_t> inflight_{0};    ///< dispatched, not completed
  mutable std::mutex stats_mu_;  ///< tests poll stats() from other threads
  ServerStats stats_;
};

}  // namespace rvhpc::net
