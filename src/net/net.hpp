#pragma once
// rvhpc::net — TCP transport and multi-client front end for the service.
//
// rvhpc-serve's stdio listener serves exactly one client: whoever owns the
// pipe.  This module puts the same Service behind a loopback TCP socket so
// the persistent prediction cache becomes a shared resource — many
// concurrent clients, one resident cache, one process paying each
// predict() once.  The protocol is unchanged: line-delimited JSON requests
// in (including per-request "backend" selection — serve/service.hpp is
// the schema), one JSON response line per request out, every line routed through
// serve::Service::handle_line so admission lint, deadlines, structured
// errors and stats behave identically over TCP and stdio.
//
// Architecture (DESIGN.md §10): a single-threaded poll() event loop.  The
// Listener accepts clients on 127.0.0.1 (port 0 = ephemeral, reported via
// port()); each Connection owns a bounded read buffer and a bounded write
// buffer.  Complete lines are answered round-robin across connections, one
// line per connection per pass, so a chatty client interleaves fairly with
// everyone else instead of starving them.  Evaluation happens inline on
// the loop thread — handle_line already memoises through the shared cache,
// and a single writer keeps the whole transport free of locks.
//
// Bounded-memory contract: a request line longer than max_line_bytes
// answers a structured "overloaded" error and closes; a client that stops
// reading until max_write_buffer fills is disconnected (it cannot receive
// an error it refuses to read); a connection idle past idle_timeout_ms is
// told "timeout" and closed.  Nothing about a misbehaving peer can grow
// server state without bound or wedge the loop.
//
// Shutdown: SIGTERM/SIGINT (serve::install_shutdown_handlers) or stop()
// stops accepting, answers every complete request line already buffered,
// flushes the write buffers (bounded grace), flushes the service's
// persistent cache, and returns from run() — the same drain semantics the
// stdio loop has.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rvhpc::serve {
class Service;
}

namespace rvhpc::net {

/// Why a connection was closed — stats and rvhpc_net_disconnects_*_total
/// metrics attribute every close to exactly one cause.
enum class Disconnect {
  Eof,         ///< client closed; its buffered requests were answered first
  Idle,        ///< nothing received for idle_timeout_ms ("timeout" answered)
  Oversize,    ///< request line exceeded max_line_bytes ("overloaded" answered)
  SlowReader,  ///< write buffer bound hit — the client is not reading
  Refused,     ///< accepted past max_connections ("overloaded" answered)
  Error,       ///< socket error (reset, broken pipe)
  Drained,     ///< server shut down while the connection was open
};

[[nodiscard]] const char* to_string(Disconnect cause);

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (the bound one
  /// is reported by Server::port() and logged by open()).
  std::uint16_t port = 0;
  /// Concurrent clients; one past the cap is answered "overloaded" and
  /// closed instead of left dangling in the accept queue.
  std::size_t max_connections = 64;
  /// Longest admissible request line; beyond it the client gets a
  /// structured "overloaded" error and a disconnect.  Also the read-buffer
  /// bound, so per-connection input state never exceeds it (plus one read
  /// chunk).
  std::size_t max_line_bytes = 64 * 1024;
  /// Write-buffer bound per connection: responses a slow reader has not
  /// drained.  Exceeding it disconnects the client.
  std::size_t max_write_buffer = 256 * 1024;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default.  The
  /// slow-reader bound only trips once the kernel's send buffer is full,
  /// so tests (and memory-tight deployments) shrink this to make the
  /// transport's bounded-memory contract bite early.
  int so_sndbuf = 0;
  /// Disconnect a connection that sent nothing for this long; 0 disables.
  double idle_timeout_ms = 0.0;
  /// poll() timeout — the latency bound on noticing stop()/SIGTERM.
  int poll_interval_ms = 50;
  /// Grace for flushing write buffers at drain (and for closing
  /// connections that were answered an error but are not reading it).
  double drain_grace_ms = 2000.0;
};

/// Aggregate counters of one Server's lifetime (mirrors the rvhpc_net_*
/// obs metrics, which aggregate across instances; tests want these).
struct ServerStats {
  std::uint64_t accepted = 0;   ///< connections accepted (incl. refused)
  std::uint64_t answered = 0;   ///< request lines answered with a response
  std::uint64_t bytes_in = 0;   ///< payload bytes received
  std::uint64_t bytes_out = 0;  ///< response bytes written
  std::uint64_t disconnect_eof = 0;
  std::uint64_t disconnect_idle = 0;
  std::uint64_t disconnect_oversize = 0;
  std::uint64_t disconnect_slow_reader = 0;
  std::uint64_t disconnect_refused = 0;
  std::uint64_t disconnect_error = 0;
  std::uint64_t disconnect_drained = 0;
};

/// The listening socket: binds 127.0.0.1:<port>, hands out accepted fds.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens (non-blocking).  Throws std::runtime_error when the
  /// port cannot be bound.  port 0 binds an ephemeral port; port() reports
  /// the one the kernel chose.
  void open(std::uint16_t port);
  /// One pending client as a non-blocking fd, or -1 when none is waiting.
  [[nodiscard]] int accept_client() const;
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// One accepted client: its fd plus the bounded buffers and liveness
/// clocks the event loop schedules it by.
struct Connection {
  int fd = -1;
  std::string rbuf;           ///< received bytes not yet framed into lines
  std::string wbuf;           ///< response bytes the client has not drained
  double last_read_us = 0.0;  ///< idle-timeout clock (reset on every read)
  double closing_since_us = 0.0;  ///< when `closing` was set (grace clock)
  bool draining = false;  ///< read side saw EOF; answer what is buffered
  bool closing = false;   ///< farewell queued; close once wbuf flushes
  Disconnect cause = Disconnect::Eof;  ///< recorded when closing/draining
};

class Server {
 public:
  /// The Service outlives the Server; every request line is answered by
  /// service.handle_line on the loop thread.
  Server(serve::Service& service, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and logs "net: listening on 127.0.0.1:<port>" —
  /// the line scripts/check.sh parses the ephemeral port from.  Throws
  /// std::runtime_error on bind failure.
  void open(std::ostream& log);
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Event loop: serves until stop() or serve::shutdown_requested(), then
  /// drains (answers buffered requests, flushes write buffers and the
  /// persistent cache) and logs a "net: drained" summary.
  void run(std::ostream& log);

  /// Requests the same graceful drain SIGTERM does (thread-safe).
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] ServerStats stats() const;

 private:
  void accept_pending();
  void read_ready(Connection& c);
  bool answer_one_line(Connection& c);
  void process_lines();
  void flush_writes();
  void reap_and_time_out();
  void begin_close(Connection& c, Disconnect cause, const std::string& farewell);
  void close_now(Connection& c, Disconnect cause);
  void publish_gauges() const;

  serve::Service& service_;
  ServerOptions opts_;
  Listener listener_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::size_t rr_ = 0;  ///< round-robin cursor for fair line scheduling
  std::atomic<bool> stop_{false};
  mutable std::mutex stats_mu_;  ///< tests poll stats() from other threads
  ServerStats stats_;
};

}  // namespace rvhpc::net
