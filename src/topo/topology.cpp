#include "topo/topology.hpp"

#include <algorithm>
#include <cstddef>

namespace rvhpc::topo {
namespace {

/// Of the data homed uniformly across the used domains, the fraction a
/// kernel's threads actually touch remotely.  Streamed sweeps are mostly
/// domain-local under first-touch; halo exchanges, shared vectors and
/// reduction trees are not.  One calibrated knob, shared by both
/// prediction backends so their bottleneck classifications stay
/// comparable on multi-socket machines.
constexpr double kUniformShare = 0.35;

/// Index of the domain named `id` in declaration order; -1 when absent.
int index_of(const Topology& t, const std::string& id) {
  for (std::size_t i = 0; i < t.domains.size(); ++i) {
    if (t.domains[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int Topology::total_cores() const {
  int sum = 0;
  for (const Domain& d : domains) sum += d.cores;
  return sum;
}

const Domain* Topology::find(const std::string& id) const {
  for (const Domain& d : domains) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

std::vector<std::string> structural_issues(const Topology& t) {
  std::vector<std::string> issues;
  for (std::size_t i = 0; i < t.domains.size(); ++i) {
    const Domain& d = t.domains[i];
    const std::string where = "topology.domain[" + std::to_string(i) + "]: ";
    if (d.id.empty()) issues.push_back(where + "domain id must be non-empty");
    if (d.cores < 1) issues.push_back(where + "domain must own at least one core");
    if (d.dram_gib <= 0.0) issues.push_back(where + "local DRAM slice must be positive");
    if (d.dram_bw_gbs <= 0.0) {
      issues.push_back(where + "local DRAM bandwidth must be positive");
    }
    if (d.llc_mib < 0.0) issues.push_back(where + "LLC slice must be non-negative");
    for (std::size_t j = 0; j < i; ++j) {
      if (t.domains[j].id == d.id) {
        issues.push_back(where + "duplicate domain id '" + d.id + "'");
      }
    }
  }
  for (std::size_t i = 0; i < t.links.size(); ++i) {
    const Link& l = t.links[i];
    const std::string where = "topology.link[" + std::to_string(i) + "]: ";
    if (l.from == l.to) {
      issues.push_back(where + "link must join two distinct domains");
    }
    for (const std::string* end : {&l.from, &l.to}) {
      if (!t.find(*end)) {
        issues.push_back(where + "endpoint '" + *end +
                         "' is not a declared domain");
      }
    }
    if (l.bandwidth_gbs <= 0.0) {
      issues.push_back(where + "link bandwidth must be positive");
    }
    if (l.latency_ns < 0.0) issues.push_back(where + "latency must be non-negative");
    if (l.coherence_ns < 0.0) {
      issues.push_back(where + "coherence penalty must be non-negative");
    }
  }
  if (!t.domains.empty() && t.domains.size() > 1 && t.links.empty()) {
    issues.push_back(
        "topology: multiple domains declared but no link joins them");
  }
  return issues;
}

int domains_spanned(const Topology& t, int active_cores) {
  if (t.domains.empty() || active_cores <= 0) return 1;
  int hosted = 0;
  for (std::size_t i = 0; i < t.domains.size(); ++i) {
    hosted += std::max(t.domains[i].cores, 0);
    if (hosted >= active_cores) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(t.domains.size());
}

CrossTraffic cross_traffic(const Topology& t, int active_cores,
                           double working_set_mib) {
  CrossTraffic x;
  const int d = domains_spanned(t, active_cores);
  if (d <= 1) return x;

  // A working set the first domain's LLC slice holds never leaves it:
  // the shared data is cache-resident and coherence keeps copies local.
  // The remote share ramps in as the set outgrows that slice.
  double span = 1.0;
  const double llc = t.domains.front().llc_mib;
  if (llc > 0.0 && working_set_mib > 0.0) {
    span = std::clamp(working_set_mib / llc - 1.0, 0.0, 1.0);
  }

  // Aggregate the links whose both endpoints are among the used (first d)
  // domains; a topology whose used domains are not linked carries no
  // cross traffic at all rather than charging against a phantom link.
  double bw = 0.0;
  double penalty = 0.0;
  int used = 0;
  for (const Link& l : t.links) {
    const int a = index_of(t, l.from);
    const int b = index_of(t, l.to);
    if (a < 0 || b < 0 || a >= d || b >= d) continue;
    bw += l.bandwidth_gbs;
    penalty += l.latency_ns + l.coherence_ns;
    ++used;
  }
  if (used == 0 || bw <= 0.0) return x;

  x.domains_used = d;
  x.remote_fraction = kUniformShare * (1.0 - 1.0 / d) * span;
  x.link_bw_gbs = bw;
  x.extra_latency_ns = penalty / used;
  return x;
}

}  // namespace rvhpc::topo
