#pragma once
// rvhpc::topo — NUMA / multi-socket topology modeling.
//
// The paper evaluates a single-socket SG2044, where one MemorySubsystem
// describes the whole chip.  Past one socket — Brown & Day's multi-socket
// RISC-V study (arxiv 2502.10320) and the Monte Cimone v3 cluster (arxiv
// 2605.22831) — the scaling shape is dominated by what the flat model
// cannot express: cross-socket traffic drains through an inter-socket
// link that is far narrower than local DRAM, and every remote access pays
// the link's latency plus a coherence penalty.
//
// A Topology is an optional overlay on arch::MachineModel: a list of NUMA
// domains (cores, local DRAM slice/bandwidth, local LLC slice) plus the
// links between them.  An empty topology is "flat" — the single-socket
// default — and every consumer must treat a flat machine bit-identically
// to a machine that predates this type.  Both prediction backends charge
// topology through the one shared helper below (cross_traffic), so the
// backend-agreement bench localises divergence to the interval mechanism,
// never to a different topology interpretation.

#include <string>
#include <vector>

namespace rvhpc::topo {

/// One NUMA domain: a socket of a multi-socket board, or a node of a
/// cluster-style machine.  Cores fill domains in declaration order
/// (first-touch placement), so the first domain is where a small run
/// lives entirely.
struct Domain {
  std::string id;            ///< unique name, e.g. "socket0", "node2"
  int cores = 0;             ///< cores owned by this domain
  double dram_gib = 0.0;     ///< local DRAM slice
  double dram_bw_gbs = 0.0;  ///< sustained local DRAM bandwidth
  double llc_mib = 0.0;      ///< last-level cache slice local to the domain
};

/// One inter-domain link (socket interconnect, cluster fabric).  Links
/// are undirected for charging purposes; `from`/`to` must name declared
/// domains.
struct Link {
  std::string from;
  std::string to;
  double bandwidth_gbs = 0.0;  ///< sustained cross-domain bandwidth
  double latency_ns = 0.0;     ///< one-way transfer latency
  double coherence_ns = 0.0;   ///< extra penalty per coherent remote access
};

struct Topology {
  std::vector<Domain> domains;
  std::vector<Link> links;

  /// The single-socket default: no topology section at all.  Flat
  /// machines must predict bit-identically to the pre-topology code.
  [[nodiscard]] bool flat() const { return domains.empty(); }
  [[nodiscard]] int total_cores() const;
  /// Domain by id; nullptr when no such domain is declared.
  [[nodiscard]] const Domain* find(const std::string& id) const;
};

/// Structural invariants that need no owning machine: unique non-empty
/// domain ids, positive per-domain resources, links with positive
/// bandwidth joining two distinct declared domains.  Returns
/// human-readable issues (empty = sound); arch::validate folds these
/// into its ValidationIssue list.
[[nodiscard]] std::vector<std::string> structural_issues(const Topology& t);

/// How many leading domains host `active_cores` cores when threads fill
/// domains in declaration order (first-touch).  1 when the topology is
/// flat or one domain suffices.
[[nodiscard]] int domains_spanned(const Topology& t, int active_cores);

/// What a run crossing domains pays — the one charging model both
/// prediction backends share.
struct CrossTraffic {
  int domains_used = 1;
  /// Fraction of DRAM traffic homed in a remote domain.  0 when the run
  /// fits one domain (or the topology is flat/disconnected), which is the
  /// bit-identity guarantee for every pre-existing machine.
  double remote_fraction = 0.0;
  /// Aggregate sustained bandwidth of the links joining the used domains.
  double link_bw_gbs = 0.0;
  /// Mean per-remote-access penalty over those links: transfer latency
  /// plus the coherence penalty.
  double extra_latency_ns = 0.0;
};

/// Charges `active_cores` cores running a kernel with the given working
/// set against the topology.  Shared arrays are distributed first-touch
/// across the used domains, so the remote share of traffic grows with
/// the domain count ((1 - 1/d) of uniformly-placed data, derated by the
/// fraction of such data a kernel actually touches remotely); a working
/// set a single domain's LLC slice holds stays coherence-local and
/// crosses no link.
[[nodiscard]] CrossTraffic cross_traffic(const Topology& t, int active_cores,
                                         double working_set_mib);

}  // namespace rvhpc::topo
