# Empty compiler generated dependencies file for rvhpc_report.
# This may be replaced when dependencies are built.
