file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_report.dir/chart.cpp.o"
  "CMakeFiles/rvhpc_report.dir/chart.cpp.o.d"
  "CMakeFiles/rvhpc_report.dir/csv.cpp.o"
  "CMakeFiles/rvhpc_report.dir/csv.cpp.o.d"
  "CMakeFiles/rvhpc_report.dir/table.cpp.o"
  "CMakeFiles/rvhpc_report.dir/table.cpp.o.d"
  "librvhpc_report.a"
  "librvhpc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
