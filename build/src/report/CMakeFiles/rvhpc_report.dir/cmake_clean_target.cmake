file(REMOVE_RECURSE
  "librvhpc_report.a"
)
