
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/machine.cpp" "src/arch/CMakeFiles/rvhpc_arch.dir/machine.cpp.o" "gcc" "src/arch/CMakeFiles/rvhpc_arch.dir/machine.cpp.o.d"
  "/root/repo/src/arch/registry.cpp" "src/arch/CMakeFiles/rvhpc_arch.dir/registry.cpp.o" "gcc" "src/arch/CMakeFiles/rvhpc_arch.dir/registry.cpp.o.d"
  "/root/repo/src/arch/serialize.cpp" "src/arch/CMakeFiles/rvhpc_arch.dir/serialize.cpp.o" "gcc" "src/arch/CMakeFiles/rvhpc_arch.dir/serialize.cpp.o.d"
  "/root/repo/src/arch/validate.cpp" "src/arch/CMakeFiles/rvhpc_arch.dir/validate.cpp.o" "gcc" "src/arch/CMakeFiles/rvhpc_arch.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
