# Empty dependencies file for rvhpc_arch.
# This may be replaced when dependencies are built.
