file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_arch.dir/machine.cpp.o"
  "CMakeFiles/rvhpc_arch.dir/machine.cpp.o.d"
  "CMakeFiles/rvhpc_arch.dir/registry.cpp.o"
  "CMakeFiles/rvhpc_arch.dir/registry.cpp.o.d"
  "CMakeFiles/rvhpc_arch.dir/serialize.cpp.o"
  "CMakeFiles/rvhpc_arch.dir/serialize.cpp.o.d"
  "CMakeFiles/rvhpc_arch.dir/validate.cpp.o"
  "CMakeFiles/rvhpc_arch.dir/validate.cpp.o.d"
  "librvhpc_arch.a"
  "librvhpc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
