file(REMOVE_RECURSE
  "librvhpc_arch.a"
)
