
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/compiler.cpp" "src/model/CMakeFiles/rvhpc_model.dir/compiler.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/compiler.cpp.o.d"
  "/root/repo/src/model/paper_reference.cpp" "src/model/CMakeFiles/rvhpc_model.dir/paper_reference.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/paper_reference.cpp.o.d"
  "/root/repo/src/model/predictor.cpp" "src/model/CMakeFiles/rvhpc_model.dir/predictor.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/predictor.cpp.o.d"
  "/root/repo/src/model/roofline.cpp" "src/model/CMakeFiles/rvhpc_model.dir/roofline.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/roofline.cpp.o.d"
  "/root/repo/src/model/scaling.cpp" "src/model/CMakeFiles/rvhpc_model.dir/scaling.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/scaling.cpp.o.d"
  "/root/repo/src/model/sensitivity.cpp" "src/model/CMakeFiles/rvhpc_model.dir/sensitivity.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/sensitivity.cpp.o.d"
  "/root/repo/src/model/signatures.cpp" "src/model/CMakeFiles/rvhpc_model.dir/signatures.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/signatures.cpp.o.d"
  "/root/repo/src/model/singlecore.cpp" "src/model/CMakeFiles/rvhpc_model.dir/singlecore.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/singlecore.cpp.o.d"
  "/root/repo/src/model/sweep.cpp" "src/model/CMakeFiles/rvhpc_model.dir/sweep.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/sweep.cpp.o.d"
  "/root/repo/src/model/workload.cpp" "src/model/CMakeFiles/rvhpc_model.dir/workload.cpp.o" "gcc" "src/model/CMakeFiles/rvhpc_model.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/rvhpc_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
