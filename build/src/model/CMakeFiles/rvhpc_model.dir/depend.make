# Empty dependencies file for rvhpc_model.
# This may be replaced when dependencies are built.
