file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_model.dir/compiler.cpp.o"
  "CMakeFiles/rvhpc_model.dir/compiler.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/paper_reference.cpp.o"
  "CMakeFiles/rvhpc_model.dir/paper_reference.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/predictor.cpp.o"
  "CMakeFiles/rvhpc_model.dir/predictor.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/roofline.cpp.o"
  "CMakeFiles/rvhpc_model.dir/roofline.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/scaling.cpp.o"
  "CMakeFiles/rvhpc_model.dir/scaling.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/sensitivity.cpp.o"
  "CMakeFiles/rvhpc_model.dir/sensitivity.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/signatures.cpp.o"
  "CMakeFiles/rvhpc_model.dir/signatures.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/singlecore.cpp.o"
  "CMakeFiles/rvhpc_model.dir/singlecore.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/sweep.cpp.o"
  "CMakeFiles/rvhpc_model.dir/sweep.cpp.o.d"
  "CMakeFiles/rvhpc_model.dir/workload.cpp.o"
  "CMakeFiles/rvhpc_model.dir/workload.cpp.o.d"
  "librvhpc_model.a"
  "librvhpc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
