file(REMOVE_RECURSE
  "librvhpc_model.a"
)
