file(REMOVE_RECURSE
  "librvhpc_hpc.a"
)
