file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_hpc.dir/hpcg.cpp.o"
  "CMakeFiles/rvhpc_hpc.dir/hpcg.cpp.o.d"
  "CMakeFiles/rvhpc_hpc.dir/hpl.cpp.o"
  "CMakeFiles/rvhpc_hpc.dir/hpl.cpp.o.d"
  "librvhpc_hpc.a"
  "librvhpc_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
