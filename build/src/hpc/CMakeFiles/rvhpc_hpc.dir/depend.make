# Empty dependencies file for rvhpc_hpc.
# This may be replaced when dependencies are built.
