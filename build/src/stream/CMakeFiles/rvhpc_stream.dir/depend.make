# Empty dependencies file for rvhpc_stream.
# This may be replaced when dependencies are built.
