file(REMOVE_RECURSE
  "librvhpc_stream.a"
)
