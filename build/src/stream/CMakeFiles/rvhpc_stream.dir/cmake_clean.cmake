file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_stream.dir/stream.cpp.o"
  "CMakeFiles/rvhpc_stream.dir/stream.cpp.o.d"
  "librvhpc_stream.a"
  "librvhpc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
