file(REMOVE_RECURSE
  "librvhpc_npb.a"
)
