# Empty dependencies file for rvhpc_npb.
# This may be replaced when dependencies are built.
