file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_npb.dir/app_common.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/app_common.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/bt.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/bt.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/cg.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/cg.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/ep.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/ep.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/ft.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/ft.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/is.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/is.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/lu.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/lu.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/mg.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/mg.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/npb_common.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/npb_common.cpp.o.d"
  "CMakeFiles/rvhpc_npb.dir/sp.cpp.o"
  "CMakeFiles/rvhpc_npb.dir/sp.cpp.o.d"
  "librvhpc_npb.a"
  "librvhpc_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
