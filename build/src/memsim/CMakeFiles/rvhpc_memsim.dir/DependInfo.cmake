
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/rvhpc_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/rvhpc_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/dram.cpp" "src/memsim/CMakeFiles/rvhpc_memsim.dir/dram.cpp.o" "gcc" "src/memsim/CMakeFiles/rvhpc_memsim.dir/dram.cpp.o.d"
  "/root/repo/src/memsim/hierarchy.cpp" "src/memsim/CMakeFiles/rvhpc_memsim.dir/hierarchy.cpp.o" "gcc" "src/memsim/CMakeFiles/rvhpc_memsim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/memsim/profile.cpp" "src/memsim/CMakeFiles/rvhpc_memsim.dir/profile.cpp.o" "gcc" "src/memsim/CMakeFiles/rvhpc_memsim.dir/profile.cpp.o.d"
  "/root/repo/src/memsim/trace.cpp" "src/memsim/CMakeFiles/rvhpc_memsim.dir/trace.cpp.o" "gcc" "src/memsim/CMakeFiles/rvhpc_memsim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/rvhpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rvhpc_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
