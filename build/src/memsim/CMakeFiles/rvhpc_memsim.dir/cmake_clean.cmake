file(REMOVE_RECURSE
  "CMakeFiles/rvhpc_memsim.dir/cache.cpp.o"
  "CMakeFiles/rvhpc_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/rvhpc_memsim.dir/dram.cpp.o"
  "CMakeFiles/rvhpc_memsim.dir/dram.cpp.o.d"
  "CMakeFiles/rvhpc_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/rvhpc_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/rvhpc_memsim.dir/profile.cpp.o"
  "CMakeFiles/rvhpc_memsim.dir/profile.cpp.o.d"
  "CMakeFiles/rvhpc_memsim.dir/trace.cpp.o"
  "CMakeFiles/rvhpc_memsim.dir/trace.cpp.o.d"
  "librvhpc_memsim.a"
  "librvhpc_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvhpc_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
