# Empty dependencies file for rvhpc_memsim.
# This may be replaced when dependencies are built.
