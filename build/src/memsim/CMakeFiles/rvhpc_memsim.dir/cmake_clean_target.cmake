file(REMOVE_RECURSE
  "librvhpc_memsim.a"
)
