file(REMOVE_RECURSE
  "CMakeFiles/whatif_designer.dir/whatif_designer.cpp.o"
  "CMakeFiles/whatif_designer.dir/whatif_designer.cpp.o.d"
  "whatif_designer"
  "whatif_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
