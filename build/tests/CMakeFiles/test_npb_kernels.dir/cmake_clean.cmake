file(REMOVE_RECURSE
  "CMakeFiles/test_npb_kernels.dir/test_npb_kernels.cpp.o"
  "CMakeFiles/test_npb_kernels.dir/test_npb_kernels.cpp.o.d"
  "test_npb_kernels"
  "test_npb_kernels.pdb"
  "test_npb_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
