# Empty dependencies file for test_stream_report.
# This may be replaced when dependencies are built.
