file(REMOVE_RECURSE
  "CMakeFiles/test_stream_report.dir/test_stream_report.cpp.o"
  "CMakeFiles/test_stream_report.dir/test_stream_report.cpp.o.d"
  "test_stream_report"
  "test_stream_report.pdb"
  "test_stream_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
