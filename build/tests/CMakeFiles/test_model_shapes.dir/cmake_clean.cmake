file(REMOVE_RECURSE
  "CMakeFiles/test_model_shapes.dir/test_model_shapes.cpp.o"
  "CMakeFiles/test_model_shapes.dir/test_model_shapes.cpp.o.d"
  "test_model_shapes"
  "test_model_shapes.pdb"
  "test_model_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
