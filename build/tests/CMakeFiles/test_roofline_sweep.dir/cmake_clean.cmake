file(REMOVE_RECURSE
  "CMakeFiles/test_roofline_sweep.dir/test_roofline_sweep.cpp.o"
  "CMakeFiles/test_roofline_sweep.dir/test_roofline_sweep.cpp.o.d"
  "test_roofline_sweep"
  "test_roofline_sweep.pdb"
  "test_roofline_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roofline_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
