# Empty compiler generated dependencies file for test_roofline_sweep.
# This may be replaced when dependencies are built.
