# Empty dependencies file for test_memsim_cache.
# This may be replaced when dependencies are built.
