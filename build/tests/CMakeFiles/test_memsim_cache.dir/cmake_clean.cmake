file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_cache.dir/test_memsim_cache.cpp.o"
  "CMakeFiles/test_memsim_cache.dir/test_memsim_cache.cpp.o.d"
  "test_memsim_cache"
  "test_memsim_cache.pdb"
  "test_memsim_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
