# Empty compiler generated dependencies file for test_memsim_dram_hierarchy.
# This may be replaced when dependencies are built.
