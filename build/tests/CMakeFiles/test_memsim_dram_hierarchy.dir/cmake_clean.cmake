file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_dram_hierarchy.dir/test_memsim_dram_hierarchy.cpp.o"
  "CMakeFiles/test_memsim_dram_hierarchy.dir/test_memsim_dram_hierarchy.cpp.o.d"
  "test_memsim_dram_hierarchy"
  "test_memsim_dram_hierarchy.pdb"
  "test_memsim_dram_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_dram_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
