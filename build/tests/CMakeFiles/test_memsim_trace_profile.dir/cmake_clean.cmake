file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_trace_profile.dir/test_memsim_trace_profile.cpp.o"
  "CMakeFiles/test_memsim_trace_profile.dir/test_memsim_trace_profile.cpp.o.d"
  "test_memsim_trace_profile"
  "test_memsim_trace_profile.pdb"
  "test_memsim_trace_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_trace_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
