# Empty compiler generated dependencies file for test_memsim_trace_profile.
# This may be replaced when dependencies are built.
