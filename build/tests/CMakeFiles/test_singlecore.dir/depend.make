# Empty dependencies file for test_singlecore.
# This may be replaced when dependencies are built.
