file(REMOVE_RECURSE
  "CMakeFiles/test_singlecore.dir/test_singlecore.cpp.o"
  "CMakeFiles/test_singlecore.dir/test_singlecore.cpp.o.d"
  "test_singlecore"
  "test_singlecore.pdb"
  "test_singlecore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
