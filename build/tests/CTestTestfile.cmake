# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_singlecore[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_signatures[1]_include.cmake")
include("/root/repo/build/tests/test_model_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_roofline_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_dram_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_trace_profile[1]_include.cmake")
include("/root/repo/build/tests/test_npb_common[1]_include.cmake")
include("/root/repo/build/tests/test_npb_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_npb_apps[1]_include.cmake")
include("/root/repo/build/tests/test_stream_report[1]_include.cmake")
include("/root/repo/build/tests/test_hpc[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
