file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_placement.dir/ablation_thread_placement.cpp.o"
  "CMakeFiles/ablation_thread_placement.dir/ablation_thread_placement.cpp.o.d"
  "ablation_thread_placement"
  "ablation_thread_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
