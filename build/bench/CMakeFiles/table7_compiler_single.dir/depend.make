# Empty dependencies file for table7_compiler_single.
# This may be replaced when dependencies are built.
