file(REMOVE_RECURSE
  "CMakeFiles/table7_compiler_single.dir/table7_compiler_single.cpp.o"
  "CMakeFiles/table7_compiler_single.dir/table7_compiler_single.cpp.o.d"
  "table7_compiler_single"
  "table7_compiler_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_compiler_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
