# Empty dependencies file for table1_stall_profile.
# This may be replaced when dependencies are built.
