file(REMOVE_RECURSE
  "CMakeFiles/table2_riscv_single_core.dir/table2_riscv_single_core.cpp.o"
  "CMakeFiles/table2_riscv_single_core.dir/table2_riscv_single_core.cpp.o.d"
  "table2_riscv_single_core"
  "table2_riscv_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_riscv_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
