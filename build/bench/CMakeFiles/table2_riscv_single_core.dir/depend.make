# Empty dependencies file for table2_riscv_single_core.
# This may be replaced when dependencies are built.
