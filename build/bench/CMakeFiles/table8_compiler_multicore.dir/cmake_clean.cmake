file(REMOVE_RECURSE
  "CMakeFiles/table8_compiler_multicore.dir/table8_compiler_multicore.cpp.o"
  "CMakeFiles/table8_compiler_multicore.dir/table8_compiler_multicore.cpp.o.d"
  "table8_compiler_multicore"
  "table8_compiler_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_compiler_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
