# Empty dependencies file for table8_compiler_multicore.
# This may be replaced when dependencies are built.
