# Empty compiler generated dependencies file for table5_machines.
# This may be replaced when dependencies are built.
