file(REMOVE_RECURSE
  "CMakeFiles/table5_machines.dir/table5_machines.cpp.o"
  "CMakeFiles/table5_machines.dir/table5_machines.cpp.o.d"
  "table5_machines"
  "table5_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
