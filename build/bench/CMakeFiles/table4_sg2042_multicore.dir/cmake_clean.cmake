file(REMOVE_RECURSE
  "CMakeFiles/table4_sg2042_multicore.dir/table4_sg2042_multicore.cpp.o"
  "CMakeFiles/table4_sg2042_multicore.dir/table4_sg2042_multicore.cpp.o.d"
  "table4_sg2042_multicore"
  "table4_sg2042_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sg2042_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
