# Empty dependencies file for table4_sg2042_multicore.
# This may be replaced when dependencies are built.
