file(REMOVE_RECURSE
  "CMakeFiles/calibration_check.dir/calibration_check.cpp.o"
  "CMakeFiles/calibration_check.dir/calibration_check.cpp.o.d"
  "calibration_check"
  "calibration_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
