# Empty dependencies file for table3_sg2042_single.
# This may be replaced when dependencies are built.
