file(REMOVE_RECURSE
  "CMakeFiles/table3_sg2042_single.dir/table3_sg2042_single.cpp.o"
  "CMakeFiles/table3_sg2042_single.dir/table3_sg2042_single.cpp.o.d"
  "table3_sg2042_single"
  "table3_sg2042_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sg2042_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
