file(REMOVE_RECURSE
  "CMakeFiles/suite_summary.dir/suite_summary.cpp.o"
  "CMakeFiles/suite_summary.dir/suite_summary.cpp.o.d"
  "suite_summary"
  "suite_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
