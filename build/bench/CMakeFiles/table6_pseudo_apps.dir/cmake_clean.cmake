file(REMOVE_RECURSE
  "CMakeFiles/table6_pseudo_apps.dir/table6_pseudo_apps.cpp.o"
  "CMakeFiles/table6_pseudo_apps.dir/table6_pseudo_apps.cpp.o.d"
  "table6_pseudo_apps"
  "table6_pseudo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_pseudo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
