# Empty compiler generated dependencies file for table6_pseudo_apps.
# This may be replaced when dependencies are built.
