# Empty compiler generated dependencies file for fig3_mg_scaling.
# This may be replaced when dependencies are built.
