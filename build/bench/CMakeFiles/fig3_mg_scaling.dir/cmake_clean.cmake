file(REMOVE_RECURSE
  "CMakeFiles/fig3_mg_scaling.dir/fig3_mg_scaling.cpp.o"
  "CMakeFiles/fig3_mg_scaling.dir/fig3_mg_scaling.cpp.o.d"
  "fig3_mg_scaling"
  "fig3_mg_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mg_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
