# Empty compiler generated dependencies file for fig2_is_scaling.
# This may be replaced when dependencies are built.
