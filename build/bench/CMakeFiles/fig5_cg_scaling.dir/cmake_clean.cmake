file(REMOVE_RECURSE
  "CMakeFiles/fig5_cg_scaling.dir/fig5_cg_scaling.cpp.o"
  "CMakeFiles/fig5_cg_scaling.dir/fig5_cg_scaling.cpp.o.d"
  "fig5_cg_scaling"
  "fig5_cg_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cg_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
