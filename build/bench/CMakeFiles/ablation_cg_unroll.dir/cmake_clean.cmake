file(REMOVE_RECURSE
  "CMakeFiles/ablation_cg_unroll.dir/ablation_cg_unroll.cpp.o"
  "CMakeFiles/ablation_cg_unroll.dir/ablation_cg_unroll.cpp.o.d"
  "ablation_cg_unroll"
  "ablation_cg_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cg_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
