# Empty dependencies file for ablation_cg_unroll.
# This may be replaced when dependencies are built.
