# Empty compiler generated dependencies file for fig4_ep_scaling.
# This may be replaced when dependencies are built.
